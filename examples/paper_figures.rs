//! Reproduces the paper's worked examples exactly.
//!
//! * **Fig. 1** — initial labeling of a line `E-D-C-B-A-T`: the request
//!   travels to `T` (label 0/1); the reply relabels the path to
//!   `5/6 → 4/5 → 3/4 → 2/3 → 1/2 → 0/1`.
//! * **Fig. 2** — later, nodes `F`, `G`, `H` (labels 2/3, 2/3, 3/4 but no
//!   routes) attach through `B` and `A` *without relabeling any
//!   predecessor*: `B` splits to 3/5, `F` splits to 5/8, `G` and `H` keep
//!   their labels. Final order `3/4 → 2/3 → 5/8 → 3/5 → 1/2 → 0/1`
//!   (`0.75, .66, .625, .6, .5, 0` in truncated decimal, as the paper
//!   prints it).
//!
//! ```sh
//! cargo run --release -p slr-runner --example paper_figures
//! ```

use slr_core::engine::SlrGraph;
use slr_core::Fraction;

type F = Fraction<u32>;

fn f(n: u32, d: u32) -> F {
    Fraction::new(n, d).expect("valid fraction")
}

fn main() {
    // ---- Fig. 1 ----
    // Nodes: T=0, A=1, B=2, C=3, D=4, E=5.
    let mut g: SlrGraph<F> = SlrGraph::new(6, 0);
    g.run_request(&[5, 4, 3, 2, 1, 0])
        .expect("discovery succeeds");
    println!("Fig. 1 — initial graph labeling");
    for (name, node) in [("T", 0), ("A", 1), ("B", 2), ("C", 3), ("D", 4), ("E", 5)] {
        println!("  {name}: {}", g.label(node));
    }
    assert_eq!(*g.label(1), f(1, 2));
    assert_eq!(*g.label(2), f(2, 3));
    assert_eq!(*g.label(3), f(3, 4));
    assert_eq!(*g.label(4), f(4, 5));
    assert_eq!(*g.label(5), f(5, 6));
    g.check_topological_order().expect("Theorem 3 holds");

    // ---- Fig. 2 ----
    // Fresh graph with only A and B routed (A=1/2, B=2/3), then F=3, G=4,
    // H=5 appear holding stale labels from routes they once had.
    let mut g: SlrGraph<F> = SlrGraph::new(6, 0);
    g.run_request(&[2, 1, 0]).expect("seed A,B");
    g.set_label_for_test(3, f(2, 3)); // F
    g.set_label_for_test(4, f(2, 3)); // G
    g.set_label_for_test(5, f(3, 4)); // H

    // H issues a request; B cannot reply (its label is not below the
    // request minimum), so the request reaches A.
    g.run_request(&[5, 4, 3, 2, 1]).expect("insertion succeeds");
    println!("Fig. 2 — re-labeling (inserting F, G, H without touching A)");
    for (name, node) in [("A", 1), ("B", 2), ("F", 3), ("G", 4), ("H", 5)] {
        println!(
            "  {name}: {}  (≈ {:.3})",
            g.label(node),
            g.label(node).value()
        );
    }
    assert_eq!(*g.label(1), f(1, 2), "A keeps 1/2: no predecessor relabel");
    assert_eq!(*g.label(2), f(3, 5), "B splits to 3/5");
    assert_eq!(*g.label(3), f(5, 8), "F splits to 5/8");
    assert_eq!(*g.label(4), f(2, 3), "G keeps 2/3");
    assert_eq!(*g.label(5), f(3, 4), "H keeps 3/4");
    g.check_topological_order().expect("Theorem 3 holds");

    println!("Both worked examples match the paper exactly.");
}
