//! A mobile ad hoc network demo: one quick-scale trial per protocol on the
//! *same* mobility and traffic scripts, printing the paper's three metrics.
//!
//! ```sh
//! cargo run --release -p slr-runner --example manet_demo [pause_secs]
//! ```

use slr_runner::scenario::{ProtocolKind, Scenario};
use slr_runner::sim::Sim;

fn main() {
    let pause: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    println!("50 nodes, 15 CBR flows, 160 s, pause {pause} s — same scripts for every protocol\n");
    println!(
        "{:<8} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "proto", "delivery", "load", "latency(s)", "drops/node", "seqno"
    );
    for kind in ProtocolKind::all() {
        let scenario = Scenario::quick(kind, pause, 42, 0);
        let summary = Sim::new(scenario).run();
        println!(
            "{:<8} {:>10.3} {:>10.3} {:>12.4} {:>12.1} {:>10.2}",
            kind.name(),
            summary.delivery_ratio,
            summary.network_load,
            summary.latency,
            summary.mac_drops_per_node,
            summary.avg_seqno
        );
    }
    println!("\nExpected shape (paper §V): SRP best delivery & lowest load;");
    println!("AODV/LDR mid; DSR degrades with mobility; OLSR trades overhead for latency.");
}
