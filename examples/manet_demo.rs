//! A mobile ad hoc network demo of the current engine surface:
//!
//! 1. one quick-scale trial per protocol on the *same* mobility and
//!    traffic scripts, printing the paper's three metrics;
//! 2. one `dense`-family SRP trial run under the selected event engine,
//!    with the batched engine's summary cross-checked bit-for-bit when a
//!    non-default engine is chosen.
//!
//! ```sh
//! cargo run --release --example manet_demo
//! cargo run --release --example manet_demo -- --pause 300
//! cargo run --release --example manet_demo -- --nodes 400 \
//!     --engine parallel --workers 4
//! cargo run --release --example manet_demo -- --engine per-receiver
//! ```
//!
//! Flags (shared parser with `slrsim`): `--pause S` for the per-protocol
//! comparison; `--engine batched|per-receiver|parallel`, `--workers N`,
//! `--nodes N`, `--duration S` and `--seed N` for the dense engine demo.

use slr_runner::cli::{parse_cli, usage, CliAction};
use slr_runner::registry::{Family, SweepParam};
use slr_runner::scenario::{ProtocolKind, Scenario};
use slr_runner::sim::{EngineKind, Sim};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_cli(&args) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    if opts.action != CliAction::Run {
        eprintln!("{}", usage("manet_demo"));
        return;
    }
    let pause = match (&opts.param, &opts.values) {
        (Some(SweepParam::Pause), Some(v)) => v[0],
        _ => 0,
    };

    println!("50 nodes, 15 CBR flows, 160 s, pause {pause} s — same scripts for every protocol\n");
    println!(
        "{:<8} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "proto", "delivery", "load", "latency(s)", "drops/node", "seqno"
    );
    for kind in ProtocolKind::all() {
        let scenario = Scenario::quick(kind, pause, opts.seed, 0);
        let summary = Sim::new(scenario).run();
        println!(
            "{:<8} {:>10.3} {:>10.3} {:>12.4} {:>12.1} {:>10.2}",
            kind.name(),
            summary.delivery_ratio,
            summary.network_load,
            summary.latency,
            summary.mac_drops_per_node,
            summary.avg_seqno
        );
    }
    println!("\nExpected shape (paper §V): SRP best delivery & lowest load;");
    println!("AODV/LDR mid; DSR degrades with mobility; OLSR trades overhead for latency.");

    // Part 2: the dense family under the selected engine. Every engine is
    // bit-identical by contract; the demo proves it on the spot whenever
    // a non-default engine is picked.
    let nodes = opts.nodes.unwrap_or(300) as u64;
    let workers = opts.effective_workers();
    let engine_name = match opts.engine {
        EngineKind::Batched => "batched".to_string(),
        EngineKind::PerReceiver => "per-receiver".to_string(),
        EngineKind::Parallel => format!("parallel ({workers} workers)"),
    };
    let dense_scenario = || {
        let mut s = Family::Dense.scenario_at(
            ProtocolKind::Srp,
            opts.seed,
            0,
            opts.paper,
            SweepParam::Nodes,
            nodes,
        );
        if let Some(d) = opts.duration {
            s.end = slr_netsim::time::SimTime::from_secs(d);
        }
        s
    };
    println!(
        "\ndense family: {} mobile nodes, SRP, engine {engine_name}",
        nodes
    );
    let start = std::time::Instant::now();
    let summary = Sim::new(dense_scenario())
        .with_engine(opts.engine)
        .with_workers(workers)
        .run();
    let wall = start.elapsed().as_secs_f64();
    println!(
        "  delivery {:.3}, load {:.3}, latency {:.4} s — {wall:.2} s wall clock",
        summary.delivery_ratio, summary.network_load, summary.latency
    );
    if opts.engine != EngineKind::Batched {
        let baseline = Sim::new(dense_scenario())
            .with_engine(EngineKind::Batched)
            .run();
        assert_eq!(
            baseline, summary,
            "engine determinism contract violated: {engine_name} != batched"
        );
        println!("  cross-check: summary bit-identical to the batched engine ✓");
    }
}
