//! Tour of the dense label set: mediant splitting, the Fibonacci overflow
//! bound, the Farey-tree reduction the paper's conclusion sketches, and
//! the unbounded Stern–Brocot string labels of §II.
//!
//! ```sh
//! cargo run --release -p slr-runner --example label_algebra
//! ```

use slr_core::fraction::worst_case_split_capacity;
use slr_core::sternbrocot::{simplest_between, SbPath};
use slr_core::{Frac32, Fraction, SplitLabel};

fn main() {
    // Mediant splitting (Eq. 1): always lands strictly inside.
    let a: Frac32 = Fraction::new(1, 2).unwrap();
    let b = Fraction::new(2, 3).unwrap();
    let m = a.checked_mediant(&b).unwrap();
    println!("mediant({a}, {b}) = {m}");

    // Worst-case split budget (§III): Fibonacci growth.
    println!(
        "worst-case consecutive splits: u32 = {}, u64 = {}",
        worst_case_split_capacity::<u32>(),
        worst_case_split_capacity::<u64>()
    );

    // Denominator growth: raw mediants vs Farey (simplest-in-interval),
    // under a relabel storm — 8 chained nodes repeatedly re-inserting
    // themselves between their neighbors. Mediants compound; Farey labels
    // stay shallow (the paper conclusion's motivation for fraction
    // reduction).
    let storm = |farey: bool, rounds: usize| -> u32 {
        let mut labels: Vec<Frac32> = (0..10)
            .map(|i| Fraction::new(i as u32, 9).unwrap())
            .collect();
        let mut max_den = 0;
        for _ in 0..rounds {
            for i in 1..=8 {
                let (lo, hi) = (labels[i - 1], labels[i + 1]);
                let m = if farey {
                    simplest_between(&lo, &hi)
                } else {
                    lo.checked_mediant(&hi)
                };
                let Some(m) = m else { return max_den };
                max_den = max_den.max(m.den());
                labels[i] = m;
            }
        }
        max_den
    };
    println!("relabel storm, max denominator after 14 rounds:");
    println!("  mediant : {}", storm(false, 14));
    println!("  farey   : {}", storm(true, 14));

    // The composite SRP ordering: fresher sequence numbers dominate.
    let old = SplitLabel::<u32>::new(1, Fraction::new(1, 9).unwrap());
    let fresh = SplitLabel::<u32>::new(2, Fraction::new(8, 9).unwrap());
    println!("{old} ≺ {fresh}: {}", old.precedes(&fresh));

    // Unbounded labels: Stern–Brocot paths never overflow.
    let mut x = SbPath::root();
    for _ in 0..5 {
        let y = SbPath::between(&x, &SbPath::Greatest).unwrap();
        println!("between({x}, 1) = {y}");
        x = y;
    }
}
