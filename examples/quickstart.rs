//! Quickstart: run the paper's protocol (SRP) on a small static network
//! and watch a route discovery produce a labeled, loop-free DAG.
//!
//! ```sh
//! cargo run --release -p slr-runner --example quickstart
//! ```

use slr_mobility::Position;
use slr_netsim::time::SimTime;
use slr_runner::scenario::{ProtocolKind, Scenario};
use slr_runner::sim::Sim;
use slr_traffic::{PacketSpec, TrafficScript};

fn main() {
    // A 6-node line, 200 m spacing — the topology of the paper's Fig. 1:
    // node 5 (E) will discover a route to node 0 (T).
    let positions: Vec<Position> = (0..6)
        .map(|i| Position::new(200.0 * i as f64, 0.0))
        .collect();

    // One CBR flow: node 5 → node 0, 4 packets/s for 20 seconds.
    let packets: Vec<PacketSpec> = (0..80)
        .map(|i| PacketSpec {
            time: SimTime::from_millis(2_000 + i * 250),
            src: 5,
            dst: 0,
            bytes: 512,
            flow: 0,
        })
        .collect();

    let mut scenario = Scenario::quick(ProtocolKind::Srp, 900, 7, 0);
    scenario.nodes = 6;
    scenario.end = SimTime::from_secs(30);

    let sim = Sim::with_static_topology(scenario, positions, TrafficScript::from_packets(packets));
    // Run with the loop-freedom oracle checking Theorem 3 every simulated
    // second; it panics if the successor graph ever stops being a DAG.
    let (summary, soft_violations) =
        sim.run_with_loop_oracle(slr_netsim::SimDuration::from_secs(1));

    println!("SRP quickstart (6-node line, one 4 pps CBR flow)");
    println!("  packets originated : {}", summary.originated);
    println!("  packets delivered  : {}", summary.delivered);
    println!("  delivery ratio     : {:.3}", summary.delivery_ratio);
    println!("  mean latency       : {:.4} s", summary.latency);
    println!("  network load       : {:.3}", summary.network_load);
    println!(
        "  seqno increments   : {} (loop-freedom needs none)",
        summary.avg_seqno
    );
    println!("  label-order drift  : {soft_violations} (expected 0)");
    assert!(summary.delivery_ratio > 0.95, "quickstart should deliver");
}
