//! # slr-traffic — scripted workloads (CBR and Poisson)
//!
//! The paper's workload (§V): 30 simultaneous constant-bit-rate flows of
//! 512-byte packets at 4 packets/s; each flow lasts an exponentially
//! distributed lifetime with mean 60 s; when a flow ends a new one with
//! fresh random endpoints replaces it, keeping 30 flows alive. Scripts are
//! generated offline per trial so all protocols see identical demand.
//!
//! Beyond the paper, flows can also emit packets as a Poisson process
//! ([`ArrivalProcess::Poisson`]): same mean rate, exponential gaps —
//! burstier demand for contention-stress scenarios.
//!
//! ```
//! use slr_traffic::{ArrivalProcess, TrafficConfig, TrafficScript};
//! use slr_netsim::rng;
//!
//! let cfg = TrafficConfig::default();
//! let script = TrafficScript::generate(100, &cfg, &mut rng::stream(42, "traffic", 0));
//! assert!(script.packets().len() > 1000);
//!
//! let bursty = TrafficConfig { arrival: ArrivalProcess::Poisson, ..cfg };
//! let script = TrafficScript::generate(100, &bursty, &mut rng::stream(42, "traffic", 0));
//! assert!(script.packets().len() > 1000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival;
pub mod cbr;

pub use arrival::ArrivalProcess;
pub use cbr::{Flow, PacketSpec, TrafficConfig, TrafficScript};
