//! # slr-traffic — CBR workload scripts
//!
//! The paper's workload (§V): 30 simultaneous constant-bit-rate flows of
//! 512-byte packets at 4 packets/s; each flow lasts an exponentially
//! distributed lifetime with mean 60 s; when a flow ends a new one with
//! fresh random endpoints replaces it, keeping 30 flows alive. Scripts are
//! generated offline per trial so all protocols see identical demand.
//!
//! ```
//! use slr_traffic::{TrafficConfig, TrafficScript};
//! use slr_netsim::rng;
//!
//! let cfg = TrafficConfig::default();
//! let script = TrafficScript::generate(100, &cfg, &mut rng::stream(42, "traffic", 0));
//! assert!(script.packets().len() > 1000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cbr;

pub use cbr::{Flow, PacketSpec, TrafficConfig, TrafficScript};
