//! Packet arrival processes within a flow.
//!
//! The paper's workload is pure CBR (fixed inter-packet gaps). Related
//! evaluations (e.g. backpressure-style loop-free routing) stress
//! protocols with burstier demand, so the script generator also supports
//! Poisson arrivals: exponentially distributed inter-packet gaps with the
//! same mean rate, which produces the same offered load with occasional
//! bursts that exercise interface queues and MAC contention.

use rand::Rng;

use slr_netsim::rng::sample_exponential;
use slr_netsim::time::SimDuration;

/// How packets are spaced inside one flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ArrivalProcess {
    /// Constant bit rate: packets exactly `1 / packets_per_second` apart
    /// (the paper's §V workload).
    #[default]
    Cbr,
    /// Poisson arrivals: exponential inter-packet gaps with mean
    /// `1 / packets_per_second` (same offered load, bursty).
    Poisson,
}

impl ArrivalProcess {
    /// Short name used in scenario descriptions and JSON output.
    pub fn name(&self) -> &'static str {
        match self {
            ArrivalProcess::Cbr => "cbr",
            ArrivalProcess::Poisson => "poisson",
        }
    }

    /// The gap to the next packet at `packets_per_second`.
    ///
    /// CBR never consumes randomness, so scripts generated with it remain
    /// bit-identical to the pre-Poisson generator.
    pub fn next_gap<R: Rng + ?Sized>(&self, packets_per_second: f64, rng: &mut R) -> SimDuration {
        match self {
            ArrivalProcess::Cbr => SimDuration::from_secs_f64(1.0 / packets_per_second),
            ArrivalProcess::Poisson => {
                SimDuration::from_secs_f64(sample_exponential(rng, 1.0 / packets_per_second))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slr_netsim::rng::stream;

    #[test]
    fn cbr_gap_is_constant() {
        let mut rng = stream(1, "arrival", 0);
        let g1 = ArrivalProcess::Cbr.next_gap(4.0, &mut rng);
        let g2 = ArrivalProcess::Cbr.next_gap(4.0, &mut rng);
        assert_eq!(g1, g2);
        assert!((g1.as_secs_f64() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn poisson_mean_gap_matches_rate() {
        let mut rng = stream(2, "arrival", 0);
        let n = 20_000;
        let total: f64 = (0..n)
            .map(|_| {
                ArrivalProcess::Poisson
                    .next_gap(4.0, &mut rng)
                    .as_secs_f64()
            })
            .sum();
        let mean = total / n as f64;
        assert!(
            (0.23..0.27).contains(&mean),
            "mean gap {mean} should be ≈0.25 s at 4 pps"
        );
    }

    #[test]
    fn poisson_gaps_vary() {
        let mut rng = stream(3, "arrival", 0);
        let a = ArrivalProcess::Poisson.next_gap(4.0, &mut rng);
        let b = ArrivalProcess::Poisson.next_gap(4.0, &mut rng);
        assert_ne!(a, b, "exponential gaps should essentially never repeat");
    }

    #[test]
    fn names() {
        assert_eq!(ArrivalProcess::Cbr.name(), "cbr");
        assert_eq!(ArrivalProcess::Poisson.name(), "poisson");
    }
}
