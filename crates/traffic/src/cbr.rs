//! Flow-structured traffic generation (CBR or Poisson arrivals).

use rand::Rng;

use slr_mobility::Position;
use slr_netsim::rng::sample_exponential;
use slr_netsim::time::{SimDuration, SimTime};

use crate::arrival::ArrivalProcess;

/// Configuration for the scripted workload.
#[derive(Debug, Clone, Copy)]
pub struct TrafficConfig {
    /// Number of simultaneously active flows (paper: 30).
    pub concurrent_flows: usize,
    /// Packets per second per flow (paper: 4).
    pub packets_per_second: f64,
    /// Payload size in bytes (paper: 512).
    pub packet_bytes: u32,
    /// Mean flow lifetime, exponentially distributed (paper: 60 s).
    pub mean_flow_secs: f64,
    /// How packets are spaced inside a flow (paper: CBR).
    pub arrival: ArrivalProcess,
    /// When traffic starts (routing protocols get a brief settling window).
    pub start: SimTime,
    /// When traffic generation stops.
    pub end: SimTime,
}

impl Default for TrafficConfig {
    fn default() -> Self {
        TrafficConfig {
            concurrent_flows: 30,
            packets_per_second: 4.0,
            packet_bytes: 512,
            mean_flow_secs: 60.0,
            arrival: ArrivalProcess::Cbr,
            start: SimTime::from_secs(10),
            end: SimTime::from_secs(910),
        }
    }
}

/// One CBR flow: endpoints and active interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flow {
    /// Originating node.
    pub src: usize,
    /// Sink node.
    pub dst: usize,
    /// First packet time.
    pub start: SimTime,
    /// No packets at or after this time.
    pub end: SimTime,
}

/// One scripted packet: origination time, endpoints, size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketSpec {
    /// Origination time at the source's application layer.
    pub time: SimTime,
    /// Originating node.
    pub src: usize,
    /// Sink node.
    pub dst: usize,
    /// Payload bytes.
    pub bytes: u32,
    /// Flow index the packet belongs to (for per-flow statistics).
    pub flow: usize,
}

/// A complete offline traffic script for one trial.
#[derive(Debug, Clone)]
pub struct TrafficScript {
    flows: Vec<Flow>,
    packets: Vec<PacketSpec>,
    /// Per-packet uid: `(flow << 32) | seq-within-flow`, aligned with
    /// `packets`. Flow-structured so delivery dedup can run on bounded
    /// per-flow windows instead of an ever-growing uid set.
    uids: Vec<u64>,
}

impl TrafficScript {
    /// Generates the script for `n` nodes.
    ///
    /// Flow slots are independent: each slot runs back-to-back flows with
    /// exponential lifetimes and fresh uniform endpoints (`src != dst`),
    /// maintaining `concurrent_flows` simultaneous flows as in the paper.
    /// Slot start times are staggered by up to one packet interval so the
    /// 30 flows do not fire in phase.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` or the configuration is degenerate.
    pub fn generate<R: Rng + ?Sized>(n: usize, cfg: &TrafficConfig, rng: &mut R) -> Self {
        assert!(n >= 2, "need at least two nodes for traffic");
        Self::generate_with(cfg, rng, |rng| random_pair(n, rng))
    }

    /// Like [`TrafficScript::generate`], but flow sinks are sampled within
    /// `max_dist_m` of the source over the actual `positions` layout —
    /// the locality-bounded workload of huge-scale discs, where a uniform
    /// endpoint pair would be hundreds of hops apart, far past the data
    /// TTL. Sources stay uniform; the sink is drawn uniformly from the
    /// nodes within range of the source, falling back to the nearest
    /// other node when the source has no neighbor in range (degenerate
    /// placements still yield a valid script).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two positions or the configuration is
    /// degenerate.
    pub fn generate_local<R: Rng + ?Sized>(
        cfg: &TrafficConfig,
        rng: &mut R,
        positions: &[Position],
        max_dist_m: f64,
    ) -> Self {
        assert!(positions.len() >= 2, "need at least two nodes for traffic");
        Self::generate_with(cfg, rng, |rng| local_pair(positions, max_dist_m, rng))
    }

    /// Shared slot loop behind both generators; `pick` draws one flow's
    /// `(src, dst)` endpoints from `rng` (exactly one logical draw per
    /// flow, so the two generators stay stream-compatible in everything
    /// but endpoint choice).
    fn generate_with<R: Rng + ?Sized>(
        cfg: &TrafficConfig,
        rng: &mut R,
        mut pick: impl FnMut(&mut R) -> (usize, usize),
    ) -> Self {
        assert!(cfg.packets_per_second > 0.0 && cfg.mean_flow_secs > 0.0);
        assert!(cfg.end > cfg.start, "traffic window is empty");

        let mut flows = Vec::new();
        let mut packets = Vec::new();

        for slot in 0..cfg.concurrent_flows {
            // Stagger slot phase within one packet interval.
            let phase =
                SimDuration::from_secs_f64(rng.gen_range(0.0..1.0) / cfg.packets_per_second);
            let mut t = cfg.start + phase;
            while t < cfg.end {
                let lifetime =
                    SimDuration::from_secs_f64(sample_exponential(rng, cfg.mean_flow_secs));
                let flow_end = (t + lifetime).min(cfg.end);
                let (src, dst) = pick(rng);
                let flow_idx = flows.len();
                flows.push(Flow {
                    src,
                    dst,
                    start: t,
                    end: flow_end,
                });
                let mut pt = t;
                while pt < flow_end {
                    packets.push(PacketSpec {
                        time: pt,
                        src,
                        dst,
                        bytes: cfg.packet_bytes,
                        flow: flow_idx,
                    });
                    pt += cfg.arrival.next_gap(cfg.packets_per_second, rng);
                }
                t = flow_end;
            }
            let _ = slot;
        }
        packets.sort_by_key(|p| (p.time, p.src, p.dst));
        let uids = assign_uids(&packets);
        TrafficScript {
            flows,
            packets,
            uids,
        }
    }

    /// All flows, in slot order then time order.
    pub fn flows(&self) -> &[Flow] {
        &self.flows
    }

    /// All packets, sorted by origination time.
    pub fn packets(&self) -> &[PacketSpec] {
        &self.packets
    }

    /// The flow-structured uid of packet `i`: `(flow << 32) | seq`, where
    /// `seq` counts the flow's packets in origination order. Unique across
    /// the script; the flow half lets the metrics layer dedup deliveries
    /// in a bounded per-flow window.
    pub fn uid(&self, i: usize) -> u64 {
        self.uids[i]
    }

    /// Builds a fixed script from explicit packets (tests/examples).
    pub fn from_packets(packets: Vec<PacketSpec>) -> Self {
        let mut packets = packets;
        packets.sort_by_key(|p| (p.time, p.src, p.dst));
        let uids = assign_uids(&packets);
        TrafficScript {
            flows: Vec::new(),
            packets,
            uids,
        }
    }
}

/// Numbers each flow's packets 0, 1, 2, … in script order and packs
/// `(flow << 32) | seq`. Packets are already time-sorted, so `seq` is the
/// packet's origination rank within its flow.
fn assign_uids(packets: &[PacketSpec]) -> Vec<u64> {
    let mut next_seq: Vec<u32> = Vec::new();
    packets
        .iter()
        .map(|p| {
            if p.flow >= next_seq.len() {
                next_seq.resize(p.flow + 1, 0);
            }
            let seq = next_seq[p.flow];
            next_seq[p.flow] = seq + 1;
            ((p.flow as u64) << 32) | u64::from(seq)
        })
        .collect()
}

fn random_pair<R: Rng + ?Sized>(n: usize, rng: &mut R) -> (usize, usize) {
    let src = rng.gen_range(0..n);
    let mut dst = rng.gen_range(0..n - 1);
    if dst >= src {
        dst += 1;
    }
    (src, dst)
}

/// Uniform source, sink uniform among the nodes within `max_dist_m` of it
/// (nearest other node if none are). One full scan per flow: flows are
/// rare next to packets, so O(n) here never shows up in a profile, and it
/// avoids the unbounded worst case of rejection sampling around an
/// isolated source.
fn local_pair<R: Rng + ?Sized>(
    positions: &[Position],
    max_dist_m: f64,
    rng: &mut R,
) -> (usize, usize) {
    let src = rng.gen_range(0..positions.len());
    let mut in_range = Vec::new();
    let (mut nearest, mut nearest_d) = (usize::MAX, f64::INFINITY);
    for (i, p) in positions.iter().enumerate() {
        if i == src {
            continue;
        }
        let d = positions[src].distance(p);
        if d <= max_dist_m {
            in_range.push(i);
        }
        if d < nearest_d {
            (nearest, nearest_d) = (i, d);
        }
    }
    if in_range.is_empty() {
        (src, nearest)
    } else {
        (src, in_range[rng.gen_range(0..in_range.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slr_netsim::rng::stream;

    fn cfg(start: u64, end: u64) -> TrafficConfig {
        TrafficConfig {
            start: SimTime::from_secs(start),
            end: SimTime::from_secs(end),
            ..TrafficConfig::default()
        }
    }

    #[test]
    fn maintains_concurrent_flows() {
        let c = cfg(10, 310);
        let s = TrafficScript::generate(100, &c, &mut stream(1, "traffic", 0));
        // At an arbitrary mid-simulation instant, ~30 flows are active.
        let t = SimTime::from_secs(150);
        let active = s
            .flows()
            .iter()
            .filter(|f| f.start <= t && t < f.end)
            .count();
        assert!(
            (25..=30).contains(&active),
            "expected ≈30 active flows, got {active}"
        );
    }

    #[test]
    fn aggregate_rate_matches_paper() {
        // 30 flows × 4 pps = 120 pps network-wide.
        let c = cfg(10, 110);
        let s = TrafficScript::generate(100, &c, &mut stream(2, "traffic", 0));
        let total = s.packets().len() as f64;
        let rate = total / 100.0;
        assert!(
            (110.0..=130.0).contains(&rate),
            "aggregate rate {rate} pps should be ≈120"
        );
    }

    #[test]
    fn endpoints_are_valid_and_distinct() {
        let c = cfg(10, 60);
        let s = TrafficScript::generate(20, &c, &mut stream(3, "traffic", 0));
        for f in s.flows() {
            assert!(f.src < 20 && f.dst < 20);
            assert_ne!(f.src, f.dst);
        }
    }

    #[test]
    fn packets_sorted_and_in_window() {
        let c = cfg(10, 60);
        let s = TrafficScript::generate(20, &c, &mut stream(4, "traffic", 0));
        let mut prev = SimTime::ZERO;
        for p in s.packets() {
            assert!(p.time >= prev);
            assert!(p.time >= c.start && p.time < c.end);
            assert_eq!(p.bytes, 512);
            prev = p.time;
        }
    }

    #[test]
    fn deterministic_per_stream() {
        let c = cfg(10, 60);
        let a = TrafficScript::generate(50, &c, &mut stream(9, "traffic", 3));
        let b = TrafficScript::generate(50, &c, &mut stream(9, "traffic", 3));
        assert_eq!(a.packets(), b.packets());
        assert_eq!(a.flows(), b.flows());
    }

    #[test]
    fn flow_lifetimes_look_exponential() {
        let c = cfg(0, 3000);
        let s = TrafficScript::generate(100, &c, &mut stream(5, "traffic", 0));
        // Mean lifetime of non-truncated flows ≈ 60 s.
        let lifetimes: Vec<f64> = s
            .flows()
            .iter()
            .filter(|f| f.end < c.end)
            .map(|f| (f.end - f.start).as_secs_f64())
            .collect();
        assert!(lifetimes.len() > 100);
        let mean = lifetimes.iter().sum::<f64>() / lifetimes.len() as f64;
        assert!(
            (40.0..=80.0).contains(&mean),
            "mean lifetime {mean} should be ≈60"
        );
    }

    #[test]
    fn poisson_offers_the_same_load() {
        // Poisson arrivals keep the mean rate: ≈120 pps network-wide.
        let c = TrafficConfig {
            arrival: ArrivalProcess::Poisson,
            ..cfg(10, 110)
        };
        let s = TrafficScript::generate(100, &c, &mut stream(2, "traffic", 0));
        let rate = s.packets().len() as f64 / 100.0;
        assert!(
            (105.0..=135.0).contains(&rate),
            "Poisson aggregate rate {rate} pps should be ≈120"
        );
    }

    #[test]
    fn poisson_gaps_are_irregular_cbr_gaps_regular() {
        let gaps = |arrival: ArrivalProcess| -> Vec<f64> {
            let c = TrafficConfig {
                arrival,
                ..cfg(10, 60)
            };
            let s = TrafficScript::generate(20, &c, &mut stream(8, "traffic", 0));
            // Intra-flow gaps of the longest flow.
            let flow = (0..s.flows().len())
                .max_by_key(|i| s.packets().iter().filter(|p| p.flow == *i).count())
                .expect("at least one flow");
            let times: Vec<f64> = s
                .packets()
                .iter()
                .filter(|p| p.flow == flow)
                .map(|p| p.time.as_secs_f64())
                .collect();
            assert!(times.len() >= 4, "longest flow too short: {}", times.len());
            times.windows(2).map(|w| w[1] - w[0]).collect()
        };
        let cbr = gaps(ArrivalProcess::Cbr);
        assert!(cbr.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-6));
        let poisson = gaps(ArrivalProcess::Poisson);
        assert!(
            poisson.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-3),
            "Poisson gaps should vary: {poisson:?}"
        );
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn rejects_single_node() {
        let c = cfg(0, 10);
        let _ = TrafficScript::generate(1, &c, &mut stream(6, "traffic", 0));
    }

    #[test]
    fn local_pairs_stay_within_range() {
        // A 20×20 grid at 300 m spacing: every node has a neighbor well
        // inside the 800 m locality radius, so no flow may fall back to
        // the nearest-node escape hatch.
        let positions: Vec<Position> = (0..400)
            .map(|i| Position::new(300.0 * (i % 20) as f64, 300.0 * (i / 20) as f64))
            .collect();
        let c = cfg(10, 60);
        let s = TrafficScript::generate_local(&c, &mut stream(11, "traffic", 0), &positions, 800.0);
        assert!(!s.flows().is_empty());
        for f in s.flows() {
            assert_ne!(f.src, f.dst);
            let d = positions[f.src].distance(&positions[f.dst]);
            assert!(d <= 800.0, "flow {}→{} spans {d} m", f.src, f.dst);
        }
    }

    #[test]
    fn local_pair_falls_back_to_nearest_when_isolated() {
        // Three nodes, none within range: the sink is the nearest other
        // node, so the script stays valid instead of looping forever.
        let positions = vec![
            Position::new(0.0, 0.0),
            Position::new(5_000.0, 0.0),
            Position::new(11_000.0, 0.0),
        ];
        let mut rng = stream(12, "traffic", 0);
        for _ in 0..50 {
            let (src, dst) = local_pair(&positions, 100.0, &mut rng);
            assert_ne!(src, dst);
            let nearest = (0..positions.len())
                .filter(|&i| i != src)
                .min_by(|&a, &b| {
                    positions[src]
                        .distance(&positions[a])
                        .partial_cmp(&positions[src].distance(&positions[b]))
                        .unwrap()
                })
                .unwrap();
            assert_eq!(dst, nearest);
        }
    }

    #[test]
    fn random_pair_never_self() {
        let mut rng = stream(7, "traffic", 0);
        for _ in 0..1000 {
            let (s, d) = random_pair(5, &mut rng);
            assert_ne!(s, d);
            assert!(s < 5 && d < 5);
        }
    }
}
