//! Counterexample trace files: JSON serialization + replay plumbing.
//!
//! A trace pins the config *name* (topology/budgets are code, not data —
//! replay refuses unknown names) and the regress feature it was found
//! under, so `slr-check --replay` can verify it was built with the same
//! fault injected.

use crate::bfs::Violation;
use crate::json::{self, Json};
use crate::model::Action;

/// A serialized counterexample.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Name of the [`crate::configs`] entry the trace was found on.
    pub config: String,
    /// The regress feature active when it was found (empty = none).
    pub feature: String,
    /// Scripted prefix (mirrors the config; stored for self-containment).
    pub prefix: Vec<Action>,
    /// The explored suffix reaching the violation.
    pub actions: Vec<Action>,
    /// Human-readable description of the violated invariant.
    pub violation: String,
}

/// The regress feature compiled into this binary, if any.
pub fn active_regress_feature() -> &'static str {
    if cfg!(feature = "regress-pr2-cold-reboot") {
        "regress-pr2-cold-reboot"
    } else if cfg!(feature = "regress-pr7-entry-expiry") {
        "regress-pr7-entry-expiry"
    } else {
        ""
    }
}

impl Trace {
    /// Builds a trace from an exploration result.
    pub fn from_violation(config: &str, v: &Violation) -> Trace {
        Trace {
            config: config.to_string(),
            feature: active_regress_feature().to_string(),
            prefix: v.prefix.clone(),
            actions: v.actions.clone(),
            violation: v.desc.clone(),
        }
    }

    /// The full action script (prefix then suffix).
    pub fn script(&self) -> Vec<Action> {
        self.prefix.iter().chain(&self.actions).copied().collect()
    }

    /// Pretty-printed JSON document.
    pub fn to_json(&self) -> String {
        let list = |v: &[Action]| {
            v.iter()
                .map(|a| json::quote(&a.to_string()))
                .collect::<Vec<_>>()
                .join(", ")
        };
        format!(
            "{{\n  \"config\": {},\n  \"feature\": {},\n  \"prefix\": [{}],\n  \"actions\": [{}],\n  \"violation\": {}\n}}\n",
            json::quote(&self.config),
            json::quote(&self.feature),
            list(&self.prefix),
            list(&self.actions),
            json::quote(&self.violation),
        )
    }

    /// Parses a trace document.
    pub fn from_json(src: &str) -> Result<Trace, String> {
        let v = json::parse(src)?;
        let field = |k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("trace missing string field '{k}'"))
        };
        let actions = |k: &str| -> Result<Vec<Action>, String> {
            v.get(k)
                .and_then(Json::as_arr)
                .ok_or_else(|| format!("trace missing array field '{k}'"))?
                .iter()
                .map(|j| {
                    j.as_str()
                        .ok_or_else(|| format!("non-string entry in '{k}'"))
                        .and_then(Action::parse)
                })
                .collect()
        };
        Ok(Trace {
            config: field("config")?,
            feature: field("feature")?,
            prefix: actions("prefix")?,
            actions: actions("actions")?,
            violation: field("violation")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_json_round_trips() {
        let t = Trace {
            config: "line3".into(),
            feature: "regress-pr2-cold-reboot".into(),
            prefix: vec![Action::AppSend { flow: 0 }, Action::Deliver { msg: 0 }],
            actions: vec![Action::Crash { node: 1 }, Action::Rejoin { node: 1 }],
            violation: "dest 2: successor cycle [0, 1]".into(),
        };
        let back = Trace::from_json(&t.to_json()).unwrap();
        assert_eq!(back.config, t.config);
        assert_eq!(back.feature, t.feature);
        assert_eq!(back.prefix, t.prefix);
        assert_eq!(back.actions, t.actions);
        assert_eq!(back.violation, t.violation);
        assert_eq!(back.script().len(), 4);
    }
}
