//! The model-checker CLI.
//!
//! ```text
//! slr-check --list-configs
//! slr-check --config line3 [--depth N] [--states N] [--trace-out FILE]
//!           [--expect-violation]
//! slr-check --set ci|nightly [--trace-out FILE]
//! slr-check --replay FILE [--expect-violation]
//! slr-check --config line3 --probe "appsend 0; deliver 0; tick"
//! ```
//!
//! Exit codes: 0 — outcome matched expectation (clean, or violation
//! found with `--expect-violation`); 1 — outcome did not match; 2 —
//! usage or I/O error.

use std::process::ExitCode;

use slr_check::bfs;
use slr_check::configs;
use slr_check::model::Action;
use slr_check::trace::{active_regress_feature, Trace};

struct Opts {
    config: Option<String>,
    set: Option<String>,
    replay: Option<String>,
    probe: Option<String>,
    depth: Option<usize>,
    states: Option<usize>,
    trace_out: Option<String>,
    expect_violation: bool,
    list: bool,
}

fn parse_args() -> Result<Opts, String> {
    let mut o = Opts {
        config: None,
        set: None,
        replay: None,
        probe: None,
        depth: None,
        states: None,
        trace_out: None,
        expect_violation: false,
        list: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = |what: &str| {
            args.next()
                .ok_or_else(|| format!("{what} requires a value"))
        };
        match a.as_str() {
            "--config" => o.config = Some(val("--config")?),
            "--set" => o.set = Some(val("--set")?),
            "--replay" => o.replay = Some(val("--replay")?),
            "--probe" => o.probe = Some(val("--probe")?),
            "--depth" => {
                o.depth = Some(
                    val("--depth")?
                        .parse()
                        .map_err(|e| format!("--depth: {e}"))?,
                )
            }
            "--states" => {
                o.states = Some(
                    val("--states")?
                        .parse()
                        .map_err(|e| format!("--states: {e}"))?,
                )
            }
            "--trace-out" => o.trace_out = Some(val("--trace-out")?),
            "--expect-violation" => o.expect_violation = true,
            "--list-configs" => o.list = true,
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(o)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("slr-check: {e}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let o = parse_args()?;

    if o.list {
        for c in configs::all() {
            println!("{:<12} {}", c.name, c.about);
        }
        return Ok(ExitCode::SUCCESS);
    }

    if let Some(path) = &o.replay {
        return replay(path, o.expect_violation);
    }

    // Set mode: explore every config in the named set; all must be clean.
    // On a violation, the trace lands in the `--trace-out` directory under
    // the config's name (the nightly workflow uploads it as an artifact).
    if let Some(set) = &o.set {
        let names = match set.as_str() {
            "ci" => configs::ci_set(),
            "nightly" => configs::nightly_set(),
            other => return Err(format!("unknown set '{other}' (ci|nightly)")),
        };
        let mut dirty = false;
        for name in names {
            let cfg = configs::model_for(name).expect("registered set member");
            let trace_path = o
                .trace_out
                .as_deref()
                .map(|dir| format!("{dir}/{name}.json"));
            if explore_one(&cfg, trace_path.as_deref())? {
                dirty = true;
            }
        }
        return Ok(if dirty {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        });
    }

    let name = o
        .config
        .as_deref()
        .ok_or("need --config NAME (or --set, --list-configs, --replay FILE)")?;
    let mut cfg = configs::model_for(name).ok_or_else(|| format!("unknown config '{name}'"))?;
    if let Some(d) = o.depth {
        cfg.max_depth = d;
    }
    if let Some(s) = o.states {
        cfg.max_states = s;
    }

    if let Some(script) = &o.probe {
        return probe(&cfg, script);
    }

    let found = explore_one(&cfg, o.trace_out.as_deref())?;
    Ok(match (found, o.expect_violation) {
        (true, true) | (false, false) => ExitCode::SUCCESS,
        (true, false) => ExitCode::FAILURE,
        (false, true) => {
            eprintln!("slr-check: expected a violation (is the regress feature compiled in?)");
            ExitCode::FAILURE
        }
    })
}

/// Explores one config, printing the outcome (and writing the trace to
/// `trace_out` on violation). Returns whether a violation was found.
fn explore_one(
    cfg: &slr_check::model::ModelConfig,
    trace_out: Option<&str>,
) -> Result<bool, String> {
    let feature = active_regress_feature();
    println!(
        "exploring '{}' (depth<={}, states<={}{})",
        cfg.name,
        cfg.max_depth,
        cfg.max_states,
        if feature.is_empty() {
            String::new()
        } else {
            format!(", fault: {feature}")
        }
    );
    let model = configs::srp_model(cfg);
    let res = bfs::explore(&model)?;
    println!(
        "states={} transitions={} max_depth={} truncated={}",
        res.states, res.transitions, res.max_depth_seen, res.truncated_by_states
    );
    match &res.violation {
        Some(v) => {
            println!(
                "VIOLATION after {} explored steps: {}",
                v.actions.len(),
                v.desc
            );
            for (k, a) in v.prefix.iter().enumerate() {
                println!("  prefix[{k}]: {a}");
            }
            for (k, a) in v.actions.iter().enumerate() {
                println!("  step[{k}]: {a}");
            }
            if let Some(path) = trace_out {
                let t = Trace::from_violation(cfg.name, v);
                std::fs::write(path, t.to_json()).map_err(|e| format!("writing {path}: {e}"))?;
                println!("trace written to {path}");
            }
            Ok(true)
        }
        None => {
            println!("no violations");
            Ok(false)
        }
    }
}

fn replay(path: &str, expect_violation: bool) -> Result<ExitCode, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let t = Trace::from_json(&src)?;
    let feature = active_regress_feature();
    if t.feature != feature {
        return Err(format!(
            "trace was found under feature '{}' but this binary has '{}' — rebuild with \
             `--features {}`",
            t.feature,
            if feature.is_empty() {
                "(none)"
            } else {
                feature
            },
            t.feature
        ));
    }
    let cfg = configs::model_for(&t.config)
        .ok_or_else(|| format!("trace references unknown config '{}'", t.config))?;
    let model = configs::srp_model(&cfg);
    let (hit, steps) = bfs::run_script(&model, &t.script(), false)?;
    match hit {
        Some(desc) => {
            println!("replay reproduces the violation at step {steps}: {desc}");
            Ok(if expect_violation {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            })
        }
        None => {
            println!("replay completed {steps} steps with no violation");
            Ok(if expect_violation {
                eprintln!("slr-check: trace no longer reproduces (fix effective?)");
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            })
        }
    }
}

fn probe(cfg: &slr_check::model::ModelConfig, script: &str) -> Result<ExitCode, String> {
    let actions: Vec<Action> = script
        .split(';')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(Action::parse)
        .collect::<Result<_, _>>()?;
    let model = configs::srp_model(cfg);
    let (hit, steps) = bfs::run_script(&model, &actions, true)?;
    if let Some(desc) = hit {
        println!("VIOLATION at step {steps}: {desc}");
    }
    // Show what is enabled next, for incremental script construction.
    let mut st = model.start();
    for &a in &actions[..steps] {
        model.apply(&mut st, a)?;
    }
    println!("-- enabled next:");
    for a in model.enumerate(&st) {
        println!("   {a}");
    }
    Ok(ExitCode::SUCCESS)
}
