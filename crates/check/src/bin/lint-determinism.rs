//! The workspace determinism lint CLI (see [`slr_check::lint`]).
//!
//! ```text
//! lint-determinism             # scan the workspace's simulation crates
//! lint-determinism --self-test # additionally prove the negative fixture trips it
//! ```
//!
//! Exit codes: 0 — clean (and, with `--self-test`, the fixture failed as
//! it must); 1 — findings; 2 — I/O or configuration error.

use std::path::Path;
use std::process::ExitCode;

use slr_check::lint;

fn main() -> ExitCode {
    let self_test = std::env::args().skip(1).any(|a| a == "--self-test");
    // The binary lives in crates/check; the workspace root is two up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root");

    if self_test {
        let fixture = root.join("crates/check/fixtures/lint_negative.rs");
        let src = match std::fs::read_to_string(&fixture) {
            Ok(s) => s,
            Err(e) => {
                eprintln!(
                    "lint-determinism: cannot read fixture {}: {e}",
                    fixture.display()
                );
                return ExitCode::from(2);
            }
        };
        let hits = lint::scan_source(
            Path::new("crates/check/fixtures/lint_negative.rs"),
            &src,
            &[],
        );
        let tokens: Vec<&str> = hits.iter().map(|h| h.token).collect();
        let all_found = lint::DENY_TOKENS.iter().all(|t| tokens.contains(t));
        if !all_found {
            eprintln!(
                "lint-determinism: SELF-TEST FAILED — fixture only tripped {tokens:?}, \
                 expected all of {:?}",
                lint::DENY_TOKENS
            );
            return ExitCode::from(2);
        }
        println!(
            "self-test ok: fixture tripped all {} denied tokens",
            lint::DENY_TOKENS.len()
        );
    }

    match lint::scan_workspace(&root) {
        Ok(findings) if findings.is_empty() => {
            println!(
                "determinism lint clean ({} trees scanned)",
                lint::SCAN_ROOTS.len()
            );
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                eprintln!("{f}");
            }
            eprintln!(
                "lint-determinism: {} finding(s). Use slr_netsim::hash::FastHashMap/FastHashSet, \
                 SimTime, and seeded SmallRng — or add a justified entry to \
                 crates/check/lint-allow.txt.",
                findings.len()
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("lint-determinism: {e}");
            ExitCode::from(2)
        }
    }
}
