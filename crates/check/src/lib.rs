//! # slr-check — bounded exhaustive model checking for SRP + determinism lint
//!
//! Both real SRP loops found in this repo's history (the PR 2
//! crash–rejoin stale-successor cycle and the PR 7 DELETE_PERIOD
//! equal-seqno re-adoption) lived in temporal windows random simulation
//! is bad at hitting; exhaustive exploration of a *small closed system*
//! finds them in seconds. This crate is a stateright-style checker built
//! in-repo — it drives the **actual** protocol engine
//! ([`slr_protocols::srp::Srp`], via the `model-check` seam) through
//! every interleaving of message delivery/loss/duplication, timer firing,
//! link churn, crash–rejoin and expiry-boundary clock ticks on 3–5-node
//! topologies, checking the paper's invariants at every state:
//!
//! * Theorem 3 — per-destination successor-graph acyclicity;
//! * Definition 1 / Eq. 5 — label order along every installed edge;
//! * seqno-floor monotonicity (crash-reset aside);
//! * the audit layer's distance-0 identity property on in-flight RREQs.
//!
//! Search is plain BFS with hashed-state deduplication
//! ([`slr_netsim::hash::FastHasher`] over a canonical, clock-relative
//! serialization of all node + network state), so the first
//! counterexample found is a *shortest* one, and the explored-state count
//! is deterministic. Counterexamples serialize to JSON traces that replay
//! through the same deterministic driver (`slr-check --replay`).
//!
//! The crate also hosts the workspace determinism lint
//! (`lint-determinism`): a plain-text source scan denying wall-clock and
//! randomized-hash constructs in simulation crates (see [`lint`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bfs;
pub mod configs;
pub mod json;
pub mod lint;
pub mod model;
pub mod trace;
