//! The workspace determinism lint: a plain-text scan of simulation
//! crates for constructs that break bit-identical reproducibility.
//!
//! Denied tokens:
//!
//! * `HashMap` / `HashSet` — std's default `RandomState` randomizes
//!   iteration order per process; simulation state must go through
//!   [`slr_netsim::hash::FastHashMap`]/`FastHashSet` (deterministic
//!   hasher) or ordered containers.
//! * `SystemTime` / `Instant` — wall-clock reads make runs
//!   non-reproducible; simulation logic must use `SimTime`.
//! * `thread_rng` — OS-seeded randomness; everything must derive from
//!   the run's seed via `SmallRng`.
//!
//! Matching is token-exact (identifier boundaries), so `FastHashMap`
//! and doc words like "Instantiates" do not trip it, while brace-form
//! imports (`use std::collections::{HashMap, ...}`) do. Comments are
//! stripped before matching; string literals are kept (a denied name
//! inside a string is almost always a `use` built by a macro — rare
//! enough to allowlist explicitly if it ever happens).
//!
//! Known-legitimate uses (e.g. `Instant` for progress reporting in the
//! runner, or the deterministic-hasher wrapper itself importing std's
//! containers) are declared in `lint-allow.txt` at the crate root as
//! `<path-fragment> <token>` pairs.

use std::fmt;
use std::path::{Path, PathBuf};

/// Tokens denied in simulation source.
pub const DENY_TOKENS: [&str; 5] = ["HashMap", "HashSet", "SystemTime", "Instant", "thread_rng"];

/// The `src/` trees the lint scans, relative to the workspace root.
pub const SCAN_ROOTS: [&str; 8] = [
    "crates/core/src",
    "crates/netsim/src",
    "crates/mobility/src",
    "crates/radio/src",
    "crates/traffic/src",
    "crates/protocols/src",
    "crates/runner/src",
    "crates/check/src",
];

/// One lint hit.
#[derive(Debug, Clone)]
pub struct Finding {
    /// File the token was found in (workspace-relative).
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// The denied token.
    pub token: &'static str,
    /// The offending source line, trimmed.
    pub context: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: denied token `{}`: {}",
            self.file.display(),
            self.line,
            self.token,
            self.context
        )
    }
}

/// An allowlist entry: suppresses `token` findings in files whose
/// workspace-relative path contains `path_frag`.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    /// Substring of the workspace-relative path.
    pub path_frag: String,
    /// The token allowed there.
    pub token: String,
}

/// Parses `lint-allow.txt`: one `<path-frag> <token>` pair per line,
/// `#` comments and blank lines ignored.
pub fn parse_allowlist(src: &str) -> Result<Vec<AllowEntry>, String> {
    let mut out = Vec::new();
    for (n, raw) in src.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        let (Some(frag), Some(token), None) = (it.next(), it.next(), it.next()) else {
            return Err(format!(
                "lint-allow.txt:{}: expected '<path-frag> <token>', got '{raw}'",
                n + 1
            ));
        };
        if !DENY_TOKENS.contains(&token) {
            return Err(format!(
                "lint-allow.txt:{}: '{token}' is not a denied token",
                n + 1
            ));
        }
        out.push(AllowEntry {
            path_frag: frag.to_string(),
            token: token.to_string(),
        });
    }
    Ok(out)
}

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Blanks out `//` line comments and (nested) `/* */` block comments,
/// preserving line structure and skipping over string/char literals so a
/// `"//"` inside a string doesn't eat the rest of the line.
fn strip_comments(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = vec![b' '; b.len()];
    let mut i = 0;
    let mut block_depth = 0usize;
    let mut in_line = false;
    let mut in_str = false;
    let mut in_char = false;
    while i < b.len() {
        let c = b[i];
        if c == b'\n' {
            out[i] = b'\n';
            in_line = false;
            // Unterminated literals don't span lines in practice; reset
            // so a stray quote can't blank the rest of the file.
            in_str = false;
            in_char = false;
            i += 1;
            continue;
        }
        if in_line {
            i += 1;
            continue;
        }
        if block_depth > 0 {
            if c == b'*' && b.get(i + 1) == Some(&b'/') {
                block_depth -= 1;
                i += 2;
            } else if c == b'/' && b.get(i + 1) == Some(&b'*') {
                block_depth += 1;
                i += 2;
            } else {
                i += 1;
            }
            continue;
        }
        if in_str || in_char {
            out[i] = c;
            if c == b'\\' {
                if let Some(&n) = b.get(i + 1) {
                    out[i + 1] = n;
                    i += 2;
                    continue;
                }
            }
            if (in_str && c == b'"') || (in_char && c == b'\'') {
                in_str = false;
                in_char = false;
            }
            i += 1;
            continue;
        }
        match c {
            b'/' if b.get(i + 1) == Some(&b'/') => {
                in_line = true;
                i += 2;
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                block_depth = 1;
                i += 2;
            }
            b'"' => {
                out[i] = c;
                in_str = true;
                i += 1;
            }
            // A lifetime ('a) is not a char literal; only treat ' as one
            // when it encloses a short literal ending in '.
            b'\'' if looks_like_char_literal(&b[i..]) => {
                out[i] = c;
                in_char = true;
                i += 1;
            }
            c => {
                out[i] = c;
                i += 1;
            }
        }
    }
    String::from_utf8(out).expect("comment stripping preserves utf-8 boundaries")
}

fn looks_like_char_literal(rest: &[u8]) -> bool {
    // 'x' or '\n' — a closing quote within 3 bytes of the payload.
    match rest.get(1) {
        Some(b'\\') => true,
        Some(_) => rest.get(2) == Some(&b'\''),
        None => false,
    }
}

/// Scans one file's source text. `rel` is its workspace-relative path.
pub fn scan_source(rel: &Path, src: &str, allow: &[AllowEntry]) -> Vec<Finding> {
    let stripped = strip_comments(src);
    let rel_str = rel.to_string_lossy();
    let mut out = Vec::new();
    for (ln, (line, orig)) in stripped.lines().zip(src.lines()).enumerate() {
        let bytes = line.as_bytes();
        for token in DENY_TOKENS {
            let mut from = 0;
            while let Some(at) = line[from..].find(token) {
                let start = from + at;
                let end = start + token.len();
                from = end;
                let pre_ok = start == 0 || !is_ident_char(bytes[start - 1]);
                let post_ok = end >= bytes.len() || !is_ident_char(bytes[end]);
                if !(pre_ok && post_ok) {
                    continue;
                }
                if allow
                    .iter()
                    .any(|a| a.token == token && rel_str.contains(&a.path_frag))
                {
                    continue;
                }
                out.push(Finding {
                    file: rel.to_path_buf(),
                    line: ln + 1,
                    token,
                    context: orig.trim().to_string(),
                });
            }
        }
    }
    out
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            walk(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Scans every [`SCAN_ROOTS`] tree under `workspace_root`. Returns all
/// findings (empty = clean).
pub fn scan_workspace(workspace_root: &Path) -> Result<Vec<Finding>, String> {
    let allow_path = workspace_root.join("crates/check/lint-allow.txt");
    let allow = match std::fs::read_to_string(&allow_path) {
        Ok(s) => parse_allowlist(&s)?,
        Err(e) => return Err(format!("cannot read {}: {e}", allow_path.display())),
    };
    let mut findings = Vec::new();
    for root in SCAN_ROOTS {
        let dir = workspace_root.join(root);
        let mut files = Vec::new();
        walk(&dir, &mut files).map_err(|e| format!("walking {}: {e}", dir.display()))?;
        for f in files {
            let src =
                std::fs::read_to_string(&f).map_err(|e| format!("reading {}: {e}", f.display()))?;
            let rel = f.strip_prefix(workspace_root).unwrap_or(&f);
            findings.extend(scan_source(rel, &src, &allow));
        }
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_matching_skips_wrapped_names() {
        let src = "use slr_netsim::hash::FastHashMap;\n// Instantiates the engine\nlet m: FastHashSet<u32> = Default::default();\n";
        assert!(scan_source(Path::new("x.rs"), src, &[]).is_empty());
    }

    #[test]
    fn brace_imports_and_bare_uses_are_caught() {
        let src = "use std::collections::{HashMap, HashSet};\nlet t = std::time::Instant::now();\n";
        let f = scan_source(Path::new("x.rs"), src, &[]);
        let tokens: Vec<_> = f.iter().map(|x| x.token).collect();
        assert_eq!(tokens, vec!["HashMap", "HashSet", "Instant"]);
        assert_eq!(f[0].line, 1);
        assert_eq!(f[2].line, 2);
    }

    #[test]
    fn comments_are_stripped_but_strings_are_not_comment_starts() {
        let src = "// HashMap in a comment\n/* HashSet\n   SystemTime */\nlet s = \"url://x\"; let t = Instant::now();\n";
        let f = scan_source(Path::new("x.rs"), src, &[]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].token, "Instant");
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn allowlist_suppresses_by_path_and_token() {
        let allow = parse_allowlist("# known uses\nrunner/src/sim.rs Instant\n").unwrap();
        let hit = scan_source(
            Path::new("crates/runner/src/sim.rs"),
            "let t = Instant::now();\nuse std::collections::HashMap;\n",
            &allow,
        );
        assert_eq!(hit.len(), 1);
        assert_eq!(hit[0].token, "HashMap");
        assert!(parse_allowlist("x.rs NotAToken\n").is_err());
        assert!(parse_allowlist("just-one-field\n").is_err());
    }
}
