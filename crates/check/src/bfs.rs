//! Breadth-first exploration with hashed-state deduplication.
//!
//! The frontier stores `(parent, action)` arcs rather than full states:
//! a state is reconstructed once per expansion by replaying its action
//! path from the (post-prefix) root, then cloned per child. With 3–5
//! protocol instances a replay costs microseconds, and the arena stays
//! small enough to explore millions of arcs in a few hundred MB.
//!
//! Deduplication hashes the canonical serialization twice with
//! seed-prefixed [`FastHasher`] passes (a 128-bit fingerprint); at the
//! ≤10⁷-state scales the budgets allow, collision probability is
//! negligible and exploration order — hence the reported state count and
//! the counterexample found — is fully deterministic. BFS order also
//! guarantees the first violation found has a *shortest* action suffix.

use std::collections::VecDeque;
use std::hash::Hasher as _;

use slr_netsim::hash::{FastHashSet, FastHasher};

use crate::model::{Action, Model, State};
use slr_protocols::model::ModelCheckable;

/// A found invariant violation, with the full path that reaches it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The scripted prefix (from [`ModelConfig::prefix`]).
    pub prefix: Vec<Action>,
    /// The explored suffix (shortest, by BFS order).
    pub actions: Vec<Action>,
    /// Human-readable description of the violated invariant.
    pub desc: String,
}

/// Exploration statistics + outcome.
#[derive(Debug)]
pub struct ExploreResult {
    /// The first (shortest) violation found, if any.
    pub violation: Option<Violation>,
    /// Distinct states visited (deterministic for a given config).
    pub states: usize,
    /// Transitions applied.
    pub transitions: usize,
    /// Deepest suffix length reached.
    pub max_depth_seen: usize,
    /// Whether the state budget stopped the search early.
    pub truncated_by_states: bool,
}

fn fingerprint(canon: &[u8]) -> (u64, u64) {
    let mut a = FastHasher::default();
    a.write_u64(0x9e37_79b9_7f4a_7c15);
    a.write(canon);
    let mut b = FastHasher::default();
    b.write_u64(0xc2b2_ae3d_27d4_eb4f);
    b.write(canon);
    (a.finish(), b.finish())
}

/// Arena arc: how a state was reached.
struct NodeRec {
    /// Arena index of the parent, or `u32::MAX` for the root.
    parent: u32,
    /// The action that produced this state from the parent.
    action: Action,
    /// Suffix length (root = 0).
    depth: u32,
}

const ROOT: u32 = u32::MAX;

fn path_to(arena: &[NodeRec], mut idx: u32) -> Vec<Action> {
    let mut out = Vec::new();
    while idx != ROOT {
        let rec = &arena[idx as usize];
        out.push(rec.action);
        idx = rec.parent;
    }
    out.reverse();
    out
}

/// Applies the scripted prefix, checking invariants after every step.
///
/// Returns the positioned root state, or a violation hit inside the
/// prefix itself (possible when a regress feature is enabled and the
/// prefix alone reaches the bug).
pub fn apply_prefix<P: ModelCheckable>(
    model: &Model<'_, P>,
) -> Result<State<P>, Result<Violation, String>> {
    let mut st = model.start();
    if let Some(desc) = model.check_invariants(&st, None) {
        return Err(Ok(Violation {
            prefix: Vec::new(),
            actions: Vec::new(),
            desc,
        }));
    }
    for (k, &a) in model.cfg.prefix.iter().enumerate() {
        let prev_floors = model.floors(&st);
        if let Err(e) = model.apply(&mut st, a) {
            return Err(Err(format!("prefix step {k} ({a}) failed: {e}")));
        }
        if let Some(desc) =
            model.check_invariants(&st, Some((&prev_floors, Model::<P>::crashed_by(a))))
        {
            return Err(Ok(Violation {
                prefix: model.cfg.prefix[..=k].to_vec(),
                actions: Vec::new(),
                desc,
            }));
        }
    }
    Ok(st)
}

/// Exhaustive bounded BFS from the post-prefix root.
pub fn explore<P: ModelCheckable>(model: &Model<'_, P>) -> Result<ExploreResult, String> {
    let root = match apply_prefix(model) {
        Ok(st) => st,
        Err(Ok(v)) => {
            return Ok(ExploreResult {
                violation: Some(v),
                states: 0,
                transitions: 0,
                max_depth_seen: 0,
                truncated_by_states: false,
            })
        }
        Err(Err(e)) => return Err(e),
    };

    let mut visited: FastHashSet<(u64, u64)> = FastHashSet::default();
    visited.insert(fingerprint(&model.canonical(&root)));

    let mut arena: Vec<NodeRec> = Vec::new();
    // Queue of arena indices to expand; ROOT stands for the root state.
    let mut queue: VecDeque<u32> = VecDeque::new();
    queue.push_back(ROOT);

    let mut states = 1usize;
    let mut transitions = 0usize;
    let mut max_depth_seen = 0usize;
    let mut truncated = false;

    while let Some(idx) = queue.pop_front() {
        let (state, depth) = if idx == ROOT {
            (root.clone(), 0usize)
        } else {
            // Reconstruct by replaying the action path from the root.
            let path = path_to(&arena, idx);
            let mut st = root.clone();
            for &a in &path {
                model
                    .apply(&mut st, a)
                    .map_err(|e| format!("internal replay divergence: {e}"))?;
            }
            (st, path.len())
        };
        if depth >= model.cfg.max_depth {
            continue;
        }
        let prev_floors = model.floors(&state);
        for a in model.enumerate(&state) {
            let mut child = state.clone();
            model
                .apply(&mut child, a)
                .map_err(|e| format!("enumerated action {a} failed to apply: {e}"))?;
            transitions += 1;
            if let Some(desc) =
                model.check_invariants(&child, Some((&prev_floors, Model::<P>::crashed_by(a))))
            {
                let mut actions = path_to(&arena, idx);
                actions.push(a);
                return Ok(ExploreResult {
                    violation: Some(Violation {
                        prefix: model.cfg.prefix.clone(),
                        actions,
                        desc,
                    }),
                    states,
                    transitions,
                    max_depth_seen: max_depth_seen.max(depth + 1),
                    truncated_by_states: truncated,
                });
            }
            if !visited.insert(fingerprint(&model.canonical(&child))) {
                continue;
            }
            states += 1;
            max_depth_seen = max_depth_seen.max(depth + 1);
            if states >= model.cfg.max_states {
                truncated = true;
                queue.clear();
                break;
            }
            arena.push(NodeRec {
                parent: idx,
                action: a,
                depth: depth as u32 + 1,
            });
            let child_idx = (arena.len() - 1) as u32;
            debug_assert_eq!(arena[child_idx as usize].depth as usize, depth + 1);
            queue.push_back(child_idx);
        }
        if truncated {
            break;
        }
    }

    Ok(ExploreResult {
        violation: None,
        states,
        transitions,
        max_depth_seen,
        truncated_by_states: truncated,
    })
}

/// Replays an explicit action script (prefix + suffix of a trace),
/// checking invariants after every step. Returns the violation hit, if
/// any, and the number of steps applied before it.
pub fn run_script<P: ModelCheckable>(
    model: &Model<'_, P>,
    script: &[Action],
    verbose: bool,
) -> Result<(Option<String>, usize), String> {
    let mut st = model.start();
    if let Some(desc) = model.check_invariants(&st, None) {
        return Ok((Some(desc), 0));
    }
    for (k, &a) in script.iter().enumerate() {
        let prev_floors = model.floors(&st);
        model
            .apply(&mut st, a)
            .map_err(|e| format!("step {k} ({a}) failed: {e}"))?;
        if verbose {
            describe_state(model, &st, k, a);
        }
        if let Some(desc) =
            model.check_invariants(&st, Some((&prev_floors, Model::<P>::crashed_by(a))))
        {
            return Ok((Some(desc), k + 1));
        }
    }
    Ok((None, script.len()))
}

/// Prints the observable system state after a script step (the `--probe`
/// debugging aid used to hand-construct config prefixes).
fn describe_state<P: ModelCheckable>(model: &Model<'_, P>, st: &State<P>, k: usize, a: Action) {
    println!("-- step {k}: {a} (now={:?})", st.now);
    for (i, m) in st.inflight.iter().enumerate() {
        println!("   msg[{i}] {}", m.describe());
    }
    for &(n, t) in &st.timers {
        println!("   timer node={n} token={t}");
    }
    for i in 0..model.cfg.nodes {
        if !st.alive[i] {
            println!("   node {i}: DOWN");
            continue;
        }
        for d in st.nodes[i].model_destinations() {
            let label = st.nodes[i].model_label(d);
            let succs = st.nodes[i].model_successors(d, st.now);
            let floor = st.nodes[i].model_seqno_floor(d);
            println!(
                "   node {i} dest {d}: label={label} floor={floor} succs={:?}",
                succs
                    .iter()
                    .map(|(j, l)| format!("{j}@{l}"))
                    .collect::<Vec<_>>()
            );
        }
    }
}
