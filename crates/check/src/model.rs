//! The closed system the checker explores: N protocol instances on a
//! fixed topology, an in-flight message multiset, pending timers, link
//! state and budgets for every source of nondeterminism.
//!
//! ## Abstractions (and why they are sound)
//!
//! * **Time is quantized** to 1 s [`Action::Tick`]s with a tick budget.
//!   All protocol horizons in the model configuration are whole seconds,
//!   so every lazy-expiry comparison (`now >= expires`, `age >= lifetime`)
//!   changes value only at tick boundaries — exploring just those
//!   boundaries loses no behavior.
//! * **Timers fire nondeterministically** ([`Action::FireTimer`] ignores
//!   the requested delay): an over-approximation of every real schedule,
//!   so any loop reachable under real timing is reachable here.
//! * **Broadcast expands at emission** into one in-flight copy per
//!   neighbor whose link is up; each copy is independently delivered,
//!   dropped or duplicated — the radio's per-receiver loss model, minus
//!   the geometry.
//! * **Unicast transmissions** can additionally fail with MAC feedback
//!   ([`Action::LinkFail`] → `on_link_failure` at the sender), matching
//!   the harness's no-ACK callback.
//! * **Crash–rejoin** wipes a node to a fresh instance (cold reboot) and
//!   clears its timers; its in-flight messages stay in the air.
//!
//! State identity is a canonical byte serialization: protocol state via
//! [`ModelCheckable::model_canonical`] (clock-relative, statistics
//! excluded), plus links, budgets, the sorted message multiset and
//! timers. Two states with equal encodings behave identically under
//! every action sequence, which is what makes BFS dedup sound.

use core::fmt;

use rand::rngs::SmallRng;
use rand::SeedableRng;
use slr_core::invariant::{
    check_destination, check_distance_zero, check_floor_monotone, SuccessorEdge,
};
use slr_netsim::time::{SimDuration, SimTime};
use slr_protocols::api::{ControlPacket, DataPacket, NodeId, ProtoCtx, ProtoEffect, DATA_TTL};
use slr_protocols::model::ModelCheckable;
use slr_protocols::srp::{SrpConfig, SrpMessage};

/// One application traffic budget: `budget` sends from `src` to `dst`.
#[derive(Debug, Clone, Copy)]
pub struct Flow {
    /// Originating node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// How many times [`Action::AppSend`] may fire for this flow.
    pub budget: u8,
}

/// A fully specified closed system + exploration budgets.
#[derive(Debug, Clone)]
pub struct ModelConfig {
    /// Registry name (traces reference configs by name).
    pub name: &'static str,
    /// One-line description for `--list-configs`.
    pub about: &'static str,
    /// Node count (ids `0..nodes`).
    pub nodes: usize,
    /// Undirected edges, each as `(lo, hi)` with `lo < hi`.
    pub edges: Vec<(usize, usize)>,
    /// Application traffic budgets.
    pub flows: Vec<Flow>,
    /// How many 1 s clock ticks the exploration may take.
    pub max_ticks: u32,
    /// Per-node crash budget (`len == nodes`).
    pub crash_budget: Vec<u8>,
    /// Per-edge link up/down transition budget (`len == edges.len()`).
    pub link_budget: Vec<u8>,
    /// Whether in-flight messages may be silently lost.
    pub allow_drop: bool,
    /// How many times each in-flight message may be duplicated.
    pub dup_budget: u8,
    /// BFS depth bound (actions after the prefix).
    pub max_depth: usize,
    /// BFS distinct-state budget.
    pub max_states: usize,
    /// Deterministic scripted prefix applied before exploration starts
    /// (positions the system at an interesting frontier cheaply).
    pub prefix: Vec<Action>,
    /// The SRP tuning the instances run with (see
    /// [`crate::configs::model_srp_config`]).
    pub srp: SrpConfig,
}

impl ModelConfig {
    /// Index of the undirected edge `{a, b}`, if present.
    pub fn edge_index(&self, a: NodeId, b: NodeId) -> Option<usize> {
        let key = (a.min(b), a.max(b));
        self.edges.iter().position(|&e| e == key)
    }

    /// Neighbors of `i` in ascending order.
    pub fn neighbors(&self, i: NodeId) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .edges
            .iter()
            .filter_map(|&(a, b)| {
                if a == i {
                    Some(b)
                } else if b == i {
                    Some(a)
                } else {
                    None
                }
            })
            .collect();
        out.sort_unstable();
        out
    }
}

/// One nondeterministic transition of the closed system.
///
/// Message-valued actions (`Deliver`/`Drop`/`Duplicate`/`LinkFail`)
/// reference the in-flight multiset by index; the multiset is kept sorted
/// by canonical message encoding, so indices are deterministic and traces
/// replay exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Advance the quantized clock by 1 s.
    Tick,
    /// The application hands flow `flow`'s next packet to its source.
    AppSend {
        /// Index into [`ModelConfig::flows`].
        flow: usize,
    },
    /// Deliver in-flight message `msg` to its receiver.
    Deliver {
        /// Index into the sorted in-flight multiset.
        msg: usize,
    },
    /// Lose in-flight message `msg` silently.
    Drop {
        /// Index into the sorted in-flight multiset.
        msg: usize,
    },
    /// Duplicate in-flight message `msg` (MAC retransmission ghost).
    Duplicate {
        /// Index into the sorted in-flight multiset.
        msg: usize,
    },
    /// Fail unicast message `msg` with MAC feedback to its sender.
    LinkFail {
        /// Index into the sorted in-flight multiset.
        msg: usize,
    },
    /// Fire a pending protocol timer (any time: over-approximation).
    FireTimer {
        /// The node whose timer fires.
        node: NodeId,
        /// The timer token, as passed to `SetTimer`.
        token: u64,
    },
    /// Take link `edge` down.
    LinkDown {
        /// Index into [`ModelConfig::edges`].
        edge: usize,
    },
    /// Bring link `edge` back up.
    LinkUp {
        /// Index into [`ModelConfig::edges`].
        edge: usize,
    },
    /// Crash node `node` (state wiped to a fresh cold-boot instance).
    Crash {
        /// The node that crashes.
        node: NodeId,
    },
    /// Rejoin crashed node `node` (fires `on_rejoin`).
    Rejoin {
        /// The node that rejoins.
        node: NodeId,
    },
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Tick => write!(f, "tick"),
            Action::AppSend { flow } => write!(f, "appsend {flow}"),
            Action::Deliver { msg } => write!(f, "deliver {msg}"),
            Action::Drop { msg } => write!(f, "drop {msg}"),
            Action::Duplicate { msg } => write!(f, "dup {msg}"),
            Action::LinkFail { msg } => write!(f, "linkfail {msg}"),
            Action::FireTimer { node, token } => write!(f, "timer {node} {token}"),
            Action::LinkDown { edge } => write!(f, "linkdown {edge}"),
            Action::LinkUp { edge } => write!(f, "linkup {edge}"),
            Action::Crash { node } => write!(f, "crash {node}"),
            Action::Rejoin { node } => write!(f, "rejoin {node}"),
        }
    }
}

impl Action {
    /// Parses the [`fmt::Display`] form back (trace files store these).
    pub fn parse(s: &str) -> Result<Action, String> {
        let mut it = s.split_whitespace();
        let head = it.next().ok_or("empty action")?;
        let mut num = |what: &str| -> Result<u64, String> {
            it.next()
                .ok_or_else(|| format!("action '{s}': missing {what}"))?
                .parse::<u64>()
                .map_err(|e| format!("action '{s}': bad {what}: {e}"))
        };
        let a = match head {
            "tick" => Action::Tick,
            "appsend" => Action::AppSend {
                flow: num("flow")? as usize,
            },
            "deliver" => Action::Deliver {
                msg: num("msg")? as usize,
            },
            "drop" => Action::Drop {
                msg: num("msg")? as usize,
            },
            "dup" => Action::Duplicate {
                msg: num("msg")? as usize,
            },
            "linkfail" => Action::LinkFail {
                msg: num("msg")? as usize,
            },
            "timer" => Action::FireTimer {
                node: num("node")? as NodeId,
                token: num("token")?,
            },
            "linkdown" => Action::LinkDown {
                edge: num("edge")? as usize,
            },
            "linkup" => Action::LinkUp {
                edge: num("edge")? as usize,
            },
            "crash" => Action::Crash {
                node: num("node")? as NodeId,
            },
            "rejoin" => Action::Rejoin {
                node: num("node")? as NodeId,
            },
            _ => return Err(format!("unknown action '{s}'")),
        };
        Ok(a)
    }
}

/// An in-flight transmission (one receiver — broadcast is expanded at
/// emission).
#[derive(Debug, Clone)]
pub struct Msg {
    /// Transmitting node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Whether this was a unicast (MAC feedback possible).
    pub unicast: bool,
    /// Remaining duplication budget for this copy.
    pub dups_left: u8,
    /// The payload.
    pub payload: Payload,
    /// Cached canonical encoding (sort key + state hash input).
    enc: Vec<u8>,
}

/// A message payload.
#[derive(Debug, Clone)]
pub enum Payload {
    /// A routing-control packet.
    Control(ControlPacket),
    /// A data packet.
    Data(DataPacket),
}

impl Msg {
    fn new(from: NodeId, to: NodeId, unicast: bool, dups_left: u8, payload: Payload) -> Msg {
        let mut m = Msg {
            from,
            to,
            unicast,
            dups_left,
            payload,
            enc: Vec::new(),
        };
        m.reencode();
        m
    }

    fn reencode(&mut self) {
        let mut enc = Vec::with_capacity(64);
        enc.extend_from_slice(&(self.from as u64).to_le_bytes());
        enc.extend_from_slice(&(self.to as u64).to_le_bytes());
        enc.push(self.unicast as u8);
        enc.push(self.dups_left);
        match &self.payload {
            Payload::Control(c) => {
                enc.push(1);
                // `SrpMessage` carries labels, flags and node ids but no
                // timestamps, so its Debug form is a stable canonical
                // encoding (checked by `control_debug_has_no_timestamps`
                // below).
                enc.extend_from_slice(format!("{c:?}").as_bytes());
            }
            Payload::Data(p) => {
                enc.push(2);
                // origin_time is masked: it is a latency statistic the
                // protocol never reads, and encoding it would leak the
                // absolute clock into state identity.
                enc.extend_from_slice(&(p.src as u64).to_le_bytes());
                enc.extend_from_slice(&(p.dst as u64).to_le_bytes());
                enc.extend_from_slice(&p.uid.to_le_bytes());
                enc.extend_from_slice(&(p.bytes as u64).to_le_bytes());
                enc.push(p.ttl);
            }
        }
        self.enc = enc;
    }

    /// The canonical encoding (for sorting and hashing).
    pub fn encoding(&self) -> &[u8] {
        &self.enc
    }

    /// Short human-readable form for diagnostics.
    pub fn describe(&self) -> String {
        match &self.payload {
            Payload::Control(c) => format!("{} -> {}: {c:?}", self.from, self.to),
            Payload::Data(p) => format!(
                "{} -> {}: Data(src={}, dst={}, uid={}, ttl={})",
                self.from, self.to, p.src, p.dst, p.uid, p.ttl
            ),
        }
    }
}

/// The full exploration state: protocol instances + network + budgets.
#[derive(Clone)]
pub struct State<P> {
    /// One protocol instance per node.
    pub nodes: Vec<P>,
    /// Whether each node is up.
    pub alive: Vec<bool>,
    /// Remaining crash budget per node.
    pub crashes_left: Vec<u8>,
    /// Whether each edge is up.
    pub links_up: Vec<bool>,
    /// Remaining link-transition budget per edge.
    pub link_toggles_left: Vec<u8>,
    /// Remaining sends per flow.
    pub flows_left: Vec<u8>,
    /// Remaining clock ticks.
    pub ticks_left: u32,
    /// The quantized clock.
    pub now: SimTime,
    /// In-flight messages, sorted by canonical encoding.
    pub inflight: Vec<Msg>,
    /// Pending `(node, token)` timers, sorted.
    pub timers: Vec<(NodeId, u64)>,
}

/// A model = configuration + a factory for fresh protocol instances
/// (used at init and on crash).
pub struct Model<'a, P> {
    /// The system configuration.
    pub cfg: &'a ModelConfig,
    /// Builds the cold-boot instance for a node.
    pub make: &'a dyn Fn(NodeId, &ModelConfig) -> P,
}

/// The protocols under model check never draw randomness on these code
/// paths (SRP is fully deterministic); a fixed-seed throwaway RNG
/// satisfies the `ProtoCtx` contract without adding hidden state. A
/// protocol that *does* consume entropy would need the RNG lifted into
/// [`State`] and its internal state folded into the canonical encoding.
fn throwaway_rng() -> SmallRng {
    SmallRng::seed_from_u64(0x5112_c4ec)
}

impl<P: ModelCheckable> Model<'_, P> {
    /// The cold-boot state: fresh instances, all links up, no traffic.
    pub fn start(&self) -> State<P> {
        let n = self.cfg.nodes;
        let mut st = State {
            nodes: (0..n).map(|i| (self.make)(i, self.cfg)).collect(),
            alive: vec![true; n],
            crashes_left: self.cfg.crash_budget.clone(),
            links_up: vec![true; self.cfg.edges.len()],
            link_toggles_left: self.cfg.link_budget.clone(),
            flows_left: self.cfg.flows.iter().map(|f| f.budget).collect(),
            ticks_left: self.cfg.max_ticks,
            now: SimTime::ZERO,
            inflight: Vec::new(),
            timers: Vec::new(),
        };
        for i in 0..n {
            let mut rng = throwaway_rng();
            let fx = st.nodes[i].on_start(&mut ProtoCtx {
                now: st.now,
                rng: &mut rng,
            });
            self.process_effects(&mut st, i, fx);
        }
        st
    }

    fn push_msg(&self, st: &mut State<P>, m: Msg) {
        let at = st
            .inflight
            .partition_point(|x| x.encoding() <= m.encoding());
        st.inflight.insert(at, m);
    }

    fn process_effects(&self, st: &mut State<P>, i: NodeId, fx: Vec<ProtoEffect>) {
        for e in fx {
            match e {
                ProtoEffect::SendControl { packet, next_hop } => match next_hop {
                    Some(j) => self.push_msg(
                        st,
                        Msg::new(i, j, true, self.cfg.dup_budget, Payload::Control(packet)),
                    ),
                    None => {
                        // Broadcast: one independent copy per neighbor
                        // currently reachable at the radio level.
                        for j in self.cfg.neighbors(i) {
                            let e = self.cfg.edge_index(i, j).expect("neighbor edge");
                            if st.links_up[e] {
                                self.push_msg(
                                    st,
                                    Msg::new(
                                        i,
                                        j,
                                        false,
                                        self.cfg.dup_budget,
                                        Payload::Control(packet.clone()),
                                    ),
                                );
                            }
                        }
                    }
                },
                ProtoEffect::SendData { packet, next_hop } => self.push_msg(
                    st,
                    Msg::new(
                        i,
                        next_hop,
                        true,
                        self.cfg.dup_budget,
                        Payload::Data(packet),
                    ),
                ),
                ProtoEffect::SetTimer { token, .. } => {
                    // Delay intentionally ignored: timers fire at any
                    // later point (see module docs).
                    if !st.timers.contains(&(i, token)) {
                        st.timers.push((i, token));
                        st.timers.sort_unstable();
                    }
                }
                ProtoEffect::DeliverLocal(_) | ProtoEffect::DropData { .. } => {}
            }
        }
    }

    fn deliverable(&self, st: &State<P>, m: &Msg) -> bool {
        if !st.alive[m.to] {
            return false;
        }
        match self.cfg.edge_index(m.from, m.to) {
            Some(e) => st.links_up[e],
            None => false,
        }
    }

    /// Every action applicable in `st`, in a fixed canonical order.
    pub fn enumerate(&self, st: &State<P>) -> Vec<Action> {
        let mut out = Vec::new();
        if st.ticks_left > 0 {
            out.push(Action::Tick);
        }
        for (f, flow) in self.cfg.flows.iter().enumerate() {
            if st.flows_left[f] > 0 && st.alive[flow.src] {
                out.push(Action::AppSend { flow: f });
            }
        }
        for (i, m) in st.inflight.iter().enumerate() {
            if self.deliverable(st, m) {
                out.push(Action::Deliver { msg: i });
            }
        }
        if self.cfg.allow_drop {
            for i in 0..st.inflight.len() {
                out.push(Action::Drop { msg: i });
            }
        }
        for (i, m) in st.inflight.iter().enumerate() {
            if m.dups_left > 0 {
                out.push(Action::Duplicate { msg: i });
            }
        }
        for (i, m) in st.inflight.iter().enumerate() {
            if m.unicast && st.alive[m.from] {
                out.push(Action::LinkFail { msg: i });
            }
        }
        for &(node, token) in &st.timers {
            if st.alive[node] {
                out.push(Action::FireTimer { node, token });
            }
        }
        for e in 0..self.cfg.edges.len() {
            if st.link_toggles_left[e] > 0 {
                if st.links_up[e] {
                    out.push(Action::LinkDown { edge: e });
                } else {
                    out.push(Action::LinkUp { edge: e });
                }
            }
        }
        for i in 0..self.cfg.nodes {
            if st.alive[i] && st.crashes_left[i] > 0 {
                out.push(Action::Crash { node: i });
            }
        }
        for i in 0..self.cfg.nodes {
            if !st.alive[i] {
                out.push(Action::Rejoin { node: i });
            }
        }
        out
    }

    /// Applies one action. Errors (budget exhausted, bad index, …) only
    /// occur for hand-written scripts; actions from [`Self::enumerate`]
    /// always apply.
    pub fn apply(&self, st: &mut State<P>, a: Action) -> Result<(), String> {
        match a {
            Action::Tick => {
                if st.ticks_left == 0 {
                    return Err("tick budget exhausted".into());
                }
                st.ticks_left -= 1;
                st.now += SimDuration::from_secs(1);
            }
            Action::AppSend { flow } => {
                let f = *self
                    .cfg
                    .flows
                    .get(flow)
                    .ok_or_else(|| format!("no flow {flow}"))?;
                if st.flows_left[flow] == 0 {
                    return Err(format!("flow {flow} budget exhausted"));
                }
                if !st.alive[f.src] {
                    return Err(format!("flow {flow} source {} is down", f.src));
                }
                st.flows_left[flow] -= 1;
                // Deterministic uid independent of interleaving order.
                let uid = flow as u64 * 1000 + st.flows_left[flow] as u64;
                let packet = DataPacket {
                    src: f.src,
                    dst: f.dst,
                    uid,
                    origin_time: st.now,
                    bytes: 512,
                    ttl: DATA_TTL,
                    source_route: None,
                };
                let mut rng = throwaway_rng();
                let fx = st.nodes[f.src].on_data_from_app(
                    &mut ProtoCtx {
                        now: st.now,
                        rng: &mut rng,
                    },
                    packet,
                );
                self.process_effects(st, f.src, fx);
            }
            Action::Deliver { msg } => {
                if msg >= st.inflight.len() {
                    return Err(format!("no in-flight message {msg}"));
                }
                if !self.deliverable(st, &st.inflight[msg]) {
                    return Err(format!("message {msg} not deliverable"));
                }
                let m = st.inflight.remove(msg);
                let mut rng = throwaway_rng();
                let mut ctx = ProtoCtx {
                    now: st.now,
                    rng: &mut rng,
                };
                let fx = match m.payload {
                    Payload::Control(c) => st.nodes[m.to].on_control_received(&mut ctx, m.from, c),
                    Payload::Data(p) => st.nodes[m.to].on_data_received(&mut ctx, m.from, p),
                };
                self.process_effects(st, m.to, fx);
            }
            Action::Drop { msg } => {
                if !self.cfg.allow_drop {
                    return Err("drops disabled in this config".into());
                }
                if msg >= st.inflight.len() {
                    return Err(format!("no in-flight message {msg}"));
                }
                st.inflight.remove(msg);
            }
            Action::Duplicate { msg } => {
                if msg >= st.inflight.len() {
                    return Err(format!("no in-flight message {msg}"));
                }
                if st.inflight[msg].dups_left == 0 {
                    return Err(format!("message {msg} duplication budget exhausted"));
                }
                let mut orig = st.inflight.remove(msg);
                orig.dups_left -= 1;
                orig.reencode();
                let mut copy = orig.clone();
                copy.dups_left = 0;
                copy.reencode();
                self.push_msg(st, orig);
                self.push_msg(st, copy);
            }
            Action::LinkFail { msg } => {
                if msg >= st.inflight.len() {
                    return Err(format!("no in-flight message {msg}"));
                }
                if !st.inflight[msg].unicast {
                    return Err(format!("message {msg} is not unicast"));
                }
                if !st.alive[st.inflight[msg].from] {
                    return Err(format!("message {msg} sender is down"));
                }
                let m = st.inflight.remove(msg);
                let packet = match m.payload {
                    Payload::Data(p) => Some(p),
                    Payload::Control(_) => None,
                };
                let mut rng = throwaway_rng();
                let fx = st.nodes[m.from].on_link_failure(
                    &mut ProtoCtx {
                        now: st.now,
                        rng: &mut rng,
                    },
                    m.to,
                    packet,
                );
                self.process_effects(st, m.from, fx);
            }
            Action::FireTimer { node, token } => {
                let at = st
                    .timers
                    .iter()
                    .position(|&t| t == (node, token))
                    .ok_or_else(|| format!("no pending timer ({node}, {token})"))?;
                st.timers.remove(at);
                if st.alive[node] {
                    let mut rng = throwaway_rng();
                    let fx = st.nodes[node].on_timer(
                        &mut ProtoCtx {
                            now: st.now,
                            rng: &mut rng,
                        },
                        token,
                    );
                    self.process_effects(st, node, fx);
                }
            }
            Action::LinkDown { edge } => {
                if edge >= self.cfg.edges.len() {
                    return Err(format!("no edge {edge}"));
                }
                if !st.links_up[edge] {
                    return Err(format!("edge {edge} already down"));
                }
                if st.link_toggles_left[edge] == 0 {
                    return Err(format!("edge {edge} transition budget exhausted"));
                }
                st.links_up[edge] = false;
                st.link_toggles_left[edge] -= 1;
            }
            Action::LinkUp { edge } => {
                if edge >= self.cfg.edges.len() {
                    return Err(format!("no edge {edge}"));
                }
                if st.links_up[edge] {
                    return Err(format!("edge {edge} already up"));
                }
                if st.link_toggles_left[edge] == 0 {
                    return Err(format!("edge {edge} transition budget exhausted"));
                }
                st.links_up[edge] = true;
                st.link_toggles_left[edge] -= 1;
            }
            Action::Crash { node } => {
                if node >= self.cfg.nodes || !st.alive[node] {
                    return Err(format!("node {node} not up"));
                }
                if st.crashes_left[node] == 0 {
                    return Err(format!("node {node} crash budget exhausted"));
                }
                st.crashes_left[node] -= 1;
                st.alive[node] = false;
                // Cold reboot: volatile protocol state and armed timers
                // are gone; transmissions already in the air are not.
                st.nodes[node] = (self.make)(node, self.cfg);
                st.timers.retain(|&(n, _)| n != node);
            }
            Action::Rejoin { node } => {
                if node >= self.cfg.nodes || st.alive[node] {
                    return Err(format!("node {node} not down"));
                }
                st.alive[node] = true;
                let mut rng = throwaway_rng();
                let fx = st.nodes[node].on_rejoin(&mut ProtoCtx {
                    now: st.now,
                    rng: &mut rng,
                });
                self.process_effects(st, node, fx);
            }
        }
        Ok(())
    }

    /// Canonical byte serialization of the whole system state.
    pub fn canonical(&self, st: &State<P>) -> Vec<u8> {
        let mut out = Vec::with_capacity(1024);
        out.extend_from_slice(&(st.ticks_left as u64).to_le_bytes());
        for i in 0..self.cfg.nodes {
            out.push(st.alive[i] as u8);
            out.push(st.crashes_left[i]);
            st.nodes[i].model_canonical(st.now, &mut out);
        }
        for e in 0..self.cfg.edges.len() {
            out.push(st.links_up[e] as u8);
            out.push(st.link_toggles_left[e]);
        }
        out.extend_from_slice(&st.flows_left);
        out.extend_from_slice(&(st.inflight.len() as u64).to_le_bytes());
        for m in &st.inflight {
            out.extend_from_slice(&(m.encoding().len() as u64).to_le_bytes());
            out.extend_from_slice(m.encoding());
        }
        out.extend_from_slice(&(st.timers.len() as u64).to_le_bytes());
        for &(n, t) in &st.timers {
            out.extend_from_slice(&(n as u64).to_le_bytes());
            out.extend_from_slice(&t.to_le_bytes());
        }
        out
    }

    /// Per-node, per-destination seqno floors (for the monotonicity
    /// check across a transition).
    pub fn floors(&self, st: &State<P>) -> Vec<u64> {
        let n = self.cfg.nodes;
        let mut out = vec![0u64; n * n];
        for i in 0..n {
            for t in 0..n {
                out[i * n + t] = st.nodes[i].model_seqno_floor(t);
            }
        }
        out
    }

    /// Checks every state invariant; `prev_floors` is the parent state's
    /// [`Self::floors`] and `crashed` the node (if any) wiped by the
    /// transition, whose floor reset is legitimate.
    pub fn check_invariants(
        &self,
        st: &State<P>,
        prev_floors: Option<(&[u64], Option<NodeId>)>,
    ) -> Option<String> {
        let n = self.cfg.nodes;
        // Theorem 3 + Definition 1 per destination, over live nodes.
        for t in 0..n {
            let mut edges: Vec<SuccessorEdge<u32>> = Vec::new();
            for i in 0..n {
                if i == t || !st.alive[i] {
                    continue;
                }
                let own = st.nodes[i].model_label(t);
                for (j, recorded) in st.nodes[i].model_successors(t, st.now) {
                    edges.push(SuccessorEdge {
                        from: i,
                        to: j,
                        own,
                        recorded,
                    });
                }
            }
            if let Err(v) = check_destination(t, n, &edges) {
                return Some(v.to_string());
            }
        }
        // Audit-layer distance-0 identity on in-flight RREQs.
        for m in &st.inflight {
            if let Payload::Control(ControlPacket::Srp(SrpMessage::Rreq(r))) = &m.payload {
                if let Err(v) = check_distance_zero::<u32>(r.src, m.from, r.d) {
                    return Some(v.to_string());
                }
            }
        }
        // Floor monotonicity across the transition.
        if let Some((prev, crashed)) = prev_floors {
            for i in 0..n {
                if Some(i) == crashed || !st.alive[i] {
                    continue;
                }
                for t in 0..n {
                    if let Err(v) = check_floor_monotone::<u32>(
                        i,
                        t,
                        prev[i * n + t],
                        st.nodes[i].model_seqno_floor(t),
                    ) {
                        return Some(v.to_string());
                    }
                }
            }
        }
        None
    }

    /// The node legitimately wiped by `a` (floor-reset exemption).
    pub fn crashed_by(a: Action) -> Option<NodeId> {
        match a {
            Action::Crash { node } => Some(node),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The canonical message encoding leans on `ControlPacket`'s Debug
    /// form; that is only sound while SRP messages carry no timestamps.
    /// Guard it structurally: every field of every SRP message type is
    /// spelled out here, so adding a `SimTime` field forces this test
    /// (and the encoding decision) to be revisited.
    #[test]
    fn control_debug_has_no_timestamps() {
        use slr_core::Frac32;
        use slr_protocols::srp::{SrpRerr, SrpRrep, SrpRreq};
        let rreq = SrpRreq {
            src: 1,
            rreq_id: 2,
            dst: 3,
            dst_seqno: 4,
            fd: Frac32::one(),
            unknown: false,
            reset: false,
            dest_only: false,
            no_advert: false,
            d: 0,
            ttl: 5,
            src_seqno: 1,
            src_lfd: Frac32::zero(),
            src_ld: 0,
        };
        let rrep = SrpRrep {
            rreq_src: 1,
            rreq_id: 2,
            dst: 3,
            dst_seqno: 4,
            lfd: Frac32::zero(),
            ld: 0,
            no_reverse: false,
        };
        let rerr = SrpRerr {
            unreachable: vec![1],
            cold_reboot: false,
        };
        for s in [
            format!("{:?}", SrpMessage::Rreq(rreq)),
            format!("{:?}", SrpMessage::Rrep(rrep)),
            format!("{:?}", SrpMessage::Rerr(rerr)),
        ] {
            assert!(
                !s.contains("SimTime") && !s.contains("origin_time"),
                "timestamp leaked into control Debug encoding: {s}"
            );
        }
    }

    #[test]
    fn action_strings_round_trip() {
        let actions = [
            Action::Tick,
            Action::AppSend { flow: 2 },
            Action::Deliver { msg: 7 },
            Action::Drop { msg: 0 },
            Action::Duplicate { msg: 3 },
            Action::LinkFail { msg: 1 },
            Action::FireTimer {
                node: 4,
                token: 9_223_372_036_854_775_809,
            },
            Action::LinkDown { edge: 1 },
            Action::LinkUp { edge: 1 },
            Action::Crash { node: 2 },
            Action::Rejoin { node: 2 },
        ];
        for a in actions {
            assert_eq!(Action::parse(&a.to_string()).unwrap(), a);
        }
        assert!(Action::parse("warp 3").is_err());
        assert!(Action::parse("deliver").is_err());
    }
}
