//! The committed model configurations.
//!
//! Each config is a named closed system the CI `checker` job explores.
//! Budgets are tuned so the CI set finishes well inside the 120 s wall
//! budget; the `-deep` variants are nightly-only.
//!
//! Prefixes are deterministic scripts (built with the `--probe` mode of
//! `slr-check`) that position the system at an interesting frontier —
//! e.g. "routes built, node crashed and back" — so the exhaustive budget
//! is spent on the part of the space where the historical bugs lived
//! rather than on route discovery permutations.

use slr_netsim::time::SimDuration;
use slr_protocols::api::{NodeId, RingSchedule};
use slr_protocols::srp::{MultipathPolicy, Srp, SrpConfig};

use crate::model::{Action, Flow, Model, ModelConfig};

/// SRP tuning used by every model config.
///
/// Horizons are compressed to whole seconds of model time so the tick
/// budget can cross them: routes idle out after 2 s, labels are forgotten
/// 3 s later (`delete_period > route_lifetime`, as the paper requires).
/// `min_reply_hops = 0` lets intermediate nodes reply on the small
/// topologies; RERR rate limiting is off so error paths are explored
/// every time; buffering horizons are pushed out of reach so the tick
/// budget never expires buffered packets mid-exploration (that dimension
/// is covered by the harness's integration tests, not the checker).
pub fn model_srp_config() -> SrpConfig {
    SrpConfig {
        delete_period: SimDuration::from_secs(3),
        max_denom: 1_000_000_000,
        lie_k: 10_000,
        min_reply_hops: 0,
        route_lifetime: SimDuration::from_secs(2),
        per_hop_latency: SimDuration::from_secs(1),
        // First-ring TTL (5) already covers every model topology
        // (diameter <= 4), so retries never change the flood shape.
        ring: RingSchedule::default(),
        buffer_capacity: 4,
        buffer_timeout: SimDuration::from_secs(1 << 20),
        rerr_rate_limit: SimDuration::ZERO,
        probe_on_no_reverse: false,
        multipath: MultipathPolicy::SingleMinHop,
        reduce_den_threshold: 1 << 27,
        rreq_cache_lifetime: SimDuration::from_secs(1 << 20),
    }
}

/// Constructs the SRP instance for node `i` of a model config.
pub fn make_srp(i: NodeId, cfg: &ModelConfig) -> Srp {
    Srp::new(i, cfg.srp)
}

/// A [`Model`] over the registered config `name`, if it exists.
pub fn model_for(name: &str) -> Option<ModelConfig> {
    all().into_iter().find(|c| c.name == name)
}

/// Convenience: builds the checker [`Model`] for a config.
pub fn srp_model(cfg: &ModelConfig) -> Model<'_, Srp> {
    Model {
        cfg,
        make: &|i, c| make_srp(i, c),
    }
}

fn parse_script(steps: &[&str]) -> Vec<Action> {
    steps
        .iter()
        .map(|s| Action::parse(s).expect("builtin prefix action"))
        .collect()
}

/// Every registered configuration, CI set first.
pub fn all() -> Vec<ModelConfig> {
    vec![
        line3(),
        ring4(),
        line3_pr2(),
        bowtie5_pr7(),
        ring5_deep(),
        line4_deep(),
    ]
}

/// The configs the fast CI job runs (≤120 s together).
pub fn ci_set() -> Vec<&'static str> {
    vec!["line3", "ring4", "line3-pr2", "bowtie5-pr7"]
}

/// The deeper nightly-only configs.
pub fn nightly_set() -> Vec<&'static str> {
    vec!["ring5-deep", "line4-deep"]
}

/// 3-node line 0–1–2: discovery + crash–rejoin of the middle node, full
/// message nondeterminism. The smallest system where relaying matters.
pub fn line3() -> ModelConfig {
    ModelConfig {
        name: "line3",
        about: "3-node line, crash/rejoin of the relay, drops+dups, from cold start",
        nodes: 3,
        edges: vec![(0, 1), (1, 2)],
        flows: vec![
            Flow {
                src: 0,
                dst: 2,
                budget: 2,
            },
            Flow {
                src: 1,
                dst: 2,
                budget: 1,
            },
        ],
        max_ticks: 4,
        crash_budget: vec![0, 1, 0],
        link_budget: vec![0, 0],
        allow_drop: true,
        dup_budget: 1,
        max_depth: 14,
        max_states: 400_000,
        prefix: Vec::new(),
        srp: model_srp_config(),
    }
}

/// 4-node ring: redundant paths, one link-down/up cycle, no crashes.
/// Exercises Split/mediant label assignment (two route copies meet).
pub fn ring4() -> ModelConfig {
    ModelConfig {
        name: "ring4",
        about: "4-node ring, one link churn cycle, drops, redundant paths",
        nodes: 4,
        edges: vec![(0, 1), (0, 3), (1, 2), (2, 3)],
        flows: vec![Flow {
            src: 0,
            dst: 2,
            budget: 2,
        }],
        max_ticks: 3,
        crash_budget: vec![0, 0, 0, 0],
        link_budget: vec![0, 2, 0, 0],
        allow_drop: true,
        dup_budget: 0,
        max_depth: 14,
        max_states: 400_000,
        prefix: Vec::new(),
        srp: model_srp_config(),
    }
}

/// The PR 2 rediscovery config: 3-node line with a scripted prefix that
/// builds the 0→1→2 route and crash–rejoins the relay; exploration then
/// only needs the rejoined node's re-discovery interleavings. With the
/// `regress-pr2-cold-reboot` fault injected, the stale-successor 2-cycle
/// appears within a few steps; on fixed code the same space is clean.
pub fn line3_pr2() -> ModelConfig {
    ModelConfig {
        name: "line3-pr2",
        about: "3-node line positioned after relay crash-rejoin (PR 2 regression frontier)",
        nodes: 3,
        edges: vec![(0, 1), (1, 2)],
        flows: vec![
            Flow {
                src: 0,
                dst: 2,
                budget: 1,
            },
            Flow {
                src: 1,
                dst: 2,
                budget: 1,
            },
        ],
        max_ticks: 2,
        crash_budget: vec![0, 1, 0],
        link_budget: vec![0, 0],
        allow_drop: true,
        dup_budget: 0,
        max_depth: 12,
        max_states: 400_000,
        // Build 0's route to 2 through 1 (flood out and back), then
        // crash-rejoin the relay. Constructed with `--probe`.
        prefix: parse_script(&[
            "appsend 0", // 0 floods RREQ for 2
            "deliver 0", // RREQ reaches 1; 1 relays (echo + onward copy)
            "deliver 1", // onward copy reaches 2; 2 replies
            "drop 0",    // the echo back to 0 is moot; drop it
            "deliver 0", // RREP 2->1
            "deliver 0", // RREP 1->0; 0 sends the buffered data
            "deliver 0", // data 0->1
            "deliver 0", // data 1->2: route 0->1->2 is live
            "crash 1",
            "rejoin 1",
        ]),
        srp: model_srp_config(),
    }
}

/// The PR 7 rediscovery config: the "bowtie" (0–1, 0–2, 1–3, 2–3, 2–4)
/// where node 0 can hold two successors toward 3, node 2's entry can
/// expire while its label is forgotten, and node 4's later discovery
/// makes 2 adopt 0 — closing the cycle with 0's stale unexpired entry.
/// The prefix (built with `--probe`) walks the long deterministic setup;
/// exploration covers the final discovery's interleavings.
pub fn bowtie5_pr7() -> ModelConfig {
    ModelConfig {
        name: "bowtie5-pr7",
        about: "5-node bowtie positioned at the DELETE_PERIOD expiry frontier (PR 7 regression)",
        nodes: 5,
        edges: vec![(0, 1), (0, 2), (1, 3), (2, 3), (2, 4)],
        flows: vec![
            Flow {
                src: 3,
                dst: 0,
                budget: 1,
            },
            // Keep-alive traffic: each send refreshes 0's route to 3 at
            // try_forward time, so its successor entries survive the
            // whole DELETE_PERIOD window without ever being re-learned.
            Flow {
                src: 0,
                dst: 3,
                budget: 4,
            },
            Flow {
                src: 4,
                dst: 3,
                budget: 1,
            },
        ],
        max_ticks: 5,
        crash_budget: vec![0, 0, 0, 0, 0],
        link_budget: vec![0, 0, 0, 1, 0],
        allow_drop: true,
        dup_budget: 0,
        max_depth: 10,
        max_states: 400_000,
        // Deterministic setup (built with `--probe`): builds 0's two-way
        // split toward 3 (via 1 and via 2), downs link 2–3, then uses
        // keep-alive sends from 0 to walk the clock to t=5 — past node
        // 2's DELETE_PERIOD — while 0's entries stay active. Node 4's
        // first flood (t=2) is dropped everywhere except as the lazy
        // touch that starts 2's forget countdown; its ring-retry timer
        // is left pending for exploration to fire.
        prefix: parse_script(&[
            "appsend 0",                   // 3 floods RREQ for 0
            "drop 1",                      // lose the 3->2 copy: only the 3->1 arm proceeds
            "deliver 0",                   // RREQ reaches 1; 1 relays
            "deliver 0",                   // relay reaches 0; 0 replies (label 1/2 via 1)
            "drop 0",                      // drop the 1->3 echo
            "drop 0",                      // drop the 0->2 onward flood copy
            "timer 3 9223372036854775808", // 3's ring retry: re-flood
            "deliver 1",                   // retry RREQ 3->2; 2 relays (label 1/2 via 3)
            "deliver 0",                   // relay 2->0: 0 splits, succs {1, 2}, label 2/3
            "drop 0",                      // drop the 2->3 echo
            "drop 0",                      // drop the 2->4 flood copy
            "drop 0",                      // drop the retry's 3->1 arm
            "drop 0",                      // drop 0's RREP back toward 3 (route 0->3 is up)
            "linkdown 3",                  // sever 2-3: 2's entry can now only go stale
            "tick",                        // t=1
            "appsend 1",                   // keep-alive 0->3 (via succ 1), refreshes expiry
            "drop 0",                      // the data packet itself is irrelevant; drop it
            "tick",                        // t=2: 2's dest-3 route idles out (lifetime 2)
            "appsend 1",                   // keep-alive
            "drop 0",
            "appsend 2", // 4 floods RREQ for 3 (flood A)
            "deliver 0", // flood A touches 2: lazy invalidate, forget@5
            "drop 0",    // drop 2's relay of flood A toward 0
            "drop 0",    // drop 2's relay echo toward 4
            "tick",      // t=3
            "appsend 1", // keep-alive
            "drop 0",
            "tick",      // t=4
            "appsend 1", // keep-alive: 0's entries now live through t=6
            "drop 0",
            "tick", // t=5: 2's label hits forget_at
        ]),
        srp: model_srp_config(),
    }
}

/// Nightly: 5-node ring with crash and link churn, deeper bound.
pub fn ring5_deep() -> ModelConfig {
    ModelConfig {
        name: "ring5-deep",
        about: "nightly: 5-node ring, crash + link churn, deeper exhaustive bound",
        nodes: 5,
        edges: vec![(0, 1), (0, 4), (1, 2), (2, 3), (3, 4)],
        flows: vec![
            Flow {
                src: 0,
                dst: 3,
                budget: 2,
            },
            Flow {
                src: 2,
                dst: 0,
                budget: 1,
            },
        ],
        max_ticks: 4,
        crash_budget: vec![0, 1, 0, 0, 0],
        link_budget: vec![0, 2, 0, 0, 0],
        allow_drop: true,
        dup_budget: 0,
        max_depth: 16,
        max_states: 12_000_000,
        prefix: Vec::new(),
        srp: model_srp_config(),
    }
}

/// Nightly: 4-node line with duplication and both end flows.
pub fn line4_deep() -> ModelConfig {
    ModelConfig {
        name: "line4-deep",
        about: "nightly: 4-node line, crash of either relay, dups, deeper bound",
        nodes: 4,
        edges: vec![(0, 1), (1, 2), (2, 3)],
        flows: vec![
            Flow {
                src: 0,
                dst: 3,
                budget: 2,
            },
            Flow {
                src: 3,
                dst: 0,
                budget: 1,
            },
        ],
        max_ticks: 5,
        crash_budget: vec![0, 1, 1, 0],
        link_budget: vec![0, 0, 0],
        allow_drop: true,
        dup_budget: 1,
        max_depth: 16,
        max_states: 12_000_000,
        prefix: Vec::new(),
        srp: model_srp_config(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_are_well_formed() {
        for c in all() {
            assert_eq!(c.crash_budget.len(), c.nodes, "{}", c.name);
            assert_eq!(c.link_budget.len(), c.edges.len(), "{}", c.name);
            for &(a, b) in &c.edges {
                assert!(a < b && b < c.nodes, "{}: bad edge ({a},{b})", c.name);
            }
            for f in &c.flows {
                assert!(
                    f.src < c.nodes && f.dst < c.nodes && f.src != f.dst,
                    "{}",
                    c.name
                );
            }
            assert!(model_for(c.name).is_some());
        }
    }
}
