//! A minimal JSON reader/writer for counterexample traces.
//!
//! The workspace has no serde (offline container); trace files are small
//! and their schema is flat, so a ~100-line recursive-descent parser is
//! the whole dependency footprint. Numbers are parsed as `f64` (traces
//! only store small integers), strings support the standard escapes.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (traces only use small non-negative integers).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Escapes a string for embedding in JSON output (quotes included).
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses a complete JSON document (trailing whitespace allowed).
pub fn parse(src: &str) -> Result<Json, String> {
    let mut p = Parser {
        b: src.as_bytes(),
        i: 0,
    };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(format!("trailing garbage at byte {}", p.i));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.i < self.b.len() && self.b[self.i] == c {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.i))
        }
    }

    fn lit(&mut self, s: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(s.as_bytes()) {
            self.i += s.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.b.get(self.i) {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            _ => Err(format!("unexpected byte at {}", self.i)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&c) = self.b.get(self.i) else {
                return Err("unterminated string".into());
            };
            self.i += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&e) = self.b.get(self.i) else {
                        return Err("unterminated escape".into());
                    };
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .b
                                .get(self.i..self.i + 4)
                                .ok_or("truncated \\u escape")?;
                            let s = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let n = u32::from_str_radix(s, 16).map_err(|e| e.to_string())?;
                            self.i += 4;
                            out.push(char::from_u32(n).ok_or("bad \\u escape")?);
                        }
                        _ => return Err(format!("bad escape at byte {}", self.i)),
                    }
                }
                c => {
                    // Collect the full UTF-8 sequence starting at c.
                    let start = self.i - 1;
                    let len = utf8_len(c);
                    self.i = start + len;
                    let s = self
                        .b
                        .get(start..self.i)
                        .and_then(|b| std::str::from_utf8(b).ok())
                        .ok_or("bad utf-8 in string")?;
                    out.push_str(s);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        while self.i < self.b.len()
            && matches!(
                self.b[self.i],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.i += 1;
        }
        let s = std::str::from_utf8(&self.b[start..self.i]).map_err(|e| e.to_string())?;
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number '{s}': {e}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut out = Vec::new();
        self.ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.ws();
            out.push(self.value()?);
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut out = Vec::new();
        self.ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.ws();
            let k = self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            let v = self.value()?;
            out.push((k, v));
            self.ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_trace_shaped_document() {
        let src = r#"{"config":"line3","prefix":[],"actions":["tick","deliver 2"],"violation":"cycle [0, 1]","n":3}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.get("config").unwrap().as_str().unwrap(), "line3");
        assert_eq!(v.get("actions").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(v.get("n"), Some(&Json::Num(3.0)));
    }

    #[test]
    fn escapes_and_rejects_garbage() {
        assert_eq!(quote("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        let v = parse("{\"k\":\"a\\\"b\\u0041\"}").unwrap();
        assert_eq!(v.get("k").unwrap().as_str().unwrap(), "a\"bA");
        assert!(parse("{\"k\":}").is_err());
        assert!(parse("[1,2,]").is_err());
        assert!(parse("[1] x").is_err());
    }
}
