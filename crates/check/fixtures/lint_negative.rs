//! Negative fixture for `lint-determinism --self-test`: this file is
//! NOT compiled (it lives outside any src/ tree); it exists so CI can
//! prove the lint still fires on every denied construct. Each line
//! below must keep tripping exactly one token.

use std::collections::HashMap;
use std::collections::HashSet;

fn bad() {
    let _order_randomized: HashMap<u32, u32> = Default::default();
    let _also_randomized: HashSet<u32> = Default::default();
    let _wall_clock = std::time::SystemTime::now();
    let _monotonic_host_clock = std::time::Instant::now();
    let _os_seeded = rand::thread_rng();
}
