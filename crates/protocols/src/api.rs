//! The common routing-protocol interface.
//!
//! Every protocol (SRP and the four baselines) is a passive state machine
//! behind [`RoutingProtocol`]: the harness feeds it packets, timers and
//! link-failure notifications; it answers with [`ProtoEffect`]s. This keeps
//! protocols unit-testable without a radio stack and guarantees identical
//! treatment in the experiment harness.

use rand::rngs::SmallRng;

use slr_netsim::time::{SimDuration, SimTime};

use crate::aodv::AodvMessage;
use crate::dsr::DsrMessage;
use crate::ldr::LdrMessage;
use crate::olsr::OlsrMessage;
use crate::srp::SrpMessage;

/// Node identifier (dense indices, as in the simulator).
pub type NodeId = usize;

/// Default TTL for data packets (kills transient forwarding loops in
/// protocols that are not loop-free at every instant, e.g. OLSR).
pub const DATA_TTL: u8 = 64;

/// A data packet traveling the network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataPacket {
    /// Originating node.
    pub src: NodeId,
    /// Final destination.
    pub dst: NodeId,
    /// Unique id per origination (for delivery accounting).
    pub uid: u64,
    /// Application-layer origination time (end-to-end latency basis).
    pub origin_time: SimTime,
    /// Payload bytes.
    pub bytes: u32,
    /// Remaining hop budget.
    pub ttl: u8,
    /// DSR source route: the full node path `src … dst` plus the index of
    /// the next hop to visit. `None` for table-driven protocols.
    pub source_route: Option<SourceRoute>,
}

/// A DSR-style source route carried in a data packet header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceRoute {
    /// The full path, starting at the originator and ending at the
    /// destination.
    pub hops: Vec<NodeId>,
    /// Index into `hops` of the next node to visit.
    pub next: usize,
}

impl SourceRoute {
    /// Creates a route positioned after the originator.
    ///
    /// # Panics
    ///
    /// Panics if the path has fewer than two hops.
    pub fn new(hops: Vec<NodeId>) -> Self {
        assert!(hops.len() >= 2, "source route needs at least src and dst");
        SourceRoute { hops, next: 1 }
    }

    /// The next hop to forward to, if any remain.
    pub fn next_hop(&self) -> Option<NodeId> {
        self.hops.get(self.next).copied()
    }

    /// Extra header bytes this route adds on the wire (4 bytes per hop).
    pub fn wire_bytes(&self) -> u32 {
        4 * self.hops.len() as u32
    }
}

/// A routing control packet (any protocol).
#[derive(Debug, Clone, PartialEq)]
pub enum ControlPacket {
    /// Split-label Routing Protocol (the paper's contribution).
    Srp(SrpMessage),
    /// Ad hoc On-demand Distance Vector.
    Aodv(AodvMessage),
    /// Dynamic Source Routing.
    Dsr(DsrMessage),
    /// Labeled Distance Routing.
    Ldr(LdrMessage),
    /// Optimized Link State Routing.
    Olsr(OlsrMessage),
}

impl ControlPacket {
    /// Approximate on-the-wire size of the packet in bytes.
    pub fn wire_bytes(&self) -> u32 {
        match self {
            ControlPacket::Srp(m) => m.wire_bytes(),
            ControlPacket::Aodv(m) => m.wire_bytes(),
            ControlPacket::Dsr(m) => m.wire_bytes(),
            ControlPacket::Ldr(m) => m.wire_bytes(),
            ControlPacket::Olsr(m) => m.wire_bytes(),
        }
    }

    /// Short packet-type name for statistics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            ControlPacket::Srp(m) => m.kind_name(),
            ControlPacket::Aodv(m) => m.kind_name(),
            ControlPacket::Dsr(m) => m.kind_name(),
            ControlPacket::Ldr(m) => m.kind_name(),
            ControlPacket::Olsr(m) => m.kind_name(),
        }
    }
}

/// Why a data packet was abandoned by the routing layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataDropReason {
    /// No route and discovery failed (or is not attempted).
    NoRoute,
    /// The packet's TTL reached zero.
    TtlExpired,
    /// The route-pending buffer overflowed.
    BufferOverflow,
    /// The packet waited too long for a route.
    BufferTimeout,
    /// Salvaging after a link failure was impossible.
    SalvageFailed,
    /// The node was administratively down (crashed) when the application
    /// offered the packet.
    NodeDown,
}

/// Requests a routing protocol makes of the harness.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtoEffect {
    /// Transmit a control packet; `next_hop = None` broadcasts to all
    /// neighbors.
    SendControl {
        /// The packet.
        packet: ControlPacket,
        /// Unicast next hop, or `None` for local broadcast.
        next_hop: Option<NodeId>,
    },
    /// Forward a data packet to a neighbor.
    SendData {
        /// The packet (TTL already decremented by the protocol).
        packet: DataPacket,
        /// Unicast next hop.
        next_hop: NodeId,
    },
    /// The packet reached its destination here.
    DeliverLocal(DataPacket),
    /// The protocol abandoned the packet.
    DropData {
        /// The packet.
        packet: DataPacket,
        /// The reason, for loss accounting.
        reason: DataDropReason,
    },
    /// Ask for `on_timer(token)` after `delay`. Tokens are
    /// protocol-defined; protocols must tolerate stale fires.
    SetTimer {
        /// Opaque token echoed back on expiry.
        token: u64,
        /// Delay from now.
        delay: SimDuration,
    },
}

/// Per-call context handed to the protocol.
pub struct ProtoCtx<'a> {
    /// Current simulation time.
    pub now: SimTime,
    /// The protocol's deterministic RNG stream.
    pub rng: &'a mut SmallRng,
}

/// Statistics the harness samples at the end of a run (Fig. 7 metric and
/// SRP-specific diagnostics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProtoStats {
    /// How many times this node incremented its *own* sequence number
    /// (Fig. 7: "average node sequence number"; SRP is exactly 0).
    pub own_seqno_increments: u64,
    /// Largest feasible-distance denominator observed (SRP; §V reports the
    /// maximum stayed under 840 million).
    pub max_fd_denominator: u64,
    /// Route discoveries initiated.
    pub discoveries: u64,
    /// Path resets requested (SRP T/D bits; LDR reset requests).
    pub resets_requested: u64,
    /// Deliberate misbehaviours performed by this node (nonzero only on
    /// adversarial nodes wrapped in [`crate::adversary::Adversary`]).
    pub adversarial_actions: u64,
    /// Control packets rejected by this node's validation layer (nonzero
    /// only on honest nodes wrapped in [`crate::audit::Audit`]).
    pub audit_rejections: u64,
}

/// A routing protocol instance living on one node.
///
/// `Send` is a supertrait: the parallel event engine ships disjoint
/// per-node protocol instances to worker threads inside a dispatch
/// window. Protocols are plain-data state machines (tables, buffers,
/// deterministic RNG streams), so the bound is free; it only rules out
/// thread-bound internals like `Rc` appearing in a future protocol.
pub trait RoutingProtocol: Send {
    /// Protocol name for reports ("SRP", "AODV", …).
    fn name(&self) -> &'static str;

    /// Called once at simulation start (schedule periodic timers here).
    fn on_start(&mut self, ctx: &mut ProtoCtx<'_>) -> Vec<ProtoEffect>;

    /// Called when this node restarts cold after a crash (all protocol
    /// state already discarded). Defaults to [`RoutingProtocol::on_start`];
    /// protocols whose safety depends on state not vanishing silently
    /// (e.g. SRP's ordering invariants) override this to announce the
    /// reboot so neighbors purge stale routes through them — the
    /// equivalent of AODV's post-reboot rule (RFC 3561 §6.13).
    fn on_rejoin(&mut self, ctx: &mut ProtoCtx<'_>) -> Vec<ProtoEffect> {
        self.on_start(ctx)
    }

    /// The local application wants `packet` delivered to `packet.dst`.
    fn on_data_from_app(&mut self, ctx: &mut ProtoCtx<'_>, packet: DataPacket) -> Vec<ProtoEffect>;

    /// A data packet arrived from neighbor `from`.
    fn on_data_received(
        &mut self,
        ctx: &mut ProtoCtx<'_>,
        from: NodeId,
        packet: DataPacket,
    ) -> Vec<ProtoEffect>;

    /// A control packet arrived from neighbor `from`.
    fn on_control_received(
        &mut self,
        ctx: &mut ProtoCtx<'_>,
        from: NodeId,
        packet: ControlPacket,
    ) -> Vec<ProtoEffect>;

    /// A timer requested via [`ProtoEffect::SetTimer`] fired.
    fn on_timer(&mut self, ctx: &mut ProtoCtx<'_>, token: u64) -> Vec<ProtoEffect>;

    /// The MAC exhausted retries toward `next_hop`. If the lost frame
    /// carried a data packet it is returned for salvage; lost control
    /// packets report `None`.
    fn on_link_failure(
        &mut self,
        ctx: &mut ProtoCtx<'_>,
        next_hop: NodeId,
        packet: Option<DataPacket>,
    ) -> Vec<ProtoEffect>;

    /// End-of-run statistics.
    fn stats(&self) -> ProtoStats;

    /// Running count of deliberate misbehaviours this node has performed.
    /// Zero for every honest protocol; the adversary wrapper overrides
    /// it, and the harness polls the sum to trigger oracle checks after
    /// every adversarial action.
    fn adversarial_actions(&self) -> u64 {
        0
    }

    /// Dynamic downcast hook, used by the harness for protocol-specific
    /// oracles (e.g. SRP's global loop-freedom check).
    fn as_any(&self) -> &dyn std::any::Any;

    /// Live heap bytes of this node's routing state, for the per-node
    /// memory report at scale. Protocols without accounting report 0 so
    /// the report understates rather than guesses.
    fn mem_bytes(&self) -> usize {
        0
    }
}

/// A bounded buffer of data packets awaiting routes, with per-packet
/// timestamps (protocols drop stale packets per their policies).
#[derive(Debug, Clone, Default)]
pub struct PacketBuffer {
    entries: Vec<(DataPacket, SimTime)>,
    capacity: usize,
}

impl PacketBuffer {
    /// Creates a buffer holding at most `capacity` packets.
    pub fn new(capacity: usize) -> Self {
        PacketBuffer {
            entries: Vec::new(),
            capacity,
        }
    }

    /// Number of buffered packets.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(packet, enqueued_at)` pairs in arrival order
    /// (introspection for oracles and the model checker's canonical
    /// state serialization).
    pub fn iter(&self) -> impl Iterator<Item = (&DataPacket, SimTime)> {
        self.entries.iter().map(|(p, t)| (p, *t))
    }

    /// Buffers a packet; returns it back if the buffer is full.
    pub fn push(&mut self, packet: DataPacket, now: SimTime) -> Option<DataPacket> {
        if self.entries.len() >= self.capacity {
            return Some(packet);
        }
        self.entries.push((packet, now));
        None
    }

    /// Removes and returns every packet destined to `dst`.
    pub fn take_for(&mut self, dst: NodeId) -> Vec<DataPacket> {
        let mut taken = Vec::new();
        self.entries.retain(|(p, _)| {
            if p.dst == dst {
                taken.push(p.clone());
                false
            } else {
                true
            }
        });
        taken
    }

    /// Removes and returns packets buffered longer than `timeout`.
    pub fn take_expired(&mut self, now: SimTime, timeout: SimDuration) -> Vec<DataPacket> {
        let mut expired = Vec::new();
        self.entries.retain(|(p, t)| {
            if now.saturating_since(*t) > timeout {
                expired.push(p.clone());
                false
            } else {
                true
            }
        });
        expired
    }

    /// Whether any packet waits for `dst`.
    pub fn has_for(&self, dst: NodeId) -> bool {
        self.entries.iter().any(|(p, _)| p.dst == dst)
    }

    /// Live heap bytes held by the buffer (capacity, since the allocator
    /// holds capacity whether or not entries are live).
    pub fn mem_bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<(DataPacket, SimTime)>()
    }
}

/// The expanding-ring TTL schedule shared by the on-demand protocols.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingSchedule {
    ttls: [u8; 3],
}

impl Default for RingSchedule {
    fn default() -> Self {
        RingSchedule { ttls: [5, 16, 64] }
    }
}

impl RingSchedule {
    /// TTL for the `attempt`-th try (0-based); `None` when attempts are
    /// exhausted.
    pub fn ttl(&self, attempt: u32) -> Option<u8> {
        self.ttls.get(attempt as usize).copied()
    }

    /// Retry timeout for a given TTL: `2 × ttl × per-hop latency estimate`
    /// (Procedure 1 of the paper).
    pub fn timeout(&self, ttl: u8, per_hop_latency: SimDuration) -> SimDuration {
        per_hop_latency.saturating_mul(2 * ttl as u64)
    }

    /// Number of attempts allowed.
    pub fn attempts(&self) -> u32 {
        self.ttls.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(src: NodeId, dst: NodeId, uid: u64) -> DataPacket {
        DataPacket {
            src,
            dst,
            uid,
            origin_time: SimTime::ZERO,
            bytes: 512,
            ttl: DATA_TTL,
            source_route: None,
        }
    }

    #[test]
    fn source_route_navigation() {
        let r = SourceRoute::new(vec![1, 5, 9, 3]);
        assert_eq!(r.next_hop(), Some(5));
        let mut r2 = r.clone();
        r2.next += 1;
        assert_eq!(r2.next_hop(), Some(9));
        r2.next = 4;
        assert_eq!(r2.next_hop(), None);
        assert_eq!(r.wire_bytes(), 16);
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn source_route_too_short() {
        let _ = SourceRoute::new(vec![1]);
    }

    #[test]
    fn buffer_caps_and_takes() {
        let mut b = PacketBuffer::new(2);
        assert!(b.push(pkt(0, 5, 1), SimTime::ZERO).is_none());
        assert!(b.push(pkt(0, 6, 2), SimTime::ZERO).is_none());
        let overflow = b.push(pkt(0, 5, 3), SimTime::ZERO);
        assert_eq!(overflow.unwrap().uid, 3);
        assert!(b.has_for(5));
        let got = b.take_for(5);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].uid, 1);
        assert!(!b.has_for(5));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn buffer_expiry() {
        let mut b = PacketBuffer::new(10);
        b.push(pkt(0, 5, 1), SimTime::from_secs(0));
        b.push(pkt(0, 6, 2), SimTime::from_secs(25));
        let gone = b.take_expired(SimTime::from_secs(31), SimDuration::from_secs(30));
        assert_eq!(gone.len(), 1);
        assert_eq!(gone[0].uid, 1);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn ring_schedule() {
        let r = RingSchedule::default();
        assert_eq!(r.ttl(0), Some(5));
        assert_eq!(r.ttl(2), Some(64));
        assert_eq!(r.ttl(3), None);
        assert_eq!(r.attempts(), 3);
        assert_eq!(
            r.timeout(5, SimDuration::from_millis(40)),
            SimDuration::from_millis(400)
        );
    }
}
