//! OLSR (Optimized Link State Routing) — proactive baseline.
//!
//! Implements the draft-ietf-manet-olsr-06 core the paper compares against:
//! periodic HELLOs for link sensing and two-hop neighborhood discovery,
//! multipoint relay (MPR) selection by greedy set cover, TC messages
//! flooded through MPRs advertising MPR-selector sets, and shortest-path
//! route computation over the learned topology. As a proactive protocol it
//! pays a constant control overhead (Fig. 5) to win on latency (Fig. 6);
//! it is *not* loop-free at every instant — transient loops after topology
//! changes are killed by the data TTL.

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use rand::Rng;

use slr_netsim::time::{SimDuration, SimTime};

use crate::api::{
    ControlPacket, DataDropReason, DataPacket, NodeId, ProtoCtx, ProtoEffect, ProtoStats,
    RoutingProtocol,
};

/// An OLSR HELLO message (1-hop broadcast, never forwarded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OlsrHello {
    /// Sender.
    pub origin: NodeId,
    /// Neighbors heard symmetrically.
    pub sym_neighbors: Vec<NodeId>,
    /// Neighbors heard only one-way so far.
    pub heard_neighbors: Vec<NodeId>,
    /// The sender's chosen multipoint relays.
    pub mprs: Vec<NodeId>,
}

/// An OLSR TC (topology control) message, flooded via MPRs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OlsrTc {
    /// Message originator.
    pub origin: NodeId,
    /// Originator's advertised-neighbor sequence number.
    pub seq: u64,
    /// The originator's MPR selectors (nodes that chose it as MPR).
    pub selectors: Vec<NodeId>,
    /// Remaining flood TTL.
    pub ttl: u8,
}

/// All OLSR control packets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OlsrMessage {
    /// Periodic neighbor sensing.
    Hello(OlsrHello),
    /// Topology control flood.
    Tc(OlsrTc),
}

impl OlsrMessage {
    /// Approximate wire size in bytes.
    pub fn wire_bytes(&self) -> u32 {
        match self {
            OlsrMessage::Hello(h) => {
                16 + 4 * (h.sym_neighbors.len() + h.heard_neighbors.len() + h.mprs.len()) as u32
            }
            OlsrMessage::Tc(t) => 16 + 4 * t.selectors.len() as u32,
        }
    }

    /// Packet-type name for statistics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            OlsrMessage::Hello(_) => "olsr-hello",
            OlsrMessage::Tc(_) => "olsr-tc",
        }
    }
}

/// OLSR tunables (draft defaults).
#[derive(Debug, Clone, Copy)]
pub struct OlsrConfig {
    /// HELLO interval (2 s).
    pub hello_interval: SimDuration,
    /// TC interval (5 s).
    pub tc_interval: SimDuration,
    /// Jitter applied to both (± up to this much).
    pub jitter: SimDuration,
    /// Neighbor hold time (3 × hello).
    pub neighbor_hold: SimDuration,
    /// Topology hold time (3 × tc).
    pub topology_hold: SimDuration,
    /// TC flood TTL.
    pub tc_ttl: u8,
}

impl Default for OlsrConfig {
    fn default() -> Self {
        OlsrConfig {
            hello_interval: SimDuration::from_secs(2),
            tc_interval: SimDuration::from_secs(5),
            jitter: SimDuration::from_millis(500),
            neighbor_hold: SimDuration::from_secs(6),
            topology_hold: SimDuration::from_secs(15),
            tc_ttl: 64,
        }
    }
}

const TOKEN_HELLO: u64 = 1;
const TOKEN_TC: u64 = 2;

#[derive(Debug, Clone, Copy)]
struct LinkInfo {
    sym: bool,
    expires: SimTime,
}

/// The OLSR instance on one node.
pub struct Olsr {
    node: NodeId,
    cfg: OlsrConfig,
    links: BTreeMap<NodeId, LinkInfo>,
    /// 1-hop neighbor → (its sym neighbor set, expiry).
    two_hop: BTreeMap<NodeId, (BTreeSet<NodeId>, SimTime)>,
    mprs: BTreeSet<NodeId>,
    selectors: BTreeSet<NodeId>,
    /// TC topology: advertised origin → (selector set, expiry, seq).
    topology: BTreeMap<NodeId, (BTreeSet<NodeId>, SimTime, u64)>,
    tc_seq: u64,
    routes: HashMap<NodeId, NodeId>,
    /// Per-packet re-route attempts after link failures.
    reroutes: HashMap<u64, u8>,
    started: bool,
}

/// Maximum times one packet may be re-routed after link failures before
/// OLSR gives up on it.
const REROUTE_LIMIT: u8 = 3;

impl Olsr {
    /// Creates the OLSR instance for `node`.
    pub fn new(node: NodeId, cfg: OlsrConfig) -> Self {
        Olsr {
            node,
            cfg,
            links: BTreeMap::new(),
            two_hop: BTreeMap::new(),
            mprs: BTreeSet::new(),
            selectors: BTreeSet::new(),
            topology: BTreeMap::new(),
            tc_seq: 0,
            routes: HashMap::new(),
            reroutes: HashMap::new(),
            started: false,
        }
    }

    fn expire(&mut self, now: SimTime) {
        self.links.retain(|_, l| l.expires > now);
        self.two_hop
            .retain(|n, (_, e)| *e > now && self.links.contains_key(n));
        self.topology.retain(|_, (_, e, _)| *e > now);
    }

    fn sym_neighbors(&self) -> Vec<NodeId> {
        self.links
            .iter()
            .filter(|(_, l)| l.sym)
            .map(|(n, _)| *n)
            .collect()
    }

    /// Greedy MPR selection: cover every strict 2-hop neighbor.
    fn select_mprs(&mut self) {
        let one_hop: BTreeSet<NodeId> = self.sym_neighbors().into_iter().collect();
        let mut uncovered: BTreeSet<NodeId> = BTreeSet::new();
        for (n, (set, _)) in &self.two_hop {
            if !one_hop.contains(n) {
                continue;
            }
            for t in set {
                if *t != self.node && !one_hop.contains(t) {
                    uncovered.insert(*t);
                }
            }
        }
        let mut mprs = BTreeSet::new();
        while !uncovered.is_empty() {
            // Pick the neighbor covering the most uncovered 2-hop nodes.
            let best = one_hop
                .iter()
                .filter(|n| !mprs.contains(*n))
                .max_by_key(|n| {
                    self.two_hop
                        .get(*n)
                        .map(|(s, _)| s.intersection(&uncovered).count())
                        .unwrap_or(0)
                })
                .copied();
            let Some(best) = best else { break };
            let covered: Vec<NodeId> = self
                .two_hop
                .get(&best)
                .map(|(s, _)| s.intersection(&uncovered).copied().collect())
                .unwrap_or_default();
            if covered.is_empty() {
                break;
            }
            for c in covered {
                uncovered.remove(&c);
            }
            mprs.insert(best);
        }
        self.mprs = mprs;
    }

    /// Recompute the routing table with a BFS over 1-hop links plus
    /// TC-advertised links.
    fn recompute_routes(&mut self) {
        let mut adj: HashMap<NodeId, BTreeSet<NodeId>> = HashMap::new();
        let mut add = |a: NodeId, b: NodeId| {
            adj.entry(a).or_default().insert(b);
            adj.entry(b).or_default().insert(a);
        };
        for n in self.sym_neighbors() {
            add(self.node, n);
        }
        // Two-hop neighborhood from HELLOs (draft §10: route records for
        // two-hop neighbors use the advertising neighbor as next hop).
        for (n, (set, _)) in &self.two_hop {
            if self.links.get(n).map(|l| l.sym).unwrap_or(false) {
                for s in set {
                    add(*n, *s);
                }
            }
        }
        for (origin, (sels, _, _)) in &self.topology {
            for s in sels {
                add(*origin, *s);
            }
        }
        let mut routes = HashMap::new();
        let mut prev: HashMap<NodeId, NodeId> = HashMap::new();
        let mut q = VecDeque::new();
        prev.insert(self.node, self.node);
        q.push_back(self.node);
        while let Some(u) = q.pop_front() {
            if let Some(ns) = adj.get(&u) {
                for &v in ns {
                    if let std::collections::hash_map::Entry::Vacant(e) = prev.entry(v) {
                        e.insert(u);
                        q.push_back(v);
                    }
                }
            }
        }
        for (&dest, _) in prev.iter() {
            if dest == self.node {
                continue;
            }
            // Walk back to find the first hop.
            let mut cur = dest;
            while prev[&cur] != self.node {
                cur = prev[&cur];
            }
            routes.insert(dest, cur);
        }
        self.routes = routes;
    }

    fn hello(&mut self, now: SimTime) -> OlsrHello {
        self.expire(now);
        self.select_mprs();
        OlsrHello {
            origin: self.node,
            sym_neighbors: self.sym_neighbors(),
            heard_neighbors: self
                .links
                .iter()
                .filter(|(_, l)| !l.sym)
                .map(|(n, _)| *n)
                .collect(),
            mprs: self.mprs.iter().copied().collect(),
        }
    }

    fn handle_hello(&mut self, now: SimTime, h: OlsrHello) {
        let sym = h.sym_neighbors.contains(&self.node) || h.heard_neighbors.contains(&self.node);
        self.links.insert(
            h.origin,
            LinkInfo {
                sym,
                expires: now + self.cfg.neighbor_hold,
            },
        );
        self.two_hop.insert(
            h.origin,
            (
                h.sym_neighbors.iter().copied().collect(),
                now + self.cfg.neighbor_hold,
            ),
        );
        if h.mprs.contains(&self.node) {
            self.selectors.insert(h.origin);
        } else {
            self.selectors.remove(&h.origin);
        }
        self.expire(now);
        self.recompute_routes();
    }

    fn handle_tc(&mut self, now: SimTime, prev: NodeId, tc: OlsrTc) -> Vec<ProtoEffect> {
        let mut fx = Vec::new();
        if tc.origin == self.node {
            return fx;
        }
        let fresh = self
            .topology
            .get(&tc.origin)
            .map(|(_, _, seq)| tc.seq > *seq)
            .unwrap_or(true);
        if !fresh {
            return fx;
        }
        self.topology.insert(
            tc.origin,
            (
                tc.selectors.iter().copied().collect(),
                now + self.cfg.topology_hold,
                tc.seq,
            ),
        );
        self.expire(now);
        self.recompute_routes();
        // Forward iff the previous hop selected us as MPR.
        if tc.ttl > 1 && self.selectors.contains(&prev) {
            fx.push(ProtoEffect::SendControl {
                packet: ControlPacket::Olsr(OlsrMessage::Tc(OlsrTc {
                    ttl: tc.ttl - 1,
                    ..tc
                })),
                next_hop: None,
            });
        }
        fx
    }

    fn jittered(&self, base: SimDuration, rng: &mut impl Rng) -> SimDuration {
        let j = self.cfg.jitter.as_nanos();
        if j == 0 {
            return base;
        }
        let delta = rng.gen_range(0..=2 * j) as i128 - j as i128;
        let ns = (base.as_nanos() as i128 + delta).max(1) as u64;
        SimDuration::from_nanos(ns)
    }
}

impl RoutingProtocol for Olsr {
    fn name(&self) -> &'static str {
        "OLSR"
    }

    fn on_start(&mut self, ctx: &mut ProtoCtx<'_>) -> Vec<ProtoEffect> {
        self.started = true;
        // Desynchronise nodes with a random initial phase.
        let h = self.jittered(SimDuration::from_millis(100), ctx.rng);
        let t = self.jittered(SimDuration::from_millis(700), ctx.rng);
        vec![
            ProtoEffect::SetTimer {
                token: TOKEN_HELLO,
                delay: h,
            },
            ProtoEffect::SetTimer {
                token: TOKEN_TC,
                delay: t,
            },
        ]
    }

    fn on_data_from_app(
        &mut self,
        ctx: &mut ProtoCtx<'_>,
        mut packet: DataPacket,
    ) -> Vec<ProtoEffect> {
        let _ = ctx;
        if packet.dst == self.node {
            return vec![ProtoEffect::DeliverLocal(packet)];
        }
        match self.routes.get(&packet.dst) {
            Some(&next_hop) if packet.ttl > 0 => {
                packet.ttl -= 1;
                vec![ProtoEffect::SendData { packet, next_hop }]
            }
            Some(_) => vec![ProtoEffect::DropData {
                packet,
                reason: DataDropReason::TtlExpired,
            }],
            None => vec![ProtoEffect::DropData {
                packet,
                reason: DataDropReason::NoRoute,
            }],
        }
    }

    fn on_data_received(
        &mut self,
        ctx: &mut ProtoCtx<'_>,
        _from: NodeId,
        packet: DataPacket,
    ) -> Vec<ProtoEffect> {
        // Same forwarding logic as locally originated traffic.
        self.on_data_from_app(ctx, packet)
    }

    fn on_control_received(
        &mut self,
        ctx: &mut ProtoCtx<'_>,
        from: NodeId,
        packet: ControlPacket,
    ) -> Vec<ProtoEffect> {
        let ControlPacket::Olsr(msg) = packet else {
            return Vec::new();
        };
        match msg {
            OlsrMessage::Hello(h) => {
                self.handle_hello(ctx.now, h);
                Vec::new()
            }
            OlsrMessage::Tc(tc) => self.handle_tc(ctx.now, from, tc),
        }
    }

    fn on_timer(&mut self, ctx: &mut ProtoCtx<'_>, token: u64) -> Vec<ProtoEffect> {
        let now = ctx.now;
        let mut fx = Vec::new();
        match token {
            TOKEN_HELLO => {
                let hello = self.hello(now);
                fx.push(ProtoEffect::SendControl {
                    packet: ControlPacket::Olsr(OlsrMessage::Hello(hello)),
                    next_hop: None,
                });
                let d = self.jittered(self.cfg.hello_interval, ctx.rng);
                fx.push(ProtoEffect::SetTimer {
                    token: TOKEN_HELLO,
                    delay: d,
                });
            }
            TOKEN_TC => {
                self.expire(now);
                if !self.selectors.is_empty() {
                    self.tc_seq += 1;
                    fx.push(ProtoEffect::SendControl {
                        packet: ControlPacket::Olsr(OlsrMessage::Tc(OlsrTc {
                            origin: self.node,
                            seq: self.tc_seq,
                            selectors: self.selectors.iter().copied().collect(),
                            ttl: self.cfg.tc_ttl,
                        })),
                        next_hop: None,
                    });
                }
                let d = self.jittered(self.cfg.tc_interval, ctx.rng);
                fx.push(ProtoEffect::SetTimer {
                    token: TOKEN_TC,
                    delay: d,
                });
            }
            _ => {}
        }
        fx
    }

    fn on_link_failure(
        &mut self,
        ctx: &mut ProtoCtx<'_>,
        next_hop: NodeId,
        packet: Option<DataPacket>,
    ) -> Vec<ProtoEffect> {
        let mut fx = Vec::new();
        // Drop the link immediately rather than waiting for hold expiry.
        self.links.remove(&next_hop);
        self.two_hop.remove(&next_hop);
        self.expire(ctx.now);
        self.recompute_routes();
        if let Some(p) = packet {
            // Bounded re-routing over the updated table: a packet that
            // keeps hitting dead links is abandoned rather than allowed to
            // wander on stale topology.
            let tries = self.reroutes.entry(p.uid).or_insert(0);
            if *tries < REROUTE_LIMIT {
                *tries += 1;
                fx.extend(self.on_data_from_app(ctx, p));
            } else {
                fx.push(ProtoEffect::DropData {
                    packet: p,
                    reason: DataDropReason::SalvageFailed,
                });
            }
        }
        fx
    }

    fn stats(&self) -> ProtoStats {
        ProtoStats::default()
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn ctx_at(rng: &mut SmallRng, secs: u64) -> ProtoCtx<'_> {
        ProtoCtx {
            now: SimTime::from_secs(secs),
            rng,
        }
    }

    fn hello(origin: NodeId, sym: &[NodeId], heard: &[NodeId], mprs: &[NodeId]) -> ControlPacket {
        ControlPacket::Olsr(OlsrMessage::Hello(OlsrHello {
            origin,
            sym_neighbors: sym.to_vec(),
            heard_neighbors: heard.to_vec(),
            mprs: mprs.to_vec(),
        }))
    }

    #[test]
    fn link_sensing_promotes_to_sym() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut o = Olsr::new(0, OlsrConfig::default());
        // First hello from 1 does not mention us: asymmetric.
        let _ = o.on_control_received(&mut ctx_at(&mut rng, 1), 1, hello(1, &[], &[], &[]));
        assert!(o.sym_neighbors().is_empty());
        // Second hello lists us as heard: now symmetric.
        let _ = o.on_control_received(&mut ctx_at(&mut rng, 2), 1, hello(1, &[], &[0], &[]));
        assert_eq!(o.sym_neighbors(), vec![1]);
    }

    #[test]
    fn routes_via_two_hop_neighborhood() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut o = Olsr::new(0, OlsrConfig::default());
        // 1 is a sym neighbor whose sym neighbors include 5.
        let _ = o.on_control_received(&mut ctx_at(&mut rng, 1), 1, hello(1, &[0, 5], &[], &[]));
        assert_eq!(o.routes.get(&5), Some(&1));
        assert_eq!(o.routes.get(&1), Some(&1));
    }

    #[test]
    fn tc_extends_topology() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut o = Olsr::new(0, OlsrConfig::default());
        let _ = o.on_control_received(&mut ctx_at(&mut rng, 1), 1, hello(1, &[0, 5], &[], &[]));
        // TC from node 7 advertising selector 5: link 7–5 known.
        let tc = ControlPacket::Olsr(OlsrMessage::Tc(OlsrTc {
            origin: 7,
            seq: 1,
            selectors: vec![5],
            ttl: 10,
        }));
        let _ = o.on_control_received(&mut ctx_at(&mut rng, 1), 1, tc);
        assert_eq!(o.routes.get(&7), Some(&1), "0→1→5→7");
    }

    #[test]
    fn tc_forwarded_only_by_selected_mprs() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut o = Olsr::new(0, OlsrConfig::default());
        // Node 1 chose us as MPR.
        let _ = o.on_control_received(&mut ctx_at(&mut rng, 1), 1, hello(1, &[0], &[], &[0]));
        let tc = OlsrTc {
            origin: 9,
            seq: 1,
            selectors: vec![4],
            ttl: 10,
        };
        let fx = o.on_control_received(
            &mut ctx_at(&mut rng, 1),
            1,
            ControlPacket::Olsr(OlsrMessage::Tc(tc.clone())),
        );
        assert!(fx
            .iter()
            .any(|e| matches!(e, ProtoEffect::SendControl { .. })));
        // From a node that did not select us: no forwarding (and the TC is
        // stale anyway the second time).
        let mut o2 = Olsr::new(0, OlsrConfig::default());
        let _ = o2.on_control_received(&mut ctx_at(&mut rng, 1), 2, hello(2, &[0], &[], &[]));
        let fx = o2.on_control_received(
            &mut ctx_at(&mut rng, 1),
            2,
            ControlPacket::Olsr(OlsrMessage::Tc(tc)),
        );
        assert!(fx.is_empty());
    }

    #[test]
    fn mpr_selection_covers_two_hop() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut o = Olsr::new(0, OlsrConfig::default());
        // Neighbors 1 and 2; 1 covers {5, 6}, 2 covers {6}.
        let _ = o.on_control_received(&mut ctx_at(&mut rng, 1), 1, hello(1, &[0, 5, 6], &[], &[]));
        let _ = o.on_control_received(&mut ctx_at(&mut rng, 1), 2, hello(2, &[0, 6], &[], &[]));
        o.select_mprs();
        assert!(o.mprs.contains(&1), "1 covers everything");
        assert!(!o.mprs.contains(&2), "2 adds no coverage");
    }

    #[test]
    fn hello_timer_reschedules_and_emits() {
        let mut rng = SmallRng::seed_from_u64(6);
        let mut o = Olsr::new(0, OlsrConfig::default());
        let fx = o.on_start(&mut ctx_at(&mut rng, 0));
        assert_eq!(fx.len(), 2);
        let fx = o.on_timer(&mut ctx_at(&mut rng, 1), TOKEN_HELLO);
        assert!(fx.iter().any(|e| matches!(
            e,
            ProtoEffect::SendControl {
                packet: ControlPacket::Olsr(OlsrMessage::Hello(_)),
                ..
            }
        )));
        assert!(fx.iter().any(|e| matches!(
            e,
            ProtoEffect::SetTimer {
                token: TOKEN_HELLO,
                ..
            }
        )));
    }

    #[test]
    fn no_route_drops_data() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut o = Olsr::new(0, OlsrConfig::default());
        let p = DataPacket {
            src: 0,
            dst: 9,
            uid: 1,
            origin_time: SimTime::ZERO,
            bytes: 512,
            ttl: 64,
            source_route: None,
        };
        let fx = o.on_data_from_app(&mut ctx_at(&mut rng, 1), p);
        assert!(fx.iter().any(|e| matches!(
            e,
            ProtoEffect::DropData {
                reason: DataDropReason::NoRoute,
                ..
            }
        )));
    }

    #[test]
    fn link_failure_reroutes() {
        let mut rng = SmallRng::seed_from_u64(8);
        let mut o = Olsr::new(0, OlsrConfig::default());
        let _ = o.on_control_received(&mut ctx_at(&mut rng, 1), 1, hello(1, &[0, 5], &[], &[]));
        let _ = o.on_control_received(&mut ctx_at(&mut rng, 1), 2, hello(2, &[0, 5], &[], &[]));
        // Route to 5 exists via 1 or 2; kill whichever is in use.
        let first = *o.routes.get(&5).unwrap();
        let p = DataPacket {
            src: 0,
            dst: 5,
            uid: 1,
            origin_time: SimTime::ZERO,
            bytes: 512,
            ttl: 64,
            source_route: None,
        };
        let fx = o.on_link_failure(&mut ctx_at(&mut rng, 2), first, Some(p));
        let other = if first == 1 { 2 } else { 1 };
        assert!(
            fx.iter()
                .any(|e| matches!(e, ProtoEffect::SendData { next_hop, .. } if *next_hop == other)),
            "{fx:?}"
        );
    }
}
