//! AODV (Ad hoc On-demand Distance Vector) — baseline protocol.
//!
//! A faithful-to-draft simplification of draft-ietf-manet-aodv-10, the
//! version the paper compares against: per-destination sequence numbers and
//! hop counts, RREQ flooding with expanding ring, RREP along the reverse
//! path, RERR on link failures, and local repair. AODV's only loop-freedom
//! mechanism is the sequence number — a node that loses a route increments
//! the stored destination sequence number, and an originator increments its
//! *own* sequence number before every discovery, which is why Fig. 7 shows
//! AODV's average node sequence number growing with mobility.

use std::collections::HashMap;

use slr_netsim::time::{SimDuration, SimTime};

use crate::api::{
    ControlPacket, DataDropReason, DataPacket, NodeId, PacketBuffer, ProtoCtx, ProtoEffect,
    ProtoStats, RingSchedule, RoutingProtocol,
};

/// AODV route request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AodvRreq {
    /// Originator.
    pub orig: NodeId,
    /// Originator's sequence number.
    pub orig_seqno: u64,
    /// Flood identifier.
    pub rreq_id: u64,
    /// Sought destination.
    pub dst: NodeId,
    /// Last known destination sequence number.
    pub dst_seqno: u64,
    /// U flag: no sequence number known.
    pub unknown: bool,
    /// Hops traversed so far.
    pub hop_count: u32,
    /// Remaining flood TTL.
    pub ttl: u8,
}

/// AODV route reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AodvRrep {
    /// The node the reply travels to.
    pub orig: NodeId,
    /// The destination the route leads to.
    pub dst: NodeId,
    /// Destination sequence number.
    pub dst_seqno: u64,
    /// Hops from the replier to the destination.
    pub hop_count: u32,
}

/// AODV route error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AodvRerr {
    /// Unreachable destinations with their invalidated sequence numbers.
    pub unreachable: Vec<(NodeId, u64)>,
}

/// All AODV control packets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AodvMessage {
    /// Route request.
    Rreq(AodvRreq),
    /// Route reply.
    Rrep(AodvRrep),
    /// Route error.
    Rerr(AodvRerr),
}

impl AodvMessage {
    /// Approximate wire size in bytes.
    pub fn wire_bytes(&self) -> u32 {
        match self {
            AodvMessage::Rreq(_) => 24,
            AodvMessage::Rrep(_) => 20,
            AodvMessage::Rerr(r) => 4 + 8 * r.unreachable.len() as u32,
        }
    }

    /// Packet-type name for statistics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            AodvMessage::Rreq(_) => "aodv-rreq",
            AodvMessage::Rrep(_) => "aodv-rrep",
            AodvMessage::Rerr(_) => "aodv-rerr",
        }
    }
}

/// AODV tunables.
#[derive(Debug, Clone, Copy)]
pub struct AodvConfig {
    /// Active-route timeout (refresh on use).
    pub route_lifetime: SimDuration,
    /// Per-hop latency estimate for ring timeouts.
    pub per_hop_latency: SimDuration,
    /// Expanding-ring schedule.
    pub ring: RingSchedule,
    /// Route-pending buffer capacity.
    pub buffer_capacity: usize,
    /// Maximum buffering time.
    pub buffer_timeout: SimDuration,
    /// Minimum spacing between RERRs for the same destination.
    pub rerr_rate_limit: SimDuration,
}

impl Default for AodvConfig {
    fn default() -> Self {
        AodvConfig {
            route_lifetime: SimDuration::from_secs(10),
            per_hop_latency: SimDuration::from_millis(40),
            ring: RingSchedule::default(),
            buffer_capacity: 64,
            buffer_timeout: SimDuration::from_secs(30),
            rerr_rate_limit: SimDuration::from_secs(1),
        }
    }
}

#[derive(Debug, Clone)]
struct Route {
    next_hop: NodeId,
    hops: u32,
    seqno: u64,
    valid_seqno: bool,
    expires: SimTime,
    valid: bool,
}

#[derive(Debug, Clone, Copy)]
struct Discovery {
    attempt: u32,
}

const DISCOVERY_TOKEN_BIT: u64 = 1 << 62;

fn discovery_token(dst: NodeId, attempt: u32) -> u64 {
    DISCOVERY_TOKEN_BIT | ((attempt as u64) << 32) | dst as u64
}

fn decode_token(token: u64) -> Option<(NodeId, u32)> {
    if token & DISCOVERY_TOKEN_BIT == 0 {
        return None;
    }
    Some((
        (token & 0xFFFF_FFFF) as NodeId,
        ((token >> 32) & 0x3FFF_FFFF) as u32,
    ))
}

/// The AODV instance on one node.
pub struct Aodv {
    node: NodeId,
    cfg: AodvConfig,
    own_seqno: u64,
    seqno_increments: u64,
    next_rreq_id: u64,
    routes: HashMap<NodeId, Route>,
    rreq_seen: HashMap<(NodeId, u64), SimTime>,
    discoveries: HashMap<NodeId, Discovery>,
    buffer: PacketBuffer,
    last_rerr: HashMap<NodeId, SimTime>,
    discoveries_started: u64,
}

impl Aodv {
    /// Creates the AODV instance for `node`.
    pub fn new(node: NodeId, cfg: AodvConfig) -> Self {
        Aodv {
            node,
            cfg,
            own_seqno: 0,
            seqno_increments: 0,
            next_rreq_id: 0,
            routes: HashMap::new(),
            rreq_seen: HashMap::new(),
            discoveries: HashMap::new(),
            buffer: PacketBuffer::new(cfg.buffer_capacity),
            last_rerr: HashMap::new(),
            discoveries_started: 0,
        }
    }

    fn route_active(&self, t: NodeId, now: SimTime) -> bool {
        self.routes
            .get(&t)
            .map(|r| r.valid && now < r.expires)
            .unwrap_or(false)
    }

    /// Install or update a route if the new information is fresher/better.
    fn update_route(
        &mut self,
        t: NodeId,
        next_hop: NodeId,
        hops: u32,
        seqno: u64,
        valid_seqno: bool,
        now: SimTime,
    ) -> bool {
        let lifetime = self.cfg.route_lifetime;
        match self.routes.get_mut(&t) {
            Some(r) => {
                let better = !r.valid
                    || !r.valid_seqno
                    || seqno > r.seqno
                    || (seqno == r.seqno && hops < r.hops);
                if better && valid_seqno || (!r.valid && !valid_seqno) {
                    r.next_hop = next_hop;
                    r.hops = hops;
                    if valid_seqno {
                        r.seqno = seqno;
                        r.valid_seqno = true;
                    }
                    r.expires = now + lifetime;
                    r.valid = true;
                    true
                } else {
                    // Refresh lifetime of an equivalent route.
                    if r.valid && r.next_hop == next_hop {
                        r.expires = now + lifetime;
                    }
                    false
                }
            }
            None => {
                self.routes.insert(
                    t,
                    Route {
                        next_hop,
                        hops,
                        seqno,
                        valid_seqno,
                        expires: now + lifetime,
                        valid: true,
                    },
                );
                true
            }
        }
    }

    fn try_forward(&mut self, mut packet: DataPacket, now: SimTime) -> Option<Vec<ProtoEffect>> {
        if !self.route_active(packet.dst, now) {
            return None;
        }
        if packet.ttl == 0 {
            return Some(vec![ProtoEffect::DropData {
                packet,
                reason: DataDropReason::TtlExpired,
            }]);
        }
        let r = self.routes.get_mut(&packet.dst).expect("active");
        r.expires = now + self.cfg.route_lifetime;
        let next_hop = r.next_hop;
        packet.ttl -= 1;
        Some(vec![ProtoEffect::SendData { packet, next_hop }])
    }

    fn start_discovery(&mut self, dst: NodeId, now: SimTime, fx: &mut Vec<ProtoEffect>) {
        if self.discoveries.contains_key(&dst) {
            return;
        }
        self.discoveries_started += 1;
        self.send_rreq(dst, 0, now, fx);
    }

    fn send_rreq(&mut self, dst: NodeId, attempt: u32, now: SimTime, fx: &mut Vec<ProtoEffect>) {
        let Some(ttl) = self.cfg.ring.ttl(attempt) else {
            self.discoveries.remove(&dst);
            for packet in self.buffer.take_for(dst) {
                fx.push(ProtoEffect::DropData {
                    packet,
                    reason: DataDropReason::NoRoute,
                });
            }
            return;
        };
        // RFC 3561 §6.1: increment own sequence number before originating
        // a route discovery. This is the Fig. 7 growth driver.
        self.own_seqno += 1;
        self.seqno_increments += 1;
        self.next_rreq_id += 1;
        self.discoveries.insert(dst, Discovery { attempt });
        let (dst_seqno, unknown) = match self.routes.get(&dst) {
            Some(r) if r.valid_seqno => (r.seqno, false),
            _ => (0, true),
        };
        self.rreq_seen.insert((self.node, self.next_rreq_id), now);
        fx.push(ProtoEffect::SendControl {
            packet: ControlPacket::Aodv(AodvMessage::Rreq(AodvRreq {
                orig: self.node,
                orig_seqno: self.own_seqno,
                rreq_id: self.next_rreq_id,
                dst,
                dst_seqno,
                unknown,
                hop_count: 0,
                ttl,
            })),
            next_hop: None,
        });
        fx.push(ProtoEffect::SetTimer {
            token: discovery_token(dst, attempt),
            delay: self.cfg.ring.timeout(ttl, self.cfg.per_hop_latency),
        });
    }

    fn flush_buffer(&mut self, dst: NodeId, now: SimTime, fx: &mut Vec<ProtoEffect>) {
        for packet in self.buffer.take_for(dst) {
            match self.try_forward(packet, now) {
                Some(out) => fx.extend(out),
                None => break,
            }
        }
        self.discoveries.remove(&dst);
    }

    fn send_rerr(&mut self, dests: Vec<(NodeId, u64)>, now: SimTime, fx: &mut Vec<ProtoEffect>) {
        let fresh: Vec<(NodeId, u64)> = dests
            .into_iter()
            .filter(|(d, _)| {
                self.last_rerr
                    .get(d)
                    .map(|t| now.saturating_since(*t) >= self.cfg.rerr_rate_limit)
                    .unwrap_or(true)
            })
            .collect();
        if fresh.is_empty() {
            return;
        }
        for (d, _) in &fresh {
            self.last_rerr.insert(*d, now);
        }
        fx.push(ProtoEffect::SendControl {
            packet: ControlPacket::Aodv(AodvMessage::Rerr(AodvRerr { unreachable: fresh })),
            next_hop: None,
        });
    }

    fn handle_rreq(
        &mut self,
        ctx: &mut ProtoCtx<'_>,
        prev: NodeId,
        rreq: AodvRreq,
    ) -> Vec<ProtoEffect> {
        let mut fx = Vec::new();
        let now = ctx.now;
        if rreq.orig == self.node {
            return fx;
        }
        let key = (rreq.orig, rreq.rreq_id);
        if self.rreq_seen.contains_key(&key) {
            return fx;
        }
        self.rreq_seen.insert(key, now);

        // Reverse route to the originator.
        self.update_route(
            rreq.orig,
            prev,
            rreq.hop_count + 1,
            rreq.orig_seqno,
            true,
            now,
        );

        if rreq.dst == self.node {
            // Destination reply: freshen own seqno to at least the request.
            if !rreq.unknown && rreq.dst_seqno >= self.own_seqno {
                self.own_seqno = rreq.dst_seqno + 1;
                self.seqno_increments += 1;
            }
            fx.push(ProtoEffect::SendControl {
                packet: ControlPacket::Aodv(AodvMessage::Rrep(AodvRrep {
                    orig: rreq.orig,
                    dst: self.node,
                    dst_seqno: self.own_seqno,
                    hop_count: 0,
                })),
                next_hop: Some(prev),
            });
            return fx;
        }

        // Intermediate reply with a fresh-enough route.
        if self.route_active(rreq.dst, now) {
            let r = self.routes.get(&rreq.dst).expect("active");
            if r.valid_seqno && (rreq.unknown || r.seqno >= rreq.dst_seqno) {
                let (seqno, hops) = (r.seqno, r.hops);
                fx.push(ProtoEffect::SendControl {
                    packet: ControlPacket::Aodv(AodvMessage::Rrep(AodvRrep {
                        orig: rreq.orig,
                        dst: rreq.dst,
                        dst_seqno: seqno,
                        hop_count: hops,
                    })),
                    next_hop: Some(prev),
                });
                return fx;
            }
        }

        // Relay.
        if rreq.ttl <= 1 {
            return fx;
        }
        let dst_seqno = match self.routes.get(&rreq.dst) {
            Some(r) if r.valid_seqno => r.seqno.max(rreq.dst_seqno),
            _ => rreq.dst_seqno,
        };
        fx.push(ProtoEffect::SendControl {
            packet: ControlPacket::Aodv(AodvMessage::Rreq(AodvRreq {
                hop_count: rreq.hop_count + 1,
                ttl: rreq.ttl - 1,
                dst_seqno,
                unknown: rreq.unknown && dst_seqno == 0,
                ..rreq
            })),
            next_hop: None,
        });
        fx
    }

    fn handle_rrep(
        &mut self,
        ctx: &mut ProtoCtx<'_>,
        prev: NodeId,
        rrep: AodvRrep,
    ) -> Vec<ProtoEffect> {
        let mut fx = Vec::new();
        let now = ctx.now;
        // Forward route to the destination.
        self.update_route(
            rrep.dst,
            prev,
            rrep.hop_count + 1,
            rrep.dst_seqno,
            true,
            now,
        );

        if rrep.orig == self.node {
            self.flush_buffer(rrep.dst, now, &mut fx);
            return fx;
        }
        // Relay toward the originator along the reverse route.
        if self.route_active(rrep.orig, now) {
            let next = self.routes.get(&rrep.orig).expect("active").next_hop;
            fx.push(ProtoEffect::SendControl {
                packet: ControlPacket::Aodv(AodvMessage::Rrep(AodvRrep {
                    hop_count: rrep.hop_count + 1,
                    ..rrep
                })),
                next_hop: Some(next),
            });
        }
        fx
    }

    fn handle_rerr(&mut self, now: SimTime, prev: NodeId, rerr: AodvRerr) -> Vec<ProtoEffect> {
        let mut fx = Vec::new();
        let mut lost = Vec::new();
        for (t, seqno) in rerr.unreachable {
            if let Some(r) = self.routes.get_mut(&t) {
                if r.valid && r.next_hop == prev {
                    r.valid = false;
                    r.seqno = r.seqno.max(seqno);
                    lost.push((t, r.seqno));
                }
            }
        }
        if !lost.is_empty() {
            self.send_rerr(lost, now, &mut fx);
        }
        fx
    }
}

impl RoutingProtocol for Aodv {
    fn name(&self) -> &'static str {
        "AODV"
    }

    fn on_start(&mut self, _ctx: &mut ProtoCtx<'_>) -> Vec<ProtoEffect> {
        Vec::new()
    }

    fn on_data_from_app(&mut self, ctx: &mut ProtoCtx<'_>, packet: DataPacket) -> Vec<ProtoEffect> {
        let now = ctx.now;
        if packet.dst == self.node {
            return vec![ProtoEffect::DeliverLocal(packet)];
        }
        if let Some(fx) = self.try_forward(packet.clone(), now) {
            return fx;
        }
        let mut fx = Vec::new();
        let dst = packet.dst;
        if let Some(overflow) = self.buffer.push(packet, now) {
            fx.push(ProtoEffect::DropData {
                packet: overflow,
                reason: DataDropReason::BufferOverflow,
            });
        }
        self.start_discovery(dst, now, &mut fx);
        fx
    }

    fn on_data_received(
        &mut self,
        ctx: &mut ProtoCtx<'_>,
        from: NodeId,
        packet: DataPacket,
    ) -> Vec<ProtoEffect> {
        let now = ctx.now;
        if packet.dst == self.node {
            return vec![ProtoEffect::DeliverLocal(packet)];
        }
        if let Some(fx) = self.try_forward(packet.clone(), now) {
            return fx;
        }
        // No route: RERR to the previous hop, then attempt local repair.
        let mut fx = Vec::new();
        let seqno = self
            .routes
            .get(&packet.dst)
            .map(|r| r.seqno + 1)
            .unwrap_or(1);
        fx.push(ProtoEffect::SendControl {
            packet: ControlPacket::Aodv(AodvMessage::Rerr(AodvRerr {
                unreachable: vec![(packet.dst, seqno)],
            })),
            next_hop: Some(from),
        });
        let dst = packet.dst;
        if let Some(overflow) = self.buffer.push(packet, now) {
            fx.push(ProtoEffect::DropData {
                packet: overflow,
                reason: DataDropReason::BufferOverflow,
            });
        }
        self.start_discovery(dst, now, &mut fx);
        fx
    }

    fn on_control_received(
        &mut self,
        ctx: &mut ProtoCtx<'_>,
        from: NodeId,
        packet: ControlPacket,
    ) -> Vec<ProtoEffect> {
        let ControlPacket::Aodv(msg) = packet else {
            return Vec::new();
        };
        match msg {
            AodvMessage::Rreq(r) => self.handle_rreq(ctx, from, r),
            AodvMessage::Rrep(r) => self.handle_rrep(ctx, from, r),
            AodvMessage::Rerr(r) => self.handle_rerr(ctx.now, from, r),
        }
    }

    fn on_timer(&mut self, ctx: &mut ProtoCtx<'_>, token: u64) -> Vec<ProtoEffect> {
        let mut fx = Vec::new();
        let now = ctx.now;
        for packet in self.buffer.take_expired(now, self.cfg.buffer_timeout) {
            fx.push(ProtoEffect::DropData {
                packet,
                reason: DataDropReason::BufferTimeout,
            });
        }
        let Some((dst, attempt)) = decode_token(token) else {
            return fx;
        };
        let Some(d) = self.discoveries.get(&dst).copied() else {
            return fx;
        };
        if d.attempt != attempt {
            return fx;
        }
        if self.route_active(dst, now) {
            self.discoveries.remove(&dst);
            return fx;
        }
        self.discoveries.remove(&dst);
        self.discoveries_started += 1;
        self.send_rreq(dst, attempt + 1, now, &mut fx);
        fx
    }

    fn on_link_failure(
        &mut self,
        ctx: &mut ProtoCtx<'_>,
        next_hop: NodeId,
        packet: Option<DataPacket>,
    ) -> Vec<ProtoEffect> {
        let mut fx = Vec::new();
        let now = ctx.now;
        let mut lost = Vec::new();
        for (t, r) in self.routes.iter_mut() {
            if r.valid && r.next_hop == next_hop {
                r.valid = false;
                r.seqno += 1; // invalidation bumps the stored seqno
                lost.push((*t, r.seqno));
            }
        }
        if !lost.is_empty() {
            self.send_rerr(lost, now, &mut fx);
        }
        // Local repair: hold the packet and rediscover from here.
        if let Some(p) = packet {
            let dst = p.dst;
            if let Some(overflow) = self.buffer.push(p, now) {
                fx.push(ProtoEffect::DropData {
                    packet: overflow,
                    reason: DataDropReason::BufferOverflow,
                });
            }
            self.start_discovery(dst, now, &mut fx);
        }
        fx
    }

    fn stats(&self) -> ProtoStats {
        ProtoStats {
            own_seqno_increments: self.seqno_increments,
            max_fd_denominator: 0,
            discoveries: self.discoveries_started,
            resets_requested: 0,
            adversarial_actions: 0,
            audit_rejections: 0,
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn ctx_at(rng: &mut SmallRng, secs: u64) -> ProtoCtx<'_> {
        ProtoCtx {
            now: SimTime::from_secs(secs),
            rng,
        }
    }

    fn data(src: NodeId, dst: NodeId, uid: u64) -> DataPacket {
        DataPacket {
            src,
            dst,
            uid,
            origin_time: SimTime::ZERO,
            bytes: 512,
            ttl: 64,
            source_route: None,
        }
    }

    fn rreq_of(fx: &[ProtoEffect]) -> Option<AodvRreq> {
        fx.iter().find_map(|e| match e {
            ProtoEffect::SendControl {
                packet: ControlPacket::Aodv(AodvMessage::Rreq(r)),
                ..
            } => Some(r.clone()),
            _ => None,
        })
    }

    fn rrep_of(fx: &[ProtoEffect]) -> Option<(AodvRrep, Option<NodeId>)> {
        fx.iter().find_map(|e| match e {
            ProtoEffect::SendControl {
                packet: ControlPacket::Aodv(AodvMessage::Rrep(r)),
                next_hop,
            } => Some((r.clone(), *next_hop)),
            _ => None,
        })
    }

    #[test]
    fn three_node_discovery() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut a = Aodv::new(0, AodvConfig::default());
        let mut b = Aodv::new(1, AodvConfig::default());
        let mut c = Aodv::new(2, AodvConfig::default());

        let fx = a.on_data_from_app(&mut ctx_at(&mut rng, 1), data(0, 2, 1));
        let rreq = rreq_of(&fx).expect("rreq");
        assert_eq!(rreq.orig_seqno, 1, "own seqno incremented before RREQ");

        let fx = b.on_control_received(
            &mut ctx_at(&mut rng, 1),
            0,
            ControlPacket::Aodv(AodvMessage::Rreq(rreq)),
        );
        let relayed = rreq_of(&fx).expect("relay");
        assert_eq!(relayed.hop_count, 1);
        assert!(
            b.route_active(0, SimTime::from_secs(1)),
            "reverse route to orig"
        );

        let fx = c.on_control_received(
            &mut ctx_at(&mut rng, 1),
            1,
            ControlPacket::Aodv(AodvMessage::Rreq(relayed)),
        );
        let (rrep, nh) = rrep_of(&fx).expect("destination replies");
        assert_eq!(nh, Some(1));
        assert_eq!(rrep.hop_count, 0);

        let fx = b.on_control_received(
            &mut ctx_at(&mut rng, 1),
            2,
            ControlPacket::Aodv(AodvMessage::Rrep(rrep)),
        );
        let (rrep2, nh2) = rrep_of(&fx).expect("relayed reply");
        assert_eq!(nh2, Some(0));
        assert_eq!(rrep2.hop_count, 1);

        let fx = a.on_control_received(
            &mut ctx_at(&mut rng, 1),
            1,
            ControlPacket::Aodv(AodvMessage::Rrep(rrep2)),
        );
        assert!(fx
            .iter()
            .any(|e| matches!(e, ProtoEffect::SendData { next_hop: 1, .. })));
        assert!(a.route_active(2, SimTime::from_secs(1)));
    }

    #[test]
    fn seqno_grows_with_each_discovery() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut a = Aodv::new(0, AodvConfig::default());
        let _ = a.on_data_from_app(&mut ctx_at(&mut rng, 1), data(0, 5, 1));
        // Ring retries each bump the sequence number again.
        let _ = a.on_timer(&mut ctx_at(&mut rng, 2), discovery_token(5, 0));
        let _ = a.on_timer(&mut ctx_at(&mut rng, 4), discovery_token(5, 1));
        assert_eq!(a.stats().own_seqno_increments, 3);
    }

    #[test]
    fn intermediate_node_replies_with_fresh_route() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut b = Aodv::new(1, AodvConfig::default());
        b.update_route(9, 4, 2, 7, true, SimTime::from_secs(1));
        let rreq = AodvRreq {
            orig: 0,
            orig_seqno: 1,
            rreq_id: 1,
            dst: 9,
            dst_seqno: 5,
            unknown: false,
            hop_count: 0,
            ttl: 5,
        };
        let fx = b.on_control_received(
            &mut ctx_at(&mut rng, 1),
            0,
            ControlPacket::Aodv(AodvMessage::Rreq(rreq.clone())),
        );
        let (rrep, _) = rrep_of(&fx).expect("fresh route reply");
        assert_eq!(rrep.dst_seqno, 7);
        assert_eq!(rrep.hop_count, 2);

        // A stale route (seqno below request) only relays.
        let mut c = Aodv::new(2, AodvConfig::default());
        c.update_route(9, 4, 2, 3, true, SimTime::from_secs(1));
        let fx = c.on_control_received(
            &mut ctx_at(&mut rng, 1),
            0,
            ControlPacket::Aodv(AodvMessage::Rreq(rreq)),
        );
        assert!(rrep_of(&fx).is_none());
        let relayed = rreq_of(&fx).expect("relayed");
        assert_eq!(relayed.dst_seqno, 5, "request keeps the larger seqno");
    }

    #[test]
    fn link_failure_invalidates_and_rerrs() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut a = Aodv::new(0, AodvConfig::default());
        a.update_route(9, 1, 2, 7, true, SimTime::from_secs(1));
        a.update_route(8, 1, 3, 2, true, SimTime::from_secs(1));
        a.update_route(7, 2, 1, 4, true, SimTime::from_secs(1));
        let fx = a.on_link_failure(&mut ctx_at(&mut rng, 2), 1, None);
        let rerr = fx.iter().find_map(|e| match e {
            ProtoEffect::SendControl {
                packet: ControlPacket::Aodv(AodvMessage::Rerr(r)),
                ..
            } => Some(r.clone()),
            _ => None,
        });
        let rerr = rerr.expect("rerr broadcast");
        assert_eq!(rerr.unreachable.len(), 2);
        assert!(!a.route_active(9, SimTime::from_secs(2)));
        assert!(
            a.route_active(7, SimTime::from_secs(2)),
            "route via node 2 survives"
        );
    }

    #[test]
    fn rerr_propagates_upstream() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut a = Aodv::new(0, AodvConfig::default());
        a.update_route(9, 1, 2, 7, true, SimTime::from_secs(1));
        let rerr = AodvRerr {
            unreachable: vec![(9, 8)],
        };
        let fx = a.on_control_received(
            &mut ctx_at(&mut rng, 1),
            1,
            ControlPacket::Aodv(AodvMessage::Rerr(rerr)),
        );
        assert!(!a.route_active(9, SimTime::from_secs(1)));
        assert!(fx.iter().any(|e| matches!(
            e,
            ProtoEffect::SendControl {
                packet: ControlPacket::Aodv(AodvMessage::Rerr(_)),
                ..
            }
        )));
        // A RERR from a node that is not our next hop changes nothing.
        let mut b = Aodv::new(1, AodvConfig::default());
        b.update_route(9, 2, 2, 7, true, SimTime::from_secs(1));
        let rerr = AodvRerr {
            unreachable: vec![(9, 8)],
        };
        let fx = b.on_control_received(
            &mut ctx_at(&mut rng, 1),
            5,
            ControlPacket::Aodv(AodvMessage::Rerr(rerr)),
        );
        assert!(fx.is_empty());
        assert!(b.route_active(9, SimTime::from_secs(1)));
    }

    #[test]
    fn routes_expire_without_use() {
        let mut a = Aodv::new(0, AodvConfig::default());
        a.update_route(9, 1, 2, 7, true, SimTime::from_secs(1));
        assert!(a.route_active(9, SimTime::from_secs(5)));
        assert!(!a.route_active(9, SimTime::from_secs(12)));
    }
}
