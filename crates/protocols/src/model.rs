//! The model-checking seam (`model-check` feature): what a protocol must
//! expose for `slr-check` to drive it through a bounded exhaustive state
//! search.
//!
//! The checker explores every interleaving of a small closed system by
//! cloning protocol instances, so a checkable protocol needs three things
//! beyond [`RoutingProtocol`]:
//!
//! 1. **snapshotting** (`Clone`) — branch points copy the whole instance;
//! 2. **canonical serialization** ([`ModelCheckable::model_canonical`]) —
//!    a byte encoding of all behavior-relevant state, with stored
//!    timestamps rewritten as *deltas from `now`* (clamped at the horizon
//!    that governs them) so two states that behave identically hash
//!    identically regardless of absolute clock;
//! 3. **invariant views** (`model_label` / `model_successors` /
//!    `model_destinations` / `model_seqno_floor`) — the per-destination
//!    label and successor graph the Theorem 3 / Definition 1 checks run
//!    over, identical to what the simulation harness's loop-freedom
//!    oracle reads.
//!
//! Everything here is additive and feature-gated: hot paths do not change
//! when the feature is off, and nothing in the simulation harness depends
//! on it.

use crate::api::{NodeId, RoutingProtocol};
use slr_core::SplitLabel32;
use slr_netsim::time::SimTime;

/// A routing protocol the bounded model checker can drive.
///
/// Implemented by [`crate::srp::Srp`]; AODV/LDR can follow by providing
/// the same views over their route tables.
pub trait ModelCheckable: RoutingProtocol + Clone {
    /// Appends a canonical byte encoding of all behavior-relevant state
    /// to `out`. Stored absolute times must be encoded relative to `now`
    /// and clamped at their governing horizon; pure statistics counters
    /// must be excluded.
    fn model_canonical(&self, now: SimTime, out: &mut Vec<u8>);

    /// This node's current label (ordering) for `dst`.
    fn model_label(&self, dst: NodeId) -> SplitLabel32;

    /// Current successors toward `dst` with their recorded advertisement
    /// orderings, applying the same lazy expiry the protocol itself would.
    fn model_successors(&self, dst: NodeId, now: SimTime) -> Vec<(NodeId, SplitLabel32)>;

    /// Destinations with any installed successor state.
    fn model_destinations(&self) -> Vec<NodeId>;

    /// The sequence-number floor retained for `dst` (0 if none).
    fn model_seqno_floor(&self, dst: NodeId) -> u64;
}
