//! DSR (Dynamic Source Routing) — baseline protocol.
//!
//! Implements the draft-ietf-manet-dsr-07 mechanisms the paper simulates:
//! route discovery with accumulated routes, replies from the target or from
//! intermediate route caches, source routes carried in data packets, a path
//! route cache, packet salvaging on link failure, and route errors that
//! scrub broken links from caches. Packet paths are inherently loop-free.
//!
//! DSR's well-known failure mode at high load — stale cached routes being
//! handed out faster than errors can scrub them — is what drives its
//! collapse in Figs. 3–4 of the paper; the cache here deliberately keeps
//! the draft's long lifetimes so that behaviour is reproduced rather than
//! patched.

use std::collections::HashMap;

use slr_netsim::time::{SimDuration, SimTime};

use crate::api::{
    ControlPacket, DataDropReason, DataPacket, NodeId, PacketBuffer, ProtoCtx, ProtoEffect,
    ProtoStats, RingSchedule, RoutingProtocol, SourceRoute,
};

/// DSR route request with its accumulated route record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DsrRreq {
    /// Originator.
    pub orig: NodeId,
    /// Flood identifier.
    pub rreq_id: u64,
    /// Sought node.
    pub target: NodeId,
    /// Nodes traversed so far (starts as `[orig]`).
    pub route: Vec<NodeId>,
    /// Remaining flood TTL.
    pub ttl: u8,
}

/// DSR route reply carrying a complete path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DsrRrep {
    /// The discovery originator the reply travels to.
    pub orig: NodeId,
    /// The flood this answers.
    pub rreq_id: u64,
    /// Full path `orig … target`.
    pub route: Vec<NodeId>,
}

/// DSR route error: a broken link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DsrRerr {
    /// Upstream endpoint of the broken link (the detector).
    pub from: NodeId,
    /// The unreachable downstream endpoint.
    pub to: NodeId,
    /// The node the error is reported to (the packet's source).
    pub orig: NodeId,
}

/// All DSR control packets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DsrMessage {
    /// Route request.
    Rreq(DsrRreq),
    /// Route reply.
    Rrep(DsrRrep),
    /// Route error.
    Rerr(DsrRerr),
}

impl DsrMessage {
    /// Approximate wire size in bytes (4 bytes per recorded hop).
    pub fn wire_bytes(&self) -> u32 {
        match self {
            DsrMessage::Rreq(r) => 16 + 4 * r.route.len() as u32,
            DsrMessage::Rrep(r) => 12 + 4 * r.route.len() as u32,
            DsrMessage::Rerr(_) => 16,
        }
    }

    /// Packet-type name for statistics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            DsrMessage::Rreq(_) => "dsr-rreq",
            DsrMessage::Rrep(_) => "dsr-rrep",
            DsrMessage::Rerr(_) => "dsr-rerr",
        }
    }
}

/// DSR tunables.
#[derive(Debug, Clone, Copy)]
pub struct DsrConfig {
    /// Maximum cached paths.
    pub cache_capacity: usize,
    /// Cached-path lifetime (deliberately long; see module docs).
    pub cache_lifetime: SimDuration,
    /// Salvage attempts allowed per packet.
    pub salvage_limit: u8,
    /// Per-hop latency estimate for ring timeouts.
    pub per_hop_latency: SimDuration,
    /// Expanding-ring schedule.
    pub ring: RingSchedule,
    /// Route-pending buffer capacity.
    pub buffer_capacity: usize,
    /// Maximum buffering time.
    pub buffer_timeout: SimDuration,
}

impl Default for DsrConfig {
    fn default() -> Self {
        DsrConfig {
            cache_capacity: 64,
            cache_lifetime: SimDuration::from_secs(300),
            salvage_limit: 15,
            per_hop_latency: SimDuration::from_millis(40),
            ring: RingSchedule::default(),
            buffer_capacity: 64,
            buffer_timeout: SimDuration::from_secs(30),
        }
    }
}

#[derive(Debug, Clone)]
struct CachedPath {
    path: Vec<NodeId>,
    expires: SimTime,
}

#[derive(Debug, Clone, Copy)]
struct Discovery {
    attempt: u32,
}

const DISCOVERY_TOKEN_BIT: u64 = 1 << 60;

fn discovery_token(dst: NodeId, attempt: u32) -> u64 {
    DISCOVERY_TOKEN_BIT | ((attempt as u64) << 32) | dst as u64
}

fn decode_token(token: u64) -> Option<(NodeId, u32)> {
    if token & DISCOVERY_TOKEN_BIT == 0 {
        return None;
    }
    Some((
        (token & 0xFFFF_FFFF) as NodeId,
        ((token >> 32) & 0x0FFF_FFFF) as u32,
    ))
}

/// The DSR instance on one node.
pub struct Dsr {
    node: NodeId,
    cfg: DsrConfig,
    cache: Vec<CachedPath>,
    next_rreq_id: u64,
    rreq_seen: HashMap<(NodeId, u64), SimTime>,
    discoveries: HashMap<NodeId, Discovery>,
    buffer: PacketBuffer,
    salvage_counts: HashMap<u64, u8>,
    discoveries_started: u64,
}

impl Dsr {
    /// Creates the DSR instance for `node`.
    pub fn new(node: NodeId, cfg: DsrConfig) -> Self {
        Dsr {
            node,
            cfg,
            cache: Vec::new(),
            next_rreq_id: 0,
            rreq_seen: HashMap::new(),
            discoveries: HashMap::new(),
            buffer: PacketBuffer::new(cfg.buffer_capacity),
            salvage_counts: HashMap::new(),
            discoveries_started: 0,
        }
    }

    /// Caches a path (any direction of use is allowed since links are
    /// assumed symmetric). Evicts the oldest entry when full.
    fn cache_path(&mut self, path: &[NodeId], now: SimTime) {
        if path.len() < 2 {
            return;
        }
        // Reject paths with duplicate nodes.
        for (i, n) in path.iter().enumerate() {
            if path[i + 1..].contains(n) {
                return;
            }
        }
        let expires = now + self.cfg.cache_lifetime;
        if let Some(e) = self.cache.iter_mut().find(|c| c.path == path) {
            e.expires = expires;
            return;
        }
        if self.cache.len() >= self.cfg.cache_capacity {
            // Evict the entry expiring soonest.
            if let Some((idx, _)) = self.cache.iter().enumerate().min_by_key(|(_, c)| c.expires) {
                self.cache.remove(idx);
            }
        }
        self.cache.push(CachedPath {
            path: path.to_vec(),
            expires,
        });
    }

    /// Finds the shortest cached sub-path from this node to `dst`.
    fn find_route(&mut self, dst: NodeId, now: SimTime) -> Option<Vec<NodeId>> {
        self.cache.retain(|c| c.expires > now);
        let mut best: Option<Vec<NodeId>> = None;
        for c in &self.cache {
            // Forward direction.
            if let Some(sub) = subpath(&c.path, self.node, dst) {
                if best.as_ref().map(|b| sub.len() < b.len()).unwrap_or(true) {
                    best = Some(sub);
                }
            }
            // Reverse direction (symmetric links).
            let rev: Vec<NodeId> = c.path.iter().rev().copied().collect();
            if let Some(sub) = subpath(&rev, self.node, dst) {
                if best.as_ref().map(|b| sub.len() < b.len()).unwrap_or(true) {
                    best = Some(sub);
                }
            }
        }
        best
    }

    /// Removes every cached path that uses the directed link `a → b` (in
    /// either direction, since links are symmetric). Paths are truncated
    /// before the broken link rather than discarded.
    fn scrub_link(&mut self, a: NodeId, b: NodeId) {
        let mut updated = Vec::new();
        for c in self.cache.drain(..) {
            let mut cut = c.path.len();
            for i in 0..c.path.len() - 1 {
                let (x, y) = (c.path[i], c.path[i + 1]);
                if (x == a && y == b) || (x == b && y == a) {
                    cut = i + 1;
                    break;
                }
            }
            if cut >= 2 {
                updated.push(CachedPath {
                    path: c.path[..cut].to_vec(),
                    expires: c.expires,
                });
            }
        }
        self.cache = updated;
    }

    fn send_with_route(&mut self, mut packet: DataPacket, route: Vec<NodeId>) -> Vec<ProtoEffect> {
        let sr = SourceRoute::new(route);
        let next = sr.next_hop().expect("route has at least two hops");
        packet.source_route = Some(sr);
        if packet.ttl == 0 {
            return vec![ProtoEffect::DropData {
                packet,
                reason: DataDropReason::TtlExpired,
            }];
        }
        packet.ttl -= 1;
        vec![ProtoEffect::SendData {
            packet,
            next_hop: next,
        }]
    }

    fn start_discovery(&mut self, dst: NodeId, now: SimTime, fx: &mut Vec<ProtoEffect>) {
        if self.discoveries.contains_key(&dst) {
            return;
        }
        self.discoveries_started += 1;
        self.send_rreq(dst, 0, now, fx);
    }

    fn send_rreq(&mut self, dst: NodeId, attempt: u32, now: SimTime, fx: &mut Vec<ProtoEffect>) {
        let Some(ttl) = self.cfg.ring.ttl(attempt) else {
            self.discoveries.remove(&dst);
            for packet in self.buffer.take_for(dst) {
                fx.push(ProtoEffect::DropData {
                    packet,
                    reason: DataDropReason::NoRoute,
                });
            }
            return;
        };
        self.next_rreq_id += 1;
        self.discoveries.insert(dst, Discovery { attempt });
        self.rreq_seen.insert((self.node, self.next_rreq_id), now);
        fx.push(ProtoEffect::SendControl {
            packet: ControlPacket::Dsr(DsrMessage::Rreq(DsrRreq {
                orig: self.node,
                rreq_id: self.next_rreq_id,
                target: dst,
                route: vec![self.node],
                ttl,
            })),
            next_hop: None,
        });
        fx.push(ProtoEffect::SetTimer {
            token: discovery_token(dst, attempt),
            delay: self.cfg.ring.timeout(ttl, self.cfg.per_hop_latency),
        });
    }

    fn flush_buffer(&mut self, dst: NodeId, now: SimTime, fx: &mut Vec<ProtoEffect>) {
        while self.buffer.has_for(dst) {
            let Some(route) = self.find_route(dst, now) else {
                break;
            };
            let packets = self.buffer.take_for(dst);
            for p in packets {
                fx.extend(self.send_with_route(p, route.clone()));
            }
        }
        self.discoveries.remove(&dst);
    }

    fn handle_rreq(
        &mut self,
        ctx: &mut ProtoCtx<'_>,
        _prev: NodeId,
        rreq: DsrRreq,
    ) -> Vec<ProtoEffect> {
        let mut fx = Vec::new();
        let now = ctx.now;
        if rreq.orig == self.node || rreq.route.contains(&self.node) {
            return fx;
        }
        let key = (rreq.orig, rreq.rreq_id);
        if self.rreq_seen.contains_key(&key) {
            return fx;
        }
        self.rreq_seen.insert(key, now);

        // The accumulated record is a route back to the originator.
        let mut here = rreq.route.clone();
        here.push(self.node);
        let back: Vec<NodeId> = here.iter().rev().copied().collect();
        self.cache_path(&back, now);

        if rreq.target == self.node {
            // Reply with the full recorded route.
            let next = *here
                .get(here.len() - 2)
                .expect("record has at least the originator");
            fx.push(ProtoEffect::SendControl {
                packet: ControlPacket::Dsr(DsrMessage::Rrep(DsrRrep {
                    orig: rreq.orig,
                    rreq_id: rreq.rreq_id,
                    route: here,
                })),
                next_hop: Some(next),
            });
            return fx;
        }

        // Cached-route reply: splice our cached path to the target, if the
        // concatenation is loop-free.
        if let Some(tail) = self.find_route(rreq.target, now) {
            let mut full = rreq.route.clone();
            let mut ok = true;
            for n in &tail {
                if full.contains(n) {
                    ok = false;
                    break;
                }
                full.push(*n);
            }
            if ok {
                let next = *rreq.route.last().expect("non-empty record");
                fx.push(ProtoEffect::SendControl {
                    packet: ControlPacket::Dsr(DsrMessage::Rrep(DsrRrep {
                        orig: rreq.orig,
                        rreq_id: rreq.rreq_id,
                        route: full,
                    })),
                    next_hop: Some(next),
                });
                return fx;
            }
        }

        if rreq.ttl <= 1 {
            return fx;
        }
        fx.push(ProtoEffect::SendControl {
            packet: ControlPacket::Dsr(DsrMessage::Rreq(DsrRreq {
                route: here,
                ttl: rreq.ttl - 1,
                ..rreq
            })),
            next_hop: None,
        });
        fx
    }

    fn handle_rrep(
        &mut self,
        ctx: &mut ProtoCtx<'_>,
        _prev: NodeId,
        rrep: DsrRrep,
    ) -> Vec<ProtoEffect> {
        let mut fx = Vec::new();
        let now = ctx.now;
        self.cache_path(&rrep.route, now);
        if rrep.orig == self.node {
            // All buffered packets that the new route can serve.
            let dsts: Vec<NodeId> = rrep.route.iter().skip(1).copied().collect();
            for d in dsts {
                self.flush_buffer(d, now, &mut fx);
            }
            return fx;
        }
        // Relay toward the originator along the recorded route.
        if let Some(pos) = rrep.route.iter().position(|&n| n == self.node) {
            if pos > 0 {
                let next = rrep.route[pos - 1];
                fx.push(ProtoEffect::SendControl {
                    packet: ControlPacket::Dsr(DsrMessage::Rrep(rrep)),
                    next_hop: Some(next),
                });
            }
        }
        fx
    }

    fn handle_rerr(&mut self, now: SimTime, rerr: DsrRerr) -> Vec<ProtoEffect> {
        let mut fx = Vec::new();
        self.scrub_link(rerr.from, rerr.to);
        if rerr.orig == self.node {
            return fx;
        }
        // Forward toward the reported source if we still know a way.
        if let Some(route) = self.find_route(rerr.orig, now) {
            let next = route[1];
            fx.push(ProtoEffect::SendControl {
                packet: ControlPacket::Dsr(DsrMessage::Rerr(rerr)),
                next_hop: Some(next),
            });
        }
        fx
    }
}

/// The sub-slice of `path` from `from` to `to`, if both appear in order.
fn subpath(path: &[NodeId], from: NodeId, to: NodeId) -> Option<Vec<NodeId>> {
    let i = path.iter().position(|&n| n == from)?;
    let j = path[i..].iter().position(|&n| n == to)? + i;
    if j > i {
        Some(path[i..=j].to_vec())
    } else {
        None
    }
}

impl RoutingProtocol for Dsr {
    fn name(&self) -> &'static str {
        "DSR"
    }

    fn on_start(&mut self, _ctx: &mut ProtoCtx<'_>) -> Vec<ProtoEffect> {
        Vec::new()
    }

    fn on_data_from_app(&mut self, ctx: &mut ProtoCtx<'_>, packet: DataPacket) -> Vec<ProtoEffect> {
        let now = ctx.now;
        if packet.dst == self.node {
            return vec![ProtoEffect::DeliverLocal(packet)];
        }
        if let Some(route) = self.find_route(packet.dst, now) {
            return self.send_with_route(packet, route);
        }
        let mut fx = Vec::new();
        let dst = packet.dst;
        if let Some(overflow) = self.buffer.push(packet, now) {
            fx.push(ProtoEffect::DropData {
                packet: overflow,
                reason: DataDropReason::BufferOverflow,
            });
        }
        self.start_discovery(dst, now, &mut fx);
        fx
    }

    fn on_data_received(
        &mut self,
        ctx: &mut ProtoCtx<'_>,
        from: NodeId,
        mut packet: DataPacket,
    ) -> Vec<ProtoEffect> {
        let now = ctx.now;
        let _ = from;
        if packet.dst == self.node {
            return vec![ProtoEffect::DeliverLocal(packet)];
        }
        // Follow the source route.
        if let Some(sr) = &mut packet.source_route {
            // Cache what the header teaches us.
            let path = sr.hops.clone();
            self.cache_path(&path, now);
            sr.next += 1;
            if let Some(next) = sr.next_hop() {
                if packet.ttl == 0 {
                    return vec![ProtoEffect::DropData {
                        packet,
                        reason: DataDropReason::TtlExpired,
                    }];
                }
                packet.ttl -= 1;
                return vec![ProtoEffect::SendData {
                    packet,
                    next_hop: next,
                }];
            }
        }
        // Malformed or exhausted source route.
        vec![ProtoEffect::DropData {
            packet,
            reason: DataDropReason::NoRoute,
        }]
    }

    fn on_control_received(
        &mut self,
        ctx: &mut ProtoCtx<'_>,
        from: NodeId,
        packet: ControlPacket,
    ) -> Vec<ProtoEffect> {
        let ControlPacket::Dsr(msg) = packet else {
            return Vec::new();
        };
        match msg {
            DsrMessage::Rreq(r) => self.handle_rreq(ctx, from, r),
            DsrMessage::Rrep(r) => self.handle_rrep(ctx, from, r),
            DsrMessage::Rerr(r) => self.handle_rerr(ctx.now, r),
        }
    }

    fn on_timer(&mut self, ctx: &mut ProtoCtx<'_>, token: u64) -> Vec<ProtoEffect> {
        let mut fx = Vec::new();
        let now = ctx.now;
        for packet in self.buffer.take_expired(now, self.cfg.buffer_timeout) {
            fx.push(ProtoEffect::DropData {
                packet,
                reason: DataDropReason::BufferTimeout,
            });
        }
        let Some((dst, attempt)) = decode_token(token) else {
            return fx;
        };
        let Some(d) = self.discoveries.get(&dst).copied() else {
            return fx;
        };
        if d.attempt != attempt {
            return fx;
        }
        if self.find_route(dst, now).is_some() {
            self.flush_buffer(dst, now, &mut fx);
            return fx;
        }
        self.discoveries.remove(&dst);
        self.discoveries_started += 1;
        self.send_rreq(dst, attempt + 1, now, &mut fx);
        fx
    }

    fn on_link_failure(
        &mut self,
        ctx: &mut ProtoCtx<'_>,
        next_hop: NodeId,
        packet: Option<DataPacket>,
    ) -> Vec<ProtoEffect> {
        let mut fx = Vec::new();
        let now = ctx.now;
        self.scrub_link(self.node, next_hop);
        let Some(mut p) = packet else {
            return fx;
        };
        // Report the broken link to the packet's source.
        if p.src != self.node {
            if let Some(route) = self.find_route(p.src, now) {
                fx.push(ProtoEffect::SendControl {
                    packet: ControlPacket::Dsr(DsrMessage::Rerr(DsrRerr {
                        from: self.node,
                        to: next_hop,
                        orig: p.src,
                    })),
                    next_hop: Some(route[1]),
                });
            }
        }
        // Salvage: re-route from our own cache, up to the salvage limit.
        let salvages = self.salvage_counts.entry(p.uid).or_insert(0);
        if *salvages < self.cfg.salvage_limit {
            *salvages += 1;
            if let Some(route) = self.find_route(p.dst, now) {
                p.source_route = None;
                fx.extend(self.send_with_route(p, route));
                return fx;
            }
            // No cached alternative: hold and rediscover.
            let dst = p.dst;
            if let Some(overflow) = self.buffer.push(p, now) {
                fx.push(ProtoEffect::DropData {
                    packet: overflow,
                    reason: DataDropReason::BufferOverflow,
                });
            }
            self.start_discovery(dst, now, &mut fx);
        } else {
            fx.push(ProtoEffect::DropData {
                packet: p,
                reason: DataDropReason::SalvageFailed,
            });
        }
        fx
    }

    fn stats(&self) -> ProtoStats {
        ProtoStats {
            own_seqno_increments: 0,
            max_fd_denominator: 0,
            discoveries: self.discoveries_started,
            resets_requested: 0,
            adversarial_actions: 0,
            audit_rejections: 0,
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn ctx_at(rng: &mut SmallRng, secs: u64) -> ProtoCtx<'_> {
        ProtoCtx {
            now: SimTime::from_secs(secs),
            rng,
        }
    }

    fn data(src: NodeId, dst: NodeId, uid: u64) -> DataPacket {
        DataPacket {
            src,
            dst,
            uid,
            origin_time: SimTime::ZERO,
            bytes: 512,
            ttl: 64,
            source_route: None,
        }
    }

    #[test]
    fn subpath_extraction() {
        assert_eq!(subpath(&[1, 2, 3, 4], 2, 4), Some(vec![2, 3, 4]));
        assert_eq!(subpath(&[1, 2, 3, 4], 4, 2), None);
        assert_eq!(subpath(&[1, 2, 3], 9, 3), None);
        assert_eq!(subpath(&[1, 2, 3], 1, 1), None);
    }

    #[test]
    fn discovery_accumulates_route_and_replies() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut a = Dsr::new(0, DsrConfig::default());
        let mut b = Dsr::new(1, DsrConfig::default());
        let mut c = Dsr::new(2, DsrConfig::default());

        let fx = a.on_data_from_app(&mut ctx_at(&mut rng, 1), data(0, 2, 1));
        let rreq = fx
            .iter()
            .find_map(|e| match e {
                ProtoEffect::SendControl {
                    packet: ControlPacket::Dsr(DsrMessage::Rreq(r)),
                    ..
                } => Some(r.clone()),
                _ => None,
            })
            .expect("rreq");
        assert_eq!(rreq.route, vec![0]);

        let fx = b.on_control_received(
            &mut ctx_at(&mut rng, 1),
            0,
            ControlPacket::Dsr(DsrMessage::Rreq(rreq)),
        );
        let relayed = fx
            .iter()
            .find_map(|e| match e {
                ProtoEffect::SendControl {
                    packet: ControlPacket::Dsr(DsrMessage::Rreq(r)),
                    ..
                } => Some(r.clone()),
                _ => None,
            })
            .expect("relay");
        assert_eq!(relayed.route, vec![0, 1]);

        let fx = c.on_control_received(
            &mut ctx_at(&mut rng, 1),
            1,
            ControlPacket::Dsr(DsrMessage::Rreq(relayed)),
        );
        let (rrep, nh) = fx
            .iter()
            .find_map(|e| match e {
                ProtoEffect::SendControl {
                    packet: ControlPacket::Dsr(DsrMessage::Rrep(r)),
                    next_hop,
                } => Some((r.clone(), *next_hop)),
                _ => None,
            })
            .expect("target replies");
        assert_eq!(rrep.route, vec![0, 1, 2]);
        assert_eq!(nh, Some(1));

        let fx = b.on_control_received(
            &mut ctx_at(&mut rng, 1),
            2,
            ControlPacket::Dsr(DsrMessage::Rrep(rrep.clone())),
        );
        assert!(fx.iter().any(|e| matches!(
            e,
            ProtoEffect::SendControl {
                packet: ControlPacket::Dsr(DsrMessage::Rrep(_)),
                next_hop: Some(0),
            }
        )));

        let fx = a.on_control_received(
            &mut ctx_at(&mut rng, 1),
            1,
            ControlPacket::Dsr(DsrMessage::Rrep(rrep)),
        );
        // The buffered packet leaves with a full source route.
        let sent = fx
            .iter()
            .find_map(|e| match e {
                ProtoEffect::SendData { packet, next_hop } => Some((packet.clone(), *next_hop)),
                _ => None,
            })
            .expect("flushed");
        assert_eq!(sent.1, 1);
        assert_eq!(sent.0.source_route.as_ref().unwrap().hops, vec![0, 1, 2]);
    }

    #[test]
    fn forwarding_follows_source_route() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut b = Dsr::new(1, DsrConfig::default());
        let mut p = data(0, 2, 9);
        p.source_route = Some(SourceRoute::new(vec![0, 1, 2]));
        let fx = b.on_data_received(&mut ctx_at(&mut rng, 1), 0, p);
        assert!(fx
            .iter()
            .any(|e| matches!(e, ProtoEffect::SendData { next_hop: 2, .. })));
    }

    #[test]
    fn cached_route_reply() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut b = Dsr::new(1, DsrConfig::default());
        b.cache_path(&[1, 5, 9], SimTime::from_secs(1));
        let rreq = DsrRreq {
            orig: 0,
            rreq_id: 1,
            target: 9,
            route: vec![0],
            ttl: 5,
        };
        let fx = b.on_control_received(
            &mut ctx_at(&mut rng, 1),
            0,
            ControlPacket::Dsr(DsrMessage::Rreq(rreq)),
        );
        let rrep = fx
            .iter()
            .find_map(|e| match e {
                ProtoEffect::SendControl {
                    packet: ControlPacket::Dsr(DsrMessage::Rrep(r)),
                    ..
                } => Some(r.clone()),
                _ => None,
            })
            .expect("cache reply");
        assert_eq!(rrep.route, vec![0, 1, 5, 9]);
    }

    #[test]
    fn salvage_uses_alternate_cached_route() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut b = Dsr::new(1, DsrConfig::default());
        b.cache_path(&[1, 4, 9], SimTime::from_secs(1));
        let mut p = data(0, 9, 7);
        p.source_route = Some(SourceRoute::new(vec![0, 1, 5, 9]));
        let fx = b.on_link_failure(&mut ctx_at(&mut rng, 1), 5, Some(p));
        let sent = fx
            .iter()
            .find_map(|e| match e {
                ProtoEffect::SendData { packet, next_hop } => Some((packet.clone(), *next_hop)),
                _ => None,
            })
            .expect("salvaged");
        assert_eq!(sent.1, 4);
        assert_eq!(sent.0.source_route.as_ref().unwrap().hops, vec![1, 4, 9]);
    }

    #[test]
    fn salvage_limit_drops() {
        let mut rng = SmallRng::seed_from_u64(5);
        let cfg = DsrConfig {
            salvage_limit: 1,
            ..DsrConfig::default()
        };
        let mut b = Dsr::new(1, cfg);
        b.cache_path(&[1, 4, 9], SimTime::from_secs(1));
        let p = data(0, 9, 7);
        let _ = b.on_link_failure(&mut ctx_at(&mut rng, 1), 5, Some(p.clone()));
        // Second failure for the same packet exceeds the limit.
        let fx = b.on_link_failure(&mut ctx_at(&mut rng, 1), 4, Some(p));
        assert!(fx.iter().any(|e| matches!(
            e,
            ProtoEffect::DropData {
                reason: DataDropReason::SalvageFailed,
                ..
            }
        )));
    }

    #[test]
    fn rerr_scrubs_cache() {
        let mut rng = SmallRng::seed_from_u64(6);
        let mut b = Dsr::new(1, DsrConfig::default());
        b.cache_path(&[1, 5, 9], SimTime::from_secs(1));
        assert!(b.find_route(9, SimTime::from_secs(1)).is_some());
        let rerr = DsrRerr {
            from: 5,
            to: 9,
            orig: 1,
        };
        let _ = b.on_control_received(
            &mut ctx_at(&mut rng, 1),
            5,
            ControlPacket::Dsr(DsrMessage::Rerr(rerr)),
        );
        assert!(b.find_route(9, SimTime::from_secs(1)).is_none());
        assert!(
            b.find_route(5, SimTime::from_secs(1)).is_some(),
            "prefix survives"
        );
    }

    #[test]
    fn cache_rejects_looping_paths_and_expires() {
        let mut b = Dsr::new(1, DsrConfig::default());
        b.cache_path(&[1, 5, 1, 9], SimTime::from_secs(1));
        assert!(b.cache.is_empty());
        b.cache_path(&[1, 5, 9], SimTime::from_secs(1));
        assert!(b.find_route(9, SimTime::from_secs(2)).is_some());
        assert!(b.find_route(9, SimTime::from_secs(10_000)).is_none());
    }
}
