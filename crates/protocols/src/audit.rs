//! Control-plane audit wrapper: per-neighbor validation for honest nodes
//! in adversarial trials.
//!
//! When a scenario puts [`crate::adversary::Adversary`] liars on the
//! field, every *honest* node's protocol instance is wrapped in an
//! [`Audit`] that validates incoming control traffic before the inner
//! state machine sees it. The checks are exactly the ones a node can make
//! **locally** — van Glabbeek et al. prove no local check suffices
//! against a determined Byzantine neighbor, so the audit is containment,
//! not immunity (the global loop-freedom oracle remains the ground
//! truth):
//!
//! * **Stern–Brocot membership** — every advertised feasible distance
//!   must be a node of the Stern–Brocot tree: a proper fraction in lowest
//!   terms. Honest SRP labels are built exclusively by mediant splitting,
//!   which preserves both properties; forged fractions that fail either
//!   are provably not labels.
//! * **First-hop identity** — a RREQ carrying `d = 0` claims its sender
//!   *is* the solicitation source; if the MAC-layer sender differs, the
//!   packet is a sybil impersonation.
//! * **Per-neighbor sequence monotonicity** — a neighbor's advertised
//!   sequence number for a destination never regresses honestly (the
//!   destination alone increments it); a regression marks a replayed or
//!   stale update.
//! * **Replay detection** — a byte-identical RREP recurring from the
//!   same neighbor for the same flood is a replay: honest repliers answer
//!   a flood once and relay labels are pairwise distinct mediants, so an
//!   exact recurrence cannot arise from fresh processing.
//!
//! Each rejection adds a strike against the sending neighbor; at
//! [`STRIKE_LIMIT`] the neighbor is blacklisted and all its further
//! control traffic is ignored. Counters surface through
//! [`ProtoStats::audit_rejections`] into the trial summary.

use std::collections::{BTreeMap, BTreeSet};

use slr_core::Frac32;

use crate::api::{
    ControlPacket, DataPacket, NodeId, ProtoCtx, ProtoEffect, ProtoStats, RoutingProtocol,
};
use crate::srp::SrpMessage;

/// Strikes after which a neighbor's control traffic is ignored outright.
pub const STRIKE_LIMIT: u32 = 3;

/// Greatest common divisor (Stern–Brocot membership check helper).
fn gcd(mut a: u32, mut b: u32) -> u32 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Whether `f` is a node of the Stern–Brocot dense-label order: a proper
/// fraction in lowest terms. (`0/1` and `1/1` are the tree's virtual
/// endpoints and are valid labels — destination and unassigned.)
fn stern_brocot_member(f: &Frac32) -> bool {
    let (num, den) = (f.num(), f.den());
    if den == 0 || num > den {
        return false;
    }
    if num == 0 {
        return den == 1;
    }
    gcd(num, den) == 1
}

/// The audit wrapper around one honest node's protocol instance.
///
/// `as_any` forwards to the inner protocol so the loop-freedom oracle
/// still reaches the real routing tables.
pub struct Audit {
    inner: Box<dyn RoutingProtocol>,
    /// Highest advertised sequence number seen per `(neighbor, dest)`.
    seqno_high: BTreeMap<(NodeId, NodeId), u64>,
    /// Fingerprints of accepted RREPs, content included — two honest
    /// repliers to one flood may relay through the same neighbor, so only
    /// an *identical* recurrence marks a replay.
    #[allow(clippy::type_complexity)]
    seen_rreps: BTreeSet<(NodeId, NodeId, u64, NodeId, u64, u32, u32, u32)>,
    strikes: BTreeMap<NodeId, u32>,
    audits: u64,
    rejections: u64,
}

impl Audit {
    /// Wraps `inner` in the validation layer.
    pub fn new(inner: Box<dyn RoutingProtocol>) -> Self {
        Audit {
            inner,
            seqno_high: BTreeMap::new(),
            seen_rreps: BTreeSet::new(),
            strikes: BTreeMap::new(),
            audits: 0,
            rejections: 0,
        }
    }

    /// Rejections counted so far (testing/diagnostics).
    pub fn rejections(&self) -> u64 {
        self.rejections
    }

    fn strike(&mut self, from: NodeId) {
        *self.strikes.entry(from).or_insert(0) += 1;
        self.rejections += 1;
    }

    /// Enforces advertised-seqno monotonicity for `(from, dest)`. Returns
    /// `false` (a strike) on regression.
    fn check_seqno(&mut self, from: NodeId, dest: NodeId, seqno: u64) -> bool {
        let high = self.seqno_high.entry((from, dest)).or_insert(seqno);
        if seqno < *high {
            return false;
        }
        *high = seqno;
        true
    }

    /// Validates one incoming SRP message; `true` means accept.
    fn validate(&mut self, from: NodeId, msg: &SrpMessage) -> bool {
        match msg {
            SrpMessage::Rreq(q) => {
                if !stern_brocot_member(&q.fd) || !stern_brocot_member(&q.src_lfd) {
                    return false;
                }
                // d = 0 means "I am the solicitation source": the
                // link-layer sender must match the claimed identity.
                if q.d == 0 && q.src != from {
                    return false;
                }
                // The advertisement half vouches for a route to `src`.
                if !q.no_advert && !self.check_seqno(from, q.src, q.src_seqno) {
                    return false;
                }
                true
            }
            SrpMessage::Rrep(r) => {
                if !stern_brocot_member(&r.lfd) {
                    return false;
                }
                if !self.check_seqno(from, r.dst, r.dst_seqno) {
                    return false;
                }
                // A byte-identical recurrence of an accepted reply from
                // the same neighbor is a replay.
                self.seen_rreps.insert((
                    from,
                    r.rreq_src,
                    r.rreq_id,
                    r.dst,
                    r.dst_seqno,
                    r.lfd.num(),
                    r.lfd.den(),
                    r.ld,
                ))
            }
            SrpMessage::Rerr(_) => true,
        }
    }
}

impl RoutingProtocol for Audit {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn on_start(&mut self, ctx: &mut ProtoCtx<'_>) -> Vec<ProtoEffect> {
        self.inner.on_start(ctx)
    }

    fn on_rejoin(&mut self, ctx: &mut ProtoCtx<'_>) -> Vec<ProtoEffect> {
        self.inner.on_rejoin(ctx)
    }

    fn on_data_from_app(&mut self, ctx: &mut ProtoCtx<'_>, packet: DataPacket) -> Vec<ProtoEffect> {
        self.inner.on_data_from_app(ctx, packet)
    }

    fn on_data_received(
        &mut self,
        ctx: &mut ProtoCtx<'_>,
        from: NodeId,
        packet: DataPacket,
    ) -> Vec<ProtoEffect> {
        self.inner.on_data_received(ctx, from, packet)
    }

    fn on_control_received(
        &mut self,
        ctx: &mut ProtoCtx<'_>,
        from: NodeId,
        packet: ControlPacket,
    ) -> Vec<ProtoEffect> {
        if let ControlPacket::Srp(msg) = &packet {
            if self.strikes.get(&from).copied().unwrap_or(0) >= STRIKE_LIMIT {
                self.rejections += 1;
                return Vec::new();
            }
            self.audits += 1;
            if !self.validate(from, msg) {
                self.strike(from);
                return Vec::new();
            }
        }
        self.inner.on_control_received(ctx, from, packet)
    }

    fn on_timer(&mut self, ctx: &mut ProtoCtx<'_>, token: u64) -> Vec<ProtoEffect> {
        self.inner.on_timer(ctx, token)
    }

    fn on_link_failure(
        &mut self,
        ctx: &mut ProtoCtx<'_>,
        next_hop: NodeId,
        packet: Option<DataPacket>,
    ) -> Vec<ProtoEffect> {
        self.inner.on_link_failure(ctx, next_hop, packet)
    }

    fn stats(&self) -> ProtoStats {
        let mut st = self.inner.stats();
        st.audit_rejections = self.rejections;
        st
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self.inner.as_any()
    }

    fn mem_bytes(&self) -> usize {
        self.inner.mem_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::srp::{Srp, SrpConfig, SrpRrep, SrpRreq};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use slr_core::Fraction;
    use slr_netsim::time::SimTime;

    fn ctx_at(rng: &mut SmallRng, secs: u64) -> ProtoCtx<'_> {
        ProtoCtx {
            now: SimTime::from_secs(secs),
            rng,
        }
    }

    fn audited() -> Audit {
        Audit::new(Box::new(Srp::new(0, SrpConfig::default())))
    }

    fn rrep(dst: NodeId, dst_seqno: u64, lfd: Frac32) -> ControlPacket {
        ControlPacket::Srp(SrpMessage::Rrep(SrpRrep {
            rreq_src: 0,
            rreq_id: 1,
            dst,
            dst_seqno,
            lfd,
            ld: 1,
            no_reverse: false,
        }))
    }

    #[test]
    fn stern_brocot_membership() {
        assert!(stern_brocot_member(&Fraction::new(1, 2).unwrap()));
        assert!(stern_brocot_member(&Fraction::new(0, 1).unwrap()));
        assert!(stern_brocot_member(&Fraction::new(1, 1).unwrap()));
        assert!(stern_brocot_member(&Fraction::new(2, 3).unwrap()));
    }

    #[test]
    fn seqno_regression_is_rejected() {
        let mut a = audited();
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = a.on_control_received(
            &mut ctx_at(&mut rng, 1),
            4,
            rrep(9, 5, Fraction::new(1, 2).unwrap()),
        );
        assert_eq!(a.rejections(), 0);
        // An older sequence number from the same neighbor = replay/stale.
        let _ = a.on_control_received(
            &mut ctx_at(&mut rng, 2),
            4,
            rrep(9, 2, Fraction::new(1, 3).unwrap()),
        );
        assert_eq!(a.rejections(), 1);
    }

    #[test]
    fn duplicate_rrep_is_rejected() {
        let mut a = audited();
        let mut rng = SmallRng::seed_from_u64(2);
        let p = rrep(9, 0, Fraction::new(1, 2).unwrap());
        let _ = a.on_control_received(&mut ctx_at(&mut rng, 1), 4, p.clone());
        assert_eq!(a.rejections(), 0);
        let _ = a.on_control_received(&mut ctx_at(&mut rng, 2), 4, p);
        assert_eq!(a.rejections(), 1);
    }

    #[test]
    fn sybil_first_hop_impersonation_is_rejected() {
        let mut a = audited();
        let mut rng = SmallRng::seed_from_u64(3);
        let forged = ControlPacket::Srp(SrpMessage::Rreq(SrpRreq {
            src: 7, // claims to be node 7...
            rreq_id: 1,
            dst: 9,
            dst_seqno: 0,
            fd: Fraction::one(),
            unknown: true,
            reset: false,
            dest_only: false,
            no_advert: false,
            d: 0, // ...zero hops out...
            ttl: 16,
            src_seqno: 0,
            src_lfd: Fraction::zero(),
            src_ld: 0,
        }));
        // ...but arrives from node 4.
        let _ = a.on_control_received(&mut ctx_at(&mut rng, 1), 4, forged);
        assert_eq!(a.rejections(), 1);
    }

    #[test]
    fn strikes_blacklist_the_neighbor() {
        let mut a = audited();
        let mut rng = SmallRng::seed_from_u64(4);
        let _ = a.on_control_received(
            &mut ctx_at(&mut rng, 1),
            4,
            rrep(9, 9, Fraction::new(1, 2).unwrap()),
        );
        for s in 0..STRIKE_LIMIT {
            let _ = a.on_control_received(
                &mut ctx_at(&mut rng, 2),
                4,
                rrep(9, s as u64, Fraction::new(1, 3).unwrap()),
            );
        }
        let before = a.rejections();
        // Even a well-formed fresh packet is now ignored.
        let _ = a.on_control_received(
            &mut ctx_at(&mut rng, 3),
            4,
            rrep(9, 50, Fraction::new(1, 5).unwrap()),
        );
        assert_eq!(a.rejections(), before + 1);
        // A different neighbor is unaffected.
        let _ = a.on_control_received(
            &mut ctx_at(&mut rng, 4),
            5,
            rrep(9, 50, Fraction::new(1, 5).unwrap()),
        );
        assert_eq!(a.rejections(), before + 1);
    }

    #[test]
    fn honest_traffic_passes_clean() {
        let mut a = audited();
        let mut rng = SmallRng::seed_from_u64(5);
        for (i, seq) in [0u64, 0, 1, 3].into_iter().enumerate() {
            // Same or rising seqnos with distinct labels: the honest
            // shape of repeated adverts within one seqno epoch.
            let _ = a.on_control_received(
                &mut ctx_at(&mut rng, 1 + seq),
                4,
                rrep(9, seq, Fraction::new(1, 2 + i as u32).unwrap()),
            );
        }
        assert_eq!(a.rejections(), 0, "monotone seqnos must not strike");
    }

    #[test]
    fn oracle_downcast_reaches_inner_srp() {
        let a = audited();
        assert!(a.as_any().downcast_ref::<Srp>().is_some());
    }
}
