//! Adversarial participant wrapper: Byzantine, sybil and chaos nodes.
//!
//! The harness selects a seeded subset of nodes per trial and wraps their
//! protocol instance in an [`Adversary`]. The wrapper leaves the inner
//! state machine intact — an adversarial node still *routes* honestly for
//! itself — but mutates the node's **outgoing control traffic** at the
//! protocol boundary, which is exactly the attack surface van Glabbeek et
//! al. ("Sequence Numbers Do Not Guarantee Loop Freedom") prove
//! sequence-number protocols cannot locally defend:
//!
//! * [`AdversaryKind::Byzantine`] — label forgery: outgoing SRP
//!   advertisements get inflated sequence numbers and artificially
//!   attractive (small) feasible distances, and previously overheard
//!   control packets are replayed verbatim later;
//! * [`AdversaryKind::Sybil`] — identity splitting: outgoing RREQs are
//!   re-attributed to other (victim) identities with forged attractive
//!   advertisements, including whole-cloth RREQ floods that honest relays
//!   then propagate on the victim's behalf;
//! * [`AdversaryKind::Chaos`] — traffic disruption: outgoing control
//!   packets are probabilistically dropped or delayed, and overheard
//!   packets are replayed out of order (deliberate link flapping is
//!   compiled runner-side into the dynamics schedule).
//!
//! Every mutation draws from the node's deterministic protocol RNG
//! stream, so adversarial trials stay bit-identical across event engines
//! and worker counts: protocol callbacks occur in the same canonical
//! order under every engine, hence the wrapper's draws do too.

use rand::Rng;

use slr_core::Fraction;
use slr_netsim::time::SimDuration;

use crate::api::{
    ControlPacket, DataPacket, NodeId, ProtoCtx, ProtoEffect, ProtoStats, RoutingProtocol,
};
use crate::srp::{SrpMessage, SrpRreq};

/// Which misbehaviour script an adversarial node runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversaryKind {
    /// Lie about labels and sequence numbers; replay stale updates.
    Byzantine,
    /// Split identity: forge control traffic under other nodes' names.
    Sybil,
    /// Drop, delay and replay control traffic (plus runner-side flaps).
    Chaos,
}

impl AdversaryKind {
    /// Short name for reports and scenario descriptions.
    pub fn name(&self) -> &'static str {
        match self {
            AdversaryKind::Byzantine => "byzantine",
            AdversaryKind::Sybil => "sybil",
            AdversaryKind::Chaos => "chaos",
        }
    }
}

/// Timer-token namespace for the wrapper's own timers. SRP owns bit 63,
/// AODV bit 62, LDR bit 61, DSR bit 60 and OLSR the small integers, so
/// bit 59 is free across every inner protocol; the wrapper intercepts
/// these tokens before the inner machine ever sees them.
const ADV_TOKEN_BIT: u64 = 1 << 59;
/// The periodic misbehaviour heartbeat.
const ADV_TICK: u64 = ADV_TOKEN_BIT;
/// How many overheard control packets the replay cache retains.
const REPLAY_CACHE: usize = 8;

/// A routing protocol wrapper that makes the node misbehave.
///
/// `as_any` forwards to the inner protocol so harness oracles (the SRP
/// loop-freedom check) can still introspect the node's real tables.
pub struct Adversary {
    inner: Box<dyn RoutingProtocol>,
    kind: AdversaryKind,
    node: NodeId,
    nodes: usize,
    /// Overheard control packets available for replay, oldest first.
    cache: Vec<ControlPacket>,
    /// Delayed outgoing packets keyed by timer token.
    held: Vec<(u64, ControlPacket, Option<NodeId>)>,
    next_hold: u64,
    actions: u64,
}

impl Adversary {
    /// Wraps `inner` (running on `node` of `nodes`) in misbehaviour `kind`.
    pub fn new(
        inner: Box<dyn RoutingProtocol>,
        kind: AdversaryKind,
        node: NodeId,
        nodes: usize,
    ) -> Self {
        Adversary {
            inner,
            kind,
            node,
            nodes,
            cache: Vec::new(),
            held: Vec::new(),
            next_hold: 0,
            actions: 0,
        }
    }

    /// A node id other than our own (sybil victim identity).
    fn other_node(&self, rng: &mut rand::rngs::SmallRng) -> NodeId {
        if self.nodes <= 1 {
            return self.node;
        }
        let pick = rng.gen_range(0..self.nodes - 1);
        if pick >= self.node {
            pick + 1
        } else {
            pick
        }
    }

    /// Remembers an overheard control packet for later replay.
    fn overhear(&mut self, packet: &ControlPacket) {
        if self.cache.len() >= REPLAY_CACHE {
            self.cache.remove(0);
        }
        self.cache.push(packet.clone());
    }

    /// Forges the advertisement half of an SRP RREQ in place: inflated
    /// source sequence number, minimal claimed feasible distance.
    fn forge_rreq_advert(rreq: &mut SrpRreq, rng: &mut rand::rngs::SmallRng) {
        rreq.src_seqno += rng.gen_range(1u64..=3);
        rreq.src_lfd = Fraction::zero();
        rreq.src_ld = rng.gen_range(0..=1);
        rreq.no_advert = false;
    }

    /// Applies the kind-specific mutation script to one outgoing effect.
    /// Returns the (possibly empty, possibly multi-element) replacement.
    fn mangle(&mut self, ctx: &mut ProtoCtx<'_>, effect: ProtoEffect, out: &mut Vec<ProtoEffect>) {
        let ProtoEffect::SendControl { packet, next_hop } = effect else {
            out.push(effect);
            return;
        };
        match self.kind {
            AdversaryKind::Byzantine => {
                let packet = if let ControlPacket::Srp(msg) = packet {
                    let msg = match msg {
                        SrpMessage::Rrep(mut rrep) if ctx.rng.gen_bool(0.5) => {
                            // Attractive forgery: higher sequence number
                            // and a minimal last-hop feasible distance
                            // make the lie supersede every honest advert.
                            rrep.dst_seqno += ctx.rng.gen_range(1u64..=3);
                            rrep.lfd = Fraction::zero();
                            rrep.ld = ctx.rng.gen_range(0..=1);
                            self.actions += 1;
                            SrpMessage::Rrep(rrep)
                        }
                        SrpMessage::Rreq(mut rreq) if ctx.rng.gen_bool(0.5) => {
                            Self::forge_rreq_advert(&mut rreq, ctx.rng);
                            self.actions += 1;
                            SrpMessage::Rreq(rreq)
                        }
                        other => other,
                    };
                    ControlPacket::Srp(msg)
                } else {
                    packet
                };
                out.push(ProtoEffect::SendControl { packet, next_hop });
            }
            AdversaryKind::Sybil => {
                let packet = if let ControlPacket::Srp(SrpMessage::Rreq(mut rreq)) = packet {
                    if ctx.rng.gen_bool(0.5) {
                        // Re-attribute the flood to a victim identity with
                        // a fresh flood id (defeating duplicate
                        // suppression) and a forged attractive
                        // advertisement. `d` is sometimes left at 0, which
                        // claims "I *am* the victim" one hop out — the
                        // locally detectable half of the attack.
                        rreq.src = self.other_node(ctx.rng);
                        rreq.rreq_id = (1 << 32) | ctx.rng.gen::<u32>() as u64;
                        rreq.d = ctx.rng.gen_range(0..=2);
                        Self::forge_rreq_advert(&mut rreq, ctx.rng);
                        self.actions += 1;
                    }
                    ControlPacket::Srp(SrpMessage::Rreq(rreq))
                } else {
                    packet
                };
                out.push(ProtoEffect::SendControl { packet, next_hop });
            }
            AdversaryKind::Chaos => {
                if ctx.rng.gen_bool(0.25) {
                    // Selective drop: the packet silently vanishes.
                    self.actions += 1;
                } else if ctx.rng.gen_bool(0.25) {
                    // Delay: hold the packet and release it 50–500 ms
                    // later, out of order with the rest of the stream.
                    let token = ADV_TOKEN_BIT | 1 | (self.next_hold << 1);
                    self.next_hold += 1;
                    let delay = SimDuration::from_millis(ctx.rng.gen_range(50..=500));
                    self.held.push((token, packet, next_hop));
                    out.push(ProtoEffect::SetTimer { token, delay });
                    self.actions += 1;
                } else {
                    out.push(ProtoEffect::SendControl { packet, next_hop });
                }
            }
        }
    }

    /// Post-processes an inner callback's effects through the mutation
    /// script.
    fn mangle_all(&mut self, ctx: &mut ProtoCtx<'_>, fx: Vec<ProtoEffect>) -> Vec<ProtoEffect> {
        let mut out = Vec::with_capacity(fx.len());
        for e in fx {
            self.mangle(ctx, e, &mut out);
        }
        out
    }

    /// The periodic heartbeat: replay an overheard packet (Byzantine and
    /// chaos), or flood a whole-cloth forged RREQ under a victim identity
    /// (sybil), then rearm.
    fn tick(&mut self, ctx: &mut ProtoCtx<'_>) -> Vec<ProtoEffect> {
        let mut out = Vec::new();
        match self.kind {
            AdversaryKind::Byzantine | AdversaryKind::Chaos => {
                if !self.cache.is_empty() && ctx.rng.gen_bool(0.7) {
                    let idx = ctx.rng.gen_range(0..self.cache.len());
                    out.push(ProtoEffect::SendControl {
                        packet: self.cache[idx].clone(),
                        next_hop: None,
                    });
                    self.actions += 1;
                }
            }
            AdversaryKind::Sybil => {
                if ctx.rng.gen_bool(0.5) {
                    let src = self.other_node(ctx.rng);
                    let dst = self.other_node(ctx.rng);
                    let mut rreq = SrpRreq {
                        src,
                        rreq_id: (1 << 32) | ctx.rng.gen::<u32>() as u64,
                        dst,
                        dst_seqno: 0,
                        fd: Fraction::one(),
                        unknown: true,
                        reset: false,
                        dest_only: false,
                        no_advert: false,
                        d: ctx.rng.gen_range(0..=2),
                        ttl: 16,
                        src_seqno: 0,
                        src_lfd: Fraction::zero(),
                        src_ld: 0,
                    };
                    Self::forge_rreq_advert(&mut rreq, ctx.rng);
                    out.push(ProtoEffect::SendControl {
                        packet: ControlPacket::Srp(SrpMessage::Rreq(rreq)),
                        next_hop: None,
                    });
                    self.actions += 1;
                }
            }
        }
        out.push(self.arm_tick(ctx));
        out
    }

    /// Schedules the next heartbeat 0.5–1.5 s out (jittered so adversary
    /// traffic does not phase-lock with protocol timers).
    fn arm_tick(&mut self, ctx: &mut ProtoCtx<'_>) -> ProtoEffect {
        ProtoEffect::SetTimer {
            token: ADV_TICK,
            delay: SimDuration::from_millis(ctx.rng.gen_range(500..=1500)),
        }
    }
}

impl RoutingProtocol for Adversary {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn on_start(&mut self, ctx: &mut ProtoCtx<'_>) -> Vec<ProtoEffect> {
        let fx = self.inner.on_start(ctx);
        let mut out = self.mangle_all(ctx, fx);
        out.push(self.arm_tick(ctx));
        out
    }

    fn on_rejoin(&mut self, ctx: &mut ProtoCtx<'_>) -> Vec<ProtoEffect> {
        let fx = self.inner.on_rejoin(ctx);
        let mut out = self.mangle_all(ctx, fx);
        out.push(self.arm_tick(ctx));
        out
    }

    fn on_data_from_app(&mut self, ctx: &mut ProtoCtx<'_>, packet: DataPacket) -> Vec<ProtoEffect> {
        let fx = self.inner.on_data_from_app(ctx, packet);
        self.mangle_all(ctx, fx)
    }

    fn on_data_received(
        &mut self,
        ctx: &mut ProtoCtx<'_>,
        from: NodeId,
        packet: DataPacket,
    ) -> Vec<ProtoEffect> {
        let fx = self.inner.on_data_received(ctx, from, packet);
        self.mangle_all(ctx, fx)
    }

    fn on_control_received(
        &mut self,
        ctx: &mut ProtoCtx<'_>,
        from: NodeId,
        packet: ControlPacket,
    ) -> Vec<ProtoEffect> {
        if matches!(self.kind, AdversaryKind::Byzantine | AdversaryKind::Chaos) {
            self.overhear(&packet);
        }
        let fx = self.inner.on_control_received(ctx, from, packet);
        self.mangle_all(ctx, fx)
    }

    fn on_timer(&mut self, ctx: &mut ProtoCtx<'_>, token: u64) -> Vec<ProtoEffect> {
        if token & ADV_TOKEN_BIT != 0 {
            if token == ADV_TICK {
                return self.tick(ctx);
            }
            // A delayed packet matured; release it.
            if let Some(pos) = self.held.iter().position(|(t, _, _)| *t == token) {
                let (_, packet, next_hop) = self.held.remove(pos);
                return vec![ProtoEffect::SendControl { packet, next_hop }];
            }
            return Vec::new();
        }
        let fx = self.inner.on_timer(ctx, token);
        self.mangle_all(ctx, fx)
    }

    fn on_link_failure(
        &mut self,
        ctx: &mut ProtoCtx<'_>,
        next_hop: NodeId,
        packet: Option<DataPacket>,
    ) -> Vec<ProtoEffect> {
        let fx = self.inner.on_link_failure(ctx, next_hop, packet);
        self.mangle_all(ctx, fx)
    }

    fn stats(&self) -> ProtoStats {
        let mut st = self.inner.stats();
        st.adversarial_actions = self.actions;
        st
    }

    fn adversarial_actions(&self) -> u64 {
        self.actions
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self.inner.as_any()
    }

    fn mem_bytes(&self) -> usize {
        self.inner.mem_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::srp::{Srp, SrpConfig};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use slr_netsim::time::SimTime;

    fn ctx_at(rng: &mut SmallRng, secs: u64) -> ProtoCtx<'_> {
        ProtoCtx {
            now: SimTime::from_secs(secs),
            rng,
        }
    }

    fn adversary(kind: AdversaryKind) -> Adversary {
        let inner = Box::new(Srp::new(3, SrpConfig::default()));
        Adversary::new(inner, kind, 3, 10)
    }

    #[test]
    fn start_arms_heartbeat() {
        let mut a = adversary(AdversaryKind::Byzantine);
        let mut rng = SmallRng::seed_from_u64(7);
        let fx = a.on_start(&mut ctx_at(&mut rng, 0));
        assert!(fx
            .iter()
            .any(|e| matches!(e, ProtoEffect::SetTimer { token, .. } if *token == ADV_TICK)));
    }

    #[test]
    fn sybil_tick_forges_foreign_identity() {
        let mut a = adversary(AdversaryKind::Sybil);
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = a.on_start(&mut ctx_at(&mut rng, 0));
        let mut forged = 0;
        for s in 1..50 {
            for e in a.on_timer(&mut ctx_at(&mut rng, s), ADV_TICK) {
                if let ProtoEffect::SendControl {
                    packet: ControlPacket::Srp(SrpMessage::Rreq(q)),
                    ..
                } = e
                {
                    assert_ne!(q.src, 3, "sybil must not flood under its own name");
                    assert!(q.src < 10);
                    forged += 1;
                }
            }
        }
        assert!(forged > 0, "sybil heartbeat never forged a flood");
        assert!(a.adversarial_actions() > 0);
    }

    #[test]
    fn chaos_delay_round_trips_through_timer() {
        let mut a = adversary(AdversaryKind::Chaos);
        let mut rng = SmallRng::seed_from_u64(2);
        let rerr = ControlPacket::Srp(SrpMessage::Rerr(crate::srp::SrpRerr {
            unreachable: vec![1],
            cold_reboot: false,
        }));
        // Push the same outgoing packet through until a delay fires.
        let mut delayed_token = None;
        for _ in 0..200 {
            let mut out = Vec::new();
            let mut ctx = ctx_at(&mut rng, 1);
            a.mangle(
                &mut ctx,
                ProtoEffect::SendControl {
                    packet: rerr.clone(),
                    next_hop: Some(4),
                },
                &mut out,
            );
            if let Some(ProtoEffect::SetTimer { token, .. }) = out
                .iter()
                .find(|e| matches!(e, ProtoEffect::SetTimer { .. }))
            {
                delayed_token = Some(*token);
                break;
            }
        }
        let token = delayed_token.expect("chaos never delayed in 200 tries");
        let fx = a.on_timer(&mut ctx_at(&mut rng, 2), token);
        assert!(
            matches!(
                &fx[..],
                [ProtoEffect::SendControl { packet, next_hop: Some(4) }] if *packet == rerr
            ),
            "delayed packet must be released verbatim: {fx:?}"
        );
    }

    #[test]
    fn byzantine_replays_overheard_packets() {
        let mut a = adversary(AdversaryKind::Byzantine);
        let mut rng = SmallRng::seed_from_u64(3);
        let rerr = ControlPacket::Srp(SrpMessage::Rerr(crate::srp::SrpRerr {
            unreachable: vec![7],
            cold_reboot: false,
        }));
        let _ = a.on_control_received(&mut ctx_at(&mut rng, 1), 5, rerr.clone());
        let mut replayed = false;
        for s in 2..40 {
            for e in a.on_timer(&mut ctx_at(&mut rng, s), ADV_TICK) {
                if matches!(&e, ProtoEffect::SendControl { packet, .. } if *packet == rerr) {
                    replayed = true;
                }
            }
        }
        assert!(replayed, "byzantine heartbeat never replayed the cache");
    }

    #[test]
    fn oracle_downcast_reaches_inner_srp() {
        let a = adversary(AdversaryKind::Byzantine);
        assert!(a.as_any().downcast_ref::<Srp>().is_some());
    }
}
