//! LDR (Labeled Distance Routing) — baseline protocol.
//!
//! A re-implementation of the protocol from Garcia-Luna-Aceves, Mosko &
//! Perkins, *A new approach to on-demand loop-free routing in ad hoc
//! networks* (PODC 2003), which the paper both cites and measures against.
//! LDR orders nodes with a pair `(sequence number, feasible distance)`
//! where the feasible distance is an **integer** hop count: a node may only
//! adopt a successor whose advertised distance is strictly below its stored
//! feasible distance (at equal sequence numbers). Because integers are not
//! dense, an out-of-order node cannot be inserted between two existing
//! labels; when local repair is impossible the request must reach the
//! destination, which issues a reply with a larger sequence number that
//! resets feasible distances along the path — this is why Fig. 7 shows a
//! small-but-nonzero average sequence number for LDR, between SRP's zero
//! and AODV's steep growth.
//!
//! Reproduction note (documented in DESIGN.md): the original LDR decides
//! "repair impossible" with per-request state; here the originator sets the
//! reset-required flag on retry attempts after a first ring fails, which
//! triggers destination resets at a comparable rate.

use std::collections::HashMap;

use slr_netsim::time::{SimDuration, SimTime};

use crate::api::{
    ControlPacket, DataDropReason, DataPacket, NodeId, PacketBuffer, ProtoCtx, ProtoEffect,
    ProtoStats, RingSchedule, RoutingProtocol,
};

/// LDR route request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LdrRreq {
    /// Originator.
    pub orig: NodeId,
    /// Flood identifier.
    pub rreq_id: u64,
    /// Sought destination.
    pub dst: NodeId,
    /// Requested ordering: destination sequence number.
    pub dst_seqno: u64,
    /// Requested ordering: feasible distance (hops).
    pub fd: u32,
    /// No stored ordering at the issuer.
    pub unknown: bool,
    /// Reset-required: only the destination may answer, with a larger
    /// sequence number.
    pub reset: bool,
    /// Hops traversed.
    pub hop_count: u32,
    /// Remaining flood TTL.
    pub ttl: u8,
}

/// LDR route reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LdrRrep {
    /// Reply terminus (the solicitation's originator).
    pub orig: NodeId,
    /// The flood this answers.
    pub rreq_id: u64,
    /// Advertised destination.
    pub dst: NodeId,
    /// Advertised sequence number.
    pub dst_seqno: u64,
    /// Advertised distance (hops from the replier to `dst`).
    pub dist: u32,
}

/// LDR route error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LdrRerr {
    /// Destinations unreachable through the sender.
    pub unreachable: Vec<NodeId>,
}

/// All LDR control packets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LdrMessage {
    /// Route request.
    Rreq(LdrRreq),
    /// Route reply.
    Rrep(LdrRrep),
    /// Route error.
    Rerr(LdrRerr),
}

impl LdrMessage {
    /// Approximate wire size in bytes.
    pub fn wire_bytes(&self) -> u32 {
        match self {
            LdrMessage::Rreq(_) => 28,
            LdrMessage::Rrep(_) => 24,
            LdrMessage::Rerr(r) => 4 + 4 * r.unreachable.len() as u32,
        }
    }

    /// Packet-type name for statistics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            LdrMessage::Rreq(_) => "ldr-rreq",
            LdrMessage::Rrep(_) => "ldr-rrep",
            LdrMessage::Rerr(_) => "ldr-rerr",
        }
    }
}

/// LDR tunables.
#[derive(Debug, Clone, Copy)]
pub struct LdrConfig {
    /// Active-route lifetime.
    pub route_lifetime: SimDuration,
    /// Per-hop latency estimate for ring timeouts.
    pub per_hop_latency: SimDuration,
    /// Expanding-ring schedule.
    pub ring: RingSchedule,
    /// Route-pending buffer capacity.
    pub buffer_capacity: usize,
    /// Maximum buffering time.
    pub buffer_timeout: SimDuration,
    /// RERR rate limit per destination.
    pub rerr_rate_limit: SimDuration,
}

impl Default for LdrConfig {
    fn default() -> Self {
        LdrConfig {
            route_lifetime: SimDuration::from_secs(10),
            per_hop_latency: SimDuration::from_millis(40),
            ring: RingSchedule::default(),
            buffer_capacity: 64,
            buffer_timeout: SimDuration::from_secs(30),
            rerr_rate_limit: SimDuration::from_secs(1),
        }
    }
}

/// Per-destination state: the `(sn, fd)` label plus the route.
#[derive(Debug, Clone)]
struct DestState {
    seqno: u64,
    /// Feasible distance: non-increasing within a sequence number.
    fd: u32,
    dist: u32,
    next_hop: Option<NodeId>,
    expires: SimTime,
}

#[derive(Debug, Clone, Copy)]
struct Discovery {
    attempt: u32,
}

const DISCOVERY_TOKEN_BIT: u64 = 1 << 61;

fn discovery_token(dst: NodeId, attempt: u32) -> u64 {
    DISCOVERY_TOKEN_BIT | ((attempt as u64) << 32) | dst as u64
}

fn decode_token(token: u64) -> Option<(NodeId, u32)> {
    if token & DISCOVERY_TOKEN_BIT == 0 {
        return None;
    }
    Some((
        (token & 0xFFFF_FFFF) as NodeId,
        ((token >> 32) & 0x1FFF_FFFF) as u32,
    ))
}

/// Engaged-calculation cache: reverse path for replies.
#[derive(Debug, Clone, Copy)]
struct RreqCache {
    last_hop: NodeId,
    replied: bool,
}

/// The LDR instance on one node.
pub struct Ldr {
    node: NodeId,
    cfg: LdrConfig,
    own_seqno: u64,
    seqno_increments: u64,
    next_rreq_id: u64,
    dests: HashMap<NodeId, DestState>,
    rreq_seen: HashMap<(NodeId, u64), RreqCache>,
    discoveries: HashMap<NodeId, Discovery>,
    buffer: PacketBuffer,
    last_rerr: HashMap<NodeId, SimTime>,
    discoveries_started: u64,
    resets_requested: u64,
}

impl Ldr {
    /// Creates the LDR instance for `node`.
    pub fn new(node: NodeId, cfg: LdrConfig) -> Self {
        Ldr {
            node,
            cfg,
            own_seqno: 1,
            seqno_increments: 0,
            next_rreq_id: 0,
            dests: HashMap::new(),
            rreq_seen: HashMap::new(),
            discoveries: HashMap::new(),
            buffer: PacketBuffer::new(cfg.buffer_capacity),
            last_rerr: HashMap::new(),
            discoveries_started: 0,
            resets_requested: 0,
        }
    }

    fn route_active(&self, t: NodeId, now: SimTime) -> bool {
        self.dests
            .get(&t)
            .map(|d| d.next_hop.is_some() && now < d.expires)
            .unwrap_or(false)
    }

    /// Feasibility: may we adopt an advertisement `(sn, dist)`?
    fn feasible(&self, t: NodeId, sn: u64, dist: u32) -> bool {
        match self.dests.get(&t) {
            Some(d) => sn > d.seqno || (sn == d.seqno && dist < d.fd),
            None => true,
        }
    }

    /// Adopt an advertisement from `from` (already checked feasible).
    fn adopt(&mut self, t: NodeId, from: NodeId, sn: u64, dist: u32, now: SimTime) {
        let lifetime = self.cfg.route_lifetime;
        let entry = self.dests.entry(t).or_insert(DestState {
            seqno: sn,
            fd: u32::MAX,
            dist: u32::MAX,
            next_hop: None,
            expires: now + lifetime,
        });
        let new_dist = dist.saturating_add(1);
        if sn > entry.seqno {
            entry.seqno = sn;
            entry.fd = new_dist; // reset the feasible distance
        } else {
            entry.fd = entry.fd.min(new_dist);
        }
        entry.dist = new_dist;
        entry.next_hop = Some(from);
        entry.expires = now + lifetime;
    }

    fn try_forward(&mut self, mut packet: DataPacket, now: SimTime) -> Option<Vec<ProtoEffect>> {
        if !self.route_active(packet.dst, now) {
            return None;
        }
        if packet.ttl == 0 {
            return Some(vec![ProtoEffect::DropData {
                packet,
                reason: DataDropReason::TtlExpired,
            }]);
        }
        let d = self.dests.get_mut(&packet.dst).expect("active");
        d.expires = now + self.cfg.route_lifetime;
        let next_hop = d.next_hop.expect("active");
        packet.ttl -= 1;
        Some(vec![ProtoEffect::SendData { packet, next_hop }])
    }

    fn start_discovery(&mut self, dst: NodeId, now: SimTime, fx: &mut Vec<ProtoEffect>) {
        if self.discoveries.contains_key(&dst) {
            return;
        }
        self.discoveries_started += 1;
        self.send_rreq(dst, 0, now, fx);
    }

    fn send_rreq(&mut self, dst: NodeId, attempt: u32, _now: SimTime, fx: &mut Vec<ProtoEffect>) {
        let Some(ttl) = self.cfg.ring.ttl(attempt) else {
            self.discoveries.remove(&dst);
            for packet in self.buffer.take_for(dst) {
                fx.push(ProtoEffect::DropData {
                    packet,
                    reason: DataDropReason::NoRoute,
                });
            }
            return;
        };
        self.next_rreq_id += 1;
        self.discoveries.insert(dst, Discovery { attempt });
        // Local repair failed once: ask the destination for a reset (see
        // module docs for this approximation).
        let reset = attempt >= 1;
        if reset {
            self.resets_requested += 1;
        }
        let (dst_seqno, fd, unknown) = match self.dests.get(&dst) {
            Some(d) => (d.seqno, d.fd, false),
            None => (0, u32::MAX, true),
        };
        self.rreq_seen.insert(
            (self.node, self.next_rreq_id),
            RreqCache {
                last_hop: self.node,
                replied: false,
            },
        );
        fx.push(ProtoEffect::SendControl {
            packet: ControlPacket::Ldr(LdrMessage::Rreq(LdrRreq {
                orig: self.node,
                rreq_id: self.next_rreq_id,
                dst,
                dst_seqno,
                fd,
                unknown,
                reset,
                hop_count: 0,
                ttl,
            })),
            next_hop: None,
        });
        fx.push(ProtoEffect::SetTimer {
            token: discovery_token(dst, attempt),
            delay: self.cfg.ring.timeout(ttl, self.cfg.per_hop_latency),
        });
    }

    fn flush_buffer(&mut self, dst: NodeId, now: SimTime, fx: &mut Vec<ProtoEffect>) {
        for packet in self.buffer.take_for(dst) {
            match self.try_forward(packet, now) {
                Some(out) => fx.extend(out),
                None => break,
            }
        }
        self.discoveries.remove(&dst);
    }

    fn send_rerr(&mut self, dests: Vec<NodeId>, now: SimTime, fx: &mut Vec<ProtoEffect>) {
        let fresh: Vec<NodeId> = dests
            .into_iter()
            .filter(|d| {
                self.last_rerr
                    .get(d)
                    .map(|t| now.saturating_since(*t) >= self.cfg.rerr_rate_limit)
                    .unwrap_or(true)
            })
            .collect();
        if fresh.is_empty() {
            return;
        }
        for d in &fresh {
            self.last_rerr.insert(*d, now);
        }
        fx.push(ProtoEffect::SendControl {
            packet: ControlPacket::Ldr(LdrMessage::Rerr(LdrRerr { unreachable: fresh })),
            next_hop: None,
        });
    }

    fn handle_rreq(
        &mut self,
        ctx: &mut ProtoCtx<'_>,
        prev: NodeId,
        rreq: LdrRreq,
    ) -> Vec<ProtoEffect> {
        let mut fx = Vec::new();
        let now = ctx.now;
        if rreq.orig == self.node {
            return fx;
        }
        let key = (rreq.orig, rreq.rreq_id);
        if self.rreq_seen.contains_key(&key) {
            return fx;
        }
        self.rreq_seen.insert(
            key,
            RreqCache {
                last_hop: prev,
                replied: false,
            },
        );

        if rreq.dst == self.node {
            // Destination: reset the ordering when asked (or when the
            // request already knows our current sequence number).
            if rreq.reset || (!rreq.unknown && rreq.dst_seqno >= self.own_seqno) {
                self.own_seqno = self.own_seqno.max(rreq.dst_seqno) + 1;
                self.seqno_increments += 1;
            }
            self.rreq_seen.get_mut(&key).expect("present").replied = true;
            fx.push(ProtoEffect::SendControl {
                packet: ControlPacket::Ldr(LdrMessage::Rrep(LdrRrep {
                    orig: rreq.orig,
                    rreq_id: rreq.rreq_id,
                    dst: self.node,
                    dst_seqno: self.own_seqno,
                    dist: 0,
                })),
                next_hop: Some(prev),
            });
            return fx;
        }

        // Intermediate reply: active route that is in-order for the
        // request (the LDR analogue of SDC).
        if self.route_active(rreq.dst, now) && !rreq.reset {
            let d = self.dests.get(&rreq.dst).expect("active");
            let in_order =
                d.seqno > rreq.dst_seqno || (d.seqno == rreq.dst_seqno && d.dist < rreq.fd);
            if in_order {
                let (seqno, dist) = (d.seqno, d.dist);
                self.rreq_seen.get_mut(&key).expect("present").replied = true;
                fx.push(ProtoEffect::SendControl {
                    packet: ControlPacket::Ldr(LdrMessage::Rrep(LdrRrep {
                        orig: rreq.orig,
                        rreq_id: rreq.rreq_id,
                        dst: rreq.dst,
                        dst_seqno: seqno,
                        dist,
                    })),
                    next_hop: Some(prev),
                });
                return fx;
            }
        }

        // Relay, strengthening the requested ordering with our own.
        if rreq.ttl <= 1 {
            return fx;
        }
        let (dst_seqno, fd, unknown) = match self.dests.get(&rreq.dst) {
            Some(d) if !rreq.unknown => {
                if d.seqno > rreq.dst_seqno {
                    (d.seqno, d.fd, false)
                } else if d.seqno == rreq.dst_seqno {
                    (rreq.dst_seqno, rreq.fd.min(d.fd), false)
                } else {
                    (rreq.dst_seqno, rreq.fd, false)
                }
            }
            Some(d) => (d.seqno, d.fd, false),
            None => (rreq.dst_seqno, rreq.fd, rreq.unknown),
        };
        fx.push(ProtoEffect::SendControl {
            packet: ControlPacket::Ldr(LdrMessage::Rreq(LdrRreq {
                dst_seqno,
                fd,
                unknown,
                hop_count: rreq.hop_count + 1,
                ttl: rreq.ttl - 1,
                ..rreq
            })),
            next_hop: None,
        });
        fx
    }

    fn handle_rrep(
        &mut self,
        ctx: &mut ProtoCtx<'_>,
        prev: NodeId,
        rrep: LdrRrep,
    ) -> Vec<ProtoEffect> {
        let mut fx = Vec::new();
        let now = ctx.now;
        let t = rrep.dst;
        let terminus = rrep.orig == self.node;

        if self.feasible(t, rrep.dst_seqno, rrep.dist) {
            self.adopt(t, prev, rrep.dst_seqno, rrep.dist, now);
            if terminus {
                self.flush_buffer(t, now, &mut fx);
                return fx;
            }
            // Relay along the reverse path.
            if let Some(cache) = self.rreq_seen.get_mut(&(rrep.orig, rrep.rreq_id)) {
                if !cache.replied {
                    cache.replied = true;
                    let last_hop = cache.last_hop;
                    let d = self.dests.get(&t).expect("just adopted");
                    fx.push(ProtoEffect::SendControl {
                        packet: ControlPacket::Ldr(LdrMessage::Rrep(LdrRrep {
                            orig: rrep.orig,
                            rreq_id: rrep.rreq_id,
                            dst: t,
                            dst_seqno: d.seqno,
                            dist: d.dist,
                        })),
                        next_hop: Some(last_hop),
                    });
                }
            }
        } else if self.route_active(t, now) {
            // Infeasible, but we hold an in-order route: advertise it.
            if let Some(cache) = self.rreq_seen.get_mut(&(rrep.orig, rrep.rreq_id)) {
                if !cache.replied && !terminus {
                    cache.replied = true;
                    let last_hop = cache.last_hop;
                    let d = self.dests.get(&t).expect("active");
                    fx.push(ProtoEffect::SendControl {
                        packet: ControlPacket::Ldr(LdrMessage::Rrep(LdrRrep {
                            orig: rrep.orig,
                            rreq_id: rrep.rreq_id,
                            dst: t,
                            dst_seqno: d.seqno,
                            dist: d.dist,
                        })),
                        next_hop: Some(last_hop),
                    });
                }
            }
            if terminus {
                self.flush_buffer(t, now, &mut fx);
            }
        }
        fx
    }

    fn handle_rerr(&mut self, now: SimTime, prev: NodeId, rerr: LdrRerr) -> Vec<ProtoEffect> {
        let mut fx = Vec::new();
        let mut lost = Vec::new();
        for t in rerr.unreachable {
            if let Some(d) = self.dests.get_mut(&t) {
                if d.next_hop == Some(prev) {
                    d.next_hop = None;
                    lost.push(t);
                }
            }
        }
        if !lost.is_empty() {
            self.send_rerr(lost, now, &mut fx);
        }
        fx
    }
}

impl RoutingProtocol for Ldr {
    fn name(&self) -> &'static str {
        "LDR"
    }

    fn on_start(&mut self, _ctx: &mut ProtoCtx<'_>) -> Vec<ProtoEffect> {
        Vec::new()
    }

    fn on_data_from_app(&mut self, ctx: &mut ProtoCtx<'_>, packet: DataPacket) -> Vec<ProtoEffect> {
        let now = ctx.now;
        if packet.dst == self.node {
            return vec![ProtoEffect::DeliverLocal(packet)];
        }
        if let Some(fx) = self.try_forward(packet.clone(), now) {
            return fx;
        }
        let mut fx = Vec::new();
        let dst = packet.dst;
        if let Some(overflow) = self.buffer.push(packet, now) {
            fx.push(ProtoEffect::DropData {
                packet: overflow,
                reason: DataDropReason::BufferOverflow,
            });
        }
        self.start_discovery(dst, now, &mut fx);
        fx
    }

    fn on_data_received(
        &mut self,
        ctx: &mut ProtoCtx<'_>,
        from: NodeId,
        packet: DataPacket,
    ) -> Vec<ProtoEffect> {
        let now = ctx.now;
        if packet.dst == self.node {
            return vec![ProtoEffect::DeliverLocal(packet)];
        }
        if let Some(fx) = self.try_forward(packet.clone(), now) {
            return fx;
        }
        let mut fx = Vec::new();
        fx.push(ProtoEffect::SendControl {
            packet: ControlPacket::Ldr(LdrMessage::Rerr(LdrRerr {
                unreachable: vec![packet.dst],
            })),
            next_hop: Some(from),
        });
        let dst = packet.dst;
        if let Some(overflow) = self.buffer.push(packet, now) {
            fx.push(ProtoEffect::DropData {
                packet: overflow,
                reason: DataDropReason::BufferOverflow,
            });
        }
        self.start_discovery(dst, now, &mut fx);
        fx
    }

    fn on_control_received(
        &mut self,
        ctx: &mut ProtoCtx<'_>,
        from: NodeId,
        packet: ControlPacket,
    ) -> Vec<ProtoEffect> {
        let ControlPacket::Ldr(msg) = packet else {
            return Vec::new();
        };
        match msg {
            LdrMessage::Rreq(r) => self.handle_rreq(ctx, from, r),
            LdrMessage::Rrep(r) => self.handle_rrep(ctx, from, r),
            LdrMessage::Rerr(r) => self.handle_rerr(ctx.now, from, r),
        }
    }

    fn on_timer(&mut self, ctx: &mut ProtoCtx<'_>, token: u64) -> Vec<ProtoEffect> {
        let mut fx = Vec::new();
        let now = ctx.now;
        for packet in self.buffer.take_expired(now, self.cfg.buffer_timeout) {
            fx.push(ProtoEffect::DropData {
                packet,
                reason: DataDropReason::BufferTimeout,
            });
        }
        let Some((dst, attempt)) = decode_token(token) else {
            return fx;
        };
        let Some(d) = self.discoveries.get(&dst).copied() else {
            return fx;
        };
        if d.attempt != attempt {
            return fx;
        }
        if self.route_active(dst, now) {
            self.discoveries.remove(&dst);
            return fx;
        }
        self.discoveries.remove(&dst);
        self.discoveries_started += 1;
        self.send_rreq(dst, attempt + 1, now, &mut fx);
        fx
    }

    fn on_link_failure(
        &mut self,
        ctx: &mut ProtoCtx<'_>,
        next_hop: NodeId,
        packet: Option<DataPacket>,
    ) -> Vec<ProtoEffect> {
        let mut fx = Vec::new();
        let now = ctx.now;
        let mut lost = Vec::new();
        for (t, d) in self.dests.iter_mut() {
            if d.next_hop == Some(next_hop) {
                d.next_hop = None;
                lost.push(*t);
            }
        }
        if !lost.is_empty() {
            self.send_rerr(lost, now, &mut fx);
        }
        if let Some(p) = packet {
            let dst = p.dst;
            if let Some(overflow) = self.buffer.push(p, now) {
                fx.push(ProtoEffect::DropData {
                    packet: overflow,
                    reason: DataDropReason::BufferOverflow,
                });
            }
            self.start_discovery(dst, now, &mut fx);
        }
        fx
    }

    fn stats(&self) -> ProtoStats {
        ProtoStats {
            own_seqno_increments: self.seqno_increments,
            max_fd_denominator: 0,
            discoveries: self.discoveries_started,
            resets_requested: self.resets_requested,
            adversarial_actions: 0,
            audit_rejections: 0,
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn ctx_at(rng: &mut SmallRng, secs: u64) -> ProtoCtx<'_> {
        ProtoCtx {
            now: SimTime::from_secs(secs),
            rng,
        }
    }

    fn data(src: NodeId, dst: NodeId, uid: u64) -> DataPacket {
        DataPacket {
            src,
            dst,
            uid,
            origin_time: SimTime::ZERO,
            bytes: 512,
            ttl: 64,
            source_route: None,
        }
    }

    fn rreq_of(fx: &[ProtoEffect]) -> Option<LdrRreq> {
        fx.iter().find_map(|e| match e {
            ProtoEffect::SendControl {
                packet: ControlPacket::Ldr(LdrMessage::Rreq(r)),
                ..
            } => Some(r.clone()),
            _ => None,
        })
    }

    fn rrep_of(fx: &[ProtoEffect]) -> Option<LdrRrep> {
        fx.iter().find_map(|e| match e {
            ProtoEffect::SendControl {
                packet: ControlPacket::Ldr(LdrMessage::Rrep(r)),
                ..
            } => Some(r.clone()),
            _ => None,
        })
    }

    #[test]
    fn three_node_discovery_and_fd() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut a = Ldr::new(0, LdrConfig::default());
        let mut b = Ldr::new(1, LdrConfig::default());
        let mut c = Ldr::new(2, LdrConfig::default());

        let fx = a.on_data_from_app(&mut ctx_at(&mut rng, 1), data(0, 2, 1));
        let rreq = rreq_of(&fx).expect("rreq");
        assert!(rreq.unknown);
        assert!(!rreq.reset, "first attempt does not demand a reset");

        let fx = b.on_control_received(
            &mut ctx_at(&mut rng, 1),
            0,
            ControlPacket::Ldr(LdrMessage::Rreq(rreq)),
        );
        let relayed = rreq_of(&fx).expect("relay");

        let fx = c.on_control_received(
            &mut ctx_at(&mut rng, 1),
            1,
            ControlPacket::Ldr(LdrMessage::Rreq(relayed)),
        );
        let rrep = rrep_of(&fx).expect("destination replies");
        assert_eq!(rrep.dist, 0);

        let fx = b.on_control_received(
            &mut ctx_at(&mut rng, 1),
            2,
            ControlPacket::Ldr(LdrMessage::Rrep(rrep)),
        );
        let rrep2 = rrep_of(&fx).expect("relayed reply");
        assert_eq!(rrep2.dist, 1);

        let _ = a.on_control_received(
            &mut ctx_at(&mut rng, 1),
            1,
            ControlPacket::Ldr(LdrMessage::Rrep(rrep2)),
        );
        assert!(a.route_active(2, SimTime::from_secs(1)));
        let d = a.dests.get(&2).unwrap();
        assert_eq!(d.dist, 2);
        assert_eq!(d.fd, 2, "feasible distance tracks adopted distance");
        // Destination never incremented: the request was unknown.
        assert_eq!(c.stats().own_seqno_increments, 0);
    }

    #[test]
    fn feasibility_blocks_longer_routes_at_same_seqno() {
        let mut ldr = Ldr::new(0, LdrConfig::default());
        ldr.adopt(9, 1, 5, 2, SimTime::from_secs(1)); // fd = 3
        assert!(ldr.feasible(9, 5, 2));
        assert!(
            !ldr.feasible(9, 5, 3),
            "equal-or-longer distance is out of order"
        );
        assert!(ldr.feasible(9, 6, 100), "fresher seqno is always feasible");
    }

    #[test]
    fn fd_resets_on_new_seqno() {
        let mut ldr = Ldr::new(0, LdrConfig::default());
        ldr.adopt(9, 1, 5, 2, SimTime::from_secs(1));
        assert_eq!(ldr.dests.get(&9).unwrap().fd, 3);
        ldr.adopt(9, 2, 6, 9, SimTime::from_secs(2));
        let d = ldr.dests.get(&9).unwrap();
        assert_eq!(d.seqno, 6);
        assert_eq!(d.fd, 10, "new seqno resets the feasible distance");
    }

    #[test]
    fn retry_sets_reset_and_destination_bumps() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut a = Ldr::new(0, LdrConfig::default());
        let _ = a.on_data_from_app(&mut ctx_at(&mut rng, 1), data(0, 9, 1));
        let fx = a.on_timer(&mut ctx_at(&mut rng, 2), discovery_token(9, 0));
        let rreq = rreq_of(&fx).expect("second ring");
        assert!(rreq.reset, "retries demand a destination reset");
        assert_eq!(a.stats().resets_requested, 1);

        let mut t = Ldr::new(9, LdrConfig::default());
        let before = t.own_seqno;
        let fx = t.on_control_received(
            &mut ctx_at(&mut rng, 2),
            5,
            ControlPacket::Ldr(LdrMessage::Rreq(rreq)),
        );
        let rrep = rrep_of(&fx).expect("destination replies");
        assert!(rrep.dst_seqno > before);
        assert_eq!(t.stats().own_seqno_increments, 1);
    }

    #[test]
    fn reset_requests_skip_intermediate_replies() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut b = Ldr::new(1, LdrConfig::default());
        b.adopt(9, 4, 5, 1, SimTime::from_secs(1));
        let rreq = LdrRreq {
            orig: 0,
            rreq_id: 1,
            dst: 9,
            dst_seqno: 5,
            fd: 10,
            unknown: false,
            reset: true,
            hop_count: 0,
            ttl: 5,
        };
        let fx = b.on_control_received(
            &mut ctx_at(&mut rng, 1),
            0,
            ControlPacket::Ldr(LdrMessage::Rreq(rreq.clone())),
        );
        assert!(
            rrep_of(&fx).is_none(),
            "reset requests go to the destination"
        );
        assert!(rreq_of(&fx).is_some());

        // Without the reset bit the same node replies.
        let mut b2 = Ldr::new(1, LdrConfig::default());
        b2.adopt(9, 4, 5, 1, SimTime::from_secs(1));
        let fx = b2.on_control_received(
            &mut ctx_at(&mut rng, 1),
            0,
            ControlPacket::Ldr(LdrMessage::Rreq(LdrRreq {
                reset: false,
                rreq_id: 2,
                ..rreq
            })),
        );
        assert!(rrep_of(&fx).is_some());
    }

    #[test]
    fn link_failure_and_rerr() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut a = Ldr::new(0, LdrConfig::default());
        a.adopt(9, 1, 5, 2, SimTime::from_secs(1));
        let fx = a.on_link_failure(&mut ctx_at(&mut rng, 2), 1, Some(data(3, 9, 7)));
        assert!(!a.route_active(9, SimTime::from_secs(2)));
        assert!(fx.iter().any(|e| matches!(
            e,
            ProtoEffect::SendControl {
                packet: ControlPacket::Ldr(LdrMessage::Rerr(_)),
                ..
            }
        )));
        // The packet is held and a discovery started.
        assert!(rreq_of(&fx).is_some());
        assert!(a.buffer.has_for(9));
    }
}
