//! The Split-label Routing Protocol (SRP) — the paper's contribution.
//!
//! SRP instantiates the SLR class with the composite ordering
//! `O = (sequence number, proper fraction)` from `slr-core`. Route
//! discovery follows AODV's RREQ/RREP/RERR pattern, but:
//!
//! * labels, not hop counts, provide loop freedom: Algorithm 1 picks a new
//!   ordering that provably maintains the DAG (Theorem 6);
//! * a node can be *inserted* between two labels by mediant splitting, so
//!   broken routes repair locally without touching predecessors;
//! * the destination-controlled sequence number changes **only** when a
//!   32-bit fraction would overflow (the T-bit path reset) — in the
//!   paper's simulations it never changed at all (Fig. 7);
//! * SRP is inherently multi-path: any feasible advertisement adds a
//!   successor, and link failures fail over without a new discovery.

pub mod engine;
pub mod messages;

pub use engine::{MultipathPolicy, Srp, SrpConfig};
pub use messages::{SrpMessage, SrpRerr, SrpRrep, SrpRreq};
