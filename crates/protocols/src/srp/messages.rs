//! SRP packet formats (§III of the paper).
//!
//! SRP reuses AODV's RREQ/RREP/RERR packets "with extensive modifications
//! to the packet fields". A RREQ has two parts: the *solicitation*
//! `{src, rreqid, dst, dstseqno, F, d, flags}` and the *advertisement*
//! `{src, srcseqno, lfd, ld, lifetime, flags}` — a node relaying a RREQ
//! with an active route to the source advertises that route, letting the
//! network learn reverse routes for free. The paper adds four flags:
//!
//! * **U** — the solicitation carries no stored ordering for the target;
//! * **T** (`rr`) — reset required: an ordering violation could occur and
//!   the path must be reset by the destination (Eq. 11);
//! * **D** — only the destination may answer (used for the MAX_DENOM
//!   path-reset probe);
//! * **N** — the RREQ is no longer an advertisement for its source.
//!
//! The paper's RACK packet acknowledges RREPs over unreliable links; in
//! this reproduction the MAC's link-layer acknowledgment subsumes it (the
//! harness reports unicast control losses through `on_link_failure`), so no
//! RACK message is defined. See DESIGN.md.

use slr_core::Frac32;

use crate::api::NodeId;

/// A route request: solicitation plus optional source advertisement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SrpRreq {
    /// Issuer of the solicitation.
    pub src: NodeId,
    /// Source-specific flood identifier (controls duplicate suppression).
    pub rreq_id: u64,
    /// The sought destination `T`.
    pub dst: NodeId,
    /// Solicitation ordering: destination sequence number `sn_#`.
    pub dst_seqno: u64,
    /// Solicitation ordering: feasible-distance fraction `F` (with the §V
    /// "lying" heuristic already applied by the issuer).
    pub fd: Frac32,
    /// U bit: the issuer has no stored information about `dst`.
    pub unknown: bool,
    /// T bit (`rr`): reset required (Eq. 11).
    pub reset: bool,
    /// D bit: only the destination may reply.
    pub dest_only: bool,
    /// N bit: this RREQ no longer advertises a route to `src`.
    pub no_advert: bool,
    /// Measured distance traversed so far (hop count with unit costs).
    pub d: u32,
    /// Remaining flood TTL.
    pub ttl: u8,
    /// Advertisement piece: source sequence number.
    pub src_seqno: u64,
    /// Advertisement piece: last-hop feasible distance toward `src`.
    pub src_lfd: Frac32,
    /// Advertisement piece: last-hop measured distance toward `src`.
    pub src_ld: u32,
}

/// A route reply — the advertisement `?` for destination `dst`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SrpRrep {
    /// The solicitation issuer this reply answers (reply terminus).
    pub rreq_src: NodeId,
    /// The solicitation's flood identifier.
    pub rreq_id: u64,
    /// The advertised destination `T`.
    pub dst: NodeId,
    /// Advertised ordering: sequence number.
    pub dst_seqno: u64,
    /// Advertised ordering: last-hop feasible distance `LF`.
    pub lfd: Frac32,
    /// Last-hop measured distance `ld`.
    pub ld: u32,
    /// N bit: the replier could not build a reverse path from the RREQ's
    /// advertisement.
    pub no_reverse: bool,
}

/// A route error: destinations that became unreachable through the sender.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SrpRerr {
    /// Destinations now unreachable via the sender.
    pub unreachable: Vec<NodeId>,
    /// R bit: the sender restarted cold and holds *no* routing state —
    /// every route through it is unreachable, not just the listed ones.
    /// Receivers must purge the sender from every successor set (the
    /// SRP analogue of AODV's post-reboot rule, RFC 3561 §6.13); without
    /// it, stale pre-crash successor edges toward the rebooted node can
    /// close into routing loops once it re-acquires labels.
    pub cold_reboot: bool,
}

/// All SRP control packets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SrpMessage {
    /// Route request.
    Rreq(SrpRreq),
    /// Route reply.
    Rrep(SrpRrep),
    /// Route error.
    Rerr(SrpRerr),
}

impl SrpMessage {
    /// Approximate wire size in bytes.
    pub fn wire_bytes(&self) -> u32 {
        match self {
            // solicitation (28) + advertisement (20)
            SrpMessage::Rreq(_) => 48,
            SrpMessage::Rrep(_) => 36,
            SrpMessage::Rerr(r) => 8 + 4 * r.unreachable.len() as u32,
        }
    }

    /// Packet-type name for statistics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            SrpMessage::Rreq(_) => "srp-rreq",
            SrpMessage::Rrep(_) => "srp-rrep",
            SrpMessage::Rerr(_) => "srp-rerr",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slr_core::Fraction;

    #[test]
    fn wire_sizes() {
        let rreq = SrpMessage::Rreq(SrpRreq {
            src: 1,
            rreq_id: 1,
            dst: 2,
            dst_seqno: 0,
            fd: Fraction::one(),
            unknown: true,
            reset: false,
            dest_only: false,
            no_advert: false,
            d: 0,
            ttl: 5,
            src_seqno: 1,
            src_lfd: Fraction::zero(),
            src_ld: 0,
        });
        assert_eq!(rreq.wire_bytes(), 48);
        assert_eq!(rreq.kind_name(), "srp-rreq");
        let rerr = SrpMessage::Rerr(SrpRerr {
            unreachable: vec![1, 2, 3],
            cold_reboot: false,
        });
        assert_eq!(rerr.wire_bytes(), 20);
    }
}
