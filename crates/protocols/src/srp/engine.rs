//! The SRP protocol engine: Procedures 1–4, Algorithm 1, SDC and the
//! Eq. 9–11 relay rules from §III of the paper.

use slr_core::{
    maintains_order, new_order, reduce_label, Frac32, LabelHandle, LabelInterner, SplitLabel32,
    SuccessorTable,
};
use slr_netsim::time::{SimDuration, SimTime};
use slr_netsim::VecMap;

// The per-node tables behind one alias: compact sorted-vec maps by
// default, the seed's hash maps under `--features legacy-tables`. The
// nightly bit-identity diff builds both and compares `TrialSummary`s;
// nothing in the engine may depend on which representation is active.
#[cfg(feature = "legacy-tables")]
use slr_netsim::hash::FastHashMap as Table;
#[cfg(not(feature = "legacy-tables"))]
use slr_netsim::VecMap as Table;

use crate::api::{
    ControlPacket, DataDropReason, DataPacket, NodeId, PacketBuffer, ProtoCtx, ProtoEffect,
    ProtoStats, RingSchedule, RoutingProtocol,
};
use crate::srp::messages::{SrpMessage, SrpRerr, SrpRrep, SrpRreq};

/// How SRP picks among its feasible successors when forwarding data.
///
/// The paper leaves multipath policy open ("We do not specify a mechanism
/// to choose good multi-paths … A simple implementation of SRP could use a
/// single successor chosen from the min-hop set", §III) and evaluates
/// uni-path SRP (§V). Both options below preserve loop freedom — every
/// successor in the table is feasible by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MultipathPolicy {
    /// Always the minimum-distance successor (the paper's evaluated mode).
    #[default]
    SingleMinHop,
    /// Rotate across all feasible successors per destination — spreads
    /// load over the DAG at the cost of packet reordering.
    RoundRobin,
}

/// SRP tunables (paper defaults).
#[derive(Debug, Clone, Copy)]
pub struct SrpConfig {
    /// Label retention after route invalidation (60 s, §III).
    pub delete_period: SimDuration,
    /// Denominator threshold that triggers a path-reset probe (10⁹, §III).
    pub max_denom: u64,
    /// The §V "lying" scale constant (k = 10000).
    pub lie_k: u64,
    /// Minimum hops a RREQ must travel before an intermediate node may
    /// reply (§V's false-positive-RREP heuristic).
    pub min_reply_hops: u32,
    /// Active-route lifetime without use.
    pub route_lifetime: SimDuration,
    /// Per-hop latency estimate for ring timeouts (Procedure 1).
    pub per_hop_latency: SimDuration,
    /// Expanding-ring TTL schedule.
    pub ring: RingSchedule,
    /// Route-pending packet buffer capacity.
    pub buffer_capacity: usize,
    /// Maximum time a packet may wait for a route.
    pub buffer_timeout: SimDuration,
    /// Minimum spacing between RERRs for the same destination.
    pub rerr_rate_limit: SimDuration,
    /// Whether a source receiving an N-bit RREP increases its own sequence
    /// number and sends a D-bit probe so intermediate nodes rebuild routes
    /// to it (§III). Replies already follow the cached reverse path, so
    /// with unidirectional traffic the probe buys nothing — and the paper's
    /// Fig. 7 shows SRP's sequence number never moving, so this defaults to
    /// `false` (see DESIGN.md).
    pub probe_on_no_reverse: bool,
    /// Data-plane successor choice (§III leaves this open; the paper's
    /// evaluation is uni-path).
    pub multipath: MultipathPolicy,
    /// Feasible-distance denominator at which Set Route attempts the
    /// Farey reduction of §VI (replace the raw mediant with
    /// [`slr_core::reduce_label`]'s simplest order-preserving fraction).
    /// The default, `2^27`, sits above the largest denominator any
    /// registry family reaches (~8.0×10⁷), so default runs adopt exactly
    /// the paper's unreduced mediants bit for bit; scale profiles lower
    /// it to bound label width under churn.
    pub reduce_den_threshold: u32,
    /// Retention horizon for engaged-calculation cache entries
    /// (`rreq_seen`). An engaged entry is only consulted while its flood's
    /// reply can still arrive — bounded by the largest ring timeout
    /// (2 × 64 hops × per-hop latency ≈ 5 s) — so entries older than this
    /// are dead weight; without the sweep the cache grows by one entry
    /// per flood forever, the dominant per-node leak at 100k nodes.
    pub rreq_cache_lifetime: SimDuration,
}

impl Default for SrpConfig {
    fn default() -> Self {
        SrpConfig {
            delete_period: SimDuration::from_secs(60),
            max_denom: 1_000_000_000,
            lie_k: 10_000,
            min_reply_hops: 2,
            route_lifetime: SimDuration::from_secs(10),
            per_hop_latency: SimDuration::from_millis(40),
            ring: RingSchedule::default(),
            buffer_capacity: 64,
            buffer_timeout: SimDuration::from_secs(30),
            rerr_rate_limit: SimDuration::from_secs(1),
            probe_on_no_reverse: false,
            multipath: MultipathPolicy::SingleMinHop,
            reduce_den_threshold: 1 << 27,
            rreq_cache_lifetime: SimDuration::from_secs(120),
        }
    }
}

/// Per-destination routing state (`O_A^T`, `d_A^T`, `S_A^T`).
#[derive(Debug, Clone)]
struct DestState {
    label: SplitLabel32,
    dist: u32,
    succs: SuccessorTable<NodeId, u32>,
    /// Last confirmation time per successor — the advertisement or
    /// data-plane use that vouched for the recorded ordering. An entry
    /// unconfirmed for ROUTE_LIFETIME is pruned: a recorded ordering is
    /// only evidence about the neighbor's label while the neighbor could
    /// not yet have invalidated *and forgotten* it, and DELETE_PERIOD >
    /// ROUTE_LIFETIME guarantees every stale entry pointing at a node
    /// dies before that node may restart its label (Definition 3).
    /// Without this, `expires` — refreshed by *any* advert or use for
    /// the destination — keeps individual stale entries alive forever,
    /// and a neighbor that forgot and re-adopted a regressed label at
    /// the same sequence number closes a successor cycle the per-node
    /// order checks cannot see.
    fresh: VecMap<NodeId, SimTime>,
    /// Route expiry (refreshed on use). The route is *active* while
    /// `now < expires` and the successor set is non-empty (Definition 2).
    expires: SimTime,
    /// When the cached label may be forgotten (DELETE_PERIOD after the
    /// route became invalid); `None` while the route is active.
    forget_at: Option<SimTime>,
    /// Round-robin cursor for [`MultipathPolicy::RoundRobin`].
    rr_counter: u32,
}

impl DestState {
    fn unassigned() -> Self {
        DestState {
            label: SplitLabel32::unassigned(),
            dist: u32::MAX,
            succs: SuccessorTable::new(),
            fresh: VecMap::new(),
            expires: SimTime::ZERO,
            forget_at: None,
            rr_counter: 0,
        }
    }
}

/// Engaged-calculation cache entry (Procedure 2): `{A, ID_A, O_#, lasthop}`.
///
/// The cached solicitation ordering is an interned [`LabelHandle`] — the
/// flood delivers the same few orderings to every node it reaches, and
/// this cache is the highest-population table at scale.
#[derive(Debug, Clone, Copy)]
struct RreqCache {
    cached: LabelHandle,
    last_hop: NodeId,
    replied: bool,
    /// When the entry was created, for the amortized retention sweep.
    seen_at: SimTime,
}

/// An in-progress route discovery at this node.
#[derive(Debug, Clone, Copy)]
struct Discovery {
    attempt: u32,
}

/// Heap bytes held by a protocol table (capacity, not length), for either
/// representation behind the [`Table`] alias.
#[cfg(not(feature = "legacy-tables"))]
fn table_mem<K: Ord + Copy, V>(t: &Table<K, V>) -> usize {
    t.mem_bytes()
}

/// Open-addressing estimate: capacity × (entry + one control byte).
#[cfg(feature = "legacy-tables")]
fn table_mem<K, V>(t: &Table<K, V>) -> usize {
    t.capacity() * (std::mem::size_of::<(K, V)>() + 1)
}

const DISCOVERY_TOKEN_BIT: u64 = 1 << 63;

fn discovery_token(dst: NodeId, attempt: u32) -> u64 {
    DISCOVERY_TOKEN_BIT | ((attempt as u64) << 32) | dst as u64
}

fn decode_token(token: u64) -> Option<(NodeId, u32)> {
    if token & DISCOVERY_TOKEN_BIT == 0 {
        return None;
    }
    Some((
        (token & 0xFFFF_FFFF) as NodeId,
        ((token >> 32) & 0x7FFF_FFFF) as u32,
    ))
}

/// The Split-label Routing Protocol instance on one node.
///
/// `Clone` exists for the model checker (`slr-check`), which snapshots
/// whole instances while enumerating interleavings; the simulation
/// harness never clones a live protocol.
#[derive(Clone)]
pub struct Srp {
    node: NodeId,
    cfg: SrpConfig,
    /// Our own destination sequence number (64-bit, non-zero at init,
    /// Definition 7). Only we may increment it.
    own_seqno: u64,
    seqno_increments: u64,
    dests: Table<NodeId, DestState>,
    rreq_seen: Table<(NodeId, u64), RreqCache>,
    next_rreq_id: u64,
    discoveries: Table<NodeId, Discovery>,
    buffer: PacketBuffer,
    last_rerr: Table<NodeId, SimTime>,
    /// The highest destination sequence number ever *held* per
    /// destination. Unlike the label, this survives DELETE_PERIOD
    /// forgetting (the AODV §6.13 discipline): a destination's sequence
    /// number never decreases in honest operation, so an advertisement
    /// below the floor is provably stale or forged and re-adopting it
    /// after the label was forgotten can close a routing loop two honest
    /// nodes' local order checks cannot see.
    seqno_floor: Table<NodeId, u64>,
    /// Interner backing the [`RreqCache`] handles (per node: the protocol
    /// state machine owns no trial-wide shared state, and the parallel
    /// engine ships instances across threads).
    interner: LabelInterner<u32>,
    /// Next time the amortized `rreq_seen`/`last_rerr` sweep runs.
    next_prune_at: SimTime,
    max_denominator: u64,
    discoveries_started: u64,
    resets_requested: u64,
}

impl Srp {
    /// Creates the SRP instance for `node`.
    pub fn new(node: NodeId, cfg: SrpConfig) -> Self {
        Srp {
            node,
            cfg,
            own_seqno: 1,
            seqno_increments: 0,
            dests: Table::default(),
            rreq_seen: Table::default(),
            next_rreq_id: 0,
            discoveries: Table::default(),
            buffer: PacketBuffer::new(cfg.buffer_capacity),
            last_rerr: Table::default(),
            seqno_floor: Table::default(),
            interner: LabelInterner::new(),
            next_prune_at: SimTime::ZERO,
            max_denominator: 1,
            discoveries_started: 0,
            resets_requested: 0,
        }
    }

    /// Amortized retention sweep: drop engaged-calculation entries whose
    /// flood can no longer produce a reply, and rate-limit stamps old
    /// enough to be no-ops. Runs at most once per
    /// [`SrpConfig::rreq_cache_lifetime`], from the paths that insert
    /// into the swept tables, so a node's tables are bounded by its
    /// *recent* flood arrival rate instead of growing for the whole
    /// trial. Purely age-based, so behavior is identical under both
    /// table representations.
    fn prune_caches(&mut self, now: SimTime) {
        if now < self.next_prune_at {
            return;
        }
        let lifetime = self.cfg.rreq_cache_lifetime;
        self.next_prune_at = now + lifetime;
        self.rreq_seen
            .retain(|_, c| now.saturating_since(c.seen_at) < lifetime);
        let rate_limit = self.cfg.rerr_rate_limit;
        self.last_rerr
            .retain(|_, t| now.saturating_since(*t) < rate_limit);
        self.rreq_seen.shrink_to_fit();
        self.last_rerr.shrink_to_fit();
    }

    /// Live heap bytes of this node's protocol state: every table, the
    /// per-destination successor/freshness sets, the route-pending buffer
    /// and the label interner. Counts capacities (what the allocator
    /// holds), not lengths.
    pub fn mem_bytes(&self) -> usize {
        let dest_inner: usize = self
            .dests
            .values()
            .map(|ds| ds.succs.mem_bytes() + ds.fresh.mem_bytes())
            .sum();
        table_mem(&self.dests)
            + dest_inner
            + table_mem(&self.rreq_seen)
            + table_mem(&self.discoveries)
            + table_mem(&self.last_rerr)
            + table_mem(&self.seqno_floor)
            + self.interner.mem_bytes()
            + self.buffer.mem_bytes()
    }

    /// Our current label (ordering) for destination `t`.
    fn label_for(&mut self, t: NodeId, now: SimTime) -> SplitLabel32 {
        if t == self.node {
            return SplitLabel32::destination(self.own_seqno);
        }
        match self.dests.get(&t) {
            Some(ds) => {
                if let Some(forget) = ds.forget_at {
                    if now >= forget {
                        self.dests.remove(&t);
                        return SplitLabel32::unassigned();
                    }
                }
                ds.label
            }
            None => SplitLabel32::unassigned(),
        }
    }

    /// Per-entry expiry: drop successors whose recorded ordering has not
    /// been re-confirmed (advertisement or data-plane use) within
    /// ROUTE_LIFETIME, invalidating the route if the set empties. This is
    /// the half of Definition 2 the per-destination `expires` clock cannot
    /// provide — see the `fresh` field.
    fn prune_stale_succs(&mut self, t: NodeId, now: SimTime) {
        // Test-only regression flag: disable the PR 7 fix so the model
        // checker can re-find the DELETE_PERIOD equal-seqno re-adoption
        // loop. Never enabled in a shipping build.
        if cfg!(feature = "regress-pr7-entry-expiry") {
            return;
        }
        let lifetime = self.cfg.route_lifetime;
        let Some(ds) = self.dests.get_mut(&t) else {
            return;
        };
        let stale: Vec<NodeId> = ds
            .succs
            .iter()
            .map(|(n, _)| *n)
            .filter(|n| {
                ds.fresh
                    .get(n)
                    .map(|t0| now.saturating_since(*t0) >= lifetime)
                    .unwrap_or(false)
            })
            .collect();
        if stale.is_empty() {
            return;
        }
        for n in stale {
            ds.succs.remove(&n);
            ds.fresh.remove(&n);
        }
        if ds.succs.is_empty() && ds.forget_at.is_none() {
            ds.forget_at = Some(now + self.cfg.delete_period);
        }
    }

    /// Whether we have an active route to `t` (Definition 2), applying
    /// lazy expiry.
    fn route_active(&mut self, t: NodeId, now: SimTime) -> bool {
        self.prune_stale_succs(t, now);
        let expired = match self.dests.get(&t) {
            Some(ds) => !ds.succs.is_empty() && now >= ds.expires,
            None => false,
        };
        if expired {
            self.invalidate(t, now);
        }
        self.dests
            .get(&t)
            .map(|ds| !ds.succs.is_empty())
            .unwrap_or(false)
    }

    /// Invalidates the route to `t`, starting the DELETE_PERIOD clock on
    /// its label (Definition 3).
    fn invalidate(&mut self, t: NodeId, now: SimTime) {
        if let Some(ds) = self.dests.get_mut(&t) {
            ds.succs.clear();
            if ds.forget_at.is_none() {
                ds.forget_at = Some(now + self.cfg.delete_period);
            }
        }
    }

    /// Forwards a data packet via a feasible successor chosen by the
    /// configured [`MultipathPolicy`]. Returns `None` if no active route
    /// exists.
    fn try_forward(&mut self, mut packet: DataPacket, now: SimTime) -> Option<Vec<ProtoEffect>> {
        if !self.route_active(packet.dst, now) {
            return None;
        }
        if packet.ttl == 0 {
            return Some(vec![ProtoEffect::DropData {
                packet,
                reason: DataDropReason::TtlExpired,
            }]);
        }
        let policy = self.cfg.multipath;
        let ds = self.dests.get_mut(&packet.dst).expect("active route");
        let next_hop = match policy {
            MultipathPolicy::SingleMinHop => ds.succs.best_successor().expect("active route").0,
            MultipathPolicy::RoundRobin => {
                let hops: Vec<NodeId> = ds.succs.iter().map(|(n, _)| *n).collect();
                let pick = hops[ds.rr_counter as usize % hops.len()];
                ds.rr_counter = ds.rr_counter.wrapping_add(1);
                pick
            }
        };
        ds.expires = now + self.cfg.route_lifetime;
        ds.fresh.insert(next_hop, now);
        packet.ttl -= 1;
        Some(vec![ProtoEffect::SendData { packet, next_hop }])
    }

    /// Procedure 1 (*Initiate Solicitation*) and its retries.
    fn start_discovery(&mut self, dst: NodeId, now: SimTime, fx: &mut Vec<ProtoEffect>) {
        if self.discoveries.contains_key(&dst) {
            return; // already active for this destination
        }
        self.discoveries_started += 1;
        self.send_rreq(dst, 0, false, now, fx);
    }

    fn send_rreq(
        &mut self,
        dst: NodeId,
        attempt: u32,
        reset: bool,
        now: SimTime,
        fx: &mut Vec<ProtoEffect>,
    ) {
        let Some(ttl) = self.cfg.ring.ttl(attempt) else {
            // Attempts exhausted: fail the discovery.
            self.discoveries.remove(&dst);
            for packet in self.buffer.take_for(dst) {
                fx.push(ProtoEffect::DropData {
                    packet,
                    reason: DataDropReason::NoRoute,
                });
            }
            return;
        };
        self.next_rreq_id += 1;
        let rreq_id = self.next_rreq_id;
        self.discoveries.insert(dst, Discovery { attempt });

        let label = self.label_for(dst, now);
        let unknown = label.is_unassigned();
        // The §V lying heuristic: understate the advertised ordering so
        // only strictly better nodes reply.
        let fd = if unknown {
            Frac32::one()
        } else {
            label
                .fd()
                .lie_down(self.cfg.lie_k)
                .unwrap_or_else(Frac32::one)
        };
        let rreq = SrpRreq {
            src: self.node,
            rreq_id,
            dst,
            dst_seqno: label.seqno(),
            fd,
            unknown,
            reset,
            dest_only: false,
            no_advert: false,
            d: 0,
            ttl,
            src_seqno: self.own_seqno,
            src_lfd: Frac32::zero(),
            src_ld: 0,
        };
        // We are *active* for our own calculation: mark engaged so the
        // flood cannot re-enter.
        let cached = self.interner.intern(SplitLabel32::unassigned());
        self.rreq_seen.insert(
            (self.node, rreq_id),
            RreqCache {
                cached,
                last_hop: self.node,
                replied: false,
                seen_at: now,
            },
        );
        fx.push(ProtoEffect::SendControl {
            packet: ControlPacket::Srp(SrpMessage::Rreq(rreq)),
            next_hop: None,
        });
        fx.push(ProtoEffect::SetTimer {
            token: discovery_token(dst, attempt),
            delay: self.cfg.ring.timeout(ttl, self.cfg.per_hop_latency),
        });
    }

    /// Procedure 3 (*Set Route*): process a feasible advertisement from
    /// `from` for destination `t`. Returns the adopted new label, or `None`
    /// if the advertisement had to be dropped.
    fn set_route(
        &mut self,
        t: NodeId,
        from: NodeId,
        adv: SplitLabel32,
        adv_dist: u32,
        cached: SplitLabel32,
        now: SimTime,
    ) -> Option<SplitLabel32> {
        if t == self.node {
            return None;
        }
        self.prune_stale_succs(t, now);
        let own = self.label_for(t, now);
        if !own.precedes(&adv) {
            return None; // infeasible at this node
        }
        // DELETE_PERIOD forgetting erases the label but not the
        // sequence-number floor: once this node has held seqno `s` for
        // `t`, an advertisement below `s` is stale (or forged — honest
        // destinations never decrease their number) and adopting it
        // fresh would restart the order from a point other nodes'
        // recorded orderings have already moved past.
        if adv.seqno() < self.seqno_floor.get(&t).copied().unwrap_or(0) {
            return None;
        }
        let g = new_order(own, cached, adv);
        if !g.label.is_finite() {
            return None;
        }
        // Theorem 6 only guarantees the result maintains order under
        // Facts 1–2 (own ≺ adv, cached ≺ adv). Fact 1 is checked above;
        // Fact 2 holds by construction of the cached solicitation in
        // honest operation, but a forged advertisement can violate it —
        // e.g. adv == cached makes the split mediant *equal* its bounds
        // instead of lying strictly between them, and installing that
        // label breaks the Eq. 5 successor invariant the loop-freedom
        // proof rests on. Re-verify Definition 1 and drop otherwise.
        if !maintains_order(&g.label, &own, &cached, &adv, None) {
            return None;
        }
        // §VI Farey reduction: once the raw mediant's denominator crosses
        // the configured width threshold, adopt the *simplest* fraction
        // satisfying the same Definition 1 inequalities instead. The
        // successor floor keeps every same-seqno successor that survives
        // line 13 strictly below the reduced label (Eq. 6).
        let mut adopted = g.label;
        if adopted.fd().den() >= self.cfg.reduce_den_threshold {
            let succ_floor = self.dests.get(&t).and_then(|ds| {
                ds.succs
                    .iter()
                    .map(|(_, e)| e.label)
                    .filter(|l| adopted.precedes(l) && l.seqno() == adopted.seqno())
                    .map(|l| l.fd())
                    .max()
            });
            if let Some(r) = reduce_label(&g.label, &own, &cached, &adv, succ_floor) {
                adopted = r;
            }
        }
        let ds = self.dests.entry(t).or_insert_with(DestState::unassigned);
        ds.label = adopted;
        // Line 13 of Algorithm 1.
        ds.succs.prune_out_of_order(&adopted);
        let dist = adv_dist.saturating_add(1);
        ds.succs.insert(from, adv, dist);
        ds.fresh.insert(from, now);
        ds.dist = ds
            .succs
            .best_successor()
            .map(|(_, e)| e.distance)
            .unwrap_or(dist);
        ds.expires = now + self.cfg.route_lifetime;
        ds.forget_at = None;
        let floor = self.seqno_floor.entry(t).or_insert(0);
        *floor = (*floor).max(adopted.seqno());
        let den = adopted.fd().den() as u64;
        if den > self.max_denominator {
            self.max_denominator = den;
        }
        // Debug builds re-verify the Definition 1 invariants at the only
        // point that installs or rewrites successor entries, so every
        // integration/proptest run invariant-checks for free. Release
        // builds compile this out (the 100k-node scale profile is
        // untouched).
        #[cfg(debug_assertions)]
        self.debug_assert_local_order(t);
        Some(adopted)
    }

    /// Definition 1 (Eq. 5) and the floor/label consistency checks for
    /// one destination's installed successor set, as hard assertions.
    /// Compiled only under `debug_assertions`; both historical SRP loops
    /// were *globally* cyclic while every node stayed locally order-clean,
    /// so these asserts must hold even under the `regress-*` flags — the
    /// global half (Theorem 3 acyclicity) needs the model checker's
    /// cross-node view.
    #[cfg(debug_assertions)]
    fn debug_assert_local_order(&self, t: NodeId) {
        use slr_core::invariant::{check_edge_order, SuccessorEdge};
        let Some(ds) = self.dests.get(&t) else {
            return;
        };
        let edges: Vec<SuccessorEdge<u32>> = ds
            .succs
            .iter()
            .map(|(n, e)| SuccessorEdge {
                from: self.node,
                to: *n,
                own: ds.label,
                recorded: e.label,
            })
            .collect();
        if let Err(v) = check_edge_order(t, &edges) {
            panic!("SRP local invariant broken at node {}: {v}", self.node);
        }
        let floor = self.seqno_floor.get(&t).copied().unwrap_or(0);
        assert!(
            ds.succs.is_empty() || floor >= ds.label.seqno(),
            "node {}: seqno floor {} below installed label seqno {} for dest {}",
            self.node,
            floor,
            ds.label.seqno(),
            t
        );
    }

    /// Flush buffered packets toward `dst` once a route exists.
    fn flush_buffer(&mut self, dst: NodeId, now: SimTime, fx: &mut Vec<ProtoEffect>) {
        for packet in self.buffer.take_for(dst) {
            match self.try_forward(packet, now) {
                Some(out) => fx.extend(out),
                None => break,
            }
        }
        self.discoveries.remove(&dst);
    }

    /// Broadcast a RERR for `dests` (rate-limited per destination).
    fn send_rerr(&mut self, dests: Vec<NodeId>, now: SimTime, fx: &mut Vec<ProtoEffect>) {
        let fresh: Vec<NodeId> = dests
            .into_iter()
            .filter(|d| {
                self.last_rerr
                    .get(d)
                    .map(|t| now.saturating_since(*t) >= self.cfg.rerr_rate_limit)
                    .unwrap_or(true)
            })
            .collect();
        if fresh.is_empty() {
            return;
        }
        for d in &fresh {
            self.last_rerr.insert(*d, now);
        }
        fx.push(ProtoEffect::SendControl {
            packet: ControlPacket::Srp(SrpMessage::Rerr(SrpRerr {
                unreachable: fresh,
                cold_reboot: false,
            })),
            next_hop: None,
        });
    }

    /// Procedure 2 (*Relay Solicitation*) plus destination/SDC replies.
    fn handle_rreq(
        &mut self,
        ctx: &mut ProtoCtx<'_>,
        prev: NodeId,
        rreq: SrpRreq,
    ) -> Vec<ProtoEffect> {
        let mut fx = Vec::new();
        let now = ctx.now;
        self.prune_caches(now);
        if rreq.src == self.node {
            return fx; // our own flood echoed back
        }
        let key = (rreq.src, rreq.rreq_id);
        if self.rreq_seen.contains_key(&key) {
            return fx; // not passive for this calculation
        }

        // Learn the route to the source from the RREQ's advertisement
        // piece (Procedure 3 with an unassigned cached ordering).
        let mut reverse_built = true;
        if !rreq.no_advert {
            let adv = SplitLabel32::new(rreq.src_seqno, rreq.src_lfd);
            // The advertisement's measured distance grows with the flood.
            if self
                .set_route(rreq.src, prev, adv, rreq.d, SplitLabel32::unassigned(), now)
                .is_none()
                && !self.route_active(rreq.src, now)
            {
                reverse_built = false;
            }
        } else {
            reverse_built = self.route_active(rreq.src, now);
        }

        // The solicitation is direct evidence its originator currently
        // has no usable route to the destination. If the originator is
        // still in our successor set for that destination — possible only
        // when our state outlived its (it restarted cold faster than our
        // route expired) — answering from that route would hand it a path
        // through itself and close a two-node cycle the moment it adopts
        // the reply. Drop the stale edge first.
        // (`regress-pr2-cold-reboot` disables this purge — together with
        // the cold-reboot RERR in `on_rejoin` — so the model checker can
        // re-find the PR 2 crash–rejoin cycle. Never enabled in a
        // shipping build.)
        let stale_requester = if cfg!(feature = "regress-pr2-cold-reboot") {
            false
        } else {
            match self.dests.get_mut(&rreq.dst) {
                Some(ds) if ds.succs.contains(&rreq.src) => {
                    ds.succs.remove(&rreq.src);
                    ds.succs.is_empty()
                }
                _ => false,
            }
        };
        if stale_requester {
            self.invalidate(rreq.dst, now);
        }

        // Become engaged: cache {A, ID_A, O_#, lasthop}.
        let solicited = if rreq.unknown {
            SplitLabel32::unassigned()
        } else {
            SplitLabel32::new(rreq.dst_seqno, rreq.fd)
        };
        let cached = self.interner.intern(solicited);
        self.rreq_seen.insert(
            key,
            RreqCache {
                cached,
                last_hop: prev,
                replied: false,
                seen_at: now,
            },
        );

        // Destination reply: T may respond to any solicitation for itself.
        if rreq.dst == self.node {
            if rreq.reset {
                // A reset must carry a strictly larger sequence number.
                self.own_seqno = self.own_seqno.max(rreq.dst_seqno) + 1;
                self.seqno_increments += 1;
            } else if !rreq.unknown && rreq.dst_seqno > self.own_seqno {
                // Stale-clock guard: the network can never legitimately
                // know a larger seqno, but be safe (64-bit timestamps make
                // this unreachable in practice).
                self.own_seqno = rreq.dst_seqno + 1;
                self.seqno_increments += 1;
            }
            self.rreq_seen.get_mut(&key).expect("just inserted").replied = true;
            fx.push(ProtoEffect::SendControl {
                packet: ControlPacket::Srp(SrpMessage::Rrep(SrpRrep {
                    rreq_src: rreq.src,
                    rreq_id: rreq.rreq_id,
                    dst: self.node,
                    dst_seqno: self.own_seqno,
                    lfd: Frac32::zero(),
                    ld: 0,
                    no_reverse: !reverse_built,
                })),
                next_hop: Some(prev),
            });
            return fx;
        }

        // Intermediate reply under the Start Distance Condition, gated by
        // the §V several-hops heuristic and the D bit.
        let own = self.label_for(rreq.dst, now);
        let sdc = self.route_active(rreq.dst, now)
            && (own.seqno() > rreq.dst_seqno || (solicited.precedes(&own) && !rreq.reset));
        if sdc && !rreq.dest_only && rreq.d >= self.cfg.min_reply_hops {
            let ds = self.dests.get(&rreq.dst).expect("active route");
            let (label, dist) = (ds.label, ds.dist);
            self.rreq_seen.get_mut(&key).expect("just inserted").replied = true;
            fx.push(ProtoEffect::SendControl {
                packet: ControlPacket::Srp(SrpMessage::Rrep(SrpRrep {
                    rreq_src: rreq.src,
                    rreq_id: rreq.rreq_id,
                    dst: rreq.dst,
                    dst_seqno: label.seqno(),
                    lfd: label.fd(),
                    ld: dist,
                    no_reverse: !reverse_built,
                })),
                next_hop: Some(prev),
            });
            return fx;
        }

        // Relay (Eqs. 9–11).
        if rreq.ttl <= 1 {
            return fx; // flood exhausted
        }
        let own_unassigned = own.is_unassigned();
        let new_ordering = if rreq.unknown && own_unassigned {
            SplitLabel32::unassigned()
        } else if own.seqno() > rreq.dst_seqno {
            own
        } else if own.seqno() == rreq.dst_seqno && !own_unassigned {
            SplitLabel32::min_label(own, solicited)
        } else {
            solicited
        };
        let new_reset = if (rreq.unknown && own_unassigned) || own.seqno() > rreq.dst_seqno {
            false
        } else if !solicited.precedes(&own) && rreq.fd.mediant_overflows(&own.fd()) {
            true
        } else {
            rreq.reset
        };

        // Advertisement piece for the relayed RREQ: our route to the source.
        let (no_advert, src_seqno, src_lfd, src_ld) = if self.route_active(rreq.src, now) {
            let srcs = self.dests.get(&rreq.src).expect("active route");
            (false, srcs.label.seqno(), srcs.label.fd(), srcs.dist)
        } else {
            (true, rreq.src_seqno, rreq.src_lfd, rreq.src_ld)
        };

        let relayed = SrpRreq {
            src: rreq.src,
            rreq_id: rreq.rreq_id,
            dst: rreq.dst,
            dst_seqno: new_ordering.seqno(),
            fd: new_ordering.fd(),
            unknown: new_ordering.is_unassigned(),
            reset: new_reset,
            dest_only: rreq.dest_only,
            no_advert,
            d: rreq.d + 1,
            ttl: rreq.ttl - 1,
            src_seqno,
            src_lfd,
            src_ld,
        };
        // D-bit probes travel the unicast forward path; floods broadcast.
        let next_hop = if rreq.dest_only {
            if self.route_active(rreq.dst, now) {
                self.dests
                    .get(&rreq.dst)
                    .and_then(|ds| ds.succs.best_successor())
                    .map(|(n, _)| n)
            } else {
                None // cannot advance a probe without a route: drop
            }
        } else {
            None
        };
        if rreq.dest_only && next_hop.is_none() {
            return fx;
        }
        fx.push(ProtoEffect::SendControl {
            packet: ControlPacket::Srp(SrpMessage::Rreq(relayed)),
            next_hop,
        });
        fx
    }

    /// Procedures 3–4: process and possibly relay an advertisement.
    fn handle_rrep(
        &mut self,
        ctx: &mut ProtoCtx<'_>,
        _prev_from: NodeId,
        rrep: SrpRrep,
    ) -> Vec<ProtoEffect> {
        let mut fx = Vec::new();
        let now = ctx.now;
        let from = _prev_from;
        let t = rrep.dst;
        let terminus = rrep.rreq_src == self.node;
        let adv = SplitLabel32::new(rrep.dst_seqno, rrep.lfd);

        let cache = self.rreq_seen.get(&(rrep.rreq_src, rrep.rreq_id)).cloned();
        // Procedure 3: the terminus (and nodes without a cached ordering)
        // use the unassigned cached ordering.
        let cached = if terminus {
            SplitLabel32::unassigned()
        } else {
            match &cache {
                Some(c) => self.interner.get(c.cached),
                None => return fx, // not engaged: cannot route the reply
            }
        };

        match self.set_route(t, from, adv, rrep.ld, cached, now) {
            Some(new_label) => {
                if terminus {
                    self.flush_buffer(t, now, &mut fx);
                    // MAX_DENOM reset probe (Procedure 3).
                    if new_label.fd().den() as u64 > self.cfg.max_denom {
                        self.resets_requested += 1;
                        self.send_reset_probe(t, now, &mut fx);
                    }
                    if rrep.no_reverse && self.cfg.probe_on_no_reverse {
                        // §III: the source should increase its sequence
                        // number and probe so the reverse path gets built.
                        // Off by default — replies follow the cached
                        // reverse path, and Fig. 7 of the paper shows the
                        // SRP sequence number never moving.
                        self.own_seqno += 1;
                        self.seqno_increments += 1;
                        self.send_reset_probe(t, now, &mut fx);
                    }
                } else if let Some(c) = cache {
                    if !c.replied {
                        self.rreq_seen
                            .get_mut(&(rrep.rreq_src, rrep.rreq_id))
                            .expect("present")
                            .replied = true;
                        let ds = self.dests.get(&t).expect("route just set");
                        fx.push(ProtoEffect::SendControl {
                            packet: ControlPacket::Srp(SrpMessage::Rrep(SrpRrep {
                                rreq_src: rrep.rreq_src,
                                rreq_id: rrep.rreq_id,
                                dst: t,
                                dst_seqno: ds.label.seqno(),
                                lfd: ds.label.fd(),
                                ld: ds.dist,
                                no_reverse: rrep.no_reverse,
                            })),
                            next_hop: Some(c.last_hop),
                        });
                    }
                }
            }
            None => {
                // Infeasible: a relay with an active route may issue a new
                // advertisement from its own label (Procedure 4); otherwise
                // the advertisement dies here.
                if !terminus && self.route_active(t, now) {
                    if let Some(c) = cache {
                        if !c.replied {
                            self.rreq_seen
                                .get_mut(&(rrep.rreq_src, rrep.rreq_id))
                                .expect("present")
                                .replied = true;
                            let ds = self.dests.get(&t).expect("active route");
                            fx.push(ProtoEffect::SendControl {
                                packet: ControlPacket::Srp(SrpMessage::Rrep(SrpRrep {
                                    rreq_src: rrep.rreq_src,
                                    rreq_id: rrep.rreq_id,
                                    dst: t,
                                    dst_seqno: ds.label.seqno(),
                                    lfd: ds.label.fd(),
                                    ld: ds.dist,
                                    no_reverse: rrep.no_reverse,
                                })),
                                next_hop: Some(c.last_hop),
                            });
                        }
                    }
                } else if terminus && self.route_active(t, now) {
                    // An infeasible reply but some route exists: use it.
                    self.flush_buffer(t, now, &mut fx);
                }
            }
        }
        fx
    }

    /// Sends the unicast D-bit path-reset probe toward `t`.
    fn send_reset_probe(&mut self, t: NodeId, now: SimTime, fx: &mut Vec<ProtoEffect>) {
        if !self.route_active(t, now) {
            return;
        }
        let next = self
            .dests
            .get(&t)
            .and_then(|ds| ds.succs.best_successor())
            .map(|(n, _)| n)
            .expect("active route");
        self.next_rreq_id += 1;
        let label = self.label_for(t, now);
        let rreq = SrpRreq {
            src: self.node,
            rreq_id: self.next_rreq_id,
            dst: t,
            dst_seqno: label.seqno(),
            fd: label.fd(),
            unknown: label.is_unassigned(),
            reset: true,
            dest_only: true,
            no_advert: false,
            d: 0,
            ttl: 64,
            src_seqno: self.own_seqno,
            src_lfd: Frac32::zero(),
            src_ld: 0,
        };
        let cached = self.interner.intern(SplitLabel32::unassigned());
        self.rreq_seen.insert(
            (self.node, self.next_rreq_id),
            RreqCache {
                cached,
                last_hop: self.node,
                replied: false,
                seen_at: now,
            },
        );
        fx.push(ProtoEffect::SendControl {
            packet: ControlPacket::Srp(SrpMessage::Rreq(rreq)),
            next_hop: Some(next),
        });
    }

    fn handle_rerr(&mut self, now: SimTime, prev: NodeId, rerr: SrpRerr) -> Vec<ProtoEffect> {
        let mut fx = Vec::new();
        let mut lost = Vec::new();
        // R bit: the sender rebooted cold, so *every* successor edge
        // toward it is stale — purge it from all destinations, not just
        // the listed ones. Keeping any such edge would let the rebooted
        // node (label-unassigned, so it accepts any route offer) adopt a
        // path back through us and close a loop.
        if rerr.cold_reboot {
            // Ascending destination order, so the RERR cascade is
            // identical under both table representations.
            let mut dests: Vec<NodeId> = self.dests.keys().copied().collect();
            dests.sort_unstable();
            for t in dests {
                let ds = self.dests.get_mut(&t).expect("iterating keys");
                if ds.succs.contains(&prev) {
                    ds.succs.remove(&prev);
                    if ds.succs.is_empty() {
                        self.invalidate(t, now);
                        lost.push(t);
                    }
                }
            }
        }
        for t in rerr.unreachable {
            let became_invalid = {
                match self.dests.get_mut(&t) {
                    Some(ds) if ds.succs.contains(&prev) => {
                        ds.succs.remove(&prev);
                        ds.succs.is_empty()
                    }
                    _ => false,
                }
            };
            if became_invalid {
                self.invalidate(t, now);
                lost.push(t);
            }
        }
        if !lost.is_empty() {
            self.send_rerr(lost, now, &mut fx);
        }
        fx
    }
}

impl RoutingProtocol for Srp {
    fn name(&self) -> &'static str {
        "SRP"
    }

    fn on_start(&mut self, _ctx: &mut ProtoCtx<'_>) -> Vec<ProtoEffect> {
        Vec::new() // purely on-demand
    }

    fn on_rejoin(&mut self, _ctx: &mut ProtoCtx<'_>) -> Vec<ProtoEffect> {
        // Test-only regression flag (see `prune_stale_succs` for the
        // PR 7 twin): silence the cold-reboot announcement so the model
        // checker can re-find the PR 2 crash–rejoin cycle.
        if cfg!(feature = "regress-pr2-cold-reboot") {
            return Vec::new();
        }
        // Cold reboot: announce it so neighbors purge every stale
        // successor edge toward this node before it re-acquires labels
        // (see [`SrpRerr::cold_reboot`]). Without the announcement, a
        // neighbor still routing through us — its route outlived our
        // crash — could answer our upcoming solicitations from that very
        // route and the successor graph would close into a loop.
        vec![ProtoEffect::SendControl {
            packet: ControlPacket::Srp(SrpMessage::Rerr(SrpRerr {
                unreachable: Vec::new(),
                cold_reboot: true,
            })),
            next_hop: None,
        }]
    }

    fn on_data_from_app(&mut self, ctx: &mut ProtoCtx<'_>, packet: DataPacket) -> Vec<ProtoEffect> {
        let now = ctx.now;
        if packet.dst == self.node {
            return vec![ProtoEffect::DeliverLocal(packet)];
        }
        if let Some(fx) = self.try_forward(packet.clone(), now) {
            return fx;
        }
        let mut fx = Vec::new();
        let dst = packet.dst;
        if let Some(overflow) = self.buffer.push(packet, now) {
            fx.push(ProtoEffect::DropData {
                packet: overflow,
                reason: DataDropReason::BufferOverflow,
            });
        }
        self.start_discovery(dst, now, &mut fx);
        fx
    }

    fn on_data_received(
        &mut self,
        ctx: &mut ProtoCtx<'_>,
        from: NodeId,
        packet: DataPacket,
    ) -> Vec<ProtoEffect> {
        let now = ctx.now;
        if packet.dst == self.node {
            return vec![ProtoEffect::DeliverLocal(packet)];
        }
        if let Some(fx) = self.try_forward(packet.clone(), now) {
            return fx;
        }
        // No successor: route error to the data packet's last hop (§II),
        // then hold the packet and repair locally.
        let mut fx = Vec::new();
        fx.push(ProtoEffect::SendControl {
            packet: ControlPacket::Srp(SrpMessage::Rerr(SrpRerr {
                unreachable: vec![packet.dst],
                cold_reboot: false,
            })),
            next_hop: Some(from),
        });
        let dst = packet.dst;
        if let Some(overflow) = self.buffer.push(packet, now) {
            fx.push(ProtoEffect::DropData {
                packet: overflow,
                reason: DataDropReason::BufferOverflow,
            });
        }
        self.start_discovery(dst, now, &mut fx);
        fx
    }

    fn on_control_received(
        &mut self,
        ctx: &mut ProtoCtx<'_>,
        from: NodeId,
        packet: ControlPacket,
    ) -> Vec<ProtoEffect> {
        let ControlPacket::Srp(msg) = packet else {
            return Vec::new();
        };
        match msg {
            SrpMessage::Rreq(r) => self.handle_rreq(ctx, from, r),
            SrpMessage::Rrep(r) => self.handle_rrep(ctx, from, r),
            SrpMessage::Rerr(r) => self.handle_rerr(ctx.now, from, r),
        }
    }

    fn on_timer(&mut self, ctx: &mut ProtoCtx<'_>, token: u64) -> Vec<ProtoEffect> {
        let mut fx = Vec::new();
        let now = ctx.now;
        self.prune_caches(now);
        // Sweep stale buffered packets on any timer activity.
        for packet in self.buffer.take_expired(now, self.cfg.buffer_timeout) {
            fx.push(ProtoEffect::DropData {
                packet,
                reason: DataDropReason::BufferTimeout,
            });
        }
        let Some((dst, attempt)) = decode_token(token) else {
            return fx;
        };
        let Some(d) = self.discoveries.get(&dst).copied() else {
            return fx; // discovery already satisfied
        };
        if d.attempt != attempt {
            return fx; // stale timer from an earlier attempt
        }
        if self.route_active(dst, now) {
            self.discoveries.remove(&dst);
            return fx;
        }
        self.discoveries.remove(&dst);
        // Re-issue with the next ring TTL (keeps rr=false: SRP resets are
        // label-driven, not retry-driven).
        self.discoveries_started += 1;
        self.send_rreq(dst, attempt + 1, false, now, &mut fx);
        fx
    }

    fn on_link_failure(
        &mut self,
        ctx: &mut ProtoCtx<'_>,
        next_hop: NodeId,
        packet: Option<DataPacket>,
    ) -> Vec<ProtoEffect> {
        let mut fx = Vec::new();
        let now = ctx.now;
        // Break the next hop everywhere (ascending destination order, so
        // the RERR cascade is identical under both table representations).
        let mut lost = Vec::new();
        let mut dests: Vec<NodeId> = self.dests.keys().copied().collect();
        dests.sort_unstable();
        for t in dests {
            let ds = self.dests.get_mut(&t).expect("iterating keys");
            if ds.succs.contains(&next_hop) {
                ds.succs.remove(&next_hop);
                if ds.succs.is_empty() {
                    self.invalidate(t, now);
                    lost.push(t);
                }
            }
        }
        if !lost.is_empty() {
            self.send_rerr(lost, now, &mut fx);
        }
        // Packet cache: resend the dropped packet over an alternate
        // successor, or repair.
        if let Some(p) = packet {
            match self.try_forward(p.clone(), now) {
                Some(out) => fx.extend(out),
                None => {
                    let dst = p.dst;
                    if let Some(overflow) = self.buffer.push(p, now) {
                        fx.push(ProtoEffect::DropData {
                            packet: overflow,
                            reason: DataDropReason::BufferOverflow,
                        });
                    }
                    self.start_discovery(dst, now, &mut fx);
                }
            }
        }
        fx
    }

    fn stats(&self) -> ProtoStats {
        ProtoStats {
            own_seqno_increments: self.seqno_increments,
            max_fd_denominator: self.max_denominator,
            discoveries: self.discoveries_started,
            resets_requested: self.resets_requested,
            adversarial_actions: 0,
            audit_rejections: 0,
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn mem_bytes(&self) -> usize {
        Srp::mem_bytes(self)
    }
}

impl Srp {
    /// This node's current ordering for `dst` (oracle introspection; does
    /// not apply DELETE_PERIOD expiry).
    pub fn oracle_label(&self, dst: NodeId) -> SplitLabel32 {
        if dst == self.node {
            return SplitLabel32::destination(self.own_seqno);
        }
        self.dests
            .get(&dst)
            .map(|d| d.label)
            .unwrap_or_else(SplitLabel32::unassigned)
    }

    /// Current successors toward `dst` with their recorded advertisement
    /// orderings (oracle introspection). Applies the same per-entry
    /// freshness horizon as the engine's own pruning, lazily: expiry is
    /// evaluated on query, so an entry the protocol would never act on
    /// again must not appear in the oracle's successor graph either.
    pub fn oracle_successors(&self, dst: NodeId, now: SimTime) -> Vec<(NodeId, SplitLabel32)> {
        let lifetime = self.cfg.route_lifetime;
        self.dests
            .get(&dst)
            .map(|d| {
                d.succs
                    .iter()
                    .filter(|(n, _)| {
                        // Mirror the engine: under the PR 7 regression
                        // flag the freshness horizon does not exist, so
                        // the oracle graph must keep stale entries too.
                        cfg!(feature = "regress-pr7-entry-expiry")
                            || d.fresh
                                .get(n)
                                .map(|t0| now.saturating_since(*t0) < lifetime)
                                .unwrap_or(true)
                    })
                    .map(|(n, e)| (*n, e.label))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Destinations with any successor state (oracle introspection).
    pub fn oracle_destinations(&self) -> Vec<NodeId> {
        self.dests
            .iter()
            .filter(|(_, d)| !d.succs.is_empty())
            .map(|(t, _)| *t)
            .collect()
    }
}

/// Canonical state serialization for the model checker: every
/// behavior-relevant field, with stored absolute times rewritten as
/// deltas from `now` (clamped at the horizon that governs them) so two
/// states that behave identically hash identically regardless of the
/// absolute clock. Pure statistics counters (`seqno_increments`,
/// `discoveries_started`, `resets_requested`, `max_denominator`) are
/// excluded — they never influence a protocol decision.
#[cfg(feature = "model-check")]
impl crate::model::ModelCheckable for Srp {
    fn model_canonical(&self, now: SimTime, out: &mut Vec<u8>) {
        fn put(out: &mut Vec<u8>, v: u64) {
            out.extend_from_slice(&v.to_le_bytes());
        }
        fn put_label(out: &mut Vec<u8>, l: &SplitLabel32) {
            put(out, l.seqno());
            put(out, l.fd().num() as u64);
            put(out, l.fd().den() as u64);
        }
        /// Age of a stored stamp, saturated at `cap` — ages at or past
        /// the horizon are behaviorally identical.
        fn age(out: &mut Vec<u8>, now: SimTime, then: SimTime, cap: SimDuration) {
            put(
                out,
                now.saturating_since(then).as_nanos().min(cap.as_nanos()),
            );
        }
        /// Time remaining until a stored deadline (0 once passed).
        fn remaining(out: &mut Vec<u8>, deadline: SimTime, now: SimTime) {
            put(out, deadline.saturating_since(now).as_nanos());
        }

        put(out, 0xA0);
        put(out, self.node as u64);
        put(out, self.own_seqno);
        put(out, self.next_rreq_id);

        put(out, 0xA1);
        let mut dest_keys: Vec<NodeId> = self.dests.keys().copied().collect();
        dest_keys.sort_unstable();
        put(out, dest_keys.len() as u64);
        for t in dest_keys {
            let ds = self.dests.get(&t).expect("iterating keys");
            put(out, t as u64);
            put_label(out, &ds.label);
            put(out, ds.dist as u64);
            put(out, ds.succs.len() as u64);
            for (n, e) in ds.succs.iter() {
                put(out, *n as u64);
                put_label(out, &e.label);
                put(out, e.distance as u64);
            }
            let mut fresh: Vec<(NodeId, SimTime)> =
                ds.fresh.iter().map(|(n, t0)| (*n, *t0)).collect();
            fresh.sort_unstable_by_key(|(n, _)| *n);
            put(out, fresh.len() as u64);
            for (n, t0) in fresh {
                put(out, n as u64);
                age(out, now, t0, self.cfg.route_lifetime);
            }
            remaining(out, ds.expires, now);
            match ds.forget_at {
                None => put(out, u64::MAX),
                Some(f) => remaining(out, f, now),
            }
            put(out, ds.rr_counter as u64);
        }

        put(out, 0xA2);
        let mut seen_keys: Vec<(NodeId, u64)> = self.rreq_seen.keys().copied().collect();
        seen_keys.sort_unstable();
        put(out, seen_keys.len() as u64);
        for key in seen_keys {
            let c = self.rreq_seen.get(&key).expect("iterating keys");
            put(out, key.0 as u64);
            put(out, key.1);
            put_label(out, &self.interner.get(c.cached));
            put(out, c.last_hop as u64);
            put(out, c.replied as u64);
            age(out, now, c.seen_at, self.cfg.rreq_cache_lifetime);
        }

        put(out, 0xA3);
        let mut disc_keys: Vec<NodeId> = self.discoveries.keys().copied().collect();
        disc_keys.sort_unstable();
        put(out, disc_keys.len() as u64);
        for dst in disc_keys {
            put(out, dst as u64);
            put(
                out,
                self.discoveries.get(&dst).expect("iterating keys").attempt as u64,
            );
        }

        put(out, 0xA4);
        put(out, self.buffer.len() as u64);
        for (p, enq) in self.buffer.iter() {
            // `origin_time` is a delivery-latency stat, never a protocol
            // input: mask it so the clock cannot leak into the hash.
            put(out, p.src as u64);
            put(out, p.dst as u64);
            put(out, p.uid);
            put(out, p.bytes as u64);
            put(out, p.ttl as u64);
            age(out, now, enq, self.cfg.buffer_timeout);
        }

        put(out, 0xA5);
        let mut rerr_keys: Vec<NodeId> = self.last_rerr.keys().copied().collect();
        rerr_keys.sort_unstable();
        put(out, rerr_keys.len() as u64);
        for d in rerr_keys {
            put(out, d as u64);
            age(
                out,
                now,
                *self.last_rerr.get(&d).expect("iterating keys"),
                self.cfg.rerr_rate_limit,
            );
        }

        put(out, 0xA6);
        let mut floor_keys: Vec<NodeId> = self.seqno_floor.keys().copied().collect();
        floor_keys.sort_unstable();
        put(out, floor_keys.len() as u64);
        for d in floor_keys {
            put(out, d as u64);
            put(out, *self.seqno_floor.get(&d).expect("iterating keys"));
        }

        put(out, 0xA7);
        remaining(out, self.next_prune_at, now);
    }

    fn model_label(&self, dst: NodeId) -> SplitLabel32 {
        self.oracle_label(dst)
    }

    fn model_successors(&self, dst: NodeId, now: SimTime) -> Vec<(NodeId, SplitLabel32)> {
        self.oracle_successors(dst, now)
    }

    fn model_destinations(&self) -> Vec<NodeId> {
        self.oracle_destinations()
    }

    fn model_seqno_floor(&self, dst: NodeId) -> u64 {
        self.seqno_floor.get(&dst).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use slr_core::Fraction;

    fn ctx_at(rng: &mut SmallRng, secs: u64) -> ProtoCtx<'_> {
        ProtoCtx {
            now: SimTime::from_secs(secs),
            rng,
        }
    }

    fn data(src: NodeId, dst: NodeId, uid: u64) -> DataPacket {
        DataPacket {
            src,
            dst,
            uid,
            origin_time: SimTime::ZERO,
            bytes: 512,
            ttl: 64,
            source_route: None,
        }
    }

    fn rreq_of(fx: &[ProtoEffect]) -> Option<SrpRreq> {
        fx.iter().find_map(|e| match e {
            ProtoEffect::SendControl {
                packet: ControlPacket::Srp(SrpMessage::Rreq(r)),
                ..
            } => Some(r.clone()),
            _ => None,
        })
    }

    fn rrep_of(fx: &[ProtoEffect]) -> Option<(SrpRrep, Option<NodeId>)> {
        fx.iter().find_map(|e| match e {
            ProtoEffect::SendControl {
                packet: ControlPacket::Srp(SrpMessage::Rrep(r)),
                next_hop,
            } => Some((r.clone(), *next_hop)),
            _ => None,
        })
    }

    /// End-to-end discovery over the line 0–1–2 (0 seeks 2).
    #[test]
    fn three_node_discovery_builds_labels() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut a = Srp::new(0, SrpConfig::default());
        let mut b = Srp::new(1, SrpConfig::default());
        let mut c = Srp::new(2, SrpConfig::default());

        // 0 originates data for 2: buffers + RREQ.
        let fx = a.on_data_from_app(&mut ctx_at(&mut rng, 1), data(0, 2, 1));
        let rreq = rreq_of(&fx).expect("RREQ issued");
        assert!(rreq.unknown, "no stored ordering for 2");
        assert_eq!(rreq.d, 0);

        // 1 relays.
        let fx = b.on_control_received(
            &mut ctx_at(&mut rng, 1),
            0,
            ControlPacket::Srp(SrpMessage::Rreq(rreq)),
        );
        let relayed = rreq_of(&fx).expect("relayed");
        assert_eq!(relayed.d, 1);
        assert!(relayed.unknown);

        // 2 (the destination) replies.
        let fx = c.on_control_received(
            &mut ctx_at(&mut rng, 1),
            1,
            ControlPacket::Srp(SrpMessage::Rreq(relayed)),
        );
        let (rrep, nh) = rrep_of(&fx).expect("destination replies");
        assert_eq!(nh, Some(1));
        assert!(rrep.lfd.is_zero(), "destination advertises 0/1");
        assert_eq!(rrep.ld, 0);

        // 1 adopts label 1/2 (next-element of 0/1) and relays to 0.
        let fx = b.on_control_received(
            &mut ctx_at(&mut rng, 1),
            2,
            ControlPacket::Srp(SrpMessage::Rrep(rrep)),
        );
        let (rrep2, nh2) = rrep_of(&fx).expect("relayed reply");
        assert_eq!(nh2, Some(0));
        assert_eq!(rrep2.lfd, Fraction::new(1, 2).unwrap());
        assert_eq!(rrep2.ld, 1);

        // 0 adopts 2/3 and flushes the buffered packet toward 1.
        let fx = a.on_control_received(
            &mut ctx_at(&mut rng, 1),
            1,
            ControlPacket::Srp(SrpMessage::Rrep(rrep2)),
        );
        assert!(
            fx.iter()
                .any(|e| matches!(e, ProtoEffect::SendData { next_hop: 1, .. })),
            "{fx:?}"
        );
        assert_eq!(
            a.label_for(2, SimTime::from_secs(1)).fd(),
            Fraction::new(2, 3).unwrap()
        );
        // Sequence numbers never moved (the Fig. 7 invariant).
        assert_eq!(a.stats().own_seqno_increments, 0);
        assert_eq!(b.stats().own_seqno_increments, 0);
        assert_eq!(c.stats().own_seqno_increments, 0);
    }

    /// Regression: a forged advertisement equal to the cached solicitation
    /// ordering violates Fact 2 and makes Algorithm 1's split mediant
    /// degenerate — mediant(1/2, 1/2) = 2/4, numerically *equal* to its
    /// bounds instead of strictly between them. Installing it would record
    /// a successor ordering the node's own label does not strictly precede
    /// (Eq. 5), the invariant Theorem 3's loop-freedom proof rests on.
    /// Set Route must drop the advertisement instead.
    #[test]
    fn forged_degenerate_mediant_advertisement_is_dropped() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut b = Srp::new(1, SrpConfig::default());
        let half = Fraction::new(1, 2).unwrap();
        // Engaged relay whose cached minimum-predecessor ordering is
        // (3, 1/2) for the flood (src 0, id 7).
        let cached = b.interner.intern(SplitLabel32::new(3, half));
        b.rreq_seen.insert(
            (0, 7),
            RreqCache {
                cached,
                last_hop: 0,
                replied: false,
                seen_at: SimTime::ZERO,
            },
        );
        // A reply advertising *exactly* the cached ordering — honest
        // repliers always advertise a strictly lower one.
        let forged = SrpRrep {
            rreq_src: 0,
            rreq_id: 7,
            dst: 9,
            dst_seqno: 3,
            lfd: half,
            ld: 1,
            no_reverse: false,
        };
        let fx = b.on_control_received(
            &mut ctx_at(&mut rng, 2),
            5,
            ControlPacket::Srp(SrpMessage::Rrep(forged)),
        );
        assert!(
            rrep_of(&fx).is_none(),
            "forged reply must not be relayed: {fx:?}"
        );
        assert!(
            !b.label_for(9, SimTime::from_secs(2)).is_finite(),
            "no label may be installed from degenerate bounds"
        );
    }

    /// Regression: the per-destination sequence-number floor survives
    /// DELETE_PERIOD forgetting. Forged floods can carry non-monotone
    /// victim sequence numbers; a node that once held seqno 3 for a
    /// destination and then forgot its label must not re-adopt the
    /// destination at seqno 1 — that restarts the order from a point the
    /// network's recorded orderings have moved past, and two honest
    /// nodes doing so can close a cycle no local order check sees.
    #[test]
    fn seqno_floor_survives_label_forgetting() {
        let mut b = Srp::new(1, SrpConfig::default());
        let now = SimTime::from_secs(1);
        // Adopt dest 9 at seqno 3 via neighbor 2.
        let adv = SplitLabel32::new(3, Fraction::new(1, 2).unwrap());
        assert!(b
            .set_route(9, 2, adv, 1, SplitLabel32::unassigned(), now)
            .is_some());
        // Invalidate and let DELETE_PERIOD pass: the label is forgotten.
        b.invalidate(9, now);
        let later = now + b.cfg.delete_period + SimDuration::from_secs(1);
        assert!(!b.label_for(9, later).is_finite(), "label forgotten");
        // A staler advertisement (seqno 1) must stay rejected...
        let stale = SplitLabel32::new(1, Fraction::new(1, 4).unwrap());
        assert!(
            b.set_route(9, 5, stale, 1, SplitLabel32::unassigned(), later)
                .is_none(),
            "below-floor advertisement re-adopted after forgetting"
        );
        // ...while one at or above the floor is still usable.
        let fresh = SplitLabel32::new(3, Fraction::new(1, 4).unwrap());
        assert!(b
            .set_route(9, 5, fresh, 1, SplitLabel32::unassigned(), later)
            .is_some());
    }

    #[test]
    fn unconfirmed_successor_entry_expires_within_route_lifetime() {
        // Bug harvest (sybil audit, seed 1, trial 9): node 13 forgot its
        // label for dest 10 after DELETE_PERIOD, then passively
        // re-adopted a *regressed* ordering at the same sequence number
        // through node 9 — which still held the successor entry recorded
        // from 13's old label, because per-destination route refreshes
        // (driven by unrelated adverts) kept the whole DestState alive.
        // The two honest nodes formed a successor cycle no local order
        // check could see. The fix: a successor entry unconfirmed for
        // ROUTE_LIFETIME is pruned, and ROUTE_LIFETIME < DELETE_PERIOD
        // guarantees every stale entry pointing at a node is gone before
        // that node may restart its label.
        let cfg = SrpConfig::default();
        assert!(
            cfg.delete_period > cfg.route_lifetime,
            "per-entry expiry is only sound if entries die before labels may restart"
        );
        let mut b = Srp::new(9, cfg);
        let now = SimTime::from_secs(1);
        // Two successors toward dest 10: the destination itself and 13.
        let direct = SplitLabel32::new(17, Fraction::new(0, 1).unwrap());
        let via_13 = SplitLabel32::new(17, Fraction::new(2, 3).unwrap());
        assert!(b
            .set_route(10, 13, via_13, 2, SplitLabel32::unassigned(), now)
            .is_some());
        assert!(b
            .set_route(10, 10, direct, 0, SplitLabel32::unassigned(), now)
            .is_some());
        // Keep the *route* alive through fresh direct adverts while 13
        // stays silent past ROUTE_LIFETIME — exactly the refresh pattern
        // that used to immortalize the stale entry.
        let later = now + b.cfg.route_lifetime + SimDuration::from_secs(1);
        assert!(b
            .set_route(10, 10, direct, 0, SplitLabel32::unassigned(), later)
            .is_some());
        assert!(b.route_active(10, later), "route itself stays active");
        let succs = b.oracle_successors(10, later);
        assert!(
            succs.iter().all(|(n, _)| *n != 13),
            "unconfirmed entry for 13 must be pruned: {succs:?}"
        );
        assert!(
            succs.iter().any(|(n, _)| *n == 10),
            "freshly confirmed successor must survive"
        );
    }

    #[test]
    fn lying_heuristic_applied_to_rreq() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut a = Srp::new(0, SrpConfig::default());
        // Give node 0 a label for destination 9 by feeding it a reply.
        let cached = a.interner.intern(SplitLabel32::unassigned());
        a.rreq_seen.insert(
            (0, 999),
            RreqCache {
                cached,
                last_hop: 0,
                replied: false,
                seen_at: SimTime::ZERO,
            },
        );
        let rrep = SrpRrep {
            rreq_src: 0,
            rreq_id: 999,
            dst: 9,
            dst_seqno: 5,
            lfd: Fraction::new(1, 2).unwrap(),
            ld: 1,
            no_reverse: false,
        };
        let _ = a.on_control_received(
            &mut ctx_at(&mut rng, 1),
            3,
            ControlPacket::Srp(SrpMessage::Rrep(rrep)),
        );
        let label = a.label_for(9, SimTime::from_secs(1));
        assert_eq!(label.fd(), Fraction::new(2, 3).unwrap());

        // Invalidate the route but keep the label; a new discovery lies.
        a.invalidate(9, SimTime::from_secs(2));
        let fx = a.on_data_from_app(&mut ctx_at(&mut rng, 3), data(0, 9, 7));
        let rreq = rreq_of(&fx).expect("discovery starts");
        assert!(!rreq.unknown);
        // True ordering 2/3 → lie (2-1)/(3-1) = 1/2.
        assert_eq!(rreq.fd, Fraction::new(1, 2).unwrap());
        assert_eq!(rreq.dst_seqno, 5);
    }

    #[test]
    fn intermediate_reply_requires_min_hops_and_sdc() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut b = Srp::new(1, SrpConfig::default());
        // Node 1 holds an active route to 9 with label (5, 1/2).
        let cached = b.interner.intern(SplitLabel32::unassigned());
        b.rreq_seen.insert(
            (1, 999),
            RreqCache {
                cached,
                last_hop: 1,
                replied: false,
                seen_at: SimTime::ZERO,
            },
        );
        let seed_rrep = SrpRrep {
            rreq_src: 1,
            rreq_id: 999,
            dst: 9,
            dst_seqno: 5,
            lfd: Fraction::new(1, 3).unwrap(),
            ld: 1,
            no_reverse: false,
        };
        let _ = b.on_control_received(
            &mut ctx_at(&mut rng, 1),
            4,
            ControlPacket::Srp(SrpMessage::Rrep(seed_rrep)),
        );
        assert!(b.route_active(9, SimTime::from_secs(1)));

        // A solicitation that has traveled 0 hops: heuristic blocks reply.
        let rreq = SrpRreq {
            src: 7,
            rreq_id: 1,
            dst: 9,
            dst_seqno: 5,
            fd: Fraction::new(3, 4).unwrap(),
            unknown: false,
            reset: false,
            dest_only: false,
            no_advert: true,
            d: 0,
            ttl: 5,
            src_seqno: 1,
            src_lfd: Frac32::one(),
            src_ld: 0,
        };
        let fx = b.on_control_received(
            &mut ctx_at(&mut rng, 1),
            7,
            ControlPacket::Srp(SrpMessage::Rreq(rreq.clone())),
        );
        assert!(rrep_of(&fx).is_none(), "0-hop RREQ must not be answered");
        assert!(rreq_of(&fx).is_some(), "relayed instead");

        // Same solicitation after 2 hops (fresh rreq id): SDC satisfied
        // (solicited (5, 3/4) ≺ ours (5, ~1/2-range)) → reply.
        let rreq2 = SrpRreq {
            rreq_id: 2,
            d: 2,
            ..rreq
        };
        let fx = b.on_control_received(
            &mut ctx_at(&mut rng, 1),
            7,
            ControlPacket::Srp(SrpMessage::Rreq(rreq2.clone())),
        );
        let (rrep, _) = rrep_of(&fx).expect("SDC reply after 2 hops");
        assert_eq!(rrep.dst, 9);

        // Out-of-order solicitation (fraction below ours) with same seqno:
        // SDC fails → relay only.
        let rreq3 = SrpRreq {
            rreq_id: 3,
            d: 2,
            fd: Fraction::new(1, 10).unwrap(),
            ..rreq2
        };
        let fx = b.on_control_received(
            &mut ctx_at(&mut rng, 1),
            7,
            ControlPacket::Srp(SrpMessage::Rreq(rreq3)),
        );
        assert!(rrep_of(&fx).is_none());
        assert!(rreq_of(&fx).is_some());
    }

    #[test]
    fn relay_strengthens_ordering_eq10() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut b = Srp::new(1, SrpConfig::default());
        // Node 1 has a *fresher* stale label (seqno 7) for 9 but no route.
        let mut ds = DestState::unassigned();
        ds.label = SplitLabel32::new(7, Fraction::new(2, 3).unwrap());
        ds.dist = 2;
        b.dests.insert(9, ds);
        let rreq = SrpRreq {
            src: 7,
            rreq_id: 1,
            dst: 9,
            dst_seqno: 5,
            fd: Fraction::new(1, 2).unwrap(),
            unknown: false,
            reset: true,
            dest_only: false,
            no_advert: true,
            d: 1,
            ttl: 5,
            src_seqno: 1,
            src_lfd: Frac32::one(),
            src_ld: 0,
        };
        let fx = b.on_control_received(
            &mut ctx_at(&mut rng, 1),
            7,
            ControlPacket::Srp(SrpMessage::Rreq(rreq)),
        );
        let relayed = rreq_of(&fx).expect("relayed");
        // Eq. 10 second arm: sn_B > sn_# → relay our ordering.
        assert_eq!(relayed.dst_seqno, 7);
        assert_eq!(relayed.fd, Fraction::new(2, 3).unwrap());
        // Eq. 11 second arm: reset bit cleared.
        assert!(!relayed.reset);
    }

    #[test]
    fn relay_sets_reset_on_fraction_overflow() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut b = Srp::new(1, SrpConfig::default());
        let big = Fraction::<u32>::new(u32::MAX - 2, u32::MAX - 1).unwrap();
        let mut ds = DestState::unassigned();
        ds.label = SplitLabel32::new(5, big);
        ds.dist = 2;
        b.dests.insert(9, ds);
        // Solicitation at the same seqno whose fraction is *above* ours
        // (so we are out of order) and overflows on mediant.
        let rreq = SrpRreq {
            src: 7,
            rreq_id: 1,
            dst: 9,
            dst_seqno: 5,
            fd: Fraction::<u32>::new(u32::MAX - 3, u32::MAX - 2).unwrap(),
            unknown: false,
            reset: false,
            dest_only: false,
            no_advert: true,
            d: 1,
            ttl: 5,
            src_seqno: 1,
            src_lfd: Frac32::one(),
            src_ld: 0,
        };
        let fx = b.on_control_received(
            &mut ctx_at(&mut rng, 1),
            7,
            ControlPacket::Srp(SrpMessage::Rreq(rreq)),
        );
        let relayed = rreq_of(&fx).expect("relayed");
        assert!(relayed.reset, "Eq. 11 third arm must set the T bit");
    }

    #[test]
    fn destination_bumps_seqno_only_on_reset() {
        let mut rng = SmallRng::seed_from_u64(6);
        let mut t = Srp::new(9, SrpConfig::default());
        let base = SrpRreq {
            src: 7,
            rreq_id: 1,
            dst: 9,
            dst_seqno: 1,
            fd: Frac32::one(),
            unknown: true,
            reset: false,
            dest_only: false,
            no_advert: true,
            d: 3,
            ttl: 5,
            src_seqno: 1,
            src_lfd: Frac32::one(),
            src_ld: 0,
        };
        let fx = t.on_control_received(
            &mut ctx_at(&mut rng, 1),
            3,
            ControlPacket::Srp(SrpMessage::Rreq(base.clone())),
        );
        let (rrep, _) = rrep_of(&fx).expect("destination replies");
        assert_eq!(rrep.dst_seqno, 1, "no reset → seqno unchanged");
        assert_eq!(t.stats().own_seqno_increments, 0);

        let fx = t.on_control_received(
            &mut ctx_at(&mut rng, 1),
            3,
            ControlPacket::Srp(SrpMessage::Rreq(SrpRreq {
                rreq_id: 2,
                reset: true,
                ..base
            })),
        );
        let (rrep, _) = rrep_of(&fx).expect("reset reply");
        assert_eq!(rrep.dst_seqno, 2, "reset → strictly larger seqno");
        assert_eq!(t.stats().own_seqno_increments, 1);
    }

    #[test]
    fn link_failure_salvages_via_alternate_successor() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut a = Srp::new(0, SrpConfig::default());
        // Two successors toward 9.
        let mut ds = DestState::unassigned();
        ds.label = SplitLabel32::new(1, Fraction::new(1, 2).unwrap());
        ds.succs
            .insert(1, SplitLabel32::new(1, Fraction::new(1, 3).unwrap()), 2);
        ds.succs
            .insert(2, SplitLabel32::new(1, Fraction::new(1, 4).unwrap()), 3);
        ds.dist = 2;
        ds.expires = SimTime::from_secs(100);
        a.dests.insert(9, ds);

        let fx = a.on_link_failure(&mut ctx_at(&mut rng, 1), 1, Some(data(5, 9, 42)));
        // The packet is resent via the alternate successor (node 2), and
        // no RERR is needed (route still valid).
        assert!(
            fx.iter()
                .any(|e| matches!(e, ProtoEffect::SendData { next_hop: 2, .. })),
            "{fx:?}"
        );
        assert!(!fx.iter().any(|e| matches!(
            e,
            ProtoEffect::SendControl {
                packet: ControlPacket::Srp(SrpMessage::Rerr(_)),
                ..
            }
        )));

        // Losing the second successor invalidates and RERRs.
        let fx = a.on_link_failure(&mut ctx_at(&mut rng, 2), 2, None);
        assert!(fx.iter().any(|e| matches!(
            e,
            ProtoEffect::SendControl {
                packet: ControlPacket::Srp(SrpMessage::Rerr(_)),
                ..
            }
        )));
        assert!(!a.route_active(9, SimTime::from_secs(2)));
    }

    #[test]
    fn discovery_retries_and_gives_up() {
        let mut rng = SmallRng::seed_from_u64(8);
        let mut a = Srp::new(0, SrpConfig::default());
        let fx = a.on_data_from_app(&mut ctx_at(&mut rng, 1), data(0, 9, 1));
        let r0 = rreq_of(&fx).expect("first ring");
        assert_eq!(r0.ttl, 5);
        // First timer: second ring.
        let fx = a.on_timer(&mut ctx_at(&mut rng, 2), discovery_token(9, 0));
        let r1 = rreq_of(&fx).expect("second ring");
        assert_eq!(r1.ttl, 16);
        // Second timer: third ring.
        let fx = a.on_timer(&mut ctx_at(&mut rng, 4), discovery_token(9, 1));
        let r2 = rreq_of(&fx).expect("third ring");
        assert_eq!(r2.ttl, 64);
        // Third timer: give up, drop the buffered packet.
        let fx = a.on_timer(&mut ctx_at(&mut rng, 10), discovery_token(9, 2));
        assert!(fx.iter().any(|e| matches!(
            e,
            ProtoEffect::DropData {
                reason: DataDropReason::NoRoute,
                ..
            }
        )));
        assert!(a.discoveries.is_empty());
    }

    #[test]
    fn route_expires_without_use_and_label_is_retained() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut a = Srp::new(0, SrpConfig::default());
        let cached = a.interner.intern(SplitLabel32::unassigned());
        a.rreq_seen.insert(
            (0, 999),
            RreqCache {
                cached,
                last_hop: 0,
                replied: false,
                seen_at: SimTime::ZERO,
            },
        );
        let rrep = SrpRrep {
            rreq_src: 0,
            rreq_id: 999,
            dst: 9,
            dst_seqno: 5,
            lfd: Fraction::new(1, 2).unwrap(),
            ld: 1,
            no_reverse: false,
        };
        let _ = a.on_control_received(
            &mut ctx_at(&mut rng, 1),
            3,
            ControlPacket::Srp(SrpMessage::Rrep(rrep)),
        );
        assert!(a.route_active(9, SimTime::from_secs(5)));
        // 10 s of disuse: the route lapses but the label survives…
        assert!(!a.route_active(9, SimTime::from_secs(20)));
        let l = a.label_for(9, SimTime::from_secs(20));
        assert!(!l.is_unassigned());
        // …until DELETE_PERIOD passes.
        let l = a.label_for(9, SimTime::from_secs(90));
        assert!(l.is_unassigned());
    }

    #[test]
    fn duplicate_rreq_ignored() {
        let mut rng = SmallRng::seed_from_u64(10);
        let mut b = Srp::new(1, SrpConfig::default());
        let rreq = SrpRreq {
            src: 7,
            rreq_id: 1,
            dst: 9,
            dst_seqno: 0,
            fd: Frac32::one(),
            unknown: true,
            reset: false,
            dest_only: false,
            no_advert: true,
            d: 1,
            ttl: 5,
            src_seqno: 1,
            src_lfd: Frac32::one(),
            src_ld: 0,
        };
        let fx = b.on_control_received(
            &mut ctx_at(&mut rng, 1),
            7,
            ControlPacket::Srp(SrpMessage::Rreq(rreq.clone())),
        );
        assert!(rreq_of(&fx).is_some());
        let fx = b.on_control_received(
            &mut ctx_at(&mut rng, 1),
            8,
            ControlPacket::Srp(SrpMessage::Rreq(rreq)),
        );
        assert!(fx.is_empty(), "engaged node ignores duplicates");
    }

    #[test]
    fn round_robin_multipath_rotates_successors() {
        let mut rng = SmallRng::seed_from_u64(12);
        let cfg = SrpConfig {
            multipath: MultipathPolicy::RoundRobin,
            ..SrpConfig::default()
        };
        let mut a = Srp::new(0, cfg);
        let mut ds = DestState::unassigned();
        ds.label = SplitLabel32::new(1, Fraction::new(1, 2).unwrap());
        ds.succs
            .insert(1, SplitLabel32::new(1, Fraction::new(1, 3).unwrap()), 2);
        ds.succs
            .insert(2, SplitLabel32::new(1, Fraction::new(1, 4).unwrap()), 2);
        ds.expires = SimTime::from_secs(100);
        a.dests.insert(9, ds);

        let mut hops = Vec::new();
        for uid in 0..4 {
            let fx = a.on_data_from_app(&mut ctx_at(&mut rng, 1), data(0, 9, uid));
            let hop = fx
                .iter()
                .find_map(|e| match e {
                    ProtoEffect::SendData { next_hop, .. } => Some(*next_hop),
                    _ => None,
                })
                .expect("forwarded");
            hops.push(hop);
        }
        assert_eq!(
            hops,
            vec![1, 2, 1, 2],
            "round robin alternates feasible successors"
        );

        // Uni-path always picks the min-hop (min id on ties) successor.
        let mut b = Srp::new(0, SrpConfig::default());
        let mut ds = DestState::unassigned();
        ds.label = SplitLabel32::new(1, Fraction::new(1, 2).unwrap());
        ds.succs
            .insert(1, SplitLabel32::new(1, Fraction::new(1, 3).unwrap()), 2);
        ds.succs
            .insert(2, SplitLabel32::new(1, Fraction::new(1, 4).unwrap()), 2);
        ds.expires = SimTime::from_secs(100);
        b.dests.insert(9, ds);
        for uid in 0..3 {
            let fx = b.on_data_from_app(&mut ctx_at(&mut rng, 1), data(0, 9, uid));
            assert!(fx
                .iter()
                .any(|e| matches!(e, ProtoEffect::SendData { next_hop: 1, .. })));
        }
    }

    #[test]
    fn rreq_advertisement_builds_route_to_source() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut b = Srp::new(1, SrpConfig::default());
        let rreq = SrpRreq {
            src: 7,
            rreq_id: 1,
            dst: 9,
            dst_seqno: 0,
            fd: Frac32::one(),
            unknown: true,
            reset: false,
            dest_only: false,
            no_advert: false,
            d: 0,
            ttl: 5,
            src_seqno: 3,
            src_lfd: Frac32::zero(),
            src_ld: 0,
        };
        let _ = b.on_control_received(
            &mut ctx_at(&mut rng, 1),
            7,
            ControlPacket::Srp(SrpMessage::Rreq(rreq)),
        );
        assert!(
            b.route_active(7, SimTime::from_secs(1)),
            "learned route to source"
        );
        let l = b.label_for(7, SimTime::from_secs(1));
        assert_eq!(l.seqno(), 3);
        assert_eq!(l.fd(), Fraction::new(1, 2).unwrap());
    }
}
