//! # slr-protocols — MANET routing protocols behind one state-machine API
//!
//! The five protocols of the paper's evaluation (§V):
//!
//! * [`srp::Srp`] — **Split-label Routing Protocol**, the paper's
//!   contribution: loop-free at every instant via dense proper-fraction
//!   labels (`slr-core`), inherently multi-path, destination-controlled
//!   sequence number used only as an overflow reset;
//! * [`aodv::Aodv`] — on-demand distance vector with destination sequence
//!   numbers (draft-10 semantics);
//! * [`dsr::Dsr`] — source routing with path caches and salvaging
//!   (draft-07 semantics);
//! * [`ldr::Ldr`] — labeled distance routing (PODC '03): integer feasible
//!   distances + destination sequence numbers;
//! * [`olsr::Olsr`] — proactive link-state with multipoint relays
//!   (draft-06 semantics).
//!
//! All five implement [`api::RoutingProtocol`]: events in, effects out —
//! no protocol touches a socket, timer wheel or radio directly, which is
//! what lets the harness guarantee identical mobility, traffic and MAC
//! behaviour across protocols within a trial.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod aodv;
pub mod api;
pub mod audit;
pub mod dsr;
pub mod ldr;
#[cfg(feature = "model-check")]
pub mod model;
pub mod olsr;
pub mod srp;

pub use adversary::{Adversary, AdversaryKind};
pub use api::{
    ControlPacket, DataDropReason, DataPacket, NodeId, PacketBuffer, ProtoCtx, ProtoEffect,
    ProtoStats, RingSchedule, RoutingProtocol, SourceRoute, DATA_TTL,
};
pub use audit::Audit;
