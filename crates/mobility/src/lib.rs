//! # slr-mobility — random-waypoint mobility scripts
//!
//! Offline-generated node trajectories for the SLR/SRP reproduction,
//! mirroring §V of the paper: "we fix the topology and traffic pattern
//! using off-line generated mobility and packet generation scripts", so
//! that per trial every protocol experiences identical node motion.
//!
//! The model is the classical random waypoint with pause times: uniform
//! random destinations, uniform speed in `(0, 20]` m/s, and pause times
//! drawn from the paper's sweep {0, 50, 100, 200, 300, 500, 700, 900} s.
//!
//! ```
//! use slr_mobility::{MobilityScript, WaypointConfig};
//! use slr_netsim::{rng, SimTime};
//!
//! let cfg = WaypointConfig::default();
//! let script = MobilityScript::generate(100, &cfg, &mut rng::stream(42, "mobility", 0));
//! let p = script.position(3, SimTime::from_secs(10));
//! assert!(cfg.terrain.contains(&p));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod geometry;
pub mod waypoint;

pub use geometry::{Position, Terrain};
pub use waypoint::{
    generate_trajectory, generate_trajectory_from, MobilityScript, Segment, Trajectory,
    WaypointConfig,
};
