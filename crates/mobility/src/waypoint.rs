//! The random-waypoint mobility model with pause times (§V of the paper).
//!
//! Each node starts at a uniform random position; repeatedly it picks a
//! uniform random destination and a uniform random speed in
//! `(min_speed, max_speed]`, moves there in a straight line, then pauses
//! for the configured pause time. A pause time of 900 s over a 900 s run
//! means no mobility; 0 s means constant motion.
//!
//! Trajectories are generated **offline** per trial (as the paper does with
//! "off-line generated mobility … scripts") into piecewise-linear
//! [`Trajectory`] values that every protocol in the trial shares.

use rand::Rng;

use slr_netsim::time::{SimDuration, SimTime};

use crate::geometry::{Position, Terrain};

/// Configuration for the random waypoint generator.
#[derive(Debug, Clone, Copy)]
pub struct WaypointConfig {
    /// The terrain nodes move on.
    pub terrain: Terrain,
    /// Minimum speed in m/s (kept slightly above zero to avoid the
    /// well-known stalling pathology of v_min = 0).
    pub min_speed: f64,
    /// Maximum speed in m/s. The paper uses 20 m/s.
    pub max_speed: f64,
    /// Pause time at each waypoint.
    pub pause: SimDuration,
    /// How much simulated time the trajectory must cover.
    pub duration: SimDuration,
}

impl Default for WaypointConfig {
    /// The paper's settings: 2200 m × 600 m, speeds (0, 20] m/s, and a
    /// pause time that callers override per scenario.
    fn default() -> Self {
        WaypointConfig {
            terrain: Terrain::paper(),
            min_speed: 0.1,
            max_speed: 20.0,
            pause: SimDuration::from_secs(0),
            duration: SimDuration::from_secs(910),
        }
    }
}

/// One linear movement (or pause) leg of a trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// When this leg begins.
    pub start_time: SimTime,
    /// When this leg ends.
    pub end_time: SimTime,
    /// Position at `start_time`.
    pub from: Position,
    /// Position at `end_time` (equal to `from` for a pause leg).
    pub to: Position,
}

impl Segment {
    /// Position at time `t`, clamped into the leg's time range.
    pub fn position_at(&self, t: SimTime) -> Position {
        if t <= self.start_time {
            return self.from;
        }
        if t >= self.end_time {
            return self.to;
        }
        let span = (self.end_time - self.start_time).as_secs_f64();
        if span <= 0.0 {
            return self.to;
        }
        let frac = (t - self.start_time).as_secs_f64() / span;
        self.from.lerp(&self.to, frac)
    }
}

/// A node's full piecewise-linear trajectory for one trial.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    segments: Vec<Segment>,
}

impl Trajectory {
    /// A trajectory that stays at `p` forever (useful for static tests).
    pub fn stationary(p: Position) -> Self {
        Trajectory {
            segments: vec![Segment {
                start_time: SimTime::ZERO,
                end_time: SimTime::MAX,
                from: p,
                to: p,
            }],
        }
    }

    /// Builds a trajectory from pre-computed segments.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is empty or not contiguous in time.
    pub fn from_segments(segments: Vec<Segment>) -> Self {
        assert!(
            !segments.is_empty(),
            "trajectory needs at least one segment"
        );
        for w in segments.windows(2) {
            assert_eq!(
                w[0].end_time, w[1].start_time,
                "trajectory segments must be contiguous"
            );
        }
        Trajectory { segments }
    }

    /// The node's position at time `t` (clamped to the trajectory's span).
    pub fn position_at(&self, t: SimTime) -> Position {
        self.segments[self.segment_index_at(t)].position_at(t)
    }

    /// Index of the segment whose time range covers `t` (the last segment
    /// for any `t` past the trajectory's end).
    pub fn segment_index_at(&self, t: SimTime) -> usize {
        // Binary search for the segment containing t.
        self.segments
            .partition_point(|s| s.end_time < t)
            .min(self.segments.len() - 1)
    }

    /// Whether the node never moves (every segment holds one position).
    pub fn is_stationary(&self) -> bool {
        self.segments.iter().all(|s| s.from == s.to)
    }

    /// The segments (for inspection and tests).
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// The last time covered by the trajectory.
    pub fn end_time(&self) -> SimTime {
        self.segments.last().expect("non-empty").end_time
    }
}

/// Generates a random-waypoint trajectory starting at a uniform position.
pub fn generate_trajectory<R: Rng + ?Sized>(cfg: &WaypointConfig, rng: &mut R) -> Trajectory {
    let start = random_position(&cfg.terrain, rng);
    generate_trajectory_from(start, cfg, rng)
}

/// Generates a random-waypoint trajectory from an explicit start position
/// (used when a structured topology seeds the initial placement).
pub fn generate_trajectory_from<R: Rng + ?Sized>(
    start: Position,
    cfg: &WaypointConfig,
    rng: &mut R,
) -> Trajectory {
    assert!(
        cfg.min_speed > 0.0 && cfg.max_speed >= cfg.min_speed,
        "speeds must satisfy 0 < min <= max"
    );
    let mut segments = Vec::new();
    let mut now = SimTime::ZERO;
    let horizon = SimTime::ZERO + cfg.duration;
    let mut here = start;

    while now < horizon {
        // Movement leg.
        let dest = random_position(&cfg.terrain, rng);
        let speed = rng.gen_range(cfg.min_speed..=cfg.max_speed);
        let dist = here.distance(&dest);
        let travel = SimDuration::from_secs_f64(dist / speed);
        let end = now + travel;
        segments.push(Segment {
            start_time: now,
            end_time: end,
            from: here,
            to: dest,
        });
        now = end;
        here = dest;
        // Pause leg.
        if cfg.pause > SimDuration::ZERO && now < horizon {
            let end = now + cfg.pause;
            segments.push(Segment {
                start_time: now,
                end_time: end,
                from: here,
                to: here,
            });
            now = end;
        }
    }
    Trajectory::from_segments(segments)
}

/// A full mobility script: one trajectory per node, generated from a
/// dedicated RNG stream so it is identical across protocols within a trial.
#[derive(Debug, Clone)]
pub struct MobilityScript {
    trajectories: Vec<Trajectory>,
}

impl MobilityScript {
    /// Generates trajectories for `n` nodes.
    pub fn generate<R: Rng + ?Sized>(n: usize, cfg: &WaypointConfig, rng: &mut R) -> Self {
        MobilityScript {
            trajectories: (0..n).map(|_| generate_trajectory(cfg, rng)).collect(),
        }
    }

    /// Generates trajectories that start from the given positions instead
    /// of uniform random ones (structured topologies with mobility).
    ///
    /// # Panics
    ///
    /// Panics if any start position lies outside the configured terrain.
    pub fn generate_from<R: Rng + ?Sized>(
        starts: &[Position],
        cfg: &WaypointConfig,
        rng: &mut R,
    ) -> Self {
        for p in starts {
            assert!(
                cfg.terrain.contains(p),
                "start position {p} outside terrain"
            );
        }
        MobilityScript {
            trajectories: starts
                .iter()
                .map(|p| generate_trajectory_from(*p, cfg, rng))
                .collect(),
        }
    }

    /// A static script with the given positions (for tests and examples).
    pub fn stationary(positions: &[Position]) -> Self {
        MobilityScript {
            trajectories: positions
                .iter()
                .map(|p| Trajectory::stationary(*p))
                .collect(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.trajectories.len()
    }

    /// Whether the script covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.trajectories.is_empty()
    }

    /// Position of `node` at time `t`.
    pub fn position(&self, node: usize, t: SimTime) -> Position {
        self.trajectories[node].position_at(t)
    }

    /// All positions at time `t`.
    pub fn positions_at(&self, t: SimTime) -> Vec<Position> {
        let mut out = Vec::new();
        self.positions_into(t, &mut out);
        out
    }

    /// All positions at time `t`, written into `out` (cleared first).
    /// Buffer-reusing form of [`MobilityScript::positions_at`] for hot
    /// paths that refresh a snapshot repeatedly.
    pub fn positions_into(&self, t: SimTime, out: &mut Vec<Position>) {
        out.clear();
        out.extend(self.trajectories.iter().map(|tr| tr.position_at(t)));
    }

    /// Whether no node ever moves (e.g. scripts from
    /// [`MobilityScript::stationary`]).
    pub fn is_static(&self) -> bool {
        self.trajectories.iter().all(Trajectory::is_stationary)
    }

    /// The trajectory of one node.
    pub fn trajectory(&self, node: usize) -> &Trajectory {
        &self.trajectories[node]
    }

    /// Replaces one node's trajectory (hand-built motion in tests and
    /// examples).
    pub fn replace_trajectory(&mut self, node: usize, trajectory: Trajectory) {
        self.trajectories[node] = trajectory;
    }
}

fn random_position<R: Rng + ?Sized>(terrain: &Terrain, rng: &mut R) -> Position {
    Position {
        x: rng.gen_range(0.0..terrain.width),
        y: rng.gen_range(0.0..terrain.height),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slr_netsim::rng::stream;

    fn cfg(pause_secs: u64) -> WaypointConfig {
        WaypointConfig {
            pause: SimDuration::from_secs(pause_secs),
            duration: SimDuration::from_secs(200),
            ..WaypointConfig::default()
        }
    }

    #[test]
    fn trajectory_stays_on_terrain() {
        let c = cfg(10);
        let mut rng = stream(1, "mob", 0);
        let tr = generate_trajectory(&c, &mut rng);
        for i in 0..=200 {
            let p = tr.position_at(SimTime::from_secs(i));
            assert!(c.terrain.contains(&p), "t={i}: {p} off terrain");
        }
    }

    #[test]
    fn trajectory_covers_duration() {
        let c = cfg(0);
        let mut rng = stream(2, "mob", 0);
        let tr = generate_trajectory(&c, &mut rng);
        assert!(tr.end_time() >= SimTime::from_secs(200));
    }

    #[test]
    fn speed_respects_bounds() {
        let c = cfg(0);
        let mut rng = stream(3, "mob", 0);
        let tr = generate_trajectory(&c, &mut rng);
        for s in tr.segments() {
            let dt = (s.end_time - s.start_time).as_secs_f64();
            if dt <= 0.0 {
                continue;
            }
            let v = s.from.distance(&s.to) / dt;
            assert!(
                v <= c.max_speed + 1e-9,
                "segment speed {v} exceeds {}",
                c.max_speed
            );
        }
    }

    #[test]
    fn pauses_are_present() {
        // Use a min speed high enough that the first leg cannot swallow
        // the whole horizon.
        let c = WaypointConfig {
            min_speed: 1.0,
            ..cfg(50)
        };
        let mut rng = stream(4, "mob", 0);
        let tr = generate_trajectory(&c, &mut rng);
        let pauses = tr
            .segments()
            .iter()
            .filter(|s| s.from == s.to && s.end_time > s.start_time)
            .count();
        assert!(pauses >= 1, "expected pause legs with pause=50s");
    }

    #[test]
    fn position_is_continuous() {
        let c = cfg(10);
        let mut rng = stream(5, "mob", 0);
        let tr = generate_trajectory(&c, &mut rng);
        let mut prev = tr.position_at(SimTime::ZERO);
        for ms in (0..200_000).step_by(250) {
            let t = SimTime::from_millis(ms);
            let p = tr.position_at(t);
            // Max speed 20 m/s → at most 5 m per 250 ms.
            assert!(
                prev.distance(&p) <= 20.0 * 0.25 + 1e-6,
                "jump at {t}: {prev} → {p}"
            );
            prev = p;
        }
    }

    #[test]
    fn script_is_deterministic_per_stream() {
        let c = cfg(30);
        let a = MobilityScript::generate(10, &c, &mut stream(9, "mob", 7));
        let b = MobilityScript::generate(10, &c, &mut stream(9, "mob", 7));
        for n in 0..10 {
            for t in [0u64, 50, 150] {
                assert_eq!(
                    a.position(n, SimTime::from_secs(t)),
                    b.position(n, SimTime::from_secs(t))
                );
            }
        }
    }

    #[test]
    fn stationary_script() {
        let s = MobilityScript::stationary(&[Position::new(1.0, 2.0)]);
        assert_eq!(s.len(), 1);
        assert_eq!(
            s.position(0, SimTime::from_secs(1_000_000)),
            Position::new(1.0, 2.0)
        );
    }

    #[test]
    fn high_pause_means_little_motion() {
        // Pause 900 s over a 200 s horizon: after the first leg the node
        // parks. Total displacement across [100s, 200s] should usually be
        // zero once the first waypoint is reached.
        let c = WaypointConfig {
            pause: SimDuration::from_secs(900),
            duration: SimDuration::from_secs(200),
            ..WaypointConfig::default()
        };
        let mut rng = stream(11, "mob", 0);
        let tr = generate_trajectory(&c, &mut rng);
        // At most two movement legs fit before a 900 s pause engulfs the run.
        let moving = tr.segments().iter().filter(|s| s.from != s.to).count();
        assert!(moving <= 2, "expected ≤2 movement legs, got {moving}");
    }
}
