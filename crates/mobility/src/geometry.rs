//! Planar geometry: positions and the rectangular simulation terrain.

use core::fmt;

/// A point on the terrain, in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Position {
    /// Meters along the terrain's width.
    pub x: f64,
    /// Meters along the terrain's height.
    pub y: f64,
}

impl Position {
    /// Creates a position.
    pub fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    /// Euclidean distance to `other`, in meters.
    pub fn distance(&self, other: &Position) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Squared distance (avoids the square root for range comparisons).
    pub fn distance_sq(&self, other: &Position) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Linear interpolation: the point `frac` of the way toward `other`
    /// (`frac` clamped to `[0, 1]`).
    pub fn lerp(&self, other: &Position, frac: f64) -> Position {
        let f = frac.clamp(0.0, 1.0);
        Position {
            x: self.x + (other.x - self.x) * f,
            y: self.y + (other.y - self.y) * f,
        }
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}, {:.1})", self.x, self.y)
    }
}

/// The rectangular terrain nodes move on. The paper uses 2200 m × 600 m.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Terrain {
    /// Width in meters.
    pub width: f64,
    /// Height in meters.
    pub height: f64,
}

impl Terrain {
    /// Creates a terrain.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is not positive and finite.
    pub fn new(width: f64, height: f64) -> Self {
        assert!(width.is_finite() && width > 0.0, "bad terrain width");
        assert!(height.is_finite() && height > 0.0, "bad terrain height");
        Terrain { width, height }
    }

    /// The paper's terrain: 2200 m × 600 m (§V).
    pub fn paper() -> Self {
        Terrain::new(2200.0, 600.0)
    }

    /// Whether a position lies on the terrain (inclusive boundaries).
    pub fn contains(&self, p: &Position) -> bool {
        (0.0..=self.width).contains(&p.x) && (0.0..=self.height).contains(&p.y)
    }

    /// Area in square meters.
    pub fn area(&self) -> f64 {
        self.width * self.height
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        assert!((a.distance_sq(&b) - 25.0).abs() < 1e-12);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn lerp_interpolates_and_clamps() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(10.0, 20.0);
        let m = a.lerp(&b, 0.5);
        assert!((m.x - 5.0).abs() < 1e-12 && (m.y - 10.0).abs() < 1e-12);
        assert_eq!(a.lerp(&b, -1.0), a);
        assert_eq!(a.lerp(&b, 2.0), b);
    }

    #[test]
    fn terrain_contains() {
        let t = Terrain::paper();
        assert!(t.contains(&Position::new(0.0, 0.0)));
        assert!(t.contains(&Position::new(2200.0, 600.0)));
        assert!(!t.contains(&Position::new(-0.1, 0.0)));
        assert!(!t.contains(&Position::new(0.0, 600.1)));
        assert!((t.area() - 1_320_000.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "bad terrain")]
    fn terrain_rejects_zero() {
        let _ = Terrain::new(0.0, 10.0);
    }
}
