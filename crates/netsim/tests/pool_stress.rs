//! Hostile cross-thread stress for the scoped worker pool.
//!
//! The unit tests in `pool.rs` cover the contract; these tests attack the
//! synchronization under the conditions the parallel engine actually
//! produces at scale — thousands of back-to-back micro-epochs,
//! oversubscription (more workers than cores *and* than useful work),
//! alternation between the spin path and the park path, and panics thrown
//! mid-round with the pool reused afterwards. Run under ThreadSanitizer in
//! the nightly workflow (see `.github/workflows/nightly.yml`) these same
//! tests double as a data-race probe for the pool's `unsafe` core.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

use slr_netsim::pool::with_pool;

/// Thousands of tiny epochs back to back: the hot-phase shape. Every
/// round borrows fresh stack data, so any stale job pointer or epoch
/// tear shows up as a wrong sum or a torn read, not just a crash.
#[test]
fn hammer_many_short_epochs() {
    const ROUNDS: u64 = 20_000;
    with_pool(4, |pool| {
        let mut grand = 0u64;
        for round in 0..ROUNDS {
            let shards = [const { AtomicU64::new(0) }; 5];
            pool.broadcast(&|i| {
                shards[i].store(round ^ (i as u64) << 32, Ordering::Relaxed);
            });
            for (i, s) in shards.iter().enumerate() {
                assert_eq!(s.load(Ordering::Relaxed), round ^ (i as u64) << 32);
            }
            grand = grand.wrapping_add(round);
        }
        assert_eq!(grand, (0..ROUNDS).sum::<u64>());
    });
}

/// Workers heavily oversubscribed relative to both the host's cores and
/// the per-round work (most indices find nothing to do). The spin-then-
/// park backoff must neither deadlock nor lose a round.
#[test]
fn more_workers_than_work() {
    const WORKERS: usize = 16;
    with_pool(WORKERS, |pool| {
        for round in 0..500u64 {
            // Only 3 slots of real work; indices 3..=16 no-op.
            let done = [const { AtomicU64::new(0) }; 3];
            let visits = AtomicUsize::new(0);
            pool.broadcast(&|i| {
                visits.fetch_add(1, Ordering::Relaxed);
                if let Some(d) = done.get(i) {
                    d.store(round + 1, Ordering::Relaxed);
                }
            });
            assert_eq!(visits.load(Ordering::Relaxed), WORKERS + 1);
            for d in &done {
                assert_eq!(d.load(Ordering::Relaxed), round + 1);
            }
        }
    });
}

/// Epochs separated by sleeps long enough for every worker to out-spin
/// and park on the condvar: each broadcast must wake them all, every
/// time. (A missed notify here hangs the test, not just flakes it.)
#[test]
fn park_and_wake_across_idle_gaps() {
    with_pool(3, |pool| {
        for round in 0..20u64 {
            std::thread::sleep(Duration::from_millis(5));
            let hits = [const { AtomicU64::new(0) }; 4];
            pool.broadcast(&|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            for h in &hits {
                assert_eq!(h.load(Ordering::Relaxed), 1, "round {round}");
            }
        }
    });
}

/// A panicking round must not poison the pool: the broadcast surfaces
/// the panic, and the *same* pool then runs many clean rounds. Repeats
/// the cycle to catch any state (done counter, panicked flag, stale job
/// pointer) that survives a failed round.
#[test]
fn pool_survives_repeated_job_panics() {
    with_pool(4, |pool| {
        for cycle in 0..50u64 {
            let poison = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pool.broadcast(&|i| {
                    if i == 2 {
                        panic!("injected failure, cycle {cycle}");
                    }
                });
            }));
            assert!(poison.is_err(), "cycle {cycle}: panic must propagate");

            // The pool must be fully serviceable immediately afterwards.
            let sum = AtomicU64::new(0);
            pool.broadcast(&|i| {
                sum.fetch_add(i as u64 + 1, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), 15, "cycle {cycle}");
        }
    });
}

/// Caller-side (index 0) panics interleaved with worker-side panics,
/// then a final burst of clean epochs — the unwind paths differ (the
/// caller's unwind must first wait out the workers), so exercise both
/// in alternation.
#[test]
fn alternating_caller_and_worker_panics() {
    with_pool(2, |pool| {
        for cycle in 0..30u64 {
            let caller_side = cycle % 2 == 0;
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pool.broadcast(&|i| {
                    if (caller_side && i == 0) || (!caller_side && i == 1) {
                        panic!("boom {cycle}");
                    }
                });
            }));
            assert!(r.is_err(), "cycle {cycle}");
        }
        for round in 0..1000u64 {
            let total = AtomicU64::new(0);
            pool.broadcast(&|_| {
                total.fetch_add(round, Ordering::Relaxed);
            });
            assert_eq!(total.load(Ordering::Relaxed), 3 * round);
        }
    });
}

/// Nested scopes: an inner pool spun up and torn down inside an outer
/// pool's scope (the engine does this when a scenario phase changes its
/// parallelism). Teardown of the inner scope must not disturb the outer
/// pool's parked workers.
#[test]
fn nested_pool_scopes() {
    with_pool(2, |outer| {
        for _ in 0..20 {
            let inner_sum = with_pool(3, |inner| {
                let sum = AtomicU64::new(0);
                for _ in 0..50 {
                    inner.broadcast(&|i| {
                        sum.fetch_add(i as u64, Ordering::Relaxed);
                    });
                }
                sum.load(Ordering::Relaxed)
            });
            assert_eq!(inner_sum, 50 * 6);
            let outer_hits = AtomicUsize::new(0);
            outer.broadcast(&|_| {
                outer_hits.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(outer_hits.load(Ordering::Relaxed), 3);
        }
    });
}
