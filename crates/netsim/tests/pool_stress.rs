//! Hostile cross-thread stress for the scoped worker pool.
//!
//! The unit tests in `pool.rs` cover the contract; these tests attack the
//! synchronization under the conditions the parallel engine actually
//! produces at scale — thousands of back-to-back micro-epochs,
//! oversubscription (more workers than cores *and* than useful work),
//! alternation between the spin path and the park path, panics thrown
//! mid-round with the pool reused afterwards, and (for the unified core
//! pool) steal-heavy contention with more window-owning sessions than
//! threads. Run under ThreadSanitizer in the nightly workflow (see
//! `.github/workflows/nightly.yml`) these same tests double as a
//! data-race probe for the pools' `unsafe` cores.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

use slr_netsim::pool::{with_core_pool, with_pool, WindowExec};

/// Thousands of tiny epochs back to back: the hot-phase shape. Every
/// round borrows fresh stack data, so any stale job pointer or epoch
/// tear shows up as a wrong sum or a torn read, not just a crash.
#[test]
fn hammer_many_short_epochs() {
    const ROUNDS: u64 = 20_000;
    with_pool(4, |pool| {
        let mut grand = 0u64;
        for round in 0..ROUNDS {
            let shards = [const { AtomicU64::new(0) }; 5];
            pool.broadcast(&|i| {
                shards[i].store(round ^ (i as u64) << 32, Ordering::Relaxed);
            });
            for (i, s) in shards.iter().enumerate() {
                assert_eq!(s.load(Ordering::Relaxed), round ^ (i as u64) << 32);
            }
            grand = grand.wrapping_add(round);
        }
        assert_eq!(grand, (0..ROUNDS).sum::<u64>());
    });
}

/// Workers heavily oversubscribed relative to both the host's cores and
/// the per-round work (most indices find nothing to do). The spin-then-
/// park backoff must neither deadlock nor lose a round.
#[test]
fn more_workers_than_work() {
    const WORKERS: usize = 16;
    with_pool(WORKERS, |pool| {
        for round in 0..500u64 {
            // Only 3 slots of real work; indices 3..=16 no-op.
            let done = [const { AtomicU64::new(0) }; 3];
            let visits = AtomicUsize::new(0);
            pool.broadcast(&|i| {
                visits.fetch_add(1, Ordering::Relaxed);
                if let Some(d) = done.get(i) {
                    d.store(round + 1, Ordering::Relaxed);
                }
            });
            assert_eq!(visits.load(Ordering::Relaxed), WORKERS + 1);
            for d in &done {
                assert_eq!(d.load(Ordering::Relaxed), round + 1);
            }
        }
    });
}

/// Epochs separated by sleeps long enough for every worker to out-spin
/// and park on the condvar: each broadcast must wake them all, every
/// time. (A missed notify here hangs the test, not just flakes it.)
#[test]
fn park_and_wake_across_idle_gaps() {
    with_pool(3, |pool| {
        for round in 0..20u64 {
            std::thread::sleep(Duration::from_millis(5));
            let hits = [const { AtomicU64::new(0) }; 4];
            pool.broadcast(&|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            for h in &hits {
                assert_eq!(h.load(Ordering::Relaxed), 1, "round {round}");
            }
        }
    });
}

/// A panicking round must not poison the pool: the broadcast surfaces
/// the panic, and the *same* pool then runs many clean rounds. Repeats
/// the cycle to catch any state (done counter, panicked flag, stale job
/// pointer) that survives a failed round.
#[test]
fn pool_survives_repeated_job_panics() {
    with_pool(4, |pool| {
        for cycle in 0..50u64 {
            let poison = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pool.broadcast(&|i| {
                    if i == 2 {
                        panic!("injected failure, cycle {cycle}");
                    }
                });
            }));
            assert!(poison.is_err(), "cycle {cycle}: panic must propagate");

            // The pool must be fully serviceable immediately afterwards.
            let sum = AtomicU64::new(0);
            pool.broadcast(&|i| {
                sum.fetch_add(i as u64 + 1, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), 15, "cycle {cycle}");
        }
    });
}

/// Caller-side (index 0) panics interleaved with worker-side panics,
/// then a final burst of clean epochs — the unwind paths differ (the
/// caller's unwind must first wait out the workers), so exercise both
/// in alternation.
#[test]
fn alternating_caller_and_worker_panics() {
    with_pool(2, |pool| {
        for cycle in 0..30u64 {
            let caller_side = cycle % 2 == 0;
            let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                pool.broadcast(&|i| {
                    if (caller_side && i == 0) || (!caller_side && i == 1) {
                        panic!("boom {cycle}");
                    }
                });
            }));
            assert!(r.is_err(), "cycle {cycle}");
        }
        for round in 0..1000u64 {
            let total = AtomicU64::new(0);
            pool.broadcast(&|_| {
                total.fetch_add(round, Ordering::Relaxed);
            });
            assert_eq!(total.load(Ordering::Relaxed), 3 * round);
        }
    });
}

/// The steal-heavy hostile case for the *unified* core pool: several
/// concurrent trial jobs each publish thousands of windows with varying
/// shard counts through their own sessions while the caller drives yet
/// another session from outside the pool — so every thread alternates
/// between running its own shards, stealing from other sessions' deques
/// and picking fresh trial jobs off the injector. More jobs than threads
/// keeps the injector non-empty while windows are in flight, and the
/// shard count cycles through 1 (the inline path) up to 16 so the two
/// dispatch paths interleave per job. Every shard must run exactly once
/// per window with the right data, no matter who steals it.
#[test]
fn steal_heavy_cross_session_windows() {
    const JOBS: usize = 6;
    const WINDOWS: u64 = 1_500;
    const MAX_SHARDS: usize = 16;
    let finished: Vec<AtomicU64> = (0..JOBS).map(|_| AtomicU64::new(0)).collect();
    with_core_pool(4, |pool| {
        for j in 0..JOBS {
            let finished = &finished;
            pool.submit(Box::new(move |exec| {
                for w in 0..WINDOWS {
                    let shards = 1 + ((w as usize + j) % MAX_SHARDS);
                    let hits = [const { AtomicU64::new(0) }; MAX_SHARDS];
                    exec.run_window(shards, &|i| {
                        hits[i].fetch_add(w ^ ((i as u64) << 32), Ordering::Relaxed);
                    });
                    for (i, h) in hits.iter().enumerate().take(shards) {
                        assert_eq!(
                            h.load(Ordering::Relaxed),
                            w ^ ((i as u64) << 32),
                            "job {j} window {w}"
                        );
                    }
                    // Shards past the window's width must never run.
                    for h in hits.iter().skip(shards) {
                        assert_eq!(h.load(Ordering::Relaxed), 0, "job {j} window {w}");
                    }
                }
                finished[j].fetch_add(1, Ordering::Relaxed);
            }));
        }
        // The caller competes as a window owner of its own while the
        // trial jobs are still in flight, then helps drain the injector.
        {
            let session = pool.session();
            for w in 0..WINDOWS {
                let hits = [const { AtomicU64::new(0) }; MAX_SHARDS];
                session.run_window(MAX_SHARDS, &|i| {
                    hits[i].fetch_add(w + i as u64 + 1, Ordering::Relaxed);
                });
                for (i, h) in hits.iter().enumerate() {
                    assert_eq!(
                        h.load(Ordering::Relaxed),
                        w + i as u64 + 1,
                        "caller window {w}"
                    );
                }
            }
        }
        pool.wait_all();
        for (j, f) in finished.iter().enumerate() {
            assert_eq!(f.load(Ordering::Relaxed), 1, "job {j} did not complete");
        }
    });
}

/// Worker panics mid-steal on the unified pool: one trial job runs
/// hundreds of windows that each panic on a late shard — stolen by a
/// thief or popped by the owner, depending on the race — while clean
/// trial jobs keep the thieves busy on the same sessions. The panic
/// must re-raise on the window's *owner* (after all shards finished or
/// were abandoned), the same session must serve a clean window
/// immediately afterwards, and none of it may disturb the concurrent
/// jobs or poison the pool.
#[test]
fn core_pool_survives_shard_panic_mid_steal() {
    const CLEAN_JOBS: usize = 8;
    let completed = AtomicU64::new(0);
    with_core_pool(4, |pool| {
        pool.submit(Box::new(|exec| {
            for w in 0..300u64 {
                let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    exec.run_window(8, &|i| {
                        if i == 5 {
                            panic!("injected shard failure, window {w}");
                        }
                    });
                }));
                assert!(r.is_err(), "window {w}: shard panic must reach the owner");
                // The same session must be fully serviceable right after.
                let hits = [const { AtomicU64::new(0) }; 4];
                exec.run_window(4, &|i| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                });
                for (i, h) in hits.iter().enumerate() {
                    assert_eq!(h.load(Ordering::Relaxed), 1, "window {w} shard {i}");
                }
            }
        }));
        for _ in 0..CLEAN_JOBS {
            let completed = &completed;
            pool.submit(Box::new(move |exec| {
                for _ in 0..300u64 {
                    let hits = [const { AtomicU64::new(0) }; 8];
                    exec.run_window(8, &|i| {
                        hits[i].fetch_add(1, Ordering::Relaxed);
                    });
                    for h in &hits {
                        assert_eq!(h.load(Ordering::Relaxed), 1);
                    }
                }
                completed.fetch_add(1, Ordering::Relaxed);
            }));
        }
        pool.wait_all();
    });
    assert_eq!(completed.load(Ordering::Relaxed), CLEAN_JOBS as u64);
}

/// Nested scopes: an inner pool spun up and torn down inside an outer
/// pool's scope (the engine does this when a scenario phase changes its
/// parallelism). Teardown of the inner scope must not disturb the outer
/// pool's parked workers.
#[test]
fn nested_pool_scopes() {
    with_pool(2, |outer| {
        for _ in 0..20 {
            let inner_sum = with_pool(3, |inner| {
                let sum = AtomicU64::new(0);
                for _ in 0..50 {
                    inner.broadcast(&|i| {
                        sum.fetch_add(i as u64, Ordering::Relaxed);
                    });
                }
                sum.load(Ordering::Relaxed)
            });
            assert_eq!(inner_sum, 50 * 6);
            let outer_hits = AtomicUsize::new(0);
            outer.broadcast(&|_| {
                outer_hits.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(outer_hits.load(Ordering::Relaxed), 3);
        }
    });
}
