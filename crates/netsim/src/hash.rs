//! A fast, deterministic hasher for simulation-internal keys.
//!
//! The standard library's default SipHash defends against adversarial
//! keys; simulation state is keyed by small trusted integers (node ids,
//! flood ids, packet uids), where SipHash costs more than the table probe
//! it guards. [`FastHasher`] is an unseeded multiply-xor mix — hot-path
//! protocol and harness tables pay a few cycles per lookup instead.
//!
//! Determinism: unlike `RandomState`, the mix is identical in every
//! process, so even code that (incorrectly) let iteration order influence
//! behavior would at least stay bit-reproducible across runs. Nothing in
//! the workspace may depend on iteration order regardless — the
//! reproducibility tests ran under per-process-random SipHash for three
//! PRs, which would have caught any such leak.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-xor hasher for small trusted keys (see module docs).
#[derive(Default)]
pub struct FastHasher(u64);

const MIX: u64 = 0x9E37_79B9_7F4A_7C15; // 2⁶⁴ / φ, the usual Fibonacci mix

impl Hasher for FastHasher {
    fn finish(&self) -> u64 {
        // A final avalanche so low-entropy keys spread across the table.
        let mut h = self.0;
        h ^= h >> 32;
        h = h.wrapping_mul(MIX);
        h ^ (h >> 29)
    }

    fn write(&mut self, bytes: &[u8]) {
        // Fallback for compound/byte keys; integer keys take the fast
        // paths below.
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    fn write_u8(&mut self, n: u8) {
        self.write_u64(n as u64)
    }

    fn write_u16(&mut self, n: u16) {
        self.write_u64(n as u64)
    }

    fn write_u32(&mut self, n: u32) {
        self.write_u64(n as u64)
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0 ^ n).wrapping_mul(MIX);
    }

    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64)
    }

    fn write_i32(&mut self, n: i32) {
        self.write_u64(n as u32 as u64)
    }

    fn write_i64(&mut self, n: i64) {
        self.write_u64(n as u64)
    }
}

/// `HashMap` keyed by trusted simulation ids.
pub type FastHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// `HashSet` keyed by trusted simulation ids.
pub type FastHashSet<T> = HashSet<T, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_keys_hash_apart() {
        let mut set = FastHashSet::default();
        for i in 0..10_000u64 {
            set.insert(i);
        }
        assert_eq!(set.len(), 10_000);
        for i in 0..10_000u64 {
            assert!(set.contains(&i));
        }
    }

    #[test]
    fn tuple_keys_work() {
        let mut m: FastHashMap<(u32, u64), u32> = FastHashMap::default();
        for a in 0..50 {
            for b in 0..50u64 {
                m.insert((a, b), a + b as u32);
            }
        }
        assert_eq!(m.len(), 2500);
        assert_eq!(m[&(7, 13)], 20);
    }

    #[test]
    fn deterministic_across_instances() {
        use std::hash::Hash;
        let h = |k: u64| {
            let mut hasher = FastHasher::default();
            k.hash(&mut hasher);
            hasher.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }
}
