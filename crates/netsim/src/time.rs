//! Virtual time: nanosecond-resolution simulation clocks.
//!
//! [`SimTime`] is an absolute instant since simulation start; [`SimDuration`]
//! a non-negative span. Both are thin wrappers over `u64` nanoseconds —
//! enough for ~584 years of simulated time, far beyond the paper's 900 s
//! runs.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// An absolute simulation instant (nanoseconds since start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A non-negative span of simulated time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future (used as an "infinite" horizon).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Creates an instant from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid time {s}");
        SimTime((s * 1e9).round() as u64)
    }

    /// Whole nanoseconds since start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds since start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`, saturating at zero.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The empty span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a span from whole nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a span from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a span from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a span from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a span from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration {s}");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Multiplies the span by an integer factor (saturating).
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(rhs.0 <= self.0, "time went backwards");
        SimDuration(self.0 - rhs.0)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_micros(5).as_nanos(), 5_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
        assert!((SimTime::from_secs_f64(1.25).as_secs_f64() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        let d = t - SimTime::from_secs(1);
        assert_eq!(d, SimDuration::from_millis(500));
        let mut u = SimTime::ZERO;
        u += SimDuration::from_secs(3);
        assert_eq!(u, SimTime::from_secs(3));
        assert_eq!(
            SimDuration::from_secs(1) + SimDuration::from_secs(2),
            SimDuration::from_secs(3)
        );
    }

    #[test]
    fn saturating_since() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(1));
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "invalid time")]
    fn negative_time_rejected() {
        let _ = SimTime::from_secs_f64(-1.0);
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500000s");
    }

    #[test]
    fn duration_scaling() {
        assert_eq!(
            SimDuration::from_secs(2).saturating_mul(3),
            SimDuration::from_secs(6)
        );
    }
}
