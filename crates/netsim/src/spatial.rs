//! Grid-bucketed spatial index for neighbor queries.
//!
//! The simulator's hottest question is "which nodes lie within
//! carrier-sense range of this transmitter?". A brute-force scan answers
//! it in O(N) per transmission; this index answers it in O(degree) by
//! bucketing nodes into square cells and scanning only the block of
//! cells that can intersect the query disc.
//!
//! The index is deliberately *coarse*: it tracks which cell each node is
//! in, not an exact position, so a node only needs re-bucketing when it
//! crosses a cell boundary. Callers keep exact positions themselves (the
//! harness derives them from mobility trajectories) and filter the
//! candidate set by true distance — see `slr-radio`'s `NeighborQuery`
//! trait for the contract. Candidate enumeration visits cells in a fixed
//! row-major order, so results are deterministic; callers that need
//! index-sorted neighbors sort the filtered survivors (a handful of
//! elements, not N).
//!
//! Points are plain `(x, y)` meter pairs: this crate sits below the
//! geometry layer and must not depend on it.

use std::collections::HashMap;
use std::hash::BuildHasherDefault;

use crate::hash::FastHasher;

/// Integer cell coordinates (may be negative: positions are not required
/// to sit in the positive quadrant).
type CellKey = (i64, i64);

// Cell keys are small, attacker-free integers: the crate-wide
// [`FastHasher`] (which the SipHash-shy protocol and harness tables use
// too) replaces the map's default hasher.
type CellMap = HashMap<CellKey, Vec<usize>, BuildHasherDefault<FastHasher>>;

/// Number of bucket-storage shards (power of two). At 100k+ nodes a
/// single cell map concentrates every bucket in one allocation whose
/// doubling resize stalls the event loop and strands up to half the
/// table as dead capacity; sixteen shards cap the largest single resize
/// at 1/16 of the cells while leaving lookups O(1).
const SHARDS: usize = 16;

/// A grid-bucketed index over `n` movable points.
#[derive(Debug, Clone)]
pub struct SpatialIndex {
    /// Cell side length in meters.
    cell_m: f64,
    /// Cell → the nodes currently bucketed in it, sharded by cell-key
    /// hash. Only ever *indexed* by key (never iterated), so neither the
    /// shard split nor the maps' internal order can leak into results.
    cells: Vec<CellMap>,
    /// Per-node current cell key.
    keys: Vec<CellKey>,
    /// Per-node last-bucketed position (diagnostics and standalone use).
    points: Vec<(f64, f64)>,
}

/// The shard holding `key`'s bucket. Uses the hash's *top* bits: the
/// shard maps index buckets by the low bits, so carving the shard out of
/// those would put every key of a shard in the same bucket class.
fn shard_of(key: CellKey) -> usize {
    use std::hash::{Hash, Hasher};
    let mut h = FastHasher::default();
    key.hash(&mut h);
    (h.finish() >> 60) as usize & (SHARDS - 1)
}

impl SpatialIndex {
    /// Creates an index over `points` with the given cell size.
    ///
    /// # Panics
    ///
    /// Panics if `cell_m` is not positive and finite.
    pub fn new(cell_m: f64, points: &[(f64, f64)]) -> Self {
        assert!(
            cell_m.is_finite() && cell_m > 0.0,
            "cell size must be positive, got {cell_m}"
        );
        let mut index = SpatialIndex {
            cell_m,
            cells: (0..SHARDS).map(|_| CellMap::default()).collect(),
            keys: Vec::with_capacity(points.len()),
            points: Vec::with_capacity(points.len()),
        };
        for &p in points {
            let key = index.key_of(p);
            index.cells[shard_of(key)]
                .entry(key)
                .or_default()
                .push(index.keys.len());
            index.keys.push(key);
            index.points.push(p);
        }
        index
    }

    /// The cell side length in meters.
    pub fn cell_size(&self) -> f64 {
        self.cell_m
    }

    /// Number of indexed points.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the index holds no points.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The position `node` was last bucketed at.
    pub fn point(&self, node: usize) -> (f64, f64) {
        self.points[node]
    }

    /// The integer cell coordinates containing position `p`.
    pub fn key_of(&self, p: (f64, f64)) -> CellKey {
        (
            (p.0 / self.cell_m).floor() as i64,
            (p.1 / self.cell_m).floor() as i64,
        )
    }

    /// Moves `node` to position `p`, re-bucketing it iff its cell changed.
    /// Returns whether a re-bucket happened.
    pub fn update(&mut self, node: usize, p: (f64, f64)) -> bool {
        self.points[node] = p;
        let new_key = self.key_of(p);
        let old_key = self.keys[node];
        if new_key == old_key {
            return false;
        }
        let old_shard = &mut self.cells[shard_of(old_key)];
        let old_cell = old_shard.get_mut(&old_key).expect("node's cell exists");
        let at = old_cell
            .iter()
            .position(|&v| v == node)
            .expect("node listed in its cell");
        old_cell.swap_remove(at);
        if old_cell.is_empty() {
            old_shard.remove(&old_key);
        }
        self.cells[shard_of(new_key)]
            .entry(new_key)
            .or_default()
            .push(node);
        self.keys[node] = new_key;
        true
    }

    /// Live heap bytes held by the index (bucket shards including their
    /// node vectors, plus the per-node key/point tables).
    pub fn mem_bytes(&self) -> usize {
        let entry = std::mem::size_of::<(CellKey, Vec<usize>)>() + 1;
        self.cells
            .iter()
            .map(|shard| {
                shard.capacity() * entry
                    + shard
                        .values()
                        .map(|v| v.capacity() * std::mem::size_of::<usize>())
                        .sum::<usize>()
            })
            .sum::<usize>()
            + self.keys.capacity() * std::mem::size_of::<CellKey>()
            + self.points.capacity() * std::mem::size_of::<(f64, f64)>()
    }

    /// Appends every node bucketed in a cell intersecting the closed disc
    /// of `radius_m` around `center` to `out` (a superset: whole cells
    /// are taken, and a node at `center` itself is included — callers
    /// filter by exact distance). Guaranteed to contain every node whose
    /// *bucketed* position lies within `radius_m` of `center`.
    pub fn candidates_within(&self, center: (f64, f64), radius_m: f64, out: &mut Vec<usize>) {
        let (cx, cy) = self.key_of(center);
        // A cell at offset k has nearest distance > (k−1)·cell, so cells
        // beyond ceil(radius/cell) cannot intersect the disc. Within the
        // block, corner cells whose nearest point to `center` provably
        // exceeds the radius are culled geometrically before the map
        // lookup — at half-range cells that skips ~40% of the block (and
        // all their candidates). The bound is conservative (a meter of
        // slack over the exact nearest distance), so no in-range node can
        // be lost to floating-point error.
        let r = (radius_m / self.cell_m).ceil() as i64;
        let limit_sq = (radius_m + 1.0) * (radius_m + 1.0);
        for dx in -r..=r {
            let gap_x = if dx > 0 {
                (cx + dx) as f64 * self.cell_m - center.0
            } else if dx < 0 {
                center.0 - (cx + dx + 1) as f64 * self.cell_m
            } else {
                0.0
            };
            for dy in -r..=r {
                let gap_y = if dy > 0 {
                    (cy + dy) as f64 * self.cell_m - center.1
                } else if dy < 0 {
                    center.1 - (cy + dy + 1) as f64 * self.cell_m
                } else {
                    0.0
                };
                if gap_x * gap_x + gap_y * gap_y > limit_sq {
                    continue;
                }
                let key = (cx + dx, cy + dy);
                if let Some(cell) = self.cells[shard_of(key)].get(&key) {
                    out.extend_from_slice(cell);
                }
            }
        }
    }

    /// Nodes within `range` meters of `node`'s *bucketed* position,
    /// excluding `node` itself, ascending by index, appended to `out`.
    /// Exact only when the bucketed positions are current (static point
    /// sets, or immediately after `update`s with exact positions).
    pub fn neighbors_within(&self, node: usize, range: f64, out: &mut Vec<usize>) {
        let center = self.points[node];
        let start = out.len();
        self.candidates_within(center, range, out);
        let range_sq = range * range;
        let mut write = start;
        for read in start..out.len() {
            let v = out[read];
            let (x, y) = self.points[v];
            let (dx, dy) = (x - center.0, y - center.1);
            if v != node && dx * dx + dy * dy <= range_sq {
                out[write] = v;
                write += 1;
            }
        }
        out.truncate(write);
        out[start..].sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::stream;
    use rand::Rng;

    /// Brute-force reference: indices within `range` of `node`, ascending.
    fn brute(points: &[(f64, f64)], node: usize, range: f64) -> Vec<usize> {
        let (cx, cy) = points[node];
        points
            .iter()
            .enumerate()
            .filter(|&(v, &(x, y))| {
                v != node && (x - cx) * (x - cx) + (y - cy) * (y - cy) <= range * range
            })
            .map(|(v, _)| v)
            .collect()
    }

    fn random_points(n: usize, extent: f64, seed: u64) -> Vec<(f64, f64)> {
        let mut rng = stream(seed, "spatial-test", 0);
        (0..n)
            .map(|_| {
                (
                    rng.gen_range(-extent..extent),
                    rng.gen_range(-extent..extent),
                )
            })
            .collect()
    }

    #[test]
    fn matches_brute_force_on_random_points() {
        // Cell sizes straddling the query ranges: blocks of 3×3 up to 9×9.
        for seed in 0..6 {
            let points = random_points(120, 1500.0, seed);
            for cell in [150.0, 300.0, 550.0, 800.0] {
                let index = SpatialIndex::new(cell, &points);
                let mut out = Vec::new();
                for node in 0..points.len() {
                    for range in [100.0, 250.0, 550.0] {
                        out.clear();
                        index.neighbors_within(node, range, &mut out);
                        assert_eq!(
                            out,
                            brute(&points, node, range),
                            "seed {seed} cell {cell} node {node} range {range}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn updates_rebucket_only_on_cell_change() {
        let mut index = SpatialIndex::new(100.0, &[(10.0, 10.0), (250.0, 10.0)]);
        // Move within the same cell: no re-bucket.
        assert!(!index.update(0, (90.0, 90.0)));
        // Cross a boundary: re-bucket.
        assert!(index.update(0, (110.0, 90.0)));
        assert_eq!(index.key_of(index.point(0)), (1, 0));
        let mut out = Vec::new();
        index.neighbors_within(1, 100.0, &mut out);
        assert!(out.is_empty(), "0 is 140 m away");
        index.update(0, (240.0, 10.0));
        out.clear();
        index.neighbors_within(1, 100.0, &mut out);
        assert_eq!(out, vec![0]);
    }

    #[test]
    fn tracks_moving_points_against_brute_force() {
        let mut points = random_points(60, 800.0, 99);
        let mut index = SpatialIndex::new(300.0, &points);
        let mut rng = stream(7, "spatial-walk", 0);
        let mut out = Vec::new();
        for _ in 0..50 {
            // Random walk every point, including multi-cell jumps.
            for (v, p) in points.iter_mut().enumerate() {
                p.0 += rng.gen_range(-400.0..400.0);
                p.1 += rng.gen_range(-400.0..400.0);
                index.update(v, *p);
            }
            for node in [0, 17, 59] {
                out.clear();
                index.neighbors_within(node, 300.0, &mut out);
                assert_eq!(out, brute(&points, node, 300.0));
            }
        }
    }

    #[test]
    fn negative_coordinates_are_fine() {
        let points = [(-10.0, -10.0), (-20.0, -15.0), (500.0, 500.0)];
        let index = SpatialIndex::new(550.0, &points);
        let mut out = Vec::new();
        index.neighbors_within(0, 50.0, &mut out);
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn range_may_exceed_cell_size() {
        let points = random_points(80, 1000.0, 5);
        let index = SpatialIndex::new(120.0, &points);
        let mut out = Vec::new();
        for node in [0, 40, 79] {
            out.clear();
            index.neighbors_within(node, 700.0, &mut out);
            assert_eq!(out, brute(&points, node, 700.0));
        }
    }

    #[test]
    #[should_panic(expected = "cell size must be positive")]
    fn bad_cell_size_panics() {
        let _ = SpatialIndex::new(0.0, &[]);
    }
}
