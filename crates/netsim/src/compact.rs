//! Compact sorted-vector maps for per-node protocol state.
//!
//! At 100k+ nodes the dominant memory cost of the protocol layer is not
//! the entries themselves but the hash-map superstructure around them: a
//! `FastHashMap` holding two routes costs a full bucket array plus
//! per-entry control bytes, repeated once per node per table. A
//! [`VecMap`] stores the same entries in one sorted `Vec<(K, V)>` —
//! binary-search lookups, shift-insertions — which is strictly smaller
//! and, for the 0–8-entry tables a node actually holds, just as fast.
//!
//! The map iterates in ascending key order, which is *more* deterministic
//! than the hash-ordered iteration it replaces: callers that previously
//! collected keys and sorted them can rely on the order directly. Lookup,
//! insertion and removal semantics match `std::collections` maps, so the
//! engine can alias either representation behind one name and diff the
//! two for bit-identity.

/// A map backed by a single `Vec` of entries kept sorted by key.
///
/// Designed as a drop-in for the subset of the `HashMap` API the routing
/// engines use: `get`/`get_mut`/`insert`/`remove`/`contains_key`/
/// `entry().or_insert*`/`retain`/`keys`/`iter`/`values`. All iteration
/// is in ascending key order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VecMap<K, V> {
    entries: Vec<(K, V)>,
}

impl<K: Ord + Copy, V> Default for VecMap<K, V> {
    fn default() -> Self {
        VecMap {
            entries: Vec::new(),
        }
    }
}

impl<K: Ord + Copy, V> VecMap<K, V> {
    /// An empty map (allocates nothing until the first insertion).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn index_of(&self, key: &K) -> Result<usize, usize> {
        self.entries.binary_search_by(|(k, _)| k.cmp(key))
    }

    /// The value for `key`, if present.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.index_of(key).ok().map(|i| &self.entries[i].1)
    }

    /// Mutable access to the value for `key`, if present.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        match self.index_of(key) {
            Ok(i) => Some(&mut self.entries[i].1),
            Err(_) => None,
        }
    }

    /// Whether `key` has an entry.
    pub fn contains_key(&self, key: &K) -> bool {
        self.index_of(key).is_ok()
    }

    /// Inserts `value` at `key`, returning the previous value if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        match self.index_of(&key) {
            Ok(i) => Some(std::mem::replace(&mut self.entries[i].1, value)),
            Err(i) => {
                self.entries.insert(i, (key, value));
                None
            }
        }
    }

    /// Removes and returns the value at `key`, if present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        match self.index_of(key) {
            Ok(i) => Some(self.entries.remove(i).1),
            Err(_) => None,
        }
    }

    /// Drops every entry (keeps the allocation).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Keeps only the entries for which `f` returns `true`.
    pub fn retain(&mut self, mut f: impl FnMut(&K, &mut V) -> bool) {
        self.entries.retain_mut(|(k, v)| f(k, v));
    }

    /// Keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = &K> + '_ {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Values in ascending key order.
    pub fn values(&self) -> impl Iterator<Item = &V> + '_ {
        self.entries.iter().map(|(_, v)| v)
    }

    /// `(key, value)` pairs in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> + '_ {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Mutable `(key, value)` pairs in ascending key order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&K, &mut V)> + '_ {
        self.entries.iter_mut().map(|(k, v)| (&*k, v))
    }

    /// The `HashMap`-style entry API (the subset the engines use).
    pub fn entry(&mut self, key: K) -> Entry<'_, K, V> {
        let slot = self.index_of(&key);
        Entry {
            map: self,
            key,
            slot,
        }
    }

    /// Live heap bytes held by this map (superstructure + entries).
    /// Counts `Vec` capacity, not length — capacity is what the
    /// allocator actually holds.
    pub fn mem_bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<(K, V)>()
    }

    /// Releases surplus capacity (after a pruning sweep).
    pub fn shrink_to_fit(&mut self) {
        self.entries.shrink_to_fit();
    }
}

/// A view into a single [`VecMap`] slot, occupied or vacant.
pub struct Entry<'a, K: Ord + Copy, V> {
    map: &'a mut VecMap<K, V>,
    key: K,
    slot: Result<usize, usize>,
}

impl<'a, K: Ord + Copy, V> Entry<'a, K, V> {
    /// Inserts `default` if vacant; returns the value either way.
    pub fn or_insert(self, default: V) -> &'a mut V {
        self.or_insert_with(|| default)
    }

    /// Inserts `default()` if vacant; returns the value either way.
    pub fn or_insert_with(self, default: impl FnOnce() -> V) -> &'a mut V {
        let i = match self.slot {
            Ok(i) => i,
            Err(i) => {
                self.map.entries.insert(i, (self.key, default()));
                i
            }
        };
        &mut self.map.entries[i].1
    }
}

impl<K: Ord + Copy, V> FromIterator<(K, V)> for VecMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut m = VecMap::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut m: VecMap<u32, &str> = VecMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(5, "five"), None);
        assert_eq!(m.insert(1, "one"), None);
        assert_eq!(m.insert(3, "three"), None);
        assert_eq!(m.insert(3, "THREE"), Some("three"));
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(&3), Some(&"THREE"));
        assert!(m.contains_key(&1) && !m.contains_key(&2));
        assert_eq!(m.remove(&1), Some("one"));
        assert_eq!(m.remove(&1), None);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn iteration_is_key_sorted() {
        let mut m: VecMap<u64, u64> = VecMap::new();
        for k in [9, 2, 7, 0, 4] {
            m.insert(k, k * 10);
        }
        let keys: Vec<u64> = m.keys().copied().collect();
        assert_eq!(keys, vec![0, 2, 4, 7, 9]);
        let pairs: Vec<(u64, u64)> = m.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(pairs, vec![(0, 0), (2, 20), (4, 40), (7, 70), (9, 90)]);
    }

    #[test]
    fn entry_api_matches_hashmap_semantics() {
        let mut m: VecMap<u32, u32> = VecMap::new();
        *m.entry(7).or_insert(0) += 1;
        *m.entry(7).or_insert(0) += 1;
        assert_eq!(m.get(&7), Some(&2));
        let v = m.entry(9).or_insert_with(|| 42);
        assert_eq!(*v, 42);
        *v += 1;
        assert_eq!(m.get(&9), Some(&43));
    }

    #[test]
    fn retain_prunes_in_place() {
        let mut m: VecMap<u32, u32> = (0..10u32).map(|k| (k, k)).collect();
        m.retain(|k, _| k % 3 == 0);
        let keys: Vec<u32> = m.keys().copied().collect();
        assert_eq!(keys, vec![0, 3, 6, 9]);
    }

    #[test]
    fn mem_bytes_tracks_capacity() {
        let mut m: VecMap<u64, u64> = VecMap::new();
        assert_eq!(m.mem_bytes(), 0);
        m.insert(1, 1);
        assert!(m.mem_bytes() >= std::mem::size_of::<(u64, u64)>());
    }
}
