//! A cancellable, deterministic event queue.
//!
//! Events at equal times pop in insertion order (a monotone sequence number
//! breaks ties), which makes whole-simulation runs bit-reproducible for a
//! given seed. Cancellation is lazy: a cancelled token is skipped when it
//! reaches the head of the heap.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::time::SimTime;

/// Handle identifying a scheduled event, usable to cancel it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventToken(u64);

/// An event popped from the queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scheduled<E> {
    /// When the event fires.
    pub time: SimTime,
    /// The token it was scheduled under.
    pub token: EventToken,
    /// The event payload.
    pub event: E,
}

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest first and,
        // within a time, the lowest sequence number first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A min-heap of timed events with stable FIFO tie-breaking and O(1)
/// cancellation.
///
/// # Examples
///
/// ```
/// use slr_netsim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// let _a = q.schedule(SimTime::from_secs(2), "late");
/// let b = q.schedule(SimTime::from_secs(1), "early");
/// let c = q.schedule(SimTime::from_secs(1), "early2");
/// q.cancel(c);
/// assert_eq!(q.pop().unwrap().event, "early");
/// assert_eq!(q.pop().unwrap().event, "late");
/// assert!(q.pop().is_none());
/// # let _ = b;
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    /// Sequence numbers of events that are scheduled and not yet popped or
    /// cancelled. Entries in `heap` whose seq is absent here are skipped.
    pending: HashSet<u64>,
    next_seq: u64,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            pending: HashSet::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` at absolute `time`; returns a cancellation token.
    pub fn schedule(&mut self, time: SimTime, event: E) -> EventToken {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
        self.pending.insert(seq);
        EventToken(seq)
    }

    /// Cancels a previously scheduled event. Returns `true` if the event
    /// was still pending (not yet popped or cancelled).
    pub fn cancel(&mut self, token: EventToken) -> bool {
        self.pending.remove(&token.0)
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        while let Some(entry) = self.heap.pop() {
            if !self.pending.remove(&entry.seq) {
                continue; // cancelled
            }
            return Some(Scheduled {
                time: entry.time,
                token: EventToken(entry.seq),
                event: entry.event,
            });
        }
        None
    }

    /// The firing time of the earliest pending event.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        loop {
            let head_seq = self.heap.peek()?.seq;
            if !self.pending.contains(&head_seq) {
                self.heap.pop();
                continue;
            }
            return Some(self.heap.peek().expect("checked above").time);
        }
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 3);
        q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(2), 2);
        assert_eq!(q.pop().unwrap().event, 1);
        assert_eq!(q.pop().unwrap().event, 2);
        assert_eq!(q.pop().unwrap().event, 3);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().event, i);
        }
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        assert_eq!(q.pop().unwrap().event, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_unknown_token_is_false() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(!q.cancel(EventToken(42)));
    }

    #[test]
    fn cancel_after_pop_is_harmless() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(2), 2);
        assert_eq!(q.pop().unwrap().event, 1);
        assert!(!q.cancel(a), "cancelling a popped event reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().event, 2);
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let a = q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(2), 2);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(5), 2);
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
    }
}
