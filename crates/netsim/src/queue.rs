//! A cancellable, deterministic event queue.
//!
//! Events at equal times pop in insertion order (a monotone sequence number
//! breaks ties), which makes whole-simulation runs bit-reproducible for a
//! given seed.
//!
//! ## Cancellation and compaction
//!
//! Cancellation is O(1): the entry's slot in an internal slab is marked
//! cancelled and the heap entry becomes a *tombstone*, skipped when it
//! reaches the head. Tombstones are physically removed either lazily (at
//! the head) or by a threshold-triggered compaction: when more than half
//! of the heap (beyond a small floor) is tombstones, the heap is rebuilt
//! from its live entries in O(n). Under a schedule/cancel/reschedule timer
//! churn loop — the MAC's ACK/CTS pattern, where almost every armed timer
//! is cancelled long before its distant fire time — the heap therefore
//! stays proportional to the *live* event count instead of growing with
//! the total number of cancellations.
//!
//! Compaction never reorders live events (ordering lives in the entries
//! themselves), so pop order — and with it simulation determinism — is
//! unaffected by when or whether it runs.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Handle identifying a scheduled event, usable to cancel it.
///
/// Internally a `(slot, generation)` pair into the queue's slab: slots are
/// recycled once their heap entry is gone, and the generation is bumped on
/// every recycle, so a stale token held across a pop can never cancel an
/// unrelated later event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventToken(u64);

impl EventToken {
    fn new(slot: u32, gen: u32) -> Self {
        EventToken(((slot as u64) << 32) | gen as u64)
    }

    fn slot(self) -> u32 {
        (self.0 >> 32) as u32
    }

    fn generation(self) -> u32 {
        self.0 as u32
    }
}

/// An event popped from the queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scheduled<E> {
    /// When the event fires.
    pub time: SimTime,
    /// The token it was scheduled under.
    pub token: EventToken,
    /// The event payload.
    pub event: E,
}

struct Entry<E> {
    time: SimTime,
    seq: u64,
    slot: u32,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we want earliest first and,
        // within a time, the lowest sequence number first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Slab slot state. A slot stays allocated for exactly as long as its heap
/// entry physically exists (pending *or* tombstoned); it is recycled when
/// the entry is popped, skimmed, or compacted away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    /// Slot free; value is the next free slot (`u32::MAX` = none).
    Free(u32),
    /// Event scheduled and not cancelled.
    Pending,
    /// Event cancelled; its heap entry is a tombstone.
    Cancelled,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    gen: u32,
    state: SlotState,
}

/// Default tombstone count below which compaction never triggers; avoids
/// O(n) rebuilds of tiny heaps where lazy skimming is already cheap.
/// Tunable per queue via [`EventQueue::with_compact_floor`] — e.g. the
/// parallel engine's merge phase drains per-worker insertion buffers in
/// bursts and may prefer a higher floor so mid-burst cancellations never
/// trigger a rebuild inside the merge.
pub const DEFAULT_COMPACT_FLOOR: usize = 64;

/// A min-heap of timed events with stable FIFO tie-breaking, O(1)
/// cancellation, and tombstone compaction keeping memory proportional to
/// the live event count.
///
/// # Examples
///
/// ```
/// use slr_netsim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// let _a = q.schedule(SimTime::from_secs(2), "late");
/// let b = q.schedule(SimTime::from_secs(1), "early");
/// let c = q.schedule(SimTime::from_secs(1), "early2");
/// q.cancel(c);
/// assert_eq!(q.pop().unwrap().event, "early");
/// assert_eq!(q.pop().unwrap().event, "late");
/// assert!(q.pop().is_none());
/// # let _ = b;
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    slots: Vec<Slot>,
    free_head: u32,
    /// Tombstoned (cancelled, not yet physically removed) heap entries.
    cancelled: usize,
    next_seq: u64,
    /// Tombstone count below which compaction never triggers.
    compact_floor: usize,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the default compaction floor.
    pub fn new() -> Self {
        EventQueue::with_compact_floor(DEFAULT_COMPACT_FLOOR)
    }

    /// Creates an empty queue whose tombstone compaction only triggers
    /// once more than `floor` entries are tombstoned (and tombstones
    /// outnumber live entries). `floor = 0` compacts as aggressively as
    /// the ratio allows; `usize::MAX` disables compaction (lazy skimming
    /// only — the pre-compaction behavior, heap memory grows with the
    /// cancellation count under timer churn).
    pub fn with_compact_floor(floor: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            slots: Vec::new(),
            free_head: u32::MAX,
            cancelled: 0,
            next_seq: 0,
            compact_floor: floor,
        }
    }

    /// The configured compaction floor.
    pub fn compact_floor(&self) -> usize {
        self.compact_floor
    }

    /// Live heap bytes of the heap storage and the slot table.
    pub fn mem_bytes(&self) -> usize {
        self.heap.capacity() * std::mem::size_of::<Entry<E>>()
            + self.slots.capacity() * std::mem::size_of::<Slot>()
    }

    fn alloc_slot(&mut self) -> u32 {
        if self.free_head != u32::MAX {
            let slot = self.free_head;
            let s = &mut self.slots[slot as usize];
            match s.state {
                SlotState::Free(next) => self.free_head = next,
                _ => unreachable!("free list points at a live slot"),
            }
            s.state = SlotState::Pending;
            slot
        } else {
            let slot = self.slots.len() as u32;
            self.slots.push(Slot {
                gen: 0,
                state: SlotState::Pending,
            });
            slot
        }
    }

    /// Recycles `slot` once its heap entry is physically gone. The
    /// generation bump invalidates every outstanding token for it.
    fn free_slot(&mut self, slot: u32) {
        let s = &mut self.slots[slot as usize];
        s.gen = s.gen.wrapping_add(1);
        s.state = SlotState::Free(self.free_head);
        self.free_head = slot;
    }

    /// Schedules `event` at absolute `time`; returns a cancellation token.
    pub fn schedule(&mut self, time: SimTime, event: E) -> EventToken {
        let slot = self.alloc_slot();
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time,
            seq,
            slot,
            event,
        });
        EventToken::new(slot, self.slots[slot as usize].gen)
    }

    /// Drains `items` into the queue in order, appending one cancellation
    /// token per item to `out` (same order). Equivalent to a loop of
    /// [`EventQueue::schedule`] calls — sequence numbers are assigned in
    /// drain order, so same-time items keep their relative FIFO order —
    /// but reserves heap and slab capacity once up front, so a burst
    /// (e.g. the parallel engine's merge phase draining per-worker
    /// insertion buffers) performs no per-op growth.
    pub fn schedule_bulk(&mut self, items: &mut Vec<(SimTime, E)>, out: &mut Vec<EventToken>) {
        self.heap.reserve(items.len());
        // The free list is consumed first; only the shortfall needs new
        // slab slots, but reserving the full burst keeps this one branch.
        self.slots.reserve(items.len());
        out.reserve(items.len());
        for (time, event) in items.drain(..) {
            out.push(self.schedule(time, event));
        }
    }

    /// Cancels a previously scheduled event. Returns `true` if the event
    /// was still pending (not yet popped or cancelled). O(1); may trigger
    /// an amortized-O(1) tombstone compaction.
    pub fn cancel(&mut self, token: EventToken) -> bool {
        let slot = token.slot() as usize;
        match self.slots.get(slot) {
            Some(s) if s.gen == token.generation() && s.state == SlotState::Pending => {
                self.slots[slot].state = SlotState::Cancelled;
                self.cancelled += 1;
                if self.cancelled > self.compact_floor && self.cancelled * 2 > self.heap.len() {
                    self.compact();
                }
                true
            }
            _ => false,
        }
    }

    /// Rebuilds the heap from its live entries, recycling every tombstone.
    /// O(n); triggered when tombstones outnumber live entries.
    fn compact(&mut self) {
        let entries = std::mem::take(&mut self.heap).into_vec();
        let mut live = Vec::with_capacity(entries.len() - self.cancelled);
        for e in entries {
            match self.slots[e.slot as usize].state {
                SlotState::Pending => live.push(e),
                SlotState::Cancelled => {
                    self.cancelled -= 1;
                    self.free_slot(e.slot);
                }
                SlotState::Free(_) => unreachable!("heap entry with freed slot"),
            }
        }
        debug_assert_eq!(self.cancelled, 0);
        self.heap = BinaryHeap::from(live);
    }

    /// Removes and returns the earliest pending event.
    pub fn pop(&mut self) -> Option<Scheduled<E>> {
        while let Some(entry) = self.heap.pop() {
            let slot = entry.slot;
            let state = self.slots[slot as usize].state;
            let generation = self.slots[slot as usize].gen;
            self.free_slot(slot);
            match state {
                SlotState::Cancelled => {
                    self.cancelled -= 1;
                    continue;
                }
                SlotState::Pending => {
                    return Some(Scheduled {
                        time: entry.time,
                        token: EventToken::new(slot, generation),
                        event: entry.event,
                    });
                }
                SlotState::Free(_) => unreachable!("heap entry with freed slot"),
            }
        }
        None
    }

    /// The firing time of the earliest pending event.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.skim_head()?;
        self.heap.peek().map(|e| e.time)
    }

    /// The earliest pending event, without popping it: `(time, &event)`.
    /// The basis of window-popping dispatchers (pop consecutive events
    /// sharing the head timestamp, but only after inspecting each head to
    /// decide it is safe to take into the window).
    pub fn peek_event(&mut self) -> Option<(SimTime, &E)> {
        self.skim_head()?;
        self.heap.peek().map(|e| (e.time, &e.event))
    }

    /// Physically removes tombstones sitting at the heap head; afterwards
    /// the head (if any) is a live entry. Returns `None` when empty.
    fn skim_head(&mut self) -> Option<()> {
        loop {
            let head = self.heap.peek()?;
            match self.slots[head.slot as usize].state {
                SlotState::Pending => return Some(()),
                SlotState::Cancelled => {
                    let e = self.heap.pop().expect("peeked above");
                    self.cancelled -= 1;
                    self.free_slot(e.slot);
                }
                SlotState::Free(_) => unreachable!("heap entry with freed slot"),
            }
        }
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Physical heap entries, live *and* tombstoned. The compaction
    /// contract keeps this within a constant factor of [`EventQueue::len`]
    /// (plus the compaction floor) no matter how many cancellations have
    /// occurred — the bound the timer-churn regression test asserts.
    pub fn heap_len(&self) -> usize {
        self.heap.len()
    }

    /// Slab slots ever allocated (free *and* in use). Compaction recycles
    /// the slots of every tombstone it removes, so this stays proportional
    /// to the peak *physical* heap size — the slab-reuse contract the
    /// compaction unit test asserts.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), 3);
        q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(2), 2);
        assert_eq!(q.pop().unwrap().event, 1);
        assert_eq!(q.pop().unwrap().event, 2);
        assert_eq!(q.pop().unwrap().event, 3);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100 {
            q.schedule(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().event, i);
        }
    }

    #[test]
    fn cancel_skips_event() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        assert_eq!(q.pop().unwrap().event, "b");
        assert!(q.pop().is_none());
    }

    #[test]
    fn cancel_unknown_token_is_false() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(!q.cancel(EventToken::new(42, 0)));
    }

    #[test]
    fn cancel_after_pop_is_harmless() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(2), 2);
        assert_eq!(q.pop().unwrap().event, 1);
        assert!(!q.cancel(a), "cancelling a popped event reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().unwrap().event, 2);
    }

    #[test]
    fn stale_token_cannot_cancel_recycled_slot() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), 1);
        assert_eq!(q.pop().unwrap().event, 1);
        // The new event reuses slot 0; the stale token must not touch it.
        let b = q.schedule(SimTime::from_secs(2), 2);
        assert!(!q.cancel(a), "stale token must not cancel a reused slot");
        assert_eq!(q.len(), 1);
        assert!(q.cancel(b));
        assert!(q.pop().is_none());
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let a = q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(2), 2);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), 1);
        q.schedule(SimTime::from_secs(5), 2);
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(5)));
    }

    #[test]
    fn compaction_preserves_fifo_and_time_order() {
        // Interleave live and cancelled events so several compactions run,
        // then verify pop order is exactly what an uncancelled queue with
        // the same live set would produce.
        let mut q = EventQueue::new();
        let mut expected = Vec::new();
        for round in 0..50u64 {
            for i in 0..20u64 {
                let t = SimTime::from_millis(1000 - round * 10);
                let id = round * 100 + i;
                let tok = q.schedule(t, id);
                if i % 3 == 0 {
                    expected.push((t, id));
                } else {
                    q.cancel(tok);
                }
            }
        }
        // Live events at equal times pop in schedule order.
        expected.sort_by_key(|&(t, id)| (t, id));
        let mut got = Vec::new();
        while let Some(e) = q.pop() {
            got.push((e.time, e.event));
        }
        assert_eq!(got, expected);
    }

    /// Satellite regression (issue 4): a sim-realistic timer-churn loop —
    /// schedule a timeout well in the future, cancel it shortly after,
    /// re-arm, repeat (the MAC's ACK/CTS pattern under heavy traffic) —
    /// must not grow the heap with the cancellation count. Under the old
    /// lazy-only cancellation every cancelled entry sat in the heap until
    /// its distant fire time passed, so this loop grew the heap linearly
    /// (~100k tombstones below); with compaction the physical heap stays
    /// within a small constant factor of the live event count.
    #[test]
    fn timer_churn_keeps_heap_bounded() {
        let mut q = EventQueue::new();
        let timeout = SimDuration::from_secs(10); // re-armed far ahead
        let step = SimDuration::from_micros(300); // cancelled quickly
        let mut now = SimTime::ZERO;
        let mut max_heap = 0usize;
        // 100 concurrent logical timers (nodes), each re-armed 1000 times.
        let mut tokens: Vec<EventToken> = (0..100).map(|i| q.schedule(now + timeout, i)).collect();
        for _ in 0..1000 {
            now += step;
            for (i, tok) in tokens.iter_mut().enumerate() {
                assert!(q.cancel(*tok), "timer was still pending");
                *tok = q.schedule(now + timeout, i);
            }
            max_heap = max_heap.max(q.heap_len());
        }
        assert_eq!(q.len(), 100, "exactly the live timers remain");
        assert!(
            max_heap <= 4 * 100 + 2 * DEFAULT_COMPACT_FLOOR,
            "heap grew with cancellations: peak {max_heap} physical \
             entries for 100 live timers (100k cancellations)"
        );
        // Drain: every live timer pops exactly once, in FIFO order.
        let mut seen = Vec::new();
        while let Some(e) = q.pop() {
            seen.push(e.event);
        }
        assert_eq!(seen, (0..100).collect::<Vec<_>>());
    }

    /// Satellite (issue 5): the compaction threshold is a constructor
    /// parameter. A queue with a tiny floor compacts aggressively; one
    /// with `usize::MAX` never compacts (the pre-compaction lazy
    /// behavior); the default matches [`DEFAULT_COMPACT_FLOOR`].
    #[test]
    fn compact_floor_is_configurable() {
        assert_eq!(
            EventQueue::<u32>::new().compact_floor(),
            DEFAULT_COMPACT_FLOOR
        );
        let mut eager = EventQueue::with_compact_floor(0);
        let mut never = EventQueue::with_compact_floor(usize::MAX);
        let far = SimTime::from_secs(100);
        for q in [&mut eager, &mut never] {
            let toks: Vec<_> = (0..100).map(|i| q.schedule(far, i)).collect();
            for t in &toks[..99] {
                q.cancel(*t);
            }
        }
        assert!(
            eager.heap_len() <= 2,
            "floor 0 must compact tombstones away, heap_len {}",
            eager.heap_len()
        );
        assert_eq!(never.heap_len(), 100, "floor usize::MAX must never compact");
        // Both still pop exactly the one live event.
        assert_eq!(eager.pop().unwrap().event, 99);
        assert_eq!(never.pop().unwrap().event, 99);
    }

    /// Satellite (issue 5): compaction recycles the slab slot of every
    /// tombstone it removes — later schedules must *reuse* those slots
    /// instead of growing the slab, so slab memory tracks the live event
    /// count, not the cancellation count.
    #[test]
    fn compaction_recycles_slab_slots() {
        let mut q = EventQueue::with_compact_floor(0);
        let far = SimTime::from_secs(100);
        // 1000 schedule/cancel rounds over a single live event: without
        // slot recycling the slab would hold ~1000 slots afterwards.
        let mut tok = q.schedule(far, 0u32);
        for i in 1..1000 {
            assert!(q.cancel(tok));
            tok = q.schedule(far, i);
        }
        assert_eq!(q.len(), 1);
        let peak = q.slot_count();
        assert!(
            peak <= 4,
            "cancelled slots were not recycled: {peak} slab slots \
             for 1 live event after 999 cancellations"
        );
        // A burst of fresh events first drains the free list before
        // growing the slab: slot growth ≤ the net new live entries.
        for i in 0..50u32 {
            q.schedule(far, i);
        }
        assert!(
            q.slot_count() <= peak + 50,
            "slab grew past the live demand: {} slots",
            q.slot_count()
        );
    }

    /// `schedule_bulk` must be indistinguishable from a loop of
    /// `schedule` calls: same pop order (FIFO within a timestamp across
    /// the loop/bulk boundary) and tokens that cancel exactly their item.
    #[test]
    fn schedule_bulk_matches_schedule_loop() {
        let mut looped = EventQueue::new();
        let mut bulked = EventQueue::new();
        let t1 = SimTime::from_secs(1);
        let t2 = SimTime::from_secs(2);
        // Interleave: some singles, then a bulk burst, then more singles.
        looped.schedule(t1, 0u32);
        bulked.schedule(t1, 0u32);
        let mut items = vec![(t2, 1u32), (t1, 2), (t2, 3), (t1, 4)];
        let loop_toks: Vec<_> = items.iter().map(|&(t, e)| looped.schedule(t, e)).collect();
        let mut bulk_toks = Vec::new();
        bulked.schedule_bulk(&mut items, &mut bulk_toks);
        assert!(items.is_empty(), "bulk drains its input");
        assert_eq!(bulk_toks.len(), loop_toks.len());
        looped.schedule(t1, 5);
        bulked.schedule(t1, 5);
        // Cancel the same logical item through both token sets.
        assert!(looped.cancel(loop_toks[2]));
        assert!(bulked.cancel(bulk_toks[2]));
        let drain = |q: &mut EventQueue<u32>| {
            let mut v = Vec::new();
            while let Some(e) = q.pop() {
                v.push((e.time, e.event));
            }
            v
        };
        assert_eq!(drain(&mut looped), drain(&mut bulked));
    }

    #[test]
    fn peek_event_exposes_head_without_popping() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(1), "b");
        assert_eq!(q.peek_event(), Some((SimTime::from_secs(1), &"a")));
        assert_eq!(q.len(), 2, "peek must not consume");
        // Cancelling the head makes peek skim to the next live entry.
        q.cancel(a);
        assert_eq!(q.peek_event(), Some((SimTime::from_secs(1), &"b")));
        assert_eq!(q.pop().unwrap().event, "b");
        assert_eq!(q.peek_event(), None);
    }

    #[test]
    fn heap_len_reports_tombstones_below_compaction_floor() {
        let mut q = EventQueue::new();
        let toks: Vec<_> = (0..10)
            .map(|i| q.schedule(SimTime::from_secs(9), i))
            .collect();
        for t in &toks[..5] {
            q.cancel(*t);
        }
        assert_eq!(q.len(), 5);
        assert_eq!(q.heap_len(), 10, "below the floor tombstones persist");
    }
}
