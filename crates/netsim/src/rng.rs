//! Deterministic random-number streams.
//!
//! Every component of a trial (mobility, traffic, MAC jitter, protocol
//! timers, …) draws from its own stream derived from
//! `(master seed, stream tag, index)` with SplitMix64 mixing. Mobility and
//! traffic streams depend only on the scenario and trial — *not* on the
//! protocol — so all protocols see identical topology and demand per trial,
//! exactly as the paper fixes topology and traffic across protocols in §V.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One SplitMix64 step: mixes `state` and returns the next output.
fn splitmix64(state: &mut u64) {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
}

/// Finalizes a SplitMix64 output.
fn splitmix64_mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a hash of a byte string (for stream tags).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Derives a child seed from a master seed and a sequence of parts.
///
/// The derivation is stable across runs and platforms.
pub fn derive_seed(master: u64, parts: &[u64]) -> u64 {
    let mut state = master;
    splitmix64(&mut state);
    let mut out = splitmix64_mix(state);
    for &p in parts {
        state = state.wrapping_add(splitmix64_mix(p ^ 0xA5A5_A5A5_A5A5_A5A5));
        splitmix64(&mut state);
        out ^= splitmix64_mix(state);
    }
    out
}

/// Creates a named RNG stream: `master` + `tag` + `index`.
///
/// # Examples
///
/// ```
/// use rand::Rng;
/// let mut a = slr_netsim::rng::stream(42, "mobility", 0);
/// let mut b = slr_netsim::rng::stream(42, "mobility", 0);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// let mut c = slr_netsim::rng::stream(42, "traffic", 0);
/// assert_ne!(a.gen::<u64>(), c.gen::<u64>());
/// ```
pub fn stream(master: u64, tag: &str, index: u64) -> SmallRng {
    SmallRng::seed_from_u64(derive_seed(master, &[fnv1a(tag.as_bytes()), index]))
}

/// Samples an exponential variate with the given mean via inverse CDF.
///
/// Used for the paper's flow lifetimes ("Each flow lasts for a mean of 60
/// seconds taken from an exponential variate").
///
/// # Panics
///
/// Panics if `mean` is not positive and finite.
pub fn sample_exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    assert!(mean.is_finite() && mean > 0.0, "invalid mean {mean}");
    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
    -mean * u.ln()
}

/// Samples uniformly from `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi` or either bound is not finite.
pub fn sample_uniform<R: Rng + ?Sized>(rng: &mut R, lo: f64, hi: f64) -> f64 {
    assert!(lo.is_finite() && hi.is_finite() && lo < hi, "bad range");
    rng.gen_range(lo..hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_is_deterministic() {
        assert_eq!(derive_seed(1, &[2, 3]), derive_seed(1, &[2, 3]));
        assert_ne!(derive_seed(1, &[2, 3]), derive_seed(1, &[3, 2]));
        assert_ne!(derive_seed(1, &[2]), derive_seed(2, &[2]));
    }

    #[test]
    fn streams_are_independent_by_tag_and_index() {
        let mut a = stream(7, "mac", 0);
        let mut b = stream(7, "mac", 1);
        let mut c = stream(7, "proto", 0);
        let (x, y, z): (u64, u64, u64) = (a.gen(), b.gen(), c.gen());
        assert_ne!(x, y);
        assert_ne!(x, z);
        assert_ne!(y, z);
    }

    #[test]
    fn streams_reproduce() {
        let seq1: Vec<u32> = {
            let mut r = stream(99, "t", 5);
            (0..16).map(|_| r.gen()).collect()
        };
        let seq2: Vec<u32> = {
            let mut r = stream(99, "t", 5);
            (0..16).map(|_| r.gen()).collect()
        };
        assert_eq!(seq1, seq2);
    }

    #[test]
    fn exponential_mean_is_roughly_right() {
        let mut r = stream(1, "exp", 0);
        let n = 20_000;
        let mean = 60.0;
        let total: f64 = (0..n).map(|_| sample_exponential(&mut r, mean)).sum();
        let avg = total / n as f64;
        assert!(
            (avg - mean).abs() < 2.0,
            "sample mean {avg} too far from {mean}"
        );
    }

    #[test]
    fn exponential_is_positive() {
        let mut r = stream(2, "exp", 0);
        for _ in 0..1000 {
            assert!(sample_exponential(&mut r, 1.0) > 0.0);
        }
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut r = stream(3, "uni", 0);
        for _ in 0..1000 {
            let v = sample_uniform(&mut r, 2.0, 5.0);
            assert!((2.0..5.0).contains(&v));
        }
    }
}
