//! A fixed-capacity Chase–Lev work-stealing deque over `usize` payloads.
//!
//! The unified core budget (see [`crate::pool`]) schedules two kinds of
//! work from one thread pool: coarse trial jobs (a shared injector) and
//! fine window shards. The shards need the classic work-stealing shape —
//! the window's owner pushes and pops at the *bottom* of its own deque
//! (LIFO, cache-warm), idle pool threads steal from the *top* (FIFO,
//! oldest shard first) — so the owner's fast path is uncontended and
//! thieves only synchronize on a single compare-exchange.
//!
//! This is the Chase–Lev algorithm (SPAA '05) with the Lê et al. (PPoPP
//! '13) memory orderings, restricted to what the engine needs:
//!
//! * payloads are plain `usize` shard indices stored in `AtomicUsize`
//!   cells, so the buffer needs no uninitialized memory and no `unsafe` —
//!   every cell access is an atomic load/store and the top CAS decides
//!   ownership of the value;
//! * capacity is fixed at construction (a window never has more shards
//!   than the pool has threads, which is known up front), so the growing
//!   path — the source of the algorithm's only hard memory-reclamation
//!   problem — is simply absent. `push` on a full deque reports failure
//!   and the caller runs the item inline.
//!
//! Determinism note: *which* thread executes a stolen shard is
//! nondeterministic, but the parallel engine's canonical merge keys every
//! side effect by shard index, not by executing thread, so steal order
//! cannot reach simulation output (the bit-identity proptests fuzz this).

use std::sync::atomic::{AtomicI64, AtomicUsize, Ordering};

/// A bounded single-owner, multi-thief work-stealing deque of `usize`.
///
/// The owner calls [`StealDeque::push`] / [`StealDeque::pop`]; any number
/// of other threads call [`StealDeque::steal`] concurrently. All three may
/// overlap freely.
pub struct StealDeque {
    buf: Box<[AtomicUsize]>,
    mask: usize,
    /// Steal end. Only ever incremented, via CAS, by whoever takes the
    /// oldest element (a thief, or the owner racing for the last one).
    top: AtomicI64,
    /// Owner end. Only the owner writes it.
    bottom: AtomicI64,
}

impl StealDeque {
    /// Creates a deque holding at most `capacity` items (rounded up to a
    /// power of two, minimum 2).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        StealDeque {
            buf: (0..cap).map(|_| AtomicUsize::new(0)).collect(),
            mask: cap - 1,
            top: AtomicI64::new(0),
            bottom: AtomicI64::new(0),
        }
    }

    /// The fixed capacity.
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Owner-only: appends `v` at the bottom. Returns `false` (rejecting
    /// the item) if the deque is full.
    pub fn push(&self, v: usize) -> bool {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        if b - t >= self.buf.len() as i64 {
            return false;
        }
        self.buf[(b as usize) & self.mask].store(v, Ordering::Relaxed);
        self.bottom.store(b + 1, Ordering::Release);
        true
    }

    /// Owner-only: takes the most recently pushed item, racing thieves
    /// for the last one.
    pub fn pop(&self) -> Option<usize> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        self.bottom.store(b, Ordering::Relaxed);
        std::sync::atomic::fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t > b {
            // Already empty; restore bottom.
            self.bottom.store(b + 1, Ordering::Relaxed);
            return None;
        }
        let v = self.buf[(b as usize) & self.mask].load(Ordering::Relaxed);
        if t == b {
            // Single element left: win it from the thieves via the top
            // CAS or lose it to one of them.
            let won = self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            self.bottom.store(b + 1, Ordering::Relaxed);
            return won.then_some(v);
        }
        Some(v)
    }

    /// Thief: takes the oldest item, or `None` if empty or lost a race
    /// (callers retry or move on; a lost race is not "empty").
    pub fn steal(&self) -> Option<usize> {
        let t = self.top.load(Ordering::Acquire);
        std::sync::atomic::fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return None;
        }
        let v = self.buf[(t as usize) & self.mask].load(Ordering::Relaxed);
        // The CAS both claims the slot and validates `v`: a push can only
        // overwrite this physical cell after `top` has moved past `t`
        // (the full check in `push` orders it so), which makes this CAS
        // fail — so a successful CAS proves `v` was read intact.
        self.top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .is_ok()
            .then_some(v)
    }

    /// Racy emptiness hint for park/unpark heuristics; never used for
    /// correctness decisions.
    pub fn is_empty_hint(&self) -> bool {
        self.top.load(Ordering::Relaxed) >= self.bottom.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn owner_pushes_and_pops_lifo() {
        let d = StealDeque::new(8);
        for i in 0..5 {
            assert!(d.push(i));
        }
        for i in (0..5).rev() {
            assert_eq!(d.pop(), Some(i));
        }
        assert_eq!(d.pop(), None);
        assert_eq!(d.pop(), None, "pop on empty is repeatable");
    }

    #[test]
    fn steal_takes_oldest_first() {
        let d = StealDeque::new(8);
        for i in 10..14 {
            assert!(d.push(i));
        }
        assert_eq!(d.steal(), Some(10));
        assert_eq!(d.steal(), Some(11));
        assert_eq!(d.pop(), Some(13));
        assert_eq!(d.pop(), Some(12));
        assert_eq!(d.steal(), None);
        assert_eq!(d.pop(), None);
    }

    #[test]
    fn push_rejects_when_full() {
        let d = StealDeque::new(2);
        assert_eq!(d.capacity(), 2);
        assert!(d.push(1));
        assert!(d.push(2));
        assert!(!d.push(3), "full deque must reject");
        assert_eq!(d.steal(), Some(1));
        assert!(d.push(3), "space freed by a steal is reusable");
    }

    #[test]
    fn reuse_across_many_rounds_wraps_indices() {
        let d = StealDeque::new(4);
        for round in 0..1000usize {
            assert!(d.push(round));
            assert!(d.push(round + 1));
            assert_eq!(d.steal(), Some(round));
            assert_eq!(d.pop(), Some(round + 1));
            assert!(d.is_empty_hint());
        }
    }

    /// Every pushed item is taken exactly once across a pool of hungry
    /// thieves racing the owner's pops, over many rounds.
    #[test]
    fn concurrent_steals_neither_lose_nor_duplicate() {
        const ROUNDS: usize = 50;
        const ITEMS: usize = 64;
        const THIEVES: usize = 2;
        let d = StealDeque::new(ITEMS);
        let stop = AtomicBool::new(false);
        let taken: Vec<[AtomicUsize; ITEMS]> = (0..THIEVES + 1)
            .map(|_| std::array::from_fn(|_| AtomicUsize::new(0)))
            .collect();
        std::thread::scope(|s| {
            let (owner_taken, thief_taken) = taken.split_first().unwrap();
            for counts in thief_taken {
                s.spawn(|| {
                    while !stop.load(Ordering::Acquire) {
                        if let Some(v) = d.steal() {
                            counts[v].fetch_add(1, Ordering::Relaxed);
                        } else {
                            // Yield, not spin: on a single-core host the
                            // owner only progresses when thieves cede.
                            std::thread::yield_now();
                        }
                    }
                });
            }
            for round in 1..=ROUNDS {
                for i in 0..ITEMS {
                    assert!(d.push(i));
                }
                // Owner drains what the thieves leave it.
                while let Some(v) = d.pop() {
                    owner_taken[v].fetch_add(1, Ordering::Relaxed);
                }
                // Wait until every item of this round is accounted for
                // (each item taken exactly `round` times so far).
                loop {
                    let total: usize = taken
                        .iter()
                        .flat_map(|c| c.iter())
                        .map(|a| a.load(Ordering::Relaxed))
                        .sum();
                    if total == round * ITEMS {
                        break;
                    }
                    assert!(total < round * ITEMS, "an item was taken twice");
                    std::thread::yield_now();
                }
            }
            stop.store(true, Ordering::Release);
        });
        // Exactly ROUNDS takes of every item, owner + thieves combined.
        for i in 0..ITEMS {
            let total: usize = taken.iter().map(|c| c[i].load(Ordering::Relaxed)).sum();
            assert_eq!(total, ROUNDS, "item {i} lost or duplicated");
        }
    }
}
