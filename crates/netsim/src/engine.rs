//! The simulation executor: a virtual clock driving an [`EventQueue`].
//!
//! The executor is deliberately minimal — it owns *when*, the caller owns
//! *what*. The harness crate holds all node state and interprets events in
//! a plain `while let` loop, which keeps every layer borrow-checker-friendly
//! and unit-testable without callbacks.

use crate::queue::{EventQueue, EventToken, Scheduled};
use crate::time::{SimDuration, SimTime};

/// A discrete-event simulator for events of type `E`.
///
/// # Examples
///
/// ```
/// use slr_netsim::{SimDuration, SimTime, Simulator};
///
/// let mut sim: Simulator<&str> = Simulator::new();
/// sim.schedule_in(SimDuration::from_secs(1), "tick");
/// sim.schedule_in(SimDuration::from_secs(2), "tock");
/// let mut seen = Vec::new();
/// while let Some(ev) = sim.next_before(SimTime::from_secs(10)) {
///     seen.push(ev.event);
/// }
/// assert_eq!(seen, ["tick", "tock"]);
/// assert_eq!(sim.now(), SimTime::from_secs(2));
/// ```
pub struct Simulator<E> {
    queue: EventQueue<E>,
    now: SimTime,
    processed: u64,
}

impl<E> Simulator<E> {
    /// Creates a simulator at time zero with an empty queue.
    pub fn new() -> Self {
        Simulator {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// Like [`Simulator::new`], with the queue's tombstone-compaction
    /// floor set to `floor` (see [`EventQueue::with_compact_floor`]).
    pub fn with_compact_floor(floor: usize) -> Self {
        Simulator {
            queue: EventQueue::with_compact_floor(floor),
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Total events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Live heap bytes of the event queue (see [`EventQueue::mem_bytes`]).
    pub fn queue_mem_bytes(&self) -> usize {
        self.queue.mem_bytes()
    }

    /// Schedules an event at an absolute time.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the current virtual time —
    /// scheduling into the past is always a harness bug.
    pub fn schedule_at(&mut self, time: SimTime, event: E) -> EventToken {
        assert!(
            time >= self.now,
            "scheduling into the past: {time} < {}",
            self.now
        );
        self.queue.schedule(time, event)
    }

    /// Schedules an event `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventToken {
        self.queue.schedule(self.now + delay, event)
    }

    /// Drains `items` (absolute firing times) into the queue in order,
    /// appending one token per item to `out` — the bulk form of
    /// [`Simulator::schedule_at`] (see [`EventQueue::schedule_bulk`]).
    ///
    /// # Panics
    ///
    /// Panics if any item fires earlier than the current virtual time.
    pub fn schedule_bulk(&mut self, items: &mut Vec<(SimTime, E)>, out: &mut Vec<EventToken>) {
        for &(time, _) in items.iter() {
            assert!(
                time >= self.now,
                "scheduling into the past: {time} < {}",
                self.now
            );
        }
        self.queue.schedule_bulk(items, out);
    }

    /// Cancels a pending event. Returns `true` if it was still pending.
    pub fn cancel(&mut self, token: EventToken) -> bool {
        self.queue.cancel(token)
    }

    /// Pops the next event, advancing the clock to its firing time.
    ///
    /// Deliberately named like `Iterator::next`; the simulator is not an
    /// iterator because popping mutates the virtual clock.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<Scheduled<E>> {
        let ev = self.queue.pop()?;
        debug_assert!(ev.time >= self.now, "event queue went backwards");
        self.now = ev.time;
        self.processed += 1;
        Some(ev)
    }

    /// Pops the next event if it fires strictly before `horizon`; otherwise
    /// leaves the queue untouched and returns `None`. The clock never
    /// advances past the last processed event.
    pub fn next_before(&mut self, horizon: SimTime) -> Option<Scheduled<E>> {
        match self.queue.peek_time() {
            Some(t) if t < horizon => self.next(),
            _ => None,
        }
    }

    /// The head event without popping it: `(time, &event)` of the next
    /// thing [`Simulator::next`] would return. Window-popping dispatchers
    /// peek to decide whether the head extends the current same-timestamp
    /// window before committing to the pop.
    pub fn peek_event(&mut self) -> Option<(SimTime, &E)> {
        self.queue.peek_event()
    }
}

impl<E> Default for Simulator<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances_with_events() {
        let mut sim: Simulator<u32> = Simulator::new();
        sim.schedule_at(SimTime::from_secs(5), 5);
        sim.schedule_at(SimTime::from_secs(3), 3);
        let e = sim.next().unwrap();
        assert_eq!(e.event, 3);
        assert_eq!(sim.now(), SimTime::from_secs(3));
        assert_eq!(sim.next().unwrap().event, 5);
        assert_eq!(sim.now(), SimTime::from_secs(5));
        assert!(sim.next().is_none());
        assert_eq!(sim.processed(), 2);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn cannot_schedule_into_past() {
        let mut sim: Simulator<u32> = Simulator::new();
        sim.schedule_at(SimTime::from_secs(2), 1);
        sim.next();
        sim.schedule_at(SimTime::from_secs(1), 2);
    }

    #[test]
    fn horizon_stops_processing() {
        let mut sim: Simulator<u32> = Simulator::new();
        sim.schedule_at(SimTime::from_secs(1), 1);
        sim.schedule_at(SimTime::from_secs(10), 2);
        assert!(sim.next_before(SimTime::from_secs(5)).is_some());
        assert!(sim.next_before(SimTime::from_secs(5)).is_none());
        assert_eq!(sim.pending(), 1);
        // Horizon is exclusive.
        assert!(sim.next_before(SimTime::from_secs(10)).is_none());
        assert!(sim.next_before(SimTime::from_millis(10_001)).is_some());
    }

    #[test]
    fn cancellation_through_simulator() {
        let mut sim: Simulator<u32> = Simulator::new();
        let t = sim.schedule_in(SimDuration::from_secs(1), 1);
        sim.schedule_in(SimDuration::from_secs(2), 2);
        assert!(sim.cancel(t));
        assert_eq!(sim.next().unwrap().event, 2);
    }

    #[test]
    fn events_scheduled_during_processing_fire_in_order() {
        let mut sim: Simulator<u32> = Simulator::new();
        sim.schedule_at(SimTime::from_secs(1), 1);
        let mut order = Vec::new();
        while let Some(e) = sim.next() {
            order.push(e.event);
            if e.event == 1 {
                sim.schedule_in(SimDuration::from_millis(1), 3);
                sim.schedule_in(SimDuration::ZERO, 2);
            }
        }
        assert_eq!(order, vec![1, 2, 3]);
    }
}
