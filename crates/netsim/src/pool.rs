//! A persistent scoped worker pool for intra-trial parallelism.
//!
//! The parallel event engine dispatches hundreds of thousands of tiny
//! same-timestamp windows per trial; spawning threads per window (or even
//! per trial phase) would dwarf the work. This pool spawns its threads
//! **once** per scope and re-broadcasts a borrowed job closure to them on
//! every window: workers spin briefly on an epoch counter (windows arrive
//! back-to-back in the hot phase of a dense trial), then park on a
//! condvar so an idle pool costs nothing.
//!
//! ## Safety
//!
//! This is the only module in the workspace that uses `unsafe`. The whole
//! of it is the classic scoped-pool lifetime erasure: [`WorkerPool::broadcast`]
//! publishes `&dyn Fn(usize)` to the worker threads through a raw pointer
//! whose lifetime is erased, which is sound because
//!
//! * `broadcast` does not return until every worker has finished running
//!   the job (checked through an acquire-loaded completion counter), so
//!   the borrow outlives every dereference;
//! * workers only read the pointer after observing the epoch increment
//!   that is release-stored *after* the pointer write, and the caller
//!   only overwrites it after observing the previous round's completion —
//!   no data race on the slot;
//! * the job must be `Sync` (it is shared by all workers concurrently)
//!   and the data it touches is partitioned by the caller (each worker
//!   index addresses its own disjoint shard).

#![allow(unsafe_code)]

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// The erased form a job is stored in while a round is in flight (raw
/// trait-object pointers default to `'static`; validity is bounded by the
/// broadcast round as documented above, not by the type).
type JobPtr = *const (dyn Fn(usize) + Sync);

/// Spins this many times on the epoch counter before parking. Windows in
/// the dense hot phase arrive within microseconds of each other; parking
/// between them would pay a syscall round-trip per window. The count is
/// deliberately modest so an oversubscribed host (workers > cores)
/// degrades to parking instead of burning whole timeslices.
const SPIN_ROUNDS: u32 = 256;

struct Ctl {
    /// The current job, valid for exactly one epoch. Written by the
    /// broadcaster before the epoch bump, read by workers after it.
    job: UnsafeCell<Option<JobPtr>>,
    /// Incremented (release) once per broadcast after the job is staged.
    epoch: AtomicU64,
    /// Workers that have finished the current epoch's job.
    done: AtomicUsize,
    /// Set when the scope ends; wakes and retires every worker.
    shutdown: AtomicBool,
    /// Whether any worker observed a job panic this epoch.
    panicked: AtomicBool,
    /// Parking lot for workers that out-spun the arrival of the next job.
    lot: Mutex<()>,
    bell: Condvar,
}

// SAFETY: the raw job pointer is the only non-Sync field; its publication
// and invalidation are ordered by `epoch`/`done` as described in the
// module docs.
unsafe impl Sync for Ctl {}

/// A fixed-size pool of persistent worker threads, alive for the duration
/// of one [`with_pool`] scope.
pub struct WorkerPool<'a> {
    ctl: &'a Ctl,
    threads: usize,
}

/// Runs `f` with a pool of `threads` persistent workers (plus the calling
/// thread, which participates in every broadcast as index 0). All workers
/// are joined before `with_pool` returns. `threads == 0` degrades to
/// running jobs inline with no spawns at all.
pub fn with_pool<R>(threads: usize, f: impl FnOnce(&WorkerPool<'_>) -> R) -> R {
    let ctl = Ctl {
        job: UnsafeCell::new(None),
        epoch: AtomicU64::new(0),
        done: AtomicUsize::new(0),
        shutdown: AtomicBool::new(false),
        panicked: AtomicBool::new(false),
        lot: Mutex::new(()),
        bell: Condvar::new(),
    };
    std::thread::scope(|s| {
        for w in 1..=threads {
            let ctl = &ctl;
            s.spawn(move || worker_loop(ctl, w));
        }
        let pool = WorkerPool { ctl: &ctl, threads };
        // Shut the workers down even if `f` unwinds — `thread::scope`
        // joins them on the way out, and a worker that never hears the
        // shutdown would park forever.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&pool)));
        ctl.shutdown.store(true, Ordering::Release);
        {
            let _g = ctl.lot.lock().expect("pool lot");
        }
        ctl.bell.notify_all();
        match r {
            Ok(r) => r,
            Err(p) => std::panic::resume_unwind(p),
        }
    })
}

impl WorkerPool<'_> {
    /// Number of spawned worker threads (broadcast parallelism is one
    /// more: the caller runs index 0 itself).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `job(i)` for every `i in 0..=threads` concurrently — index 0
    /// on the calling thread, the rest on the pool — and returns once all
    /// have completed (so `job` may freely borrow from the caller's
    /// stack).
    ///
    /// # Panics
    ///
    /// Panics if the job panicked on any worker (the worker's own panic
    /// message has already been printed by the default hook).
    pub fn broadcast(&self, job: &(dyn Fn(usize) + Sync)) {
        if self.threads == 0 {
            job(0);
            return;
        }
        let ctl = self.ctl;
        debug_assert_eq!(ctl.done.load(Ordering::Acquire), 0);
        // SAFETY: all workers from the previous epoch are done (the
        // previous broadcast waited for them), so nothing reads the slot
        // concurrently; the lifetime-erased pointer stays valid until
        // this function returns, and every dereference happens before
        // the completion counter reaches `threads` below.
        unsafe {
            let erased: JobPtr =
                std::mem::transmute::<*const (dyn Fn(usize) + Sync + '_), JobPtr>(job);
            *ctl.job.get() = Some(erased);
        }
        ctl.panicked.store(false, Ordering::Relaxed);
        ctl.epoch.fetch_add(1, Ordering::Release);
        {
            let _g = ctl.lot.lock().expect("pool lot");
        }
        ctl.bell.notify_all();

        // The caller's share runs under catch_unwind: if it panics we
        // must still wait for every worker before letting the unwind
        // free the stack frames the erased job pointer reaches into —
        // unwinding past an in-flight round would be a use-after-free.
        let mine = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job(0)));

        let mut spins = 0u32;
        while ctl.done.load(Ordering::Acquire) != self.threads {
            spins += 1;
            if spins < SPIN_ROUNDS {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        ctl.done.store(0, Ordering::Relaxed);
        if let Err(p) = mine {
            std::panic::resume_unwind(p);
        }
        if ctl.panicked.load(Ordering::Relaxed) {
            panic!("worker pool job panicked (see worker backtrace above)");
        }
    }
}

fn worker_loop(ctl: &Ctl, index: usize) {
    let mut seen = 0u64;
    loop {
        // Wait for the next epoch (or shutdown): spin first, then park.
        let mut spins = 0u32;
        loop {
            let e = ctl.epoch.load(Ordering::Acquire);
            if e != seen {
                seen = e;
                break;
            }
            if ctl.shutdown.load(Ordering::Acquire) {
                return;
            }
            spins += 1;
            if spins < SPIN_ROUNDS {
                std::hint::spin_loop();
            } else {
                let g = ctl.lot.lock().expect("pool lot");
                if ctl.epoch.load(Ordering::Acquire) == seen
                    && !ctl.shutdown.load(Ordering::Acquire)
                {
                    let _g = ctl.bell.wait(g).expect("pool bell");
                }
                spins = 0;
            }
        }
        // SAFETY: the acquire load of `epoch` synchronizes with the
        // broadcaster's release store, which happens after the slot
        // write; the pointed-to job stays borrowed until our `done`
        // increment below is observed by the broadcaster.
        let job = unsafe { (*ctl.job.get()).expect("epoch bumped without a job") };
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // SAFETY: see above — valid for the duration of this epoch.
            unsafe { (*job)(index) }
        }));
        if outcome.is_err() {
            ctl.panicked.store(true, Ordering::Relaxed);
        }
        ctl.done.fetch_add(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn broadcast_runs_every_index_once() {
        with_pool(3, |pool| {
            assert_eq!(pool.threads(), 3);
            let hits: [AtomicU64; 4] = std::array::from_fn(|_| AtomicU64::new(0));
            pool.broadcast(&|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            for h in &hits {
                assert_eq!(h.load(Ordering::Relaxed), 1);
            }
        });
    }

    #[test]
    fn pool_is_reusable_across_many_rounds() {
        // The whole point: thousands of broadcasts over one set of
        // threads, each borrowing fresh stack data.
        with_pool(2, |pool| {
            let mut total = 0u64;
            for round in 0..2000u64 {
                let parts = [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)];
                pool.broadcast(&|i| {
                    parts[i].store(round + i as u64, Ordering::Relaxed);
                });
                total += parts.iter().map(|p| p.load(Ordering::Relaxed)).sum::<u64>();
            }
            // Each round contributes (round+0) + (round+1) + (round+2).
            assert_eq!(total, 3 * (0..2000u64).sum::<u64>() + 3 * 2000);
        });
    }

    #[test]
    fn zero_thread_pool_runs_inline() {
        with_pool(0, |pool| {
            let hit = AtomicU64::new(0);
            pool.broadcast(&|i| {
                assert_eq!(i, 0);
                hit.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(hit.load(Ordering::Relaxed), 1);
        });
    }

    #[test]
    fn scope_returns_value_and_joins_workers() {
        let v = with_pool(4, |pool| {
            let sum = AtomicU64::new(0);
            pool.broadcast(&|i| {
                sum.fetch_add(i as u64, Ordering::Relaxed);
            });
            sum.load(Ordering::Relaxed)
        });
        assert_eq!(v, 10, "indices 0..=4 sum to 10");
    }

    /// A panic in the *caller's* share (index 0) must not unwind past the
    /// round while workers still hold the lifetime-erased job pointer —
    /// broadcast waits for them first, then resumes the unwind. (Without
    /// the wait this test is a use-after-free: the workers would touch
    /// `data` after the unwound frame freed it.)
    #[test]
    fn caller_panic_waits_for_workers() {
        let result = std::panic::catch_unwind(|| {
            with_pool(2, |pool| {
                let data = AtomicU64::new(0);
                pool.broadcast(&|i| {
                    if i == 0 {
                        panic!("caller boom");
                    }
                    // Workers lag, then touch the borrowed stack data.
                    for _ in 0..100_000 {
                        std::hint::spin_loop();
                    }
                    data.fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        assert!(result.is_err(), "the caller's panic must propagate");
    }

    #[test]
    fn worker_panic_propagates_to_broadcaster() {
        let result = std::panic::catch_unwind(|| {
            with_pool(2, |pool| {
                pool.broadcast(&|i| {
                    if i == 2 {
                        panic!("boom");
                    }
                });
            });
        });
        assert!(result.is_err(), "broadcast must surface worker panics");
    }
}
