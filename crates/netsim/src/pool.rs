//! A persistent scoped worker pool for intra-trial parallelism.
//!
//! The parallel event engine dispatches hundreds of thousands of tiny
//! same-timestamp windows per trial; spawning threads per window (or even
//! per trial phase) would dwarf the work. This pool spawns its threads
//! **once** per scope and re-broadcasts a borrowed job closure to them on
//! every window: workers spin briefly on an epoch counter (windows arrive
//! back-to-back in the hot phase of a dense trial), then park on a
//! condvar so an idle pool costs nothing.
//!
//! Two pools live here. [`WorkerPool`] is the original broadcast pool
//! (every worker runs the same job each round). [`CorePool`] is the
//! unified work-stealing core budget: one set of threads serves both
//! coarse trial jobs (a shared FIFO injector — cross-trial sweep
//! parallelism) and fine window shards (per-session [`StealDeque`]s —
//! intra-trial parallelism), replacing the old static
//! `workers × threads ≤ cores` split. An idle thread steals whatever
//! exists: shards first (they block a window owner), then trial jobs.
//!
//! ## Safety
//!
//! This is the only module in the workspace that uses `unsafe`. The whole
//! of it is the classic scoped-pool lifetime erasure — in
//! [`WorkerPool::broadcast`] and again in [`CoreSession::run_window`],
//! with the same argument: a `&dyn Fn(usize)` is published to other
//! threads through a raw pointer whose lifetime is erased, which is
//! sound because
//!
//! * `broadcast` does not return until every worker has finished running
//!   the job (checked through an acquire-loaded completion counter), so
//!   the borrow outlives every dereference;
//! * workers only read the pointer after observing the epoch increment
//!   that is release-stored *after* the pointer write, and the caller
//!   only overwrites it after observing the previous round's completion —
//!   no data race on the slot;
//! * the job must be `Sync` (it is shared by all workers concurrently)
//!   and the data it touches is partitioned by the caller (each worker
//!   index addresses its own disjoint shard).

#![allow(unsafe_code)]

use std::cell::UnsafeCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use crate::deque::StealDeque;

/// The erased form a job is stored in while a round is in flight (raw
/// trait-object pointers default to `'static`; validity is bounded by the
/// broadcast round as documented above, not by the type).
type JobPtr = *const (dyn Fn(usize) + Sync);

/// Spins this many times on the epoch counter before parking. Windows in
/// the dense hot phase arrive within microseconds of each other; parking
/// between them would pay a syscall round-trip per window. The count is
/// deliberately modest so an oversubscribed host (workers > cores)
/// degrades to parking instead of burning whole timeslices.
const SPIN_ROUNDS: u32 = 256;

struct Ctl {
    /// The current job, valid for exactly one epoch. Written by the
    /// broadcaster before the epoch bump, read by workers after it.
    job: UnsafeCell<Option<JobPtr>>,
    /// Incremented (release) once per broadcast after the job is staged.
    epoch: AtomicU64,
    /// Workers that have finished the current epoch's job.
    done: AtomicUsize,
    /// Set when the scope ends; wakes and retires every worker.
    shutdown: AtomicBool,
    /// Whether any worker observed a job panic this epoch.
    panicked: AtomicBool,
    /// Parking lot for workers that out-spun the arrival of the next job.
    lot: Mutex<()>,
    bell: Condvar,
}

// SAFETY: the raw job pointer is the only non-Sync field; its publication
// and invalidation are ordered by `epoch`/`done` as described in the
// module docs.
unsafe impl Sync for Ctl {}

/// A fixed-size pool of persistent worker threads, alive for the duration
/// of one [`with_pool`] scope.
pub struct WorkerPool<'a> {
    ctl: &'a Ctl,
    threads: usize,
}

/// Runs `f` with a pool of `threads` persistent workers (plus the calling
/// thread, which participates in every broadcast as index 0). All workers
/// are joined before `with_pool` returns. `threads == 0` degrades to
/// running jobs inline with no spawns at all.
pub fn with_pool<R>(threads: usize, f: impl FnOnce(&WorkerPool<'_>) -> R) -> R {
    let ctl = Ctl {
        job: UnsafeCell::new(None),
        epoch: AtomicU64::new(0),
        done: AtomicUsize::new(0),
        shutdown: AtomicBool::new(false),
        panicked: AtomicBool::new(false),
        lot: Mutex::new(()),
        bell: Condvar::new(),
    };
    std::thread::scope(|s| {
        for w in 1..=threads {
            let ctl = &ctl;
            s.spawn(move || worker_loop(ctl, w));
        }
        let pool = WorkerPool { ctl: &ctl, threads };
        // Shut the workers down even if `f` unwinds — `thread::scope`
        // joins them on the way out, and a worker that never hears the
        // shutdown would park forever.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&pool)));
        ctl.shutdown.store(true, Ordering::Release);
        {
            let _g = ctl.lot.lock().expect("pool lot");
        }
        ctl.bell.notify_all();
        match r {
            Ok(r) => r,
            Err(p) => std::panic::resume_unwind(p),
        }
    })
}

impl WorkerPool<'_> {
    /// Number of spawned worker threads (broadcast parallelism is one
    /// more: the caller runs index 0 itself).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `job(i)` for every `i in 0..=threads` concurrently — index 0
    /// on the calling thread, the rest on the pool — and returns once all
    /// have completed (so `job` may freely borrow from the caller's
    /// stack).
    ///
    /// # Panics
    ///
    /// Panics if the job panicked on any worker (the worker's own panic
    /// message has already been printed by the default hook).
    pub fn broadcast(&self, job: &(dyn Fn(usize) + Sync)) {
        if self.threads == 0 {
            job(0);
            return;
        }
        let ctl = self.ctl;
        debug_assert_eq!(ctl.done.load(Ordering::Acquire), 0);
        // SAFETY: all workers from the previous epoch are done (the
        // previous broadcast waited for them), so nothing reads the slot
        // concurrently; the lifetime-erased pointer stays valid until
        // this function returns, and every dereference happens before
        // the completion counter reaches `threads` below.
        unsafe {
            let erased: JobPtr =
                std::mem::transmute::<*const (dyn Fn(usize) + Sync + '_), JobPtr>(job);
            *ctl.job.get() = Some(erased);
        }
        ctl.panicked.store(false, Ordering::Relaxed);
        ctl.epoch.fetch_add(1, Ordering::Release);
        {
            let _g = ctl.lot.lock().expect("pool lot");
        }
        ctl.bell.notify_all();

        // The caller's share runs under catch_unwind: if it panics we
        // must still wait for every worker before letting the unwind
        // free the stack frames the erased job pointer reaches into —
        // unwinding past an in-flight round would be a use-after-free.
        let mine = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job(0)));

        let mut spins = 0u32;
        while ctl.done.load(Ordering::Acquire) != self.threads {
            spins += 1;
            if spins < SPIN_ROUNDS {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        ctl.done.store(0, Ordering::Relaxed);
        if let Err(p) = mine {
            std::panic::resume_unwind(p);
        }
        if ctl.panicked.load(Ordering::Relaxed) {
            panic!("worker pool job panicked (see worker backtrace above)");
        }
    }
}

fn worker_loop(ctl: &Ctl, index: usize) {
    let mut seen = 0u64;
    loop {
        // Wait for the next epoch (or shutdown): spin first, then park.
        let mut spins = 0u32;
        loop {
            let e = ctl.epoch.load(Ordering::Acquire);
            if e != seen {
                seen = e;
                break;
            }
            if ctl.shutdown.load(Ordering::Acquire) {
                return;
            }
            spins += 1;
            if spins < SPIN_ROUNDS {
                std::hint::spin_loop();
            } else {
                let g = ctl.lot.lock().expect("pool lot");
                if ctl.epoch.load(Ordering::Acquire) == seen
                    && !ctl.shutdown.load(Ordering::Acquire)
                {
                    let _g = ctl.bell.wait(g).expect("pool bell");
                }
                spins = 0;
            }
        }
        // SAFETY: the acquire load of `epoch` synchronizes with the
        // broadcaster's release store, which happens after the slot
        // write; the pointed-to job stays borrowed until our `done`
        // increment below is observed by the broadcaster.
        let job = unsafe { (*ctl.job.get()).expect("epoch bumped without a job") };
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // SAFETY: see above — valid for the duration of this epoch.
            unsafe { (*job)(index) }
        }));
        if outcome.is_err() {
            ctl.panicked.store(true, Ordering::Relaxed);
        }
        ctl.done.fetch_add(1, Ordering::Release);
    }
}

// ---------------------------------------------------------------------
// The unified core budget: one work-stealing pool for trial jobs *and*
// window shards.
// ---------------------------------------------------------------------

/// Something that can execute one same-timestamp window's shards.
///
/// The parallel engine builds a window, picks a shard count, and hands a
/// `job` here; the executor must invoke `job(i)` exactly once for every
/// `i in 0..shards` (on any threads, in any order) and return only after
/// all invocations have completed — the same completion contract as
/// [`WorkerPool::broadcast`], which is what makes borrowing from the
/// caller's stack sound. Which thread runs which shard is explicitly
/// *not* part of the contract: the engine's canonical merge keys side
/// effects by shard index, so executor scheduling can never reach
/// simulation output.
pub trait WindowExec: Sync {
    /// Upper bound on useful `shards` values (executor capacity).
    fn shard_cap(&self) -> usize;
    /// Runs the window to completion.
    ///
    /// # Panics
    ///
    /// Panics if `job` panicked on any shard (after all shards finished
    /// or were abandoned, so borrowed data is no longer referenced).
    fn run_window(&self, shards: usize, job: &(dyn Fn(usize) + Sync));
}

/// A trial-scale job drawn from the unified pool's injector. It receives
/// the window executor for the thread it lands on, so an intra-trial
/// parallel engine inside the job shares the same core budget.
pub type TrialJob<'env> = Box<dyn FnOnce(&dyn WindowExec) + Send + 'env>;

/// Per-session shard-deque capacity: windows never need more shards than
/// this, and [`CoreSession::shard_cap`] clamps requests to it.
const SESSION_DEQUE_CAP: usize = 256;

/// One window-owner slot: the deque thieves steal shard indices from,
/// plus the lifetime-erased job pointer they run them through.
struct SessionCtl {
    /// Claimed by exactly one owner thread at a time.
    in_use: AtomicBool,
    /// The current window's job. Written by the owner while the session
    /// is inactive, read by thieves only after a successful steal of a
    /// shard pushed *after* the write (release/acquire via the deque).
    job: UnsafeCell<Option<JobPtr>>,
    /// Shard indices of the in-flight window, stealable by any worker.
    deque: StealDeque,
    /// Shards handed to the deque and not yet finished executing.
    pending: AtomicUsize,
    /// Whether a window is in flight (thieves may look at the deque).
    active: AtomicBool,
    /// Whether any shard of the current window panicked.
    panicked: AtomicBool,
}

// SAFETY: the raw job pointer is the only non-Sync field; owners only
// write it while `active` is false and `pending` is zero, and thieves
// only read it after stealing a shard whose push happened after the
// write (the deque's release/acquire pair orders the two) — see
// `CoreSession::run_window`.
unsafe impl Sync for SessionCtl {}

struct CoreCtl<'env> {
    /// Coarse trial jobs, FIFO.
    injector: Mutex<VecDeque<TrialJob<'env>>>,
    submitted: AtomicUsize,
    completed: AtomicUsize,
    /// Whether any trial job panicked (re-raised when the scope ends).
    job_panicked: AtomicBool,
    shutdown: AtomicBool,
    sessions: Box<[SessionCtl]>,
    lot: Mutex<()>,
    bell: Condvar,
}

impl CoreCtl<'_> {
    /// Work-availability check for the park path. Must be conservative
    /// (never claim "nothing" when a publisher's stores are visible):
    /// both publishers store before taking the lot lock, so a parker
    /// holding the lock either sees the work or parks before the
    /// publisher's notify.
    fn has_work_hint(&self) -> bool {
        if !self.injector.lock().expect("core injector").is_empty() {
            return true;
        }
        self.sessions
            .iter()
            .any(|s| s.active.load(Ordering::Acquire) && !s.deque.is_empty_hint())
    }

    /// Lock-then-notify so a concurrent parker cannot miss the wakeup.
    fn ring(&self) {
        {
            let _g = self.lot.lock().expect("core lot");
        }
        self.bell.notify_all();
    }
}

/// Handle to the unified work-stealing pool, valid inside one
/// [`with_core_pool`] scope.
///
/// Two granularities draw from the same threads: trial jobs submitted via
/// [`CorePool::submit`] (cross-trial sweep parallelism), and window
/// shards published through a [`CoreSession`] (intra-trial parallelism) —
/// the replacement for the old static `workers × threads ≤ cores` split.
/// Idle threads steal whichever work exists, so a sweep's tail (one slow
/// trial left) automatically converts its spare threads into intra-trial
/// window workers, and a single trial converts them into shard thieves.
pub struct CorePool<'p, 'env> {
    ctl: &'p CoreCtl<'env>,
    threads: usize,
}

/// A claimed window-owner slot on the unified pool; the [`WindowExec`]
/// the parallel engine drives its same-timestamp windows through.
/// Released on drop.
pub struct CoreSession<'p, 'env> {
    ctl: &'p CoreCtl<'env>,
    slot: usize,
    threads: usize,
}

/// Runs `f` with a unified pool of `threads` persistent workers. The
/// calling thread is not a pool worker, but participates when it runs
/// windows through a [`CorePool::session`] or waits in
/// [`CorePool::wait_all`] (both execute queued work inline), so the
/// budget for a saturated host is `threads = cores - 1` plus the caller,
/// or simply `cores` when the caller mostly blocks. `threads == 0`
/// degrades to running everything inline on the caller.
///
/// Submitted trial jobs may borrow anything that outlives the
/// `with_core_pool` call (the `'env` bound); all of them are run to
/// completion before this returns (even if `f` forgot to wait), unless
/// `f` unwinds, in which case not-yet-started jobs are dropped.
///
/// # Panics
///
/// Re-raises `f`'s panic; otherwise panics if any trial job panicked.
pub fn with_core_pool<'env, R>(threads: usize, f: impl FnOnce(&CorePool<'_, 'env>) -> R) -> R {
    let ctl = CoreCtl {
        injector: Mutex::new(VecDeque::new()),
        submitted: AtomicUsize::new(0),
        completed: AtomicUsize::new(0),
        job_panicked: AtomicBool::new(false),
        shutdown: AtomicBool::new(false),
        // One slot per thread that can own a window concurrently: every
        // pool worker (each runs at most one trial job at a time) plus
        // the caller, with slack for nested/exotic callers.
        sessions: (0..threads + 4)
            .map(|_| SessionCtl {
                in_use: AtomicBool::new(false),
                job: UnsafeCell::new(None),
                deque: StealDeque::new(SESSION_DEQUE_CAP),
                pending: AtomicUsize::new(0),
                active: AtomicBool::new(false),
                panicked: AtomicBool::new(false),
            })
            .collect(),
        lot: Mutex::new(()),
        bell: Condvar::new(),
    };
    std::thread::scope(|s| {
        for _ in 0..threads {
            let ctl = &ctl;
            s.spawn(move || core_worker_loop(ctl));
        }
        let pool = CorePool { ctl: &ctl, threads };
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&pool)));
        match r {
            // Normal exit: drain every remaining job (the API promise),
            // then retire the workers.
            Ok(_) => pool.wait_all(),
            // `f` unwound: drop unstarted jobs so workers can retire.
            Err(_) => {
                let dropped = {
                    let mut inj = ctl.injector.lock().expect("core injector");
                    let n = inj.len();
                    inj.clear();
                    n
                };
                ctl.completed.fetch_add(dropped, Ordering::AcqRel);
            }
        }
        ctl.shutdown.store(true, Ordering::Release);
        ctl.ring();
        match r {
            Ok(r) => {
                // Workers are joined by the scope right after this; any
                // in-flight job panic has already been recorded because
                // wait_all saw every job complete.
                if ctl.job_panicked.load(Ordering::Acquire) {
                    panic!("core pool trial job panicked (see worker backtrace above)");
                }
                r
            }
            Err(p) => std::panic::resume_unwind(p),
        }
    })
}

impl<'env> CorePool<'_, 'env> {
    /// Number of spawned pool threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Enqueues a trial job. It runs on some pool thread (or on the
    /// caller inside [`CorePool::wait_all`]) exactly once.
    pub fn submit(&self, job: TrialJob<'env>) {
        self.ctl.submitted.fetch_add(1, Ordering::AcqRel);
        self.ctl
            .injector
            .lock()
            .expect("core injector")
            .push_back(job);
        self.ctl.ring();
    }

    /// Blocks until every job submitted so far has completed, helping
    /// with queued trial jobs and stealable window shards in the
    /// meantime (this is what makes `threads == 0` work: the caller runs
    /// everything itself).
    pub fn wait_all(&self) {
        loop {
            if self.ctl.completed.load(Ordering::Acquire)
                >= self.ctl.submitted.load(Ordering::Acquire)
            {
                return;
            }
            if !try_one_unit(self.ctl) {
                // Nothing stealable right now; park briefly. The timeout
                // is a progress guarantee, not the wake path — completed
                // jobs ring the bell.
                let g = self.ctl.lot.lock().expect("core lot");
                if !self.ctl.has_work_hint()
                    && self.ctl.completed.load(Ordering::Acquire)
                        < self.ctl.submitted.load(Ordering::Acquire)
                {
                    let _ = self
                        .ctl
                        .bell
                        .wait_timeout(g, Duration::from_millis(1))
                        .expect("core bell");
                }
            }
        }
    }

    /// Claims a window-owner slot. The caller (typically: the thread
    /// driving one trial's event loop) publishes each same-timestamp
    /// window through the returned session; idle pool threads steal its
    /// shards.
    ///
    /// # Panics
    ///
    /// Panics if every slot is claimed (more concurrent owners than
    /// `threads + 4` — only possible if callers hoard sessions).
    pub fn session(&self) -> CoreSession<'_, 'env> {
        acquire_session(self.ctl, self.threads)
    }
}

fn acquire_session<'p, 'env>(ctl: &'p CoreCtl<'env>, threads: usize) -> CoreSession<'p, 'env> {
    for (slot, s) in ctl.sessions.iter().enumerate() {
        if s.in_use
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            return CoreSession { ctl, slot, threads };
        }
    }
    panic!("core pool session slots exhausted");
}

impl CoreSession<'_, '_> {
    fn sctl(&self) -> &SessionCtl {
        &self.ctl.sessions[self.slot]
    }
}

impl Drop for CoreSession<'_, '_> {
    fn drop(&mut self) {
        debug_assert!(!self.sctl().active.load(Ordering::Acquire));
        self.sctl().in_use.store(false, Ordering::Release);
    }
}

impl WindowExec for CoreSession<'_, '_> {
    fn shard_cap(&self) -> usize {
        self.sctl().deque.capacity()
    }

    fn run_window(&self, shards: usize, job: &(dyn Fn(usize) + Sync)) {
        debug_assert!(shards <= self.shard_cap());
        // No thieves exist, or nothing to share: run inline in shard
        // order (the merge re-establishes canonical order either way).
        if self.threads == 0 || shards <= 1 {
            for i in 0..shards {
                job(i);
            }
            return;
        }
        let sctl = self.sctl();
        debug_assert!(!sctl.active.load(Ordering::Acquire));
        debug_assert_eq!(sctl.pending.load(Ordering::Acquire), 0);
        // SAFETY: the previous window (if any) fully completed —
        // `pending` reached 0 below before `active` was cleared — so no
        // thief still reads the slot; the erased pointer stays valid
        // until this call returns, and every thief dereference is
        // ordered before the `pending` decrement we wait on.
        unsafe {
            let erased: JobPtr =
                std::mem::transmute::<*const (dyn Fn(usize) + Sync + '_), JobPtr>(job);
            *sctl.job.get() = Some(erased);
        }
        sctl.panicked.store(false, Ordering::Relaxed);
        sctl.pending.store(shards - 1, Ordering::Release);
        for i in 1..shards {
            let pushed = sctl.deque.push(i);
            debug_assert!(pushed, "shard_cap() bounds the shard count");
        }
        sctl.active.store(true, Ordering::Release);
        self.ctl.ring();

        // Run shard 0 (and whatever the thieves leave us) inline. A
        // panic must not unwind past in-flight steals: discard our
        // remaining shards, wait out the thieves, then resume it. Each
        // popped shard is taken off `pending` *before* it runs — `pending`
        // exists so we can wait out thieves still referencing the job
        // pointer, and a popped shard can no longer be stolen; counting
        // it after the run would leak the decrement if the shard panics
        // (the drain below only sees shards still in the deque) and spin
        // this wait forever.
        let mine = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            job(0);
            while let Some(i) = sctl.deque.pop() {
                sctl.pending.fetch_sub(1, Ordering::Release);
                job(i);
            }
        }));
        if mine.is_err() {
            while sctl.deque.pop().is_some() {
                sctl.pending.fetch_sub(1, Ordering::Release);
            }
        }
        let mut spins = 0u32;
        while sctl.pending.load(Ordering::Acquire) != 0 {
            spins += 1;
            if spins < SPIN_ROUNDS {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        sctl.active.store(false, Ordering::Release);
        if let Err(p) = mine {
            std::panic::resume_unwind(p);
        }
        if sctl.panicked.load(Ordering::Relaxed) {
            panic!("window shard panicked on a pool thread (see backtrace above)");
        }
    }
}

/// One unit of work, preferring fine-grained shards (they block a window
/// owner) over coarse trial jobs. Returns whether anything ran.
fn try_one_unit(ctl: &CoreCtl<'_>) -> bool {
    for sctl in ctl.sessions.iter() {
        if !sctl.active.load(Ordering::Acquire) {
            continue;
        }
        if let Some(i) = sctl.deque.steal() {
            // SAFETY: the stolen shard was pushed after the owner staged
            // the job pointer; the deque's release/acquire ordering makes
            // the staging visible, and the owner cannot invalidate the
            // pointer until our `pending` decrement is observed.
            let job = unsafe { (*sctl.job.get()).expect("active session without a job") };
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                // SAFETY: valid until `pending` reaches zero, see above.
                unsafe { (*job)(i) }
            }));
            if outcome.is_err() {
                sctl.panicked.store(true, Ordering::Relaxed);
            }
            sctl.pending.fetch_sub(1, Ordering::Release);
            return true;
        }
    }
    let job = ctl.injector.lock().expect("core injector").pop_front();
    if let Some(job) = job {
        // `threads = 1` on a worker-held session: thieves are "everyone
        // else", which run_window only needs as a zero/nonzero hint.
        let sess = acquire_session(ctl, 1);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job(&sess)));
        drop(sess);
        if outcome.is_err() {
            ctl.job_panicked.store(true, Ordering::Relaxed);
        }
        ctl.completed.fetch_add(1, Ordering::AcqRel);
        ctl.ring();
        return true;
    }
    false
}

fn core_worker_loop(ctl: &CoreCtl<'_>) {
    let mut spins = 0u32;
    loop {
        if try_one_unit(ctl) {
            spins = 0;
            continue;
        }
        if ctl.shutdown.load(Ordering::Acquire)
            && ctl.injector.lock().expect("core injector").is_empty()
        {
            return;
        }
        spins += 1;
        if spins < SPIN_ROUNDS {
            std::hint::spin_loop();
        } else {
            let g = ctl.lot.lock().expect("core lot");
            if !ctl.has_work_hint() && !ctl.shutdown.load(Ordering::Acquire) {
                let _g = ctl.bell.wait(g).expect("core bell");
            }
            spins = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn broadcast_runs_every_index_once() {
        with_pool(3, |pool| {
            assert_eq!(pool.threads(), 3);
            let hits: [AtomicU64; 4] = std::array::from_fn(|_| AtomicU64::new(0));
            pool.broadcast(&|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            for h in &hits {
                assert_eq!(h.load(Ordering::Relaxed), 1);
            }
        });
    }

    #[test]
    fn pool_is_reusable_across_many_rounds() {
        // The whole point: thousands of broadcasts over one set of
        // threads, each borrowing fresh stack data.
        with_pool(2, |pool| {
            let mut total = 0u64;
            for round in 0..2000u64 {
                let parts = [AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0)];
                pool.broadcast(&|i| {
                    parts[i].store(round + i as u64, Ordering::Relaxed);
                });
                total += parts.iter().map(|p| p.load(Ordering::Relaxed)).sum::<u64>();
            }
            // Each round contributes (round+0) + (round+1) + (round+2).
            assert_eq!(total, 3 * (0..2000u64).sum::<u64>() + 3 * 2000);
        });
    }

    #[test]
    fn zero_thread_pool_runs_inline() {
        with_pool(0, |pool| {
            let hit = AtomicU64::new(0);
            pool.broadcast(&|i| {
                assert_eq!(i, 0);
                hit.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(hit.load(Ordering::Relaxed), 1);
        });
    }

    #[test]
    fn scope_returns_value_and_joins_workers() {
        let v = with_pool(4, |pool| {
            let sum = AtomicU64::new(0);
            pool.broadcast(&|i| {
                sum.fetch_add(i as u64, Ordering::Relaxed);
            });
            sum.load(Ordering::Relaxed)
        });
        assert_eq!(v, 10, "indices 0..=4 sum to 10");
    }

    /// A panic in the *caller's* share (index 0) must not unwind past the
    /// round while workers still hold the lifetime-erased job pointer —
    /// broadcast waits for them first, then resumes the unwind. (Without
    /// the wait this test is a use-after-free: the workers would touch
    /// `data` after the unwound frame freed it.)
    #[test]
    fn caller_panic_waits_for_workers() {
        let result = std::panic::catch_unwind(|| {
            with_pool(2, |pool| {
                let data = AtomicU64::new(0);
                pool.broadcast(&|i| {
                    if i == 0 {
                        panic!("caller boom");
                    }
                    // Workers lag, then touch the borrowed stack data.
                    for _ in 0..100_000 {
                        std::hint::spin_loop();
                    }
                    data.fetch_add(1, Ordering::Relaxed);
                });
            });
        });
        assert!(result.is_err(), "the caller's panic must propagate");
    }

    #[test]
    fn worker_panic_propagates_to_broadcaster() {
        let result = std::panic::catch_unwind(|| {
            with_pool(2, |pool| {
                pool.broadcast(&|i| {
                    if i == 2 {
                        panic!("boom");
                    }
                });
            });
        });
        assert!(result.is_err(), "broadcast must surface worker panics");
    }

    #[test]
    fn core_pool_runs_every_trial_job_once() {
        let hits: [AtomicU64; 16] = std::array::from_fn(|_| AtomicU64::new(0));
        with_core_pool(3, |pool| {
            for (i, h) in hits.iter().enumerate() {
                pool.submit(Box::new(move |_exec| {
                    h.fetch_add(i as u64 + 1, Ordering::Relaxed);
                }));
            }
            pool.wait_all();
            for (i, h) in hits.iter().enumerate() {
                assert_eq!(h.load(Ordering::Relaxed), i as u64 + 1);
            }
        });
    }

    #[test]
    fn core_pool_zero_threads_runs_jobs_on_caller_in_wait_all() {
        let sum = AtomicU64::new(0);
        let sum_ref = &sum;
        with_core_pool(0, |pool| {
            for _ in 0..8u64 {
                pool.submit(Box::new(move |exec| {
                    // Window execution inside a trial job, inline.
                    let part = AtomicU64::new(0);
                    exec.run_window(4, &|s| {
                        part.fetch_add(s as u64 + 1, Ordering::Relaxed);
                    });
                    assert_eq!(part.load(Ordering::Relaxed), 10);
                    sum_ref.fetch_add(1, Ordering::Relaxed);
                }));
            }
            pool.wait_all();
        });
        assert_eq!(sum.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn core_session_windows_complete_with_thieves() {
        with_core_pool(3, |pool| {
            let sess = pool.session();
            for round in 0..200u64 {
                let shards = 1 + (round as usize % 6);
                let hits: [AtomicU64; 6] = std::array::from_fn(|_| AtomicU64::new(0));
                sess.run_window(shards, &|i| {
                    hits[i].fetch_add(round + 1, Ordering::Relaxed);
                });
                for (i, h) in hits.iter().enumerate() {
                    let want = if i < shards { round + 1 } else { 0 };
                    assert_eq!(h.load(Ordering::Relaxed), want, "round {round} shard {i}");
                }
            }
        });
    }

    #[test]
    fn core_pool_mixes_trial_jobs_and_windows() {
        // Trial jobs running their own windows while the caller also runs
        // windows through its own session: both granularities draw from
        // the same three threads. (Submitted jobs must borrow data that
        // outlives the pool scope — the `'env` bound — hence `done`
        // lives outside the closure.)
        let done = AtomicU64::new(0);
        let done = &done;
        with_core_pool(3, |pool| {
            for _ in 0..6 {
                pool.submit(Box::new(move |exec| {
                    let total = AtomicU64::new(0);
                    for _ in 0..50 {
                        exec.run_window(3, &|i| {
                            total.fetch_add(i as u64, Ordering::Relaxed);
                        });
                    }
                    assert_eq!(total.load(Ordering::Relaxed), 50 * 3);
                    done.fetch_add(1, Ordering::Relaxed);
                }));
            }
            let sess = pool.session();
            for _ in 0..50 {
                let total = AtomicU64::new(0);
                sess.run_window(4, &|i| {
                    total.fetch_add(i as u64 + 1, Ordering::Relaxed);
                });
                assert_eq!(total.load(Ordering::Relaxed), 10);
            }
            drop(sess);
            pool.wait_all();
            assert_eq!(done.load(Ordering::Relaxed), 6);
        });
    }

    #[test]
    fn core_pool_trial_job_panic_propagates_at_scope_end() {
        let result = std::panic::catch_unwind(|| {
            with_core_pool(2, |pool| {
                pool.submit(Box::new(|_exec| panic!("trial boom")));
                pool.wait_all();
            });
        });
        assert!(result.is_err(), "job panic must fail the scope");
    }

    #[test]
    fn core_pool_window_shard_panic_propagates_to_owner() {
        let result = std::panic::catch_unwind(|| {
            with_core_pool(2, |pool| {
                let sess = pool.session();
                sess.run_window(3, &|i| {
                    if i == 1 {
                        panic!("shard boom");
                    }
                });
            });
        });
        assert!(result.is_err(), "shard panic must surface in run_window");
    }

    #[test]
    fn core_pool_drains_jobs_submitted_without_wait() {
        let hits = AtomicU64::new(0);
        with_core_pool(2, |pool| {
            for _ in 0..10 {
                pool.submit(Box::new(|_exec| {
                    hits.fetch_add(1, Ordering::Relaxed);
                }));
            }
            // No wait_all: the scope itself must drain before returning.
        });
        assert_eq!(hits.load(Ordering::Relaxed), 10);
    }
}
