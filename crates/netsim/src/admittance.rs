//! Event-driven link/node admittance: which nodes and links the medium
//! currently admits.
//!
//! Network dynamics (link churn, partitions, node crashes) are modeled as
//! an administrative filter *on top of* physical connectivity: the radio
//! channel consults an [`Admittance`] when a transmission starts, and a
//! gated receiver simply does not perceive the signal — exactly as if an
//! RF barrier stood on that link. The filter composes with mobility: a
//! link carries traffic only when the nodes are in range *and* the
//! admittance allows the pair.
//!
//! The layer is driven by [`DynAction`]s, the compiled form of a scenario's
//! dynamics schedule. Applying actions is the harness's job (it also owns
//! the protocol-state consequences of a crash); this type only answers
//! "is this link admitted right now?" queries deterministically.

use std::collections::BTreeSet;

/// One topology-dynamics event, ready to apply at its scheduled time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DynAction {
    /// Administratively cut the (undirected) link between two nodes.
    LinkDown(usize, usize),
    /// Restore a previously cut link.
    LinkUp(usize, usize),
    /// Node loses power: it neither transmits nor receives, and the
    /// harness discards all of its protocol and MAC state.
    NodeCrash(usize),
    /// Node restarts cold: admitted again, protocol restarted from
    /// scratch.
    NodeRejoin(usize),
    /// Split the network: nodes may only communicate within their
    /// component (`assignment[i]` is node `i`'s component id).
    PartitionSet(Vec<u32>),
    /// Heal the partition.
    PartitionClear,
}

impl DynAction {
    /// Short name for logs and traces.
    pub fn name(&self) -> &'static str {
        match self {
            DynAction::LinkDown(..) => "link-down",
            DynAction::LinkUp(..) => "link-up",
            DynAction::NodeCrash(..) => "node-crash",
            DynAction::NodeRejoin(..) => "node-rejoin",
            DynAction::PartitionSet(..) => "partition-set",
            DynAction::PartitionClear => "partition-clear",
        }
    }

    /// Whether the action degrades connectivity (used for route-repair
    /// latency accounting: the clock starts at a disruption).
    pub fn is_disruptive(&self) -> bool {
        matches!(
            self,
            DynAction::LinkDown(..) | DynAction::NodeCrash(..) | DynAction::PartitionSet(..)
        )
    }
}

/// The current administrative state of every node and link.
#[derive(Debug, Clone)]
pub struct Admittance {
    node_up: Vec<bool>,
    /// Cut links as canonical `(min, max)` pairs.
    cut: BTreeSet<(usize, usize)>,
    /// Active partition: component id per node, `None` when healed.
    partition: Option<Vec<u32>>,
}

fn canonical(a: usize, b: usize) -> (usize, usize) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl Admittance {
    /// A fully transparent admittance for `n` nodes: everything allowed.
    pub fn new(n: usize) -> Self {
        Admittance {
            node_up: vec![true; n],
            cut: BTreeSet::new(),
            partition: None,
        }
    }

    /// Whether nothing is currently filtered (fast path for scenarios
    /// without dynamics).
    pub fn is_transparent(&self) -> bool {
        self.cut.is_empty() && self.partition.is_none() && self.node_up.iter().all(|&u| u)
    }

    /// Whether node `i` is powered.
    pub fn node_is_up(&self, i: usize) -> bool {
        self.node_up[i]
    }

    /// Whether the medium admits a signal from `a` to `b`: both nodes up,
    /// the link not cut, and (under a partition) both in the same
    /// component.
    pub fn allows(&self, a: usize, b: usize) -> bool {
        if !self.node_up[a] || !self.node_up[b] {
            return false;
        }
        if self.cut.contains(&canonical(a, b)) {
            return false;
        }
        match &self.partition {
            Some(assignment) => assignment[a] == assignment[b],
            None => true,
        }
    }

    /// Applies one dynamics action.
    ///
    /// # Panics
    ///
    /// Panics if a `PartitionSet` assignment has the wrong length.
    pub fn apply(&mut self, action: &DynAction) {
        match action {
            DynAction::LinkDown(a, b) => {
                self.cut.insert(canonical(*a, *b));
            }
            DynAction::LinkUp(a, b) => {
                self.cut.remove(&canonical(*a, *b));
            }
            DynAction::NodeCrash(i) => self.node_up[*i] = false,
            DynAction::NodeRejoin(i) => self.node_up[*i] = true,
            DynAction::PartitionSet(assignment) => {
                assert_eq!(
                    assignment.len(),
                    self.node_up.len(),
                    "partition assignment must cover every node"
                );
                self.partition = Some(assignment.clone());
            }
            DynAction::PartitionClear => self.partition = None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transparent_by_default() {
        let adm = Admittance::new(4);
        assert!(adm.is_transparent());
        for a in 0..4 {
            for b in 0..4 {
                assert!(adm.allows(a, b));
            }
        }
    }

    #[test]
    fn link_cut_is_undirected_and_reversible() {
        let mut adm = Admittance::new(3);
        adm.apply(&DynAction::LinkDown(2, 0));
        assert!(!adm.allows(0, 2));
        assert!(!adm.allows(2, 0));
        assert!(adm.allows(0, 1));
        assert!(!adm.is_transparent());
        adm.apply(&DynAction::LinkUp(0, 2));
        assert!(adm.allows(0, 2));
        assert!(adm.is_transparent());
    }

    #[test]
    fn crashed_node_blocks_both_directions() {
        let mut adm = Admittance::new(3);
        adm.apply(&DynAction::NodeCrash(1));
        assert!(!adm.node_is_up(1));
        assert!(!adm.allows(0, 1));
        assert!(!adm.allows(1, 0));
        assert!(adm.allows(0, 2));
        adm.apply(&DynAction::NodeRejoin(1));
        assert!(adm.allows(0, 1));
    }

    #[test]
    fn partition_blocks_cross_component_only() {
        let mut adm = Admittance::new(4);
        adm.apply(&DynAction::PartitionSet(vec![0, 0, 1, 1]));
        assert!(adm.allows(0, 1));
        assert!(adm.allows(2, 3));
        assert!(!adm.allows(1, 2));
        assert!(!adm.allows(0, 3));
        adm.apply(&DynAction::PartitionClear);
        assert!(adm.allows(1, 2));
        assert!(adm.is_transparent());
    }

    #[test]
    fn filters_compose() {
        let mut adm = Admittance::new(4);
        adm.apply(&DynAction::PartitionSet(vec![0, 0, 1, 1]));
        adm.apply(&DynAction::LinkDown(0, 1));
        // Same component but the link is individually cut.
        assert!(!adm.allows(0, 1));
        adm.apply(&DynAction::PartitionClear);
        assert!(!adm.allows(0, 1), "link cut survives the heal");
        adm.apply(&DynAction::LinkUp(0, 1));
        assert!(adm.allows(0, 1));
    }

    #[test]
    fn disruptive_classification() {
        assert!(DynAction::LinkDown(0, 1).is_disruptive());
        assert!(DynAction::NodeCrash(0).is_disruptive());
        assert!(DynAction::PartitionSet(vec![0]).is_disruptive());
        assert!(!DynAction::LinkUp(0, 1).is_disruptive());
        assert!(!DynAction::NodeRejoin(0).is_disruptive());
        assert!(!DynAction::PartitionClear.is_disruptive());
    }
}
