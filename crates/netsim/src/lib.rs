//! # slr-netsim — deterministic discrete-event simulation engine
//!
//! The simulation substrate for the SLR/SRP reproduction. The paper's
//! evaluation ran in GloMoSim; this crate provides the equivalent kernel:
//! a virtual clock, a cancellable event queue with stable FIFO tie-breaking
//! (bit-reproducible runs per seed), and named deterministic RNG streams so
//! mobility and traffic are identical across protocols within a trial.
//!
//! The engine is policy-free: higher layers (radio, protocols, harness)
//! define their own event enums and drive [`Simulator::next_before`] in a
//! plain loop.
//!
//! ```
//! use slr_netsim::{SimDuration, SimTime, Simulator};
//!
//! #[derive(Debug)]
//! enum Ev { Hello(u32) }
//!
//! let mut sim = Simulator::new();
//! sim.schedule_in(SimDuration::from_millis(10), Ev::Hello(1));
//! while let Some(ev) = sim.next_before(SimTime::from_secs(1)) {
//!     match ev.event { Ev::Hello(n) => assert_eq!(n, 1) }
//! }
//! ```

// `deny`, not `forbid`: the scoped worker pool (`pool`) is the one module
// allowed to use `unsafe` — the classic lifetime erasure every persistent
// scoped thread pool needs — with its safety argument documented in place.
// Everything else in the crate remains unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod admittance;
pub mod compact;
pub mod deque;
pub mod engine;
pub mod hash;
pub mod pool;
pub mod queue;
pub mod rng;
pub mod spatial;
pub mod time;

pub use admittance::{Admittance, DynAction};
pub use compact::VecMap;
pub use deque::StealDeque;
pub use engine::Simulator;
pub use hash::{FastHashMap, FastHashSet, FastHasher};
pub use pool::{with_core_pool, with_pool, CorePool, CoreSession, WindowExec, WorkerPool};
pub use queue::{EventQueue, EventToken, Scheduled};
pub use spatial::SpatialIndex;
pub use time::{SimDuration, SimTime};
