//! Property tests for the MAC state machine: conservation and
//! single-transmitter invariants under randomized event interleavings.
//!
//! The harness mirrors the real simulator's contract: it owns the timers
//! the MAC arms (`SetTimer` replaces, `CancelTimer` removes), acknowledges
//! every transmission with `on_tx_end`, and never delivers events the MAC
//! did not cause. Within that contract, any interleaving must satisfy:
//!
//! 1. **Single transmitter** — the MAC never starts a transmission while
//!    one is in flight.
//! 2. **Conservation** — once drained with no peer responding, every
//!    accepted unicast payload comes back exactly once as `TxFailed`;
//!    every broadcast completes with `TxDone`; queue overflow is reported
//!    as `Dropped`. Nothing is lost, nothing is duplicated.

use std::collections::HashMap;

use proptest::prelude::*;

use slr_netsim::time::{SimDuration, SimTime};
use slr_radio::{Mac, MacConfig, MacEffect, MacTimer};

struct Harness {
    mac: Mac<u64>,
    now: SimTime,
    timers: HashMap<MacTimer, SimTime>,
    transmitting: Option<SimTime>, // end time of the in-flight frame
    failed: Vec<u64>,
    done_broadcasts: u64,
    dropped: Vec<u64>,
}

impl Harness {
    fn new(seed: u64) -> Self {
        Harness {
            mac: Mac::new(0, MacConfig::default(), seed),
            now: SimTime::ZERO,
            timers: HashMap::new(),
            transmitting: None,
            failed: Vec::new(),
            done_broadcasts: 0,
            dropped: Vec::new(),
        }
    }

    fn apply(&mut self, fx: Vec<MacEffect<u64>>) {
        for e in fx {
            match e {
                MacEffect::StartTx(frame) => {
                    assert!(
                        self.transmitting.is_none(),
                        "MAC started a transmission while one was in flight"
                    );
                    // Model airtime coarsely from the frame size.
                    let airtime = SimDuration::from_micros(200 + frame.bytes as u64 * 4);
                    self.transmitting = Some(self.now + airtime);
                }
                MacEffect::SetTimer(kind, delay) => {
                    self.timers.insert(kind, self.now + delay);
                }
                MacEffect::CancelTimer(kind) => {
                    self.timers.remove(&kind);
                }
                MacEffect::TxFailed { payload, .. } => self.failed.push(payload),
                MacEffect::TxDone { dst } => {
                    if dst.is_none() {
                        self.done_broadcasts += 1;
                    }
                }
                MacEffect::Dropped { payload, .. } => self.dropped.push(payload),
                MacEffect::Deliver { .. } => {}
            }
        }
    }

    /// Advances to the next pending completion (tx end or earliest timer).
    /// Returns false when fully quiescent.
    fn step(&mut self) -> bool {
        let tx_end = self.transmitting;
        let timer = self
            .timers
            .iter()
            .min_by_key(|(_, t)| **t)
            .map(|(k, t)| (*k, *t));
        match (tx_end, timer) {
            (Some(te), Some((k, tt))) => {
                if te <= tt {
                    self.finish_tx(te);
                } else {
                    self.fire_timer(k, tt);
                }
            }
            (Some(te), None) => self.finish_tx(te),
            (None, Some((k, tt))) => self.fire_timer(k, tt),
            (None, None) => return false,
        }
        true
    }

    fn finish_tx(&mut self, at: SimTime) {
        self.now = at;
        self.transmitting = None;
        let fx = self.mac.on_tx_end(self.now);
        self.apply(fx);
    }

    fn fire_timer(&mut self, kind: MacTimer, at: SimTime) {
        self.now = at;
        self.timers.remove(&kind);
        let fx = self.mac.on_timer(kind, self.now);
        self.apply(fx);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// With no peer ever responding, every accepted unicast fails exactly
    /// once, every broadcast completes, and queue overflow accounts for
    /// the rest. The single-transmitter invariant holds throughout.
    #[test]
    fn mac_conserves_payloads(
        seed in 0u64..1_000,
        frames in prop::collection::vec((prop::bool::ANY, 40u32..600, prop::bool::ANY), 1..70),
    ) {
        let mut h = Harness::new(seed);
        let mut unicasts = Vec::new();
        let mut broadcasts = 0u64;
        let mut offered = 0u64;
        for (i, (unicast, bytes, priority)) in frames.iter().enumerate() {
            let uid = i as u64;
            offered += 1;
            let dst = if *unicast { Some(3) } else { None };
            let fx = h.mac.enqueue(uid, dst, *bytes, *priority, h.now);
            let overflowed = fx
                .iter()
                .any(|e| matches!(e, MacEffect::Dropped { .. }));
            h.apply(fx);
            if !overflowed {
                if *unicast {
                    unicasts.push(uid);
                } else {
                    broadcasts += 1;
                }
            }
            // Occasionally let the MAC make progress mid-stream.
            if i % 7 == 3 {
                for _ in 0..20 {
                    if !h.step() {
                        break;
                    }
                }
            }
        }
        // Drain to quiescence (bounded: every frame terminates in finitely
        // many retries).
        let mut steps = 0u32;
        while h.step() {
            steps += 1;
            prop_assert!(steps < 200_000, "MAC failed to quiesce");
        }
        // Conservation.
        let mut failed = h.failed.clone();
        failed.sort_unstable();
        let mut expect = unicasts.clone();
        expect.sort_unstable();
        prop_assert_eq!(&failed, &expect, "every accepted unicast fails exactly once");
        prop_assert_eq!(h.done_broadcasts, broadcasts);
        prop_assert_eq!(
            h.dropped.len() as u64 + failed.len() as u64 + broadcasts,
            offered,
            "accepted + overflowed = offered"
        );
    }

    /// Busy/idle flapping mid-backoff never wedges the MAC or breaks the
    /// single-transmitter invariant.
    #[test]
    fn mac_survives_carrier_flapping(
        seed in 0u64..1_000,
        flaps in prop::collection::vec(1u64..2_000, 1..40),
    ) {
        let mut h = Harness::new(seed);
        let fx = h.mac.enqueue(1, None, 100, true, h.now);
        h.apply(fx);
        let mut busy = false;
        for us in flaps {
            h.now += SimDuration::from_micros(us);
            // Can't be "physically busy" while we ourselves transmit —
            // finish any in-flight frame first, as the channel would.
            if h.transmitting.is_some() {
                let te = h.transmitting.unwrap().max(h.now);
                h.finish_tx(te);
            }
            let fx = if busy {
                h.mac.on_channel_idle(h.now)
            } else {
                h.mac.on_channel_busy(h.now)
            };
            busy = !busy;
            h.apply(fx);
        }
        if busy {
            let now = h.now;
            let fx = h.mac.on_channel_idle(now);
            h.apply(fx);
        }
        let mut steps = 0u32;
        while h.step() {
            steps += 1;
            prop_assert!(steps < 100_000, "MAC wedged after flapping");
        }
        prop_assert_eq!(h.done_broadcasts, 1, "the broadcast still completes");
    }
}
