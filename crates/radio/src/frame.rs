//! MAC frames.

use slr_netsim::time::SimDuration;

/// MAC-layer byte overhead of a data frame (header + FCS).
pub const DATA_OVERHEAD_BYTES: u32 = 34;
/// On-air size of an RTS frame.
pub const RTS_BYTES: u32 = 20;
/// On-air size of a CTS frame.
pub const CTS_BYTES: u32 = 14;
/// On-air size of an ACK frame.
pub const ACK_BYTES: u32 = 14;

/// The four DCF frame types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameKind {
    /// Request-to-send.
    Rts,
    /// Clear-to-send.
    Cts,
    /// A data frame (unicast or broadcast) carrying an upper-layer payload.
    Data,
    /// Link-layer acknowledgment.
    Ack,
}

/// A frame on the air. `P` is the upper-layer payload type.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame<P> {
    /// Frame type.
    pub kind: FrameKind,
    /// Transmitting node.
    pub src: usize,
    /// Destination node; `None` for broadcast (data frames only).
    pub dst: Option<usize>,
    /// Total on-air bytes (payload + MAC overhead for data frames).
    pub bytes: u32,
    /// NAV: how long the medium stays reserved *after* this frame ends.
    pub nav: SimDuration,
    /// Upper-layer payload (data frames only).
    pub payload: Option<P>,
    /// Per-transmitter sequence number, used for duplicate detection at
    /// receivers (retransmitted unicast data).
    pub seq: u64,
}

impl<P> Frame<P> {
    /// Whether this frame is addressed to `node` (broadcasts match all).
    pub fn addressed_to(&self, node: usize) -> bool {
        match self.dst {
            Some(d) => d == node,
            None => true,
        }
    }

    /// Whether this is a broadcast frame.
    pub fn is_broadcast(&self) -> bool {
        self.dst.is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(dst: Option<usize>) -> Frame<u8> {
        Frame {
            kind: FrameKind::Data,
            src: 1,
            dst,
            bytes: 100,
            nav: SimDuration::ZERO,
            payload: Some(7),
            seq: 0,
        }
    }

    #[test]
    fn addressing() {
        let f = frame(Some(3));
        assert!(f.addressed_to(3));
        assert!(!f.addressed_to(4));
        assert!(!f.is_broadcast());
        let b = frame(None);
        assert!(b.addressed_to(0) && b.addressed_to(99));
        assert!(b.is_broadcast());
    }
}
