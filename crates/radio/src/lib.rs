//! # slr-radio — the wireless substrate
//!
//! PHY, channel and MAC models replacing GloMoSim's 802.11 stack in the
//! SLR/SRP reproduction:
//!
//! * [`phy::PhyConfig`] — 2 Mbps timing, 250 m reception / 550 m
//!   carrier-sense ranges, `d⁻⁴` power law with 10× capture;
//! * [`channel::Channel`] — the shared medium: per-receiver signal
//!   tracking, collisions, capture, half-duplex, busy/idle transitions;
//! * [`medium::NeighborQuery`] — how the channel sees space: exact
//!   positions plus carrier-sense-range neighbor sets, answered by a
//!   brute-force scan (the reference oracle) or a grid-bucketed spatial
//!   index (O(degree) per transmission instead of O(N));
//! * [`mac::Mac`] — a DCF-style MAC: DIFS + slotted binary-exponential
//!   backoff with freezing, NAV, RTS/CTS above a size threshold,
//!   SIFS-spaced ACKs with retry limits, link-failure notification to the
//!   routing layer, and a 50-frame priority interface queue with drop
//!   accounting (the Fig. 3 metric).
//!
//! All three are passive state machines driven by the experiment harness;
//! see `slr-runner` for the wiring.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod frame;
pub mod mac;
pub mod medium;
pub mod phy;

pub use channel::{
    BeginTx, Channel, ChannelShard, ChannelStats, FinishRx, Receiver, TxFrames, TxId,
};
pub use frame::{Frame, FrameKind};
pub use mac::{DropReason, Mac, MacConfig, MacCounters, MacEffect, MacTimer};
pub use medium::{
    BruteForceMedium, NeighborQuery, PrecomputedQuery, StaticGridMedium, ValidatingQuery,
};
pub use phy::PhyConfig;
