//! How the channel sees space: the [`NeighborQuery`] trait and its
//! reference implementations.
//!
//! [`Channel::begin_tx`](crate::Channel::begin_tx) needs two things from
//! the world: the exact position of any node, and the set of nodes within
//! carrier-sense range of a transmitter. This trait abstracts both, so
//! the medium can be backed by a brute-force scan over a position slice
//! (the reference oracle — O(N) per transmission), by a grid-bucketed
//! [`SpatialIndex`](slr_netsim::SpatialIndex) (O(degree); the harness's
//! production path), or by a [`ValidatingQuery`] that runs both and
//! panics on any disagreement.
//!
//! ## Determinism contract
//!
//! Implementations MUST return neighbors in ascending node order, filter
//! by *exact* distance (`d ≤ range`, computed with
//! [`Position::distance`]), and exclude the querying node itself. Two
//! implementations fed the same positions must therefore produce
//! bit-identical simulations — the equivalence tests in the workspace
//! root hold the grid-indexed medium to exactly that standard against
//! the brute-force scan.

use slr_mobility::Position;
use slr_netsim::SpatialIndex;

/// Position lookup plus range queries over a set of nodes.
pub trait NeighborQuery {
    /// Number of nodes in the medium.
    fn node_count(&self) -> usize;

    /// Exact current position of `node`.
    fn position(&self, node: usize) -> Position;

    /// Appends every node within `range` meters of `node` (excluding
    /// `node` itself) as `(index, distance)` pairs, in ascending index
    /// order, to `out`. Distances are exact ([`Position::distance`]); the
    /// channel consumes them directly for path loss, so implementations
    /// must not approximate.
    fn neighbors_within(&self, node: usize, range: f64, out: &mut Vec<(usize, f64)>);
}

/// The brute-force reference medium: a plain position slice, scanned
/// linearly. Every other implementation is measured against this one.
#[derive(Debug, Clone, Copy)]
pub struct BruteForceMedium<'a>(pub &'a [Position]);

impl NeighborQuery for BruteForceMedium<'_> {
    fn node_count(&self) -> usize {
        self.0.len()
    }

    fn position(&self, node: usize) -> Position {
        self.0[node]
    }

    fn neighbors_within(&self, node: usize, range: f64, out: &mut Vec<(usize, f64)>) {
        let center = self.0[node];
        for (v, p) in self.0.iter().enumerate() {
            let d = center.distance(p);
            if v != node && d <= range {
                out.push((v, d));
            }
        }
    }
}

/// A static grid-indexed medium: positions bucketed in a
/// [`SpatialIndex`] at construction. Suitable when positions do not move
/// between queries (static topologies, micro-benchmarks); the harness
/// uses its own incrementally-updated tracker for mobile scenarios.
#[derive(Debug, Clone)]
pub struct StaticGridMedium {
    positions: Vec<Position>,
    index: SpatialIndex,
}

impl StaticGridMedium {
    /// Builds the medium; `cell_m` must be at least the largest query
    /// range (the channel queries at carrier-sense range).
    pub fn new(positions: Vec<Position>, cell_m: f64) -> Self {
        let points: Vec<(f64, f64)> = positions.iter().map(|p| (p.x, p.y)).collect();
        StaticGridMedium {
            index: SpatialIndex::new(cell_m, &points),
            positions,
        }
    }
}

impl NeighborQuery for StaticGridMedium {
    fn node_count(&self) -> usize {
        self.positions.len()
    }

    fn position(&self, node: usize) -> Position {
        self.positions[node]
    }

    fn neighbors_within(&self, node: usize, range: f64, out: &mut Vec<(usize, f64)>) {
        let center = self.positions[node];
        let start = out.len();
        let mut candidates = Vec::new();
        self.index
            .candidates_within((center.x, center.y), range, &mut candidates);
        for v in candidates {
            let d = center.distance(&self.positions[v]);
            if v != node && d <= range {
                out.push((v, d));
            }
        }
        out[start..].sort_unstable_by_key(|&(v, _)| v);
    }
}

/// Debug medium that answers from `fast` while cross-checking every
/// query against `oracle`, panicking with a diagnostic on the first
/// divergence (positions or neighbor sets). Wired to `slrsim`'s
/// `--validate-spatial` flag.
pub struct ValidatingQuery<'a> {
    /// The implementation under test (answers are taken from it).
    pub fast: &'a dyn NeighborQuery,
    /// The trusted reference (typically the brute-force slice).
    pub oracle: &'a dyn NeighborQuery,
}

impl NeighborQuery for ValidatingQuery<'_> {
    fn node_count(&self) -> usize {
        let n = self.fast.node_count();
        assert_eq!(n, self.oracle.node_count(), "media disagree on node count");
        n
    }

    fn position(&self, node: usize) -> Position {
        let p = self.fast.position(node);
        let q = self.oracle.position(node);
        assert!(
            p.x == q.x && p.y == q.y,
            "media disagree on node {node}'s position: fast {p}, oracle {q}"
        );
        p
    }

    fn neighbors_within(&self, node: usize, range: f64, out: &mut Vec<(usize, f64)>) {
        let start = out.len();
        self.fast.neighbors_within(node, range, out);
        let mut expect = Vec::with_capacity(out.len() - start);
        self.oracle.neighbors_within(node, range, &mut expect);
        assert_eq!(
            &out[start..],
            &expect[..],
            "spatial index diverged from brute force: node {node} range {range}"
        );
    }
}

/// A medium whose answer for **one** query — `neighbors_within(src,
/// range)` — was precomputed elsewhere (a parallel-engine worker
/// speculating during the window that precedes a MAC-timer dispatch) and
/// validated still-fresh by the caller. That query is served from the
/// buffer; everything else delegates to `inner`.
///
/// The precomputed pairs must satisfy the module's determinism contract
/// for `inner` at the validation instant: ascending node order, exact
/// distances, querying node excluded. The harness guarantees this by
/// stamping speculation with the position tracker's generation counter
/// and discarding the buffer on any mismatch; a debug assertion here
/// cross-checks the buffer against `inner` as a belt-and-braces measure.
pub struct PrecomputedQuery<'a> {
    /// The authoritative medium for everything not precomputed.
    pub inner: &'a dyn NeighborQuery,
    /// The transmitter whose neighbor query was precomputed.
    pub src: usize,
    /// The range the precomputation used (the carrier-sense range).
    pub range: f64,
    /// The precomputed `(node, distance)` pairs, ascending by node.
    pub pairs: &'a [(usize, f64)],
}

impl NeighborQuery for PrecomputedQuery<'_> {
    fn node_count(&self) -> usize {
        self.inner.node_count()
    }

    fn position(&self, node: usize) -> Position {
        self.inner.position(node)
    }

    fn neighbors_within(&self, node: usize, range: f64, out: &mut Vec<(usize, f64)>) {
        if node == self.src && range == self.range {
            #[cfg(debug_assertions)]
            {
                let mut expect = Vec::new();
                self.inner.neighbors_within(node, range, &mut expect);
                assert_eq!(
                    self.pairs,
                    &expect[..],
                    "stale speculative neighbor set survived validation: node {node} range {range}"
                );
            }
            out.extend_from_slice(self.pairs);
        } else {
            self.inner.neighbors_within(node, range, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn positions() -> Vec<Position> {
        vec![
            Position::new(0.0, 0.0),
            Position::new(100.0, 0.0),
            Position::new(400.0, 0.0),
            Position::new(2000.0, 0.0),
        ]
    }

    #[test]
    fn brute_force_slice_is_sorted_and_exact() {
        let pos = positions();
        let mut out = Vec::new();
        BruteForceMedium(&pos).neighbors_within(0, 550.0, &mut out);
        assert_eq!(out, vec![(1, 100.0), (2, 400.0)]);
        out.clear();
        BruteForceMedium(&pos).neighbors_within(2, 550.0, &mut out);
        assert_eq!(out, vec![(0, 400.0), (1, 300.0)]);
    }

    #[test]
    fn static_grid_matches_brute_force() {
        let pos = positions();
        let grid = StaticGridMedium::new(pos.clone(), 550.0);
        for node in 0..pos.len() {
            for range in [250.0, 550.0] {
                let (mut a, mut b) = (Vec::new(), Vec::new());
                BruteForceMedium(&pos).neighbors_within(node, range, &mut a);
                grid.neighbors_within(node, range, &mut b);
                assert_eq!(a, b, "node {node} range {range}");
            }
        }
    }

    #[test]
    fn validating_query_passes_on_agreement() {
        let pos = positions();
        let grid = StaticGridMedium::new(pos.clone(), 550.0);
        let v = ValidatingQuery {
            fast: &grid,
            oracle: &BruteForceMedium(&pos),
        };
        let mut out = Vec::new();
        v.neighbors_within(1, 550.0, &mut out);
        assert_eq!(out, vec![(0, 100.0), (2, 300.0)]);
        assert_eq!(v.node_count(), 4);
        assert_eq!(v.position(3).x, 2000.0);
    }

    #[test]
    fn precomputed_query_serves_buffer_and_delegates_rest() {
        let pos = positions();
        let inner = BruteForceMedium(&pos);
        let mut pairs = Vec::new();
        inner.neighbors_within(0, 550.0, &mut pairs);
        let pre = PrecomputedQuery {
            inner: &inner,
            src: 0,
            range: 550.0,
            pairs: &pairs,
        };
        let mut out = Vec::new();
        pre.neighbors_within(0, 550.0, &mut out);
        assert_eq!(out, pairs, "precomputed query must serve the buffer");
        out.clear();
        pre.neighbors_within(2, 550.0, &mut out);
        let mut expect = Vec::new();
        inner.neighbors_within(2, 550.0, &mut expect);
        assert_eq!(out, expect, "other nodes delegate to the inner medium");
        assert_eq!(pre.node_count(), 4);
        assert_eq!(pre.position(1).x, 100.0);
    }

    #[test]
    #[should_panic(expected = "diverged")]
    fn validating_query_catches_divergence() {
        let pos = positions();
        let mut wrong = pos.clone();
        wrong[2] = Position::new(5000.0, 0.0); // stale index position
        let grid = StaticGridMedium::new(wrong, 550.0);
        let v = ValidatingQuery {
            fast: &grid,
            oracle: &BruteForceMedium(&pos),
        };
        let mut out = Vec::new();
        v.neighbors_within(0, 550.0, &mut out);
    }
}
