//! An 802.11-DCF-style MAC state machine.
//!
//! Implements the contention behaviour the paper's evaluation depends on:
//! carrier sense with DIFS deferral, slotted binary-exponential backoff
//! with freezing, NAV (virtual carrier sense) from overheard frames,
//! optional RTS/CTS for large unicast frames, SIFS-spaced ACKs with retry
//! limits, broadcast without acknowledgment, and a bounded interface queue
//! with priority for routing control packets.
//!
//! Two events matter to routing protocols above:
//!
//! * [`MacEffect::TxFailed`] — a unicast frame exhausted its retries; this
//!   is the "link-layer unicast loss detection, without hello packets" the
//!   paper's protocols use to break next hops and salvage packets (§V);
//! * [`MacEffect::Dropped`] — interface-queue overflow, counted along with
//!   retry failures as *MAC drops* (Fig. 3).
//!
//! The MAC is a passive state machine: inputs are method calls, outputs are
//! [`MacEffect`]s the harness interprets (start a transmission on the
//! channel, arm or cancel a timer, deliver a payload upward, …).

use std::collections::VecDeque;

use slr_netsim::VecMap;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use slr_netsim::time::{SimDuration, SimTime};

use crate::frame::{Frame, FrameKind, ACK_BYTES, CTS_BYTES, DATA_OVERHEAD_BYTES, RTS_BYTES};
use crate::phy::PhyConfig;

/// MAC configuration (802.11 DSSS timing at 2 Mbps by default).
#[derive(Debug, Clone, Copy)]
pub struct MacConfig {
    /// PHY parameters (airtime computation, ranges).
    pub phy: PhyConfig,
    /// Slot time (20 µs).
    pub slot: SimDuration,
    /// Short interframe space (10 µs).
    pub sifs: SimDuration,
    /// DCF interframe space (50 µs).
    pub difs: SimDuration,
    /// Minimum contention window (31).
    pub cw_min: u32,
    /// Maximum contention window (1023).
    pub cw_max: u32,
    /// Retry limit for RTS and small frames (7).
    pub short_retry_limit: u32,
    /// Retry limit for large frames sent after RTS (4).
    pub long_retry_limit: u32,
    /// Unicast frames strictly larger than this use RTS/CTS (bytes,
    /// including MAC overhead).
    pub rts_threshold: u32,
    /// Interface queue capacity in frames (50, as in ns-2/GloMoSim).
    pub queue_capacity: usize,
}

impl Default for MacConfig {
    fn default() -> Self {
        MacConfig {
            phy: PhyConfig::default(),
            slot: SimDuration::from_micros(20),
            sifs: SimDuration::from_micros(10),
            difs: SimDuration::from_micros(50),
            cw_min: 31,
            cw_max: 1023,
            short_retry_limit: 7,
            long_retry_limit: 4,
            rts_threshold: 256,
            queue_capacity: 50,
        }
    }
}

/// Logical MAC timers. At most one of each kind is armed at a time; the
/// harness maps `(node, timer)` to an event token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MacTimer {
    /// DIFS deferral before backoff.
    Difs,
    /// Backoff countdown (armed for the full remaining duration).
    Backoff,
    /// CTS timeout after an RTS.
    Cts,
    /// ACK timeout after unicast data.
    Ack,
    /// SIFS before sending a response frame (CTS or ACK).
    RespSifs,
    /// SIFS before sending data after receiving CTS.
    TxSifs,
    /// Wake-up when the NAV expires.
    NavEnd,
}

impl MacTimer {
    /// Number of timer kinds (size for dense per-node timer tables).
    pub const COUNT: usize = 7;

    /// A dense index in `0..COUNT`, stable per kind — harnesses keep
    /// per-node timer tokens in a flat array instead of a hash map (timer
    /// arm/cancel is the hottest bookkeeping in a trial).
    pub fn index(self) -> usize {
        match self {
            MacTimer::Difs => 0,
            MacTimer::Backoff => 1,
            MacTimer::Cts => 2,
            MacTimer::Ack => 3,
            MacTimer::RespSifs => 4,
            MacTimer::TxSifs => 5,
            MacTimer::NavEnd => 6,
        }
    }
}

/// Why the MAC dropped a payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// The interface queue was full.
    IfqOverflow,
    /// Unicast retry limit exceeded.
    RetryLimit,
}

/// Outputs of the MAC state machine.
#[derive(Debug, Clone, PartialEq)]
pub enum MacEffect<P> {
    /// Put a frame on the air now. The harness informs the channel and
    /// schedules `on_tx_end` at now + airtime.
    StartTx(Frame<P>),
    /// Arm (or re-arm) a timer.
    SetTimer(MacTimer, SimDuration),
    /// Cancel a timer if armed.
    CancelTimer(MacTimer),
    /// Deliver a received payload to the layer above.
    Deliver {
        /// The transmitting (previous-hop) node.
        from: usize,
        /// The payload.
        payload: P,
    },
    /// A queued frame finished successfully (ACK received, or broadcast
    /// transmitted).
    TxDone {
        /// Unicast destination, `None` for broadcast.
        dst: Option<usize>,
    },
    /// A unicast frame exhausted its retries: link-layer loss detection.
    /// The payload is returned to the routing layer for salvage.
    TxFailed {
        /// The unreachable next hop.
        dst: usize,
        /// The payload that was not delivered.
        payload: P,
    },
    /// A payload was dropped without transmission attempts completing.
    Dropped {
        /// The payload.
        payload: P,
        /// Why it was dropped.
        reason: DropReason,
    },
}

/// MAC statistics (per node).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MacCounters {
    /// Data frames transmitted (unicast attempts incl. retries).
    pub tx_data: u64,
    /// Broadcast data frames transmitted.
    pub tx_broadcast: u64,
    /// RTS frames transmitted.
    pub tx_rts: u64,
    /// CTS frames transmitted.
    pub tx_cts: u64,
    /// ACK frames transmitted.
    pub tx_ack: u64,
    /// Frames dropped: retry limit exceeded.
    pub drop_retry: u64,
    /// Frames dropped: interface queue overflow.
    pub drop_ifq: u64,
    /// Payloads delivered upward.
    pub rx_delivered: u64,
    /// Duplicate unicast frames suppressed (still acknowledged).
    pub rx_duplicates: u64,
}

impl MacCounters {
    /// Total MAC-level drops (the paper's Fig. 3 metric).
    pub fn total_drops(&self) -> u64 {
        self.drop_retry + self.drop_ifq
    }
}

/// A payload handed to the MAC for transmission.
#[derive(Debug, Clone)]
struct Outgoing<P> {
    payload: P,
    dst: Option<usize>,
    bytes_on_air: u32,
}

#[derive(Debug, Clone)]
struct CurrentTx<P> {
    out: Outgoing<P>,
    seq: u64,
    short_retries: u32,
    long_retries: u32,
    use_rts: bool,
    cts_received: bool,
}

/// The access (own-traffic) sub-machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Access {
    /// Nothing staged.
    Idle,
    /// Frame staged, waiting for the medium to become free.
    WantTx,
    /// DIFS running.
    Difs,
    /// Backoff countdown running.
    Backoff,
    /// Transmitting RTS.
    TxRts,
    /// Waiting for CTS.
    WaitCts,
    /// SIFS before data (after CTS).
    SifsData,
    /// Transmitting data.
    TxData,
    /// Waiting for ACK.
    WaitAck,
}

/// A SIFS-spaced response owed to a peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Response {
    Cts { to: usize, nav: SimDuration },
    Ack { to: usize },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RespState {
    Sifs(Response),
    Tx,
}

/// The per-node MAC entity.
pub struct Mac<P> {
    cfg: MacConfig,
    node: usize,
    rng: SmallRng,

    hi_queue: VecDeque<Outgoing<P>>,
    lo_queue: VecDeque<Outgoing<P>>,
    current: Option<CurrentTx<P>>,

    access: Access,
    response: Option<RespState>,

    cw: u32,
    slots_remaining: u32,
    backoff_started: SimTime,

    phys_busy: bool,
    transmitting: bool,
    nav_until: SimTime,

    next_seq: u64,
    /// Last data sequence number delivered per source (duplicate filter).
    /// Neighbor-count-bounded, lookup-only: a compact sorted-vec map
    /// beats a per-node hash table's fixed overhead at 100k+ nodes.
    rx_dedup: VecMap<usize, u64>,

    /// Statistics.
    pub counters: MacCounters,
}

impl<P: Clone> Mac<P> {
    /// Creates a MAC for `node` with its own deterministic RNG stream.
    pub fn new(node: usize, cfg: MacConfig, seed: u64) -> Self {
        Mac {
            cfg,
            node,
            rng: SmallRng::seed_from_u64(seed),
            hi_queue: VecDeque::new(),
            lo_queue: VecDeque::new(),
            current: None,
            access: Access::Idle,
            response: None,
            cw: cfg.cw_min,
            slots_remaining: 0,
            backoff_started: SimTime::ZERO,
            phys_busy: false,
            transmitting: false,
            nav_until: SimTime::ZERO,
            next_seq: 0,
            rx_dedup: VecMap::new(),
            counters: MacCounters::default(),
        }
    }

    /// This MAC's node id.
    pub fn node(&self) -> usize {
        self.node
    }

    /// Live heap bytes of this MAC's queues and receive-dedup table.
    pub fn mem_bytes(&self) -> usize {
        let out = std::mem::size_of::<Outgoing<P>>();
        (self.hi_queue.capacity() + self.lo_queue.capacity()) * out + self.rx_dedup.mem_bytes()
    }

    /// Whether this MAC currently believes the physical carrier is busy.
    /// Diagnostic: the harness's channel is the ground truth; the two
    /// views must agree whenever the node is up (the crash–rejoin
    /// regression tests hold the harness to exactly that).
    pub fn carrier_busy(&self) -> bool {
        self.phys_busy
    }

    /// Overwrites the carrier view without running the freeze/resume
    /// machinery. For harnesses that *elide* busy/idle notifications to
    /// transition-insensitive MACs (see [`Mac::transition_sensitive`])
    /// and lazily resynchronize from channel ground truth before the
    /// next input — behaviorally identical to having delivered every
    /// elided notification, since an insensitive MAC's only reaction to
    /// one is this assignment.
    pub fn set_carrier(&mut self, busy: bool) {
        self.phys_busy = busy;
    }

    /// Whether a carrier busy/idle transition can change this MAC's
    /// behavior *right now*: deferring or counting down (freeze/resume
    /// act), or holding a frame waiting for the medium (idle resumes
    /// access). In every other state a transition's entire effect is the
    /// `phys_busy` flag itself, which [`Mac::set_carrier`] can replay
    /// later.
    pub fn transition_sensitive(&self) -> bool {
        matches!(self.access, Access::WantTx | Access::Difs | Access::Backoff)
    }

    /// Queue length (both priorities).
    pub fn queue_len(&self) -> usize {
        self.hi_queue.len() + self.lo_queue.len() + usize::from(self.current.is_some())
    }

    /// Hands a payload to the MAC. `dst = None` broadcasts. `priority`
    /// selects the control queue (drained before data, as routing packets
    /// are prioritized in ns-2/GloMoSim interface queues).
    pub fn enqueue(
        &mut self,
        payload: P,
        dst: Option<usize>,
        payload_bytes: u32,
        priority: bool,
        now: SimTime,
    ) -> Vec<MacEffect<P>> {
        let mut fx = Vec::new();
        self.enqueue_into(payload, dst, payload_bytes, priority, now, &mut fx);
        fx
    }

    /// [`Mac::enqueue`] appending into a caller-supplied buffer (the
    /// harness's hot path reuses one scratch vector across every MAC
    /// call; the allocating wrappers remain for tests and examples).
    pub fn enqueue_into(
        &mut self,
        payload: P,
        dst: Option<usize>,
        payload_bytes: u32,
        priority: bool,
        now: SimTime,
        fx: &mut Vec<MacEffect<P>>,
    ) {
        if self.queue_len() >= self.cfg.queue_capacity {
            self.counters.drop_ifq += 1;
            fx.push(MacEffect::Dropped {
                payload,
                reason: DropReason::IfqOverflow,
            });
            return;
        }
        let out = Outgoing {
            payload,
            dst,
            bytes_on_air: payload_bytes + DATA_OVERHEAD_BYTES,
        };
        if priority {
            self.hi_queue.push_back(out);
        } else {
            self.lo_queue.push_back(out);
        }
        if self.access == Access::Idle {
            self.stage_next(fx);
            self.reevaluate(now, fx);
        }
    }

    /// Physical carrier went busy at this node.
    pub fn on_channel_busy(&mut self, now: SimTime) -> Vec<MacEffect<P>> {
        let mut fx = Vec::new();
        self.on_channel_busy_into(now, &mut fx);
        fx
    }

    /// [`Mac::on_channel_busy`], appending into a caller buffer.
    pub fn on_channel_busy_into(&mut self, now: SimTime, fx: &mut Vec<MacEffect<P>>) {
        self.phys_busy = true;
        self.freeze(now, fx);
    }

    /// Physical carrier went idle at this node.
    pub fn on_channel_idle(&mut self, now: SimTime) -> Vec<MacEffect<P>> {
        let mut fx = Vec::new();
        self.on_channel_idle_into(now, &mut fx);
        fx
    }

    /// [`Mac::on_channel_idle`], appending into a caller buffer.
    pub fn on_channel_idle_into(&mut self, now: SimTime, fx: &mut Vec<MacEffect<P>>) {
        self.phys_busy = false;
        self.reevaluate(now, fx);
    }

    /// A frame was received intact.
    pub fn on_rx_frame(&mut self, frame: Frame<P>, now: SimTime) -> Vec<MacEffect<P>> {
        let mut fx = Vec::new();
        self.on_rx_frame_into(frame, now, &mut fx);
        fx
    }

    /// [`Mac::on_rx_frame`], appending into a caller buffer.
    pub fn on_rx_frame_into(&mut self, frame: Frame<P>, now: SimTime, fx: &mut Vec<MacEffect<P>>) {
        if !frame.addressed_to(self.node) {
            // Virtual carrier sense: honour the frame's NAV.
            if frame.nav > SimDuration::ZERO {
                let until = now + frame.nav;
                if until > self.nav_until {
                    self.nav_until = until;
                }
                self.freeze(now, fx);
            }
            return;
        }
        match frame.kind {
            FrameKind::Data => {
                if frame.is_broadcast() {
                    self.counters.rx_delivered += 1;
                    fx.push(MacEffect::Deliver {
                        from: frame.src,
                        payload: frame.payload.expect("data frames carry payloads"),
                    });
                } else {
                    // Acknowledge, then deliver if not a duplicate.
                    let dup = self.rx_dedup.get(&frame.src) == Some(&frame.seq);
                    if self.response.is_none() && !self.transmitting {
                        self.response = Some(RespState::Sifs(Response::Ack { to: frame.src }));
                        fx.push(MacEffect::SetTimer(MacTimer::RespSifs, self.cfg.sifs));
                    }
                    if dup {
                        self.counters.rx_duplicates += 1;
                    } else {
                        self.rx_dedup.insert(frame.src, frame.seq);
                        self.counters.rx_delivered += 1;
                        fx.push(MacEffect::Deliver {
                            from: frame.src,
                            payload: frame.payload.expect("data frames carry payloads"),
                        });
                    }
                }
            }
            FrameKind::Rts => {
                // Respond with CTS when our NAV allows and we are free.
                if now >= self.nav_until && self.response.is_none() && !self.transmitting {
                    // CTS reserves: SIFS + data + SIFS + ACK. The RTS's nav
                    // already covers this; reuse it minus CTS airtime+SIFS.
                    let cts_air = self.cfg.phy.airtime(CTS_BYTES);
                    let nav = frame
                        .nav
                        .as_nanos()
                        .saturating_sub((self.cfg.sifs + cts_air).as_nanos());
                    self.response = Some(RespState::Sifs(Response::Cts {
                        to: frame.src,
                        nav: SimDuration::from_nanos(nav),
                    }));
                    fx.push(MacEffect::SetTimer(MacTimer::RespSifs, self.cfg.sifs));
                }
            }
            FrameKind::Cts => {
                if self.access == Access::WaitCts {
                    fx.push(MacEffect::CancelTimer(MacTimer::Cts));
                    if let Some(cur) = &mut self.current {
                        cur.cts_received = true;
                    }
                    self.access = Access::SifsData;
                    fx.push(MacEffect::SetTimer(MacTimer::TxSifs, self.cfg.sifs));
                }
            }
            FrameKind::Ack => {
                if self.access == Access::WaitAck {
                    fx.push(MacEffect::CancelTimer(MacTimer::Ack));
                    let cur = self.current.take().expect("WaitAck implies current");
                    fx.push(MacEffect::TxDone { dst: cur.out.dst });
                    self.cw = self.cfg.cw_min;
                    self.access = Access::Idle;
                    self.stage_next(fx);
                    self.reevaluate(now, fx);
                }
            }
        }
    }

    /// Our transmission finished (scheduled by the harness at tx start +
    /// airtime).
    pub fn on_tx_end(&mut self, now: SimTime) -> Vec<MacEffect<P>> {
        let mut fx = Vec::new();
        self.on_tx_end_into(now, &mut fx);
        fx
    }

    /// [`Mac::on_tx_end`], appending into a caller buffer.
    pub fn on_tx_end_into(&mut self, now: SimTime, fx: &mut Vec<MacEffect<P>>) {
        self.transmitting = false;
        if matches!(self.response, Some(RespState::Tx)) {
            self.response = None;
            self.reevaluate(now, fx);
            return;
        }
        match self.access {
            Access::TxRts => {
                self.access = Access::WaitCts;
                let timeout = self.cfg.sifs
                    + self.cfg.phy.airtime(CTS_BYTES)
                    + self.cfg.slot.saturating_mul(2);
                fx.push(MacEffect::SetTimer(MacTimer::Cts, timeout));
            }
            Access::TxData => {
                let broadcast = self
                    .current
                    .as_ref()
                    .map(|c| c.out.dst.is_none())
                    .unwrap_or(true);
                if broadcast {
                    let cur = self.current.take().expect("TxData implies current");
                    fx.push(MacEffect::TxDone { dst: cur.out.dst });
                    self.cw = self.cfg.cw_min;
                    self.access = Access::Idle;
                    self.stage_next(fx);
                    self.reevaluate(now, fx);
                } else {
                    self.access = Access::WaitAck;
                    let timeout = self.cfg.sifs
                        + self.cfg.phy.airtime(ACK_BYTES)
                        + self.cfg.slot.saturating_mul(2);
                    fx.push(MacEffect::SetTimer(MacTimer::Ack, timeout));
                }
            }
            _ => {}
        }
    }

    /// A MAC timer fired.
    pub fn on_timer(&mut self, timer: MacTimer, now: SimTime) -> Vec<MacEffect<P>> {
        let mut fx = Vec::new();
        self.on_timer_into(timer, now, &mut fx);
        fx
    }

    /// [`Mac::on_timer`], appending into a caller buffer.
    pub fn on_timer_into(&mut self, timer: MacTimer, now: SimTime, fx: &mut Vec<MacEffect<P>>) {
        match timer {
            MacTimer::Difs => {
                if self.access == Access::Difs {
                    if self.slots_remaining == 0 {
                        self.transmit_current(now, fx);
                    } else {
                        self.access = Access::Backoff;
                        self.backoff_started = now;
                        fx.push(MacEffect::SetTimer(
                            MacTimer::Backoff,
                            self.cfg.slot.saturating_mul(self.slots_remaining as u64),
                        ));
                    }
                }
            }
            MacTimer::Backoff => {
                if self.access == Access::Backoff {
                    self.slots_remaining = 0;
                    self.transmit_current(now, fx);
                }
            }
            MacTimer::Cts => {
                if self.access == Access::WaitCts {
                    self.retry(true, now, fx);
                }
            }
            MacTimer::Ack => {
                if self.access == Access::WaitAck {
                    let long = self.current.as_ref().map(|c| c.use_rts).unwrap_or(false);
                    self.retry(!long, now, fx);
                }
            }
            MacTimer::RespSifs => {
                if let Some(RespState::Sifs(resp)) = self.response {
                    self.response = Some(RespState::Tx);
                    let frame = match resp {
                        Response::Cts { to, nav } => {
                            self.counters.tx_cts += 1;
                            Frame {
                                kind: FrameKind::Cts,
                                src: self.node,
                                dst: Some(to),
                                bytes: CTS_BYTES,
                                nav,
                                payload: None,
                                seq: 0,
                            }
                        }
                        Response::Ack { to } => {
                            self.counters.tx_ack += 1;
                            Frame {
                                kind: FrameKind::Ack,
                                src: self.node,
                                dst: Some(to),
                                bytes: ACK_BYTES,
                                nav: SimDuration::ZERO,
                                payload: None,
                                seq: 0,
                            }
                        }
                    };
                    self.transmitting = true;
                    fx.push(MacEffect::StartTx(frame));
                }
            }
            MacTimer::TxSifs => {
                if self.access == Access::SifsData {
                    self.send_data(now, fx);
                }
            }
            MacTimer::NavEnd => {
                self.reevaluate(now, fx);
            }
        }
    }

    /// Whether the medium is free for access-machine purposes.
    fn medium_free(&self, now: SimTime) -> bool {
        !self.phys_busy && !self.transmitting && now >= self.nav_until
    }

    /// Stage the next queued frame into `current`, drawing its backoff.
    fn stage_next(&mut self, _fx: &mut Vec<MacEffect<P>>) {
        if self.current.is_some() {
            return;
        }
        let out = match self
            .hi_queue
            .pop_front()
            .or_else(|| self.lo_queue.pop_front())
        {
            Some(o) => o,
            None => {
                self.access = Access::Idle;
                return;
            }
        };
        let use_rts = out.dst.is_some() && out.bytes_on_air > self.cfg.rts_threshold;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.current = Some(CurrentTx {
            out,
            seq,
            short_retries: 0,
            long_retries: 0,
            use_rts,
            cts_received: false,
        });
        self.slots_remaining = self.rng.gen_range(0..=self.cw);
        self.access = Access::WantTx;
    }

    /// Freeze DIFS/backoff on busy medium.
    fn freeze(&mut self, now: SimTime, fx: &mut Vec<MacEffect<P>>) {
        match self.access {
            Access::Difs => {
                fx.push(MacEffect::CancelTimer(MacTimer::Difs));
                self.access = Access::WantTx;
            }
            Access::Backoff => {
                fx.push(MacEffect::CancelTimer(MacTimer::Backoff));
                let elapsed = now.saturating_since(self.backoff_started).as_nanos();
                let consumed = (elapsed / self.cfg.slot.as_nanos().max(1)) as u32;
                self.slots_remaining = self.slots_remaining.saturating_sub(consumed);
                self.access = Access::WantTx;
            }
            _ => {}
        }
    }

    /// Resume the access machine if the medium permits.
    fn reevaluate(&mut self, now: SimTime, fx: &mut Vec<MacEffect<P>>) {
        if self.response.is_some() {
            return;
        }
        if self.access == Access::Idle && self.current.is_none() {
            self.stage_next(fx);
        }
        if self.access != Access::WantTx {
            return;
        }
        if self.medium_free(now) {
            self.access = Access::Difs;
            fx.push(MacEffect::SetTimer(MacTimer::Difs, self.cfg.difs));
        } else if !self.phys_busy && !self.transmitting && self.nav_until > now {
            // Only the NAV holds us: arm a wake-up.
            fx.push(MacEffect::SetTimer(MacTimer::NavEnd, self.nav_until - now));
        }
    }

    /// Transmit the staged frame (RTS first if configured).
    fn transmit_current(&mut self, now: SimTime, fx: &mut Vec<MacEffect<P>>) {
        let cur = match &self.current {
            Some(c) => c.clone(),
            None => {
                self.access = Access::Idle;
                return;
            }
        };
        if cur.use_rts && !cur.cts_received {
            // RTS reserves CTS + DATA + ACK + 3×SIFS.
            let nav = self.cfg.sifs
                + self.cfg.phy.airtime(CTS_BYTES)
                + self.cfg.sifs
                + self.cfg.phy.airtime(cur.out.bytes_on_air)
                + self.cfg.sifs
                + self.cfg.phy.airtime(ACK_BYTES);
            self.counters.tx_rts += 1;
            self.access = Access::TxRts;
            self.transmitting = true;
            fx.push(MacEffect::StartTx(Frame {
                kind: FrameKind::Rts,
                src: self.node,
                dst: cur.out.dst,
                bytes: RTS_BYTES,
                nav,
                payload: None,
                seq: cur.seq,
            }));
        } else {
            self.send_data(now, fx);
        }
    }

    /// Put the staged data frame on the air.
    fn send_data(&mut self, _now: SimTime, fx: &mut Vec<MacEffect<P>>) {
        let cur = match &self.current {
            Some(c) => c.clone(),
            None => {
                self.access = Access::Idle;
                return;
            }
        };
        let nav = if cur.out.dst.is_some() {
            // Reserve for SIFS + ACK.
            self.cfg.sifs + self.cfg.phy.airtime(ACK_BYTES)
        } else {
            SimDuration::ZERO
        };
        if cur.out.dst.is_some() {
            self.counters.tx_data += 1;
        } else {
            self.counters.tx_broadcast += 1;
        }
        self.access = Access::TxData;
        self.transmitting = true;
        fx.push(MacEffect::StartTx(Frame {
            kind: FrameKind::Data,
            src: self.node,
            dst: cur.out.dst,
            bytes: cur.out.bytes_on_air,
            nav,
            payload: Some(cur.out.payload),
            seq: cur.seq,
        }));
    }

    /// Handle a failed RTS (no CTS) or data (no ACK) attempt.
    fn retry(&mut self, short: bool, now: SimTime, fx: &mut Vec<MacEffect<P>>) {
        let exceeded = {
            let cur = self.current.as_mut().expect("retry implies current");
            if short {
                cur.short_retries += 1;
                cur.short_retries > self.cfg.short_retry_limit
            } else {
                cur.long_retries += 1;
                cur.long_retries > self.cfg.long_retry_limit
            }
        };
        // A fresh RTS/CTS exchange is needed for the retransmission.
        if let Some(cur) = self.current.as_mut() {
            cur.cts_received = false;
        }
        if exceeded {
            let cur = self.current.take().expect("checked above");
            let dead = cur.out.dst.expect("only unicast frames retry");
            self.counters.drop_retry += 1;
            fx.push(MacEffect::TxFailed {
                dst: dead,
                payload: cur.out.payload,
            });
            // Purge queued frames headed to the same dead neighbor
            // (ns-2/GloMoSim interface queues do this on link failure);
            // each goes back to the routing layer for salvage without
            // burning another retry cycle.
            for q in [&mut self.hi_queue, &mut self.lo_queue] {
                let mut keep = VecDeque::with_capacity(q.len());
                while let Some(out) = q.pop_front() {
                    if out.dst == Some(dead) {
                        self.counters.drop_retry += 1;
                        fx.push(MacEffect::TxFailed {
                            dst: dead,
                            payload: out.payload,
                        });
                    } else {
                        keep.push_back(out);
                    }
                }
                *q = keep;
            }
            self.cw = self.cfg.cw_min;
            self.access = Access::Idle;
            self.stage_next(fx);
            self.reevaluate(now, &mut *fx);
        } else {
            self.cw = ((self.cw + 1) * 2 - 1).min(self.cfg.cw_max);
            self.slots_remaining = self.rng.gen_range(0..=self.cw);
            self.access = Access::WantTx;
            self.reevaluate(now, fx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type M = Mac<u32>;

    fn mac() -> M {
        Mac::new(0, MacConfig::default(), 7)
    }

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    fn has_start_tx(fx: &[MacEffect<u32>], kind: FrameKind) -> bool {
        fx.iter()
            .any(|e| matches!(e, MacEffect::StartTx(f) if f.kind == kind))
    }

    fn timer_set(fx: &[MacEffect<u32>], k: MacTimer) -> Option<SimDuration> {
        fx.iter().find_map(|e| match e {
            MacEffect::SetTimer(kind, d) if *kind == k => Some(*d),
            _ => None,
        })
    }

    /// Drives a lone MAC through DIFS + backoff until it emits a data tx.
    fn drive_to_tx(
        m: &mut M,
        mut now: SimTime,
        mut fx: Vec<MacEffect<u32>>,
    ) -> (SimTime, Vec<MacEffect<u32>>) {
        for _ in 0..8 {
            if has_start_tx(&fx, FrameKind::Data) || has_start_tx(&fx, FrameKind::Rts) {
                return (now, fx);
            }
            if let Some(d) = timer_set(&fx, MacTimer::Difs) {
                now += d;
                fx = m.on_timer(MacTimer::Difs, now);
            } else if let Some(d) = timer_set(&fx, MacTimer::Backoff) {
                now += d;
                fx = m.on_timer(MacTimer::Backoff, now);
            } else {
                break;
            }
        }
        (now, fx)
    }

    #[test]
    fn broadcast_goes_out_after_difs_and_backoff() {
        let mut m = mac();
        let fx = m.enqueue(1, None, 48, true, t(0));
        assert!(timer_set(&fx, MacTimer::Difs).is_some(), "{fx:?}");
        let (now, fx) = drive_to_tx(&mut m, t(0), fx);
        assert!(has_start_tx(&fx, FrameKind::Data));
        // Broadcast: no ACK timer; TxDone on tx end.
        let fx = m.on_tx_end(now + SimDuration::from_micros(500));
        assert!(fx
            .iter()
            .any(|e| matches!(e, MacEffect::TxDone { dst: None })));
        assert_eq!(m.counters.tx_broadcast, 1);
    }

    #[test]
    fn small_unicast_skips_rts() {
        let mut m = mac();
        let fx = m.enqueue(1, Some(2), 100, true, t(0));
        let (_, fx) = drive_to_tx(&mut m, t(0), fx);
        assert!(has_start_tx(&fx, FrameKind::Data), "{fx:?}");
        assert!(!has_start_tx(&fx, FrameKind::Rts));
    }

    #[test]
    fn large_unicast_uses_rts_cts() {
        let mut m = mac();
        let fx = m.enqueue(1, Some(2), 512, false, t(0));
        let (now, fx) = drive_to_tx(&mut m, t(0), fx);
        assert!(has_start_tx(&fx, FrameKind::Rts), "{fx:?}");
        // RTS done → CTS timer armed.
        let fx = m.on_tx_end(now);
        assert!(timer_set(&fx, MacTimer::Cts).is_some());
        // CTS arrives → SIFS then data.
        let cts = Frame {
            kind: FrameKind::Cts,
            src: 2,
            dst: Some(0),
            bytes: CTS_BYTES,
            nav: SimDuration::from_micros(3000),
            payload: None,
            seq: 0,
        };
        let fx = m.on_rx_frame(cts, now);
        assert!(timer_set(&fx, MacTimer::TxSifs).is_some());
        let fx = m.on_timer(MacTimer::TxSifs, now + SimDuration::from_micros(10));
        assert!(has_start_tx(&fx, FrameKind::Data));
        // Data done → ACK timer; ACK arrives → TxDone.
        let fx = m.on_tx_end(now + SimDuration::from_micros(3000));
        assert!(timer_set(&fx, MacTimer::Ack).is_some());
        let ack = Frame {
            kind: FrameKind::Ack,
            src: 2,
            dst: Some(0),
            bytes: ACK_BYTES,
            nav: SimDuration::ZERO,
            payload: None,
            seq: 0,
        };
        let fx = m.on_rx_frame(ack, now + SimDuration::from_micros(3300));
        assert!(fx
            .iter()
            .any(|e| matches!(e, MacEffect::TxDone { dst: Some(2) })));
    }

    #[test]
    fn retry_limit_reports_link_failure() {
        let mut m = mac();
        let fx = m.enqueue(42, Some(3), 100, true, t(0));
        let (mut now, mut fx) = drive_to_tx(&mut m, t(0), fx);
        let mut failures = 0;
        for _ in 0..40 {
            assert!(has_start_tx(&fx, FrameKind::Data));
            now += SimDuration::from_micros(800);
            fx = m.on_tx_end(now);
            let Some(d) = timer_set(&fx, MacTimer::Ack) else {
                panic!("no ack timer")
            };
            now += d;
            fx = m.on_timer(MacTimer::Ack, now);
            if let Some(MacEffect::TxFailed { dst, payload }) =
                fx.iter().find(|e| matches!(e, MacEffect::TxFailed { .. }))
            {
                assert_eq!(*dst, 3);
                assert_eq!(*payload, 42);
                failures += 1;
                break;
            }
            let r = drive_to_tx(&mut m, now, fx);
            now = r.0;
            fx = r.1;
        }
        assert_eq!(failures, 1);
        assert_eq!(m.counters.drop_retry, 1);
        // 7 retries + original attempt = 8 data transmissions.
        assert_eq!(m.counters.tx_data, 8);
    }

    #[test]
    fn retry_failure_purges_queue_to_dead_neighbor() {
        let mut m = mac();
        let fx0 = m.enqueue(1, Some(3), 100, true, t(0));
        // Two more frames to the same neighbor and one to another.
        let _ = m.enqueue(2, Some(3), 100, true, t(0));
        let _ = m.enqueue(3, Some(4), 100, true, t(0));
        let _ = m.enqueue(4, Some(3), 100, true, t(0));
        let (mut now, mut fx) = drive_to_tx(&mut m, t(0), fx0);
        let mut failed_payloads = Vec::new();
        for _ in 0..40 {
            now += SimDuration::from_micros(800);
            if has_start_tx(&fx, FrameKind::Data) {
                fx = m.on_tx_end(now);
            }
            if let Some(d) = timer_set(&fx, MacTimer::Ack) {
                now += d;
                fx = m.on_timer(MacTimer::Ack, now);
            }
            for e in &fx {
                if let MacEffect::TxFailed { dst, payload } = e {
                    assert_eq!(*dst, 3);
                    failed_payloads.push(*payload);
                }
            }
            if !failed_payloads.is_empty() {
                break;
            }
            let r = drive_to_tx(&mut m, now, fx);
            now = r.0;
            fx = r.1;
        }
        // The failing frame AND both queued frames to node 3 fail together;
        // the frame to node 4 survives in the queue.
        assert_eq!(failed_payloads, vec![1, 2, 4]);
        assert_eq!(m.counters.drop_retry, 3);
        assert_eq!(m.queue_len(), 1);
    }

    #[test]
    fn ifq_overflow_drops() {
        let mut m = mac();
        let mut dropped = 0;
        for i in 0..60 {
            let fx = m.enqueue(i, Some(1), 512, false, t(0));
            dropped += fx
                .iter()
                .filter(|e| {
                    matches!(
                        e,
                        MacEffect::Dropped {
                            reason: DropReason::IfqOverflow,
                            ..
                        }
                    )
                })
                .count();
        }
        assert_eq!(dropped, 10, "50-frame queue: 60 offered, 10 dropped");
        assert_eq!(m.counters.drop_ifq, 10);
    }

    #[test]
    fn backoff_freezes_and_resumes() {
        let mut m = mac();
        let fx = m.enqueue(1, None, 48, true, t(0));
        let d = timer_set(&fx, MacTimer::Difs).unwrap();
        let fx = m.on_timer(MacTimer::Difs, t(0) + d);
        // If backoff drew zero slots the frame is already out; re-seed until
        // we get a backoff (seed 7 draws > 0 for the first frame; assert so).
        let Some(bd) = timer_set(&fx, MacTimer::Backoff) else {
            panic!("expected non-zero backoff with this seed");
        };
        let slots = bd.as_nanos() / MacConfig::default().slot.as_nanos();
        assert!(slots >= 1);
        // Busy arrives mid-backoff: freeze after 2 slots.
        let freeze_at = t(0) + d + MacConfig::default().slot.saturating_mul(2);
        let fx = m.on_channel_busy(freeze_at);
        assert!(fx
            .iter()
            .any(|e| matches!(e, MacEffect::CancelTimer(MacTimer::Backoff))));
        // Idle again: DIFS restarts, then the *remaining* slots count down.
        let fx = m.on_channel_idle(freeze_at + SimDuration::from_micros(300));
        let d2 = timer_set(&fx, MacTimer::Difs).unwrap();
        let fx = m.on_timer(
            MacTimer::Difs,
            freeze_at + SimDuration::from_micros(300) + d2,
        );
        if let Some(bd2) = timer_set(&fx, MacTimer::Backoff) {
            let slots2 = bd2.as_nanos() / MacConfig::default().slot.as_nanos();
            assert!(
                slots2 <= slots.saturating_sub(2),
                "slots must shrink: {slots} → {slots2}"
            );
        } else {
            // All slots consumed → direct transmission is also valid.
            assert!(has_start_tx(&fx, FrameKind::Data));
        }
    }

    #[test]
    fn nav_defers_access() {
        let mut m = mac();
        // Overhear a frame reserving the medium for 5 ms.
        let overheard = Frame {
            kind: FrameKind::Rts,
            src: 5,
            dst: Some(6),
            bytes: RTS_BYTES,
            nav: SimDuration::from_millis(5),
            payload: None,
            seq: 0,
        };
        let _ = m.on_rx_frame(overheard, t(100));
        let fx = m.enqueue(1, None, 48, true, t(101));
        // Medium virtually busy: no DIFS; NAV wake-up armed instead.
        assert!(timer_set(&fx, MacTimer::Difs).is_none(), "{fx:?}");
        assert!(timer_set(&fx, MacTimer::NavEnd).is_some());
        // After NAV expiry the access resumes.
        let fx = m.on_timer(MacTimer::NavEnd, t(100) + SimDuration::from_millis(5));
        assert!(timer_set(&fx, MacTimer::Difs).is_some());
    }

    #[test]
    fn unicast_data_is_acked_and_delivered_once() {
        let mut m = mac();
        let data = Frame {
            kind: FrameKind::Data,
            src: 4,
            dst: Some(0),
            bytes: 546,
            nav: SimDuration::ZERO,
            payload: Some(99),
            seq: 11,
        };
        let fx = m.on_rx_frame(data.clone(), t(10));
        assert!(fx.iter().any(|e| matches!(
            e,
            MacEffect::Deliver {
                from: 4,
                payload: 99
            }
        )));
        assert!(timer_set(&fx, MacTimer::RespSifs).is_some());
        let fx = m.on_timer(MacTimer::RespSifs, t(20));
        assert!(has_start_tx(&fx, FrameKind::Ack));
        let _ = m.on_tx_end(t(300));
        // The retransmission (same seq) is acked but not re-delivered.
        let fx = m.on_rx_frame(data, t(1000));
        assert!(!fx.iter().any(|e| matches!(e, MacEffect::Deliver { .. })));
        assert_eq!(m.counters.rx_duplicates, 1);
        assert_eq!(m.counters.rx_delivered, 1);
    }

    #[test]
    fn rts_triggers_cts_response() {
        let mut m = mac();
        let rts = Frame {
            kind: FrameKind::Rts,
            src: 2,
            dst: Some(0),
            bytes: RTS_BYTES,
            nav: SimDuration::from_millis(3),
            payload: None,
            seq: 0,
        };
        let fx = m.on_rx_frame(rts, t(50));
        assert!(timer_set(&fx, MacTimer::RespSifs).is_some());
        let fx = m.on_timer(MacTimer::RespSifs, t(60));
        assert!(has_start_tx(&fx, FrameKind::Cts));
        assert_eq!(m.counters.tx_cts, 1);
    }

    #[test]
    fn control_priority_preempts_data_queue() {
        let mut m = mac();
        // Fill with a low-priority frame first, then a control frame.
        let _ = m.enqueue(1, Some(9), 512, false, t(0));
        let _ = m.enqueue(2, Some(9), 48, true, t(0));
        // First staged frame is the data frame (already current)...
        // Complete it via retry-failure to see what comes next.
        let (mut now, mut fx) = drive_to_tx(&mut m, t(0), vec![]);
        // It must be the 512 B one (payload 1) — already staged before the
        // control packet arrived. Fail it quickly.
        for _ in 0..20 {
            if m.current.is_none() {
                break;
            }
            if has_start_tx(&fx, FrameKind::Rts) || has_start_tx(&fx, FrameKind::Data) {
                now += SimDuration::from_micros(800);
                fx = m.on_tx_end(now);
            }
            if let Some(d) = timer_set(&fx, MacTimer::Cts) {
                now += d;
                fx = m.on_timer(MacTimer::Cts, now);
            } else if let Some(d) = timer_set(&fx, MacTimer::Ack) {
                now += d;
                fx = m.on_timer(MacTimer::Ack, now);
            } else {
                let r = drive_to_tx(&mut m, now, fx);
                now = r.0;
                fx = r.1;
            }
        }
        // After the first frame fails, the control frame (payload 2) is
        // staged next: it was queued in the priority queue.
        assert!(m.current.is_some() || m.queue_len() > 0);
    }
}
