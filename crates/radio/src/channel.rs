//! The shared wireless medium.
//!
//! The channel tracks every in-flight transmission as a set of per-receiver
//! *signals*. A signal is receivable when the receiver is inside reception
//! range; audible (occupying the medium) inside carrier-sense range. A
//! frame is delivered at its end time iff the receiver never transmitted
//! during it and it *captured* over every overlapping signal (power ratio
//! ≥ `capture_ratio` under the d⁻⁴ law). Everything else is a collision.
//!
//! The channel is a passive state machine: the harness calls
//! [`Channel::begin_tx`] when a MAC starts transmitting, schedules the
//! returned end events on its simulator, and calls [`Channel::finish_rx`] /
//! [`Channel::finish_tx`] when they fire.

use std::collections::HashMap;

use slr_netsim::time::{SimDuration, SimTime};

use crate::frame::Frame;
use crate::medium::NeighborQuery;
use crate::phy::PhyConfig;

/// Identifier for one transmission on the channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TxId(u64);

/// One signal as perceived by one receiver.
#[derive(Debug, Clone)]
struct Signal {
    tx: TxId,
    power: f64,
    receivable: bool,
    corrupted: bool,
}

/// Result of starting a transmission.
#[derive(Debug, Clone)]
pub struct BeginTx {
    /// The transmission's id, to be echoed in end events.
    pub tx_id: TxId,
    /// Time the frame occupies the air.
    pub airtime: SimDuration,
    /// Receivers that perceive the signal; `true` marks nodes whose medium
    /// just transitioned idle → busy (their MACs need a busy notification).
    pub receivers: Vec<(usize, bool)>,
}

/// Result of a signal ending at one receiver.
#[derive(Debug, Clone)]
pub struct FinishRx<P> {
    /// The frame, present iff it was successfully received.
    pub frame: Option<Frame<P>>,
    /// Whether the receiver's medium just transitioned busy → idle.
    pub became_idle: bool,
    /// Whether the signal was receivable but corrupted (collision).
    pub collided: bool,
}

/// Aggregate channel statistics for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Transmissions started.
    pub transmissions: u64,
    /// Frames delivered intact (per receiver).
    pub delivered: u64,
    /// Receivable frames lost to collisions or half-duplex conflicts.
    pub collisions: u64,
}

/// The shared medium for a set of nodes.
pub struct Channel<P> {
    phy: PhyConfig,
    next_tx: u64,
    /// In-flight transmissions: id → (frame, start, end).
    in_flight: HashMap<u64, InFlight<P>>,
    /// Per-receiver active signal lists.
    signals: Vec<Vec<Signal>>,
    /// Per-node end time of its own current transmission (`SimTime::ZERO`
    /// when idle). Used for half-duplex corruption.
    tx_until: Vec<SimTime>,
    /// Reusable neighbor-query buffer (no per-transmission allocation).
    neighbor_scratch: Vec<(usize, f64)>,
    /// Statistics.
    pub stats: ChannelStats,
}

struct InFlight<P> {
    frame: Frame<P>,
    refs: usize,
}

impl<P: Clone> Channel<P> {
    /// Creates a channel for `n` nodes.
    pub fn new(n: usize, phy: PhyConfig) -> Self {
        Channel {
            phy,
            next_tx: 0,
            in_flight: HashMap::new(),
            signals: vec![Vec::new(); n],
            tx_until: vec![SimTime::ZERO; n],
            neighbor_scratch: Vec::new(),
            stats: ChannelStats::default(),
        }
    }

    /// The PHY configuration in use.
    pub fn phy(&self) -> &PhyConfig {
        &self.phy
    }

    /// Whether `node`'s medium is physically busy (any audible signal).
    pub fn is_busy(&self, node: usize) -> bool {
        !self.signals[node].is_empty()
    }

    /// Starts a transmission by `frame.src` at `now`; `medium` answers
    /// exact node positions at `now` and the carrier-sense-range neighbor
    /// set ([`BruteForceMedium`](crate::medium::BruteForceMedium) over a
    /// position slice is the reference implementation). The caller must
    /// schedule:
    ///
    /// * `finish_rx(node, tx_id)` at `now + airtime` for every returned
    ///   receiver, and
    /// * `finish_tx(tx_id)` at `now + airtime` (after the rx events).
    pub fn begin_tx(
        &mut self,
        frame: Frame<P>,
        now: SimTime,
        medium: &dyn NeighborQuery,
    ) -> BeginTx {
        self.begin_tx_gated(frame, now, medium, &|_, _| true)
    }

    /// Like [`Channel::begin_tx`], but consults an admittance `gate` per
    /// `(src, receiver)` pair: a gated receiver does not perceive the
    /// signal at all — no reception, no carrier sense — as if an RF
    /// barrier stood on the link. Network-dynamics layers (link churn,
    /// partitions, node crashes) plug in here; a unicast frame whose
    /// destination is gated is lost in the air, so the transmitter's MAC
    /// exhausts its retries and reports a link failure to the routing
    /// layer exactly as with a physical range break.
    pub fn begin_tx_gated(
        &mut self,
        frame: Frame<P>,
        now: SimTime,
        medium: &dyn NeighborQuery,
        gate: &dyn Fn(usize, usize) -> bool,
    ) -> BeginTx {
        let src = frame.src;
        let airtime = self.phy.airtime(frame.bytes);
        let id = TxId(self.next_tx);
        self.next_tx += 1;
        self.stats.transmissions += 1;

        let end = now + airtime;
        self.tx_until[src] = end;

        // The transmitter's own in-flight receptions are corrupted
        // (half-duplex).
        for s in &mut self.signals[src] {
            s.corrupted = true;
        }

        let mut audible = std::mem::take(&mut self.neighbor_scratch);
        audible.clear();
        medium.neighbors_within(src, self.phy.cs_range_m, &mut audible);
        let mut receivers = Vec::new();
        for &(v, d) in &audible {
            if !gate(src, v) {
                continue;
            }
            let power = self.phy.rx_power(d);
            let mut new_sig = Signal {
                tx: id,
                power,
                receivable: self.phy.receivable(d),
                corrupted: self.tx_until[v] > now,
            };
            // Pairwise capture against overlapping signals.
            for old in &mut self.signals[v] {
                if !self.phy.captures(old.power, new_sig.power) {
                    old.corrupted = true;
                }
                if !self.phy.captures(new_sig.power, old.power) {
                    new_sig.corrupted = true;
                }
            }
            let was_idle = self.signals[v].is_empty();
            self.signals[v].push(new_sig);
            receivers.push((v, was_idle));
        }
        self.neighbor_scratch = audible;

        self.in_flight.insert(
            id.0,
            InFlight {
                frame,
                refs: receivers.len() + 1,
            },
        );
        BeginTx {
            tx_id: id,
            airtime,
            receivers,
        }
    }

    /// Completes the signal of transmission `tx_id` at `node`.
    pub fn finish_rx(&mut self, node: usize, tx_id: TxId, now: SimTime) -> FinishRx<P> {
        let idx = self.signals[node]
            .iter()
            .position(|s| s.tx == tx_id)
            .expect("finish_rx for unknown signal");
        let sig = self.signals[node].remove(idx);
        let became_idle = self.signals[node].is_empty();

        // A node still transmitting at the signal's end cannot have
        // received it (its own tx overlapped the tail).
        let half_duplex = self.tx_until[node] > now;
        let ok = sig.receivable && !sig.corrupted && !half_duplex;
        let collided = sig.receivable && !ok;

        let frame = if ok {
            self.stats.delivered += 1;
            Some(self.frame_of(tx_id))
        } else {
            if collided {
                self.stats.collisions += 1;
            }
            None
        };
        self.release(tx_id);
        FinishRx {
            frame,
            became_idle,
            collided,
        }
    }

    /// Completes the transmitter side of `tx_id`.
    pub fn finish_tx(&mut self, tx_id: TxId) {
        self.release(tx_id);
    }

    fn frame_of(&self, tx_id: TxId) -> Frame<P> {
        self.in_flight
            .get(&tx_id.0)
            .expect("frame for in-flight tx")
            .frame
            .clone()
    }

    fn release(&mut self, tx_id: TxId) {
        let remove = {
            let entry = self
                .in_flight
                .get_mut(&tx_id.0)
                .expect("release of unknown tx");
            entry.refs -= 1;
            entry.refs == 0
        };
        if remove {
            self.in_flight.remove(&tx_id.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{Frame, FrameKind};
    use crate::medium::BruteForceMedium;
    use slr_mobility::Position;

    fn frame(src: usize, dst: Option<usize>) -> Frame<u32> {
        Frame {
            kind: FrameKind::Data,
            src,
            dst,
            bytes: 100,
            nav: SimDuration::ZERO,
            payload: Some(9),
            seq: 0,
        }
    }

    fn positions(coords: &[(f64, f64)]) -> Vec<Position> {
        coords.iter().map(|&(x, y)| Position::new(x, y)).collect()
    }

    #[test]
    fn clean_delivery_within_range() {
        let pos = positions(&[(0.0, 0.0), (100.0, 0.0), (2000.0, 0.0)]);
        let mut ch: Channel<u32> = Channel::new(3, PhyConfig::default());
        let t0 = SimTime::ZERO;
        let b = ch.begin_tx(frame(0, Some(1)), t0, &BruteForceMedium(&pos));
        // Node 1 in range, node 2 far outside carrier sense.
        assert_eq!(b.receivers, vec![(1, true)]);
        assert!(ch.is_busy(1));
        let end = t0 + b.airtime;
        let r = ch.finish_rx(1, b.tx_id, end);
        assert!(r.frame.is_some());
        assert!(r.became_idle);
        assert!(!r.collided);
        ch.finish_tx(b.tx_id);
        assert_eq!(ch.stats.delivered, 1);
        assert_eq!(ch.stats.collisions, 0);
    }

    #[test]
    fn gated_receiver_perceives_nothing() {
        // Node 1 is well inside range but the admittance gate blocks the
        // 0→1 link: no signal, no carrier sense, no collision accounting.
        let pos = positions(&[(0.0, 0.0), (100.0, 0.0), (150.0, 0.0)]);
        let mut ch: Channel<u32> = Channel::new(3, PhyConfig::default());
        let b = ch.begin_tx_gated(
            frame(0, Some(1)),
            SimTime::ZERO,
            &BruteForceMedium(&pos),
            &|s, v| !(s == 0 && v == 1),
        );
        assert_eq!(b.receivers, vec![(2, true)], "gated node 1 must not appear");
        assert!(
            !ch.is_busy(1),
            "gated signal must not occupy node 1's medium"
        );
        let r = ch.finish_rx(2, b.tx_id, SimTime::ZERO + b.airtime);
        assert!(r.frame.is_some());
        ch.finish_tx(b.tx_id);
        assert_eq!(ch.stats.delivered, 1);
        assert_eq!(ch.stats.collisions, 0);
    }

    #[test]
    fn audible_but_not_receivable() {
        // 400 m: inside carrier sense (550) but outside reception (250).
        let pos = positions(&[(0.0, 0.0), (400.0, 0.0)]);
        let mut ch: Channel<u32> = Channel::new(2, PhyConfig::default());
        let b = ch.begin_tx(frame(0, Some(1)), SimTime::ZERO, &BruteForceMedium(&pos));
        assert_eq!(b.receivers.len(), 1);
        assert!(ch.is_busy(1));
        let r = ch.finish_rx(1, b.tx_id, SimTime::ZERO + b.airtime);
        assert!(r.frame.is_none());
        assert!(!r.collided, "sub-threshold signal is not a collision");
        ch.finish_tx(b.tx_id);
    }

    #[test]
    fn overlapping_equal_power_collides() {
        // Nodes 0 and 2 both 100 m from node 1, transmit simultaneously.
        let pos = positions(&[(0.0, 0.0), (100.0, 0.0), (200.0, 0.0)]);
        let mut ch: Channel<u32> = Channel::new(3, PhyConfig::default());
        let a = ch.begin_tx(frame(0, Some(1)), SimTime::ZERO, &BruteForceMedium(&pos));
        let b = ch.begin_tx(frame(2, Some(1)), SimTime::ZERO, &BruteForceMedium(&pos));
        let end = SimTime::ZERO + a.airtime;
        let ra = ch.finish_rx(1, a.tx_id, end);
        let rb = ch.finish_rx(1, b.tx_id, end);
        assert!(ra.frame.is_none() && rb.frame.is_none());
        assert!(ra.collided && rb.collided);
        assert_eq!(ch.stats.collisions, 2);
        ch.finish_tx(a.tx_id);
        ch.finish_tx(b.tx_id);
    }

    #[test]
    fn capture_lets_strong_frame_through() {
        // Node 1 hears node 0 at 50 m and node 2 at 200 m: power ratio
        // (200/50)^4 = 256 ≥ 10 → node 0's frame captures.
        let pos = positions(&[(0.0, 0.0), (50.0, 0.0), (250.0, 0.0)]);
        let mut ch: Channel<u32> = Channel::new(3, PhyConfig::default());
        let a = ch.begin_tx(frame(0, Some(1)), SimTime::ZERO, &BruteForceMedium(&pos));
        let b = ch.begin_tx(frame(2, Some(1)), SimTime::ZERO, &BruteForceMedium(&pos));
        let end = SimTime::ZERO + a.airtime;
        let ra = ch.finish_rx(1, a.tx_id, end);
        let rb = ch.finish_rx(1, b.tx_id, end);
        assert!(ra.frame.is_some(), "strong frame should capture");
        assert!(rb.frame.is_none(), "weak frame is lost");
        ch.finish_tx(a.tx_id);
        ch.finish_tx(b.tx_id);
    }

    #[test]
    fn half_duplex_blocks_reception() {
        let pos = positions(&[(0.0, 0.0), (100.0, 0.0)]);
        let mut ch: Channel<u32> = Channel::new(2, PhyConfig::default());
        // Node 1 starts transmitting first.
        let own = ch.begin_tx(frame(1, None), SimTime::ZERO, &BruteForceMedium(&pos));
        // Node 0 transmits to node 1 while node 1 is busy sending.
        let a = ch.begin_tx(frame(0, Some(1)), SimTime::ZERO, &BruteForceMedium(&pos));
        let end = SimTime::ZERO + a.airtime;
        let r = ch.finish_rx(1, a.tx_id, end);
        assert!(r.frame.is_none(), "transmitting node cannot receive");
        // Drain remaining bookkeeping.
        let r0 = ch.finish_rx(0, own.tx_id, SimTime::ZERO + own.airtime);
        assert!(r0.frame.is_none(), "0 was transmitting too");
        ch.finish_tx(own.tx_id);
        ch.finish_tx(a.tx_id);
    }

    #[test]
    fn busy_transitions_are_reported() {
        let pos = positions(&[(0.0, 0.0), (100.0, 0.0), (150.0, 0.0)]);
        let mut ch: Channel<u32> = Channel::new(3, PhyConfig::default());
        let a = ch.begin_tx(frame(0, None), SimTime::ZERO, &BruteForceMedium(&pos));
        // Both 1 and 2 become busy.
        assert_eq!(a.receivers, vec![(1, true), (2, true)]);
        // A second overlapping tx does not re-report busy.
        let b = ch.begin_tx(frame(1, None), SimTime::ZERO, &BruteForceMedium(&pos));
        let two: Vec<usize> = b.receivers.iter().map(|&(v, _)| v).collect();
        assert_eq!(two, vec![0, 2]);
        assert!(b.receivers.iter().all(|&(v, fresh)| v == 0 || !fresh));
        // End of first signal at node 2: still busy with second.
        let end = SimTime::ZERO + a.airtime;
        let r = ch.finish_rx(2, a.tx_id, end);
        assert!(!r.became_idle);
        let r2 = ch.finish_rx(2, b.tx_id, SimTime::ZERO + b.airtime);
        assert!(r2.became_idle);
        // Cleanup others.
        ch.finish_rx(1, a.tx_id, end);
        ch.finish_rx(0, b.tx_id, SimTime::ZERO + b.airtime);
        ch.finish_tx(a.tx_id);
        ch.finish_tx(b.tx_id);
    }
}
