//! The shared wireless medium.
//!
//! The channel tracks every in-flight transmission as a set of per-receiver
//! *signals*. A signal is receivable when the receiver is inside reception
//! range; audible (occupying the medium) inside carrier-sense range. A
//! frame is delivered at its end time iff the receiver never transmitted
//! during it and it *captured* over every overlapping signal (power ratio
//! ≥ `capture_ratio` under the d⁻⁴ law). Everything else is a collision.
//!
//! The channel is a passive state machine: the harness calls
//! [`Channel::begin_tx`] when a MAC starts transmitting, schedules the
//! returned end event(s) on its simulator, and calls [`Channel::finish_rx`]
//! / [`Channel::finish_tx`] when they fire.
//!
//! The channel retains each transmission's ordered receiver set (ascending
//! node index, the order the harness must complete them in) together with
//! the in-flight frame, so a harness can schedule **one** end event per
//! transmission and walk [`Channel::tx_receivers`] at fire time instead of
//! scheduling a heap event per receiver. Receiver vectors are recycled
//! through an internal pool — steady-state transmissions allocate nothing.

use std::collections::VecDeque;

use slr_netsim::time::{SimDuration, SimTime};

use crate::frame::Frame;
use crate::medium::NeighborQuery;
use crate::phy::PhyConfig;

/// Identifier for one transmission on the channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TxId(u64);

/// One signal as perceived by one receiver.
#[derive(Debug, Clone, Copy)]
struct Signal {
    tx: TxId,
    power: f64,
    receivable: bool,
    corrupted: bool,
}

const NO_SIGNAL: Signal = Signal {
    tx: TxId(u64::MAX),
    power: 0.0,
    receivable: false,
    corrupted: false,
};

/// Signals held inline per node before spilling to the heap. Dense trials
/// average ~3 concurrent audible signals per node; 3 inline entries plus
/// the node's `tx_until` keep the common case in two cache lines, where
/// the old `Vec<Vec<Signal>>` layout paid a second dependent miss on
/// every touch (~100 node-state touches per transmission).
const INLINE_SIGNALS: usize = 3;

/// Per-node radio state: everything `begin_tx` and `finish_rx` touch for
/// one node, laid out together.
#[derive(Debug, Clone)]
struct NodeState {
    /// End time of the node's own current transmission (`SimTime::ZERO`
    /// when idle); used for half-duplex corruption.
    tx_until: SimTime,
    /// Number of active signals at this node.
    len: u32,
    /// First [`INLINE_SIGNALS`] signals.
    inline: [Signal; INLINE_SIGNALS],
    /// Overflow beyond the inline capacity (rarely touched).
    spill: Vec<Signal>,
}

impl NodeState {
    fn new() -> Self {
        NodeState {
            tx_until: SimTime::ZERO,
            len: 0,
            inline: [NO_SIGNAL; INLINE_SIGNALS],
            spill: Vec::new(),
        }
    }

    fn is_busy(&self) -> bool {
        self.len > 0
    }

    fn signal(&self, i: usize) -> &Signal {
        if i < INLINE_SIGNALS {
            &self.inline[i]
        } else {
            &self.spill[i - INLINE_SIGNALS]
        }
    }

    fn signal_mut(&mut self, i: usize) -> &mut Signal {
        if i < INLINE_SIGNALS {
            &mut self.inline[i]
        } else {
            &mut self.spill[i - INLINE_SIGNALS]
        }
    }

    fn push(&mut self, s: Signal) {
        let i = self.len as usize;
        if i < INLINE_SIGNALS {
            self.inline[i] = s;
        } else {
            self.spill.push(s);
        }
        self.len += 1;
    }

    /// Removes the signal at `i` by swapping the last one in (order in
    /// the signal set carries no meaning: capture checks are pairwise and
    /// commutative, lookups are by unique tx id).
    fn swap_remove(&mut self, i: usize) -> Signal {
        let last = self.len as usize - 1;
        let out = *self.signal(i);
        if i != last {
            *self.signal_mut(i) = *self.signal(last);
        }
        if last >= INLINE_SIGNALS {
            self.spill.pop();
        }
        self.len -= 1;
        out
    }

    fn position_of(&self, tx: TxId) -> Option<usize> {
        (0..self.len as usize).find(|&i| self.signal(i).tx == tx)
    }
}

/// One entry of a transmission's retained receiver set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Receiver {
    /// The perceiving node.
    pub node: u32,
    /// Whether this node's medium transitioned idle → busy when the
    /// transmission started (its MAC needs a busy notification).
    pub fresh_busy: bool,
}

/// Result of starting a transmission. The receiver set itself stays with
/// the channel — read it via [`Channel::tx_receivers`].
#[derive(Debug, Clone, Copy)]
pub struct BeginTx {
    /// The transmission's id, to be echoed in end events.
    pub tx_id: TxId,
    /// Time the frame occupies the air.
    pub airtime: SimDuration,
    /// Number of nodes perceiving the signal.
    pub receiver_count: usize,
    /// Number of perceiving nodes whose medium transitioned idle → busy
    /// (zero lets the harness skip the busy fan-out entirely).
    pub fresh_busy: usize,
}

/// Result of a signal ending at one receiver.
#[derive(Debug, Clone)]
pub struct FinishRx<P> {
    /// The frame, present iff it was successfully received.
    pub frame: Option<Frame<P>>,
    /// Whether the receiver's medium just transitioned busy → idle.
    pub became_idle: bool,
    /// Whether the signal was receivable but corrupted (collision).
    pub collided: bool,
}

/// Aggregate channel statistics for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Transmissions started.
    pub transmissions: u64,
    /// Frames delivered intact (per receiver).
    pub delivered: u64,
    /// Receivable frames lost to collisions or half-duplex conflicts.
    pub collisions: u64,
}

/// The shared medium for a set of nodes.
pub struct Channel<P> {
    phy: PhyConfig,
    next_tx: u64,
    /// In-flight transmissions, indexed by `tx_id - in_flight_base`.
    /// Transmission ids are monotone and live for one airtime, so the
    /// window stays short; a ring of `Option`s replaces the old hash map
    /// (one hash per release was measurable at dense scale).
    in_flight: VecDeque<Option<InFlight<P>>>,
    /// Transmission id of `in_flight[0]`.
    in_flight_base: u64,
    /// Per-node radio state (active signals + own-transmission end).
    nodes: Vec<NodeState>,
    /// Reusable neighbor-query buffer (no per-transmission allocation).
    neighbor_scratch: Vec<(usize, f64)>,
    /// Recycled receiver vectors (no per-transmission allocation).
    receiver_pool: Vec<Vec<Receiver>>,
    /// Statistics.
    pub stats: ChannelStats,
}

struct InFlight<P> {
    frame: Frame<P>,
    refs: usize,
    /// The perceiving nodes in ascending index order — the order their
    /// signals must be completed in.
    receivers: Vec<Receiver>,
}

impl<P: Clone> Channel<P> {
    /// Creates a channel for `n` nodes.
    pub fn new(n: usize, phy: PhyConfig) -> Self {
        Channel {
            phy,
            next_tx: 0,
            in_flight: VecDeque::new(),
            in_flight_base: 0,
            nodes: vec![NodeState::new(); n],
            neighbor_scratch: Vec::new(),
            receiver_pool: Vec::new(),
            stats: ChannelStats::default(),
        }
    }

    /// The PHY configuration in use.
    pub fn phy(&self) -> &PhyConfig {
        &self.phy
    }

    /// Live heap bytes of the channel's per-node radio state, in-flight
    /// window, and recycled scratch.
    pub fn mem_bytes(&self) -> usize {
        let rx = std::mem::size_of::<Receiver>();
        self.in_flight.capacity() * std::mem::size_of::<Option<InFlight<P>>>()
            + self
                .in_flight
                .iter()
                .flatten()
                .map(|f| f.receivers.capacity() * rx)
                .sum::<usize>()
            + self.nodes.capacity() * std::mem::size_of::<NodeState>()
            + self
                .nodes
                .iter()
                .map(|n| n.spill.capacity() * std::mem::size_of::<Signal>())
                .sum::<usize>()
            + self.neighbor_scratch.capacity() * std::mem::size_of::<(usize, f64)>()
            + self
                .receiver_pool
                .iter()
                .map(|v| v.capacity() * rx)
                .sum::<usize>()
    }

    /// Whether `node`'s medium is physically busy (any audible signal).
    pub fn is_busy(&self, node: usize) -> bool {
        self.nodes[node].is_busy()
    }

    /// Starts a transmission by `frame.src` at `now`; `medium` answers
    /// exact node positions at `now` and the carrier-sense-range neighbor
    /// set ([`BruteForceMedium`](crate::medium::BruteForceMedium) over a
    /// position slice is the reference implementation). The caller must
    /// either schedule one batched completion event and walk
    /// [`Channel::tx_receivers`] when it fires, or schedule
    /// `finish_rx(node, tx_id)` at `now + airtime` per receiver plus
    /// `finish_tx(tx_id)` after them; in both cases receivers complete in
    /// ascending node order, then the transmitter.
    pub fn begin_tx(
        &mut self,
        frame: Frame<P>,
        now: SimTime,
        medium: &dyn NeighborQuery,
    ) -> BeginTx {
        // The trivial gate monomorphizes away — scenarios without a
        // dynamics layer pay nothing per receiver.
        self.begin_tx_gated(frame, now, medium, |_, _| true)
    }

    /// Like [`Channel::begin_tx`], but consults an admittance `gate` per
    /// `(src, receiver)` pair: a gated receiver does not perceive the
    /// signal at all — no reception, no carrier sense — as if an RF
    /// barrier stood on the link. Network-dynamics layers (link churn,
    /// partitions, node crashes) plug in here; a unicast frame whose
    /// destination is gated is lost in the air, so the transmitter's MAC
    /// exhausts its retries and reports a link failure to the routing
    /// layer exactly as with a physical range break.
    pub fn begin_tx_gated(
        &mut self,
        frame: Frame<P>,
        now: SimTime,
        medium: &dyn NeighborQuery,
        gate: impl Fn(usize, usize) -> bool,
    ) -> BeginTx {
        let src = frame.src;
        let airtime = self.phy.airtime(frame.bytes);
        let id = TxId(self.next_tx);
        self.next_tx += 1;
        self.stats.transmissions += 1;

        let end = now + airtime;
        self.nodes[src].tx_until = end;

        // The transmitter's own in-flight receptions are corrupted
        // (half-duplex).
        let tx_node = &mut self.nodes[src];
        for i in 0..tx_node.len as usize {
            tx_node.signal_mut(i).corrupted = true;
        }

        let mut audible = std::mem::take(&mut self.neighbor_scratch);
        audible.clear();
        medium.neighbors_within(src, self.phy.cs_range_m, &mut audible);
        let mut receivers = self.receiver_pool.pop().unwrap_or_default();
        debug_assert!(receivers.is_empty());
        let mut fresh_busy = 0usize;
        for &(v, d) in &audible {
            if !gate(src, v) {
                continue;
            }
            let node = &mut self.nodes[v];
            let power = self.phy.rx_power(d);
            let mut new_sig = Signal {
                tx: id,
                power,
                receivable: self.phy.receivable(d),
                corrupted: node.tx_until > now,
            };
            // Pairwise capture against overlapping signals.
            for i in 0..node.len as usize {
                let old = node.signal_mut(i);
                if !self.phy.captures(old.power, new_sig.power) {
                    old.corrupted = true;
                }
                if !self.phy.captures(new_sig.power, old.power) {
                    new_sig.corrupted = true;
                }
            }
            let was_idle = !node.is_busy();
            node.push(new_sig);
            fresh_busy += usize::from(was_idle);
            receivers.push(Receiver {
                node: v as u32,
                fresh_busy: was_idle,
            });
        }
        self.neighbor_scratch = audible;

        let receiver_count = receivers.len();
        debug_assert_eq!(id.0, self.in_flight_base + self.in_flight.len() as u64);
        self.in_flight.push_back(Some(InFlight {
            frame,
            refs: receiver_count + 1,
            receivers,
        }));
        BeginTx {
            tx_id: id,
            airtime,
            receiver_count,
            fresh_busy,
        }
    }

    /// The retained receiver set of in-flight transmission `tx_id`, in
    /// ascending node order.
    pub fn tx_receivers(&self, tx_id: TxId) -> &[Receiver] {
        &self.entry(tx_id).receivers
    }

    /// Detaches `tx_id`'s receiver set so the harness can walk it while
    /// calling back into the channel ([`Channel::finish_rx`] per entry,
    /// then [`Channel::finish_tx`]). Return it afterwards via
    /// [`Channel::recycle_receivers`] to keep transmissions allocation-free.
    pub fn take_tx_receivers(&mut self, tx_id: TxId) -> Vec<Receiver> {
        let idx = self.index_of(tx_id);
        let entry = self.in_flight[idx]
            .as_mut()
            .expect("receivers of completed tx");
        std::mem::take(&mut entry.receivers)
    }

    /// Returns a receiver vector obtained from
    /// [`Channel::take_tx_receivers`] to the internal pool.
    pub fn recycle_receivers(&mut self, mut receivers: Vec<Receiver>) {
        receivers.clear();
        self.receiver_pool.push(receivers);
    }

    /// Quarantines `node`'s in-flight receptions after a crash: the dead
    /// radio cannot decode them, so their eventual completion must count
    /// neither a delivery nor a collision — a fresh post-rejoin MAC would
    /// otherwise inherit phantom statistics. The signals keep occupying
    /// the node's medium (the RF energy is real and still interferes with
    /// later arrivals); only their receivability is gone.
    pub fn crash_receiver(&mut self, node: usize) {
        let n = &mut self.nodes[node];
        for i in 0..n.len as usize {
            n.signal_mut(i).receivable = false;
        }
    }

    /// Signal completion shared by every engine path; `release` is the
    /// per-receiver refcount bookkeeping the batched walk skips.
    fn finish_rx_inner(&mut self, node: usize, tx_id: TxId, now: SimTime) -> FinishRx<P> {
        let frames = TxFrames {
            in_flight: &self.in_flight,
            base: self.in_flight_base,
        };
        complete_signal(
            &mut self.nodes[node],
            &frames,
            tx_id,
            now,
            &mut self.stats.delivered,
            &mut self.stats.collisions,
        )
    }

    /// Completes the signal of transmission `tx_id` at `node`.
    pub fn finish_rx(&mut self, node: usize, tx_id: TxId, now: SimTime) -> FinishRx<P> {
        let r = self.finish_rx_inner(node, tx_id, now);
        self.release(tx_id);
        r
    }

    /// [`Channel::finish_rx`] for the batched completion walk: the caller
    /// guarantees every receiver of `tx_id` completes in this walk and
    /// ends it with [`Channel::finish_tx_batched`], so the per-receiver
    /// refcount update is skipped (it was measurable: one in-flight-table
    /// touch per receiver per transmission).
    pub fn finish_rx_batched(&mut self, node: usize, tx_id: TxId, now: SimTime) -> FinishRx<P> {
        self.finish_rx_inner(node, tx_id, now)
    }

    /// Ends a batched completion walk: retires `tx_id` outright (the
    /// walk's receivers did not touch the refcount).
    pub fn finish_tx_batched(&mut self, tx_id: TxId) {
        let idx = self.index_of(tx_id);
        // The walk detached the receiver vector already; dropping the
        // leftover empty one frees nothing.
        let _ = self.in_flight[idx].take().expect("in-flight tx");
        while matches!(self.in_flight.front(), Some(None)) {
            self.in_flight.pop_front();
            self.in_flight_base += 1;
        }
    }

    /// Completes the transmitter side of `tx_id`.
    pub fn finish_tx(&mut self, tx_id: TxId) {
        self.release(tx_id);
    }

    /// Splits the per-node radio state into disjoint shards at the given
    /// ascending node `bounds` (`bounds[w]..bounds[w+1]` is shard `w`;
    /// `bounds` must start at 0 and end at the node count), alongside a
    /// shared read-only view of the in-flight frame table. The parallel
    /// event engine hands each worker its shard: signal completions only
    /// ever touch the completing receiver's own [`NodeState`] plus the
    /// (frozen, read-only) in-flight table, so disjoint node ranges
    /// commute. Per-shard `delivered`/`collisions` deltas must be folded
    /// back into [`Channel::stats`] by the caller afterwards.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is not an ascending cover of `0..nodes`.
    pub fn par_views(&mut self, bounds: &[usize]) -> (TxFrames<'_, P>, Vec<ChannelShard<'_>>) {
        assert!(bounds.len() >= 2, "need at least one shard");
        assert_eq!(*bounds.first().unwrap(), 0, "bounds must start at 0");
        assert_eq!(
            *bounds.last().unwrap(),
            self.nodes.len(),
            "bounds must cover every node"
        );
        let frames = TxFrames {
            in_flight: &self.in_flight,
            base: self.in_flight_base,
        };
        let mut shards = Vec::with_capacity(bounds.len() - 1);
        let mut rest: &mut [NodeState] = &mut self.nodes;
        let mut offset = 0usize;
        for w in 0..bounds.len() - 1 {
            let len = bounds[w + 1]
                .checked_sub(bounds[w])
                .expect("bounds must ascend");
            let (head, tail) = rest.split_at_mut(len);
            shards.push(ChannelShard {
                nodes: head,
                offset,
                delivered: 0,
                collisions: 0,
            });
            offset += len;
            rest = tail;
        }
        (frames, shards)
    }

    fn index_of(&self, tx_id: TxId) -> usize {
        debug_assert!(tx_id.0 >= self.in_flight_base, "tx already completed");
        (tx_id.0 - self.in_flight_base) as usize
    }

    fn entry(&self, tx_id: TxId) -> &InFlight<P> {
        self.in_flight[self.index_of(tx_id)]
            .as_ref()
            .expect("in-flight tx")
    }

    fn release(&mut self, tx_id: TxId) {
        let idx = self.index_of(tx_id);
        let entry = self.in_flight[idx].as_mut().expect("release of unknown tx");
        entry.refs -= 1;
        if entry.refs == 0 {
            let done = self.in_flight[idx].take().expect("checked above");
            self.recycle_receivers(done.receivers);
            // Advance the window past completed transmissions.
            while matches!(self.in_flight.front(), Some(None)) {
                self.in_flight.pop_front();
                self.in_flight_base += 1;
            }
        }
    }
}

/// A shared, read-only view of the channel's in-flight frame table,
/// handed to every [`ChannelShard`] of one [`Channel::par_views`] split.
/// Immutable for the lifetime of the split (no transmission can begin
/// inside a conservative dispatch window), so workers may clone frames
/// from it concurrently — which is why harness payloads must be
/// atomically reference-counted under the parallel engine.
pub struct TxFrames<'a, P> {
    in_flight: &'a VecDeque<Option<InFlight<P>>>,
    base: u64,
}

impl<P: Clone> TxFrames<'_, P> {
    fn frame_of(&self, tx_id: TxId) -> Frame<P> {
        debug_assert!(tx_id.0 >= self.base, "tx already completed");
        self.in_flight[(tx_id.0 - self.base) as usize]
            .as_ref()
            .expect("in-flight tx")
            .frame
            .clone()
    }
}

/// A disjoint slice of per-node radio state (see [`Channel::par_views`]).
/// Signal completions against a shard are identical to
/// [`Channel::finish_rx_batched`] except that the delivery/collision
/// counters accumulate locally — the caller folds them into the channel's
/// stats at merge time (the sums are order-independent, so the fold point
/// cannot perturb determinism).
pub struct ChannelShard<'a> {
    nodes: &'a mut [NodeState],
    offset: usize,
    /// Frames delivered through this shard since the split.
    pub delivered: u64,
    /// Receivable frames lost to collisions through this shard.
    pub collisions: u64,
}

impl ChannelShard<'_> {
    /// Whether `node` belongs to this shard.
    pub fn contains(&self, node: usize) -> bool {
        node >= self.offset && node < self.offset + self.nodes.len()
    }

    /// Whether `node`'s medium is physically busy (shard-local
    /// equivalent of [`Channel::is_busy`]).
    pub fn is_busy(&self, node: usize) -> bool {
        self.nodes[node - self.offset].is_busy()
    }

    /// Completes the signal of `tx_id` at `node` (which must belong to
    /// this shard) — the shard-local equivalent of
    /// [`Channel::finish_rx_batched`].
    pub fn finish_rx<P: Clone>(
        &mut self,
        frames: &TxFrames<'_, P>,
        node: usize,
        tx_id: TxId,
        now: SimTime,
    ) -> FinishRx<P> {
        complete_signal(
            &mut self.nodes[node - self.offset],
            frames,
            tx_id,
            now,
            &mut self.delivered,
            &mut self.collisions,
        )
    }
}

/// The one signal-completion routine behind [`Channel::finish_rx`],
/// [`Channel::finish_rx_batched`] and [`ChannelShard::finish_rx`]: every
/// engine — per-receiver, batched, parallel — completes receivers through
/// this exact code, which is what their bit-identity rests on.
fn complete_signal<P: Clone>(
    n: &mut NodeState,
    frames: &TxFrames<'_, P>,
    tx_id: TxId,
    now: SimTime,
    delivered: &mut u64,
    collisions: &mut u64,
) -> FinishRx<P> {
    let idx = n.position_of(tx_id).expect("finish_rx for unknown signal");
    let sig = n.swap_remove(idx);
    let became_idle = !n.is_busy();

    // A node still transmitting at the signal's end cannot have
    // received it (its own tx overlapped the tail).
    let half_duplex = n.tx_until > now;
    let ok = sig.receivable && !sig.corrupted && !half_duplex;
    let collided = sig.receivable && !ok;

    let frame = if ok {
        *delivered += 1;
        Some(frames.frame_of(tx_id))
    } else {
        if collided {
            *collisions += 1;
        }
        None
    };
    FinishRx {
        frame,
        became_idle,
        collided,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{Frame, FrameKind};
    use crate::medium::BruteForceMedium;
    use slr_mobility::Position;

    fn frame(src: usize, dst: Option<usize>) -> Frame<u32> {
        Frame {
            kind: FrameKind::Data,
            src,
            dst,
            bytes: 100,
            nav: SimDuration::ZERO,
            payload: Some(9),
            seq: 0,
        }
    }

    fn positions(coords: &[(f64, f64)]) -> Vec<Position> {
        coords.iter().map(|&(x, y)| Position::new(x, y)).collect()
    }

    /// The receiver set as `(node, fresh_busy)` pairs, for assertions.
    fn receivers_of(ch: &Channel<u32>, tx: TxId) -> Vec<(usize, bool)> {
        ch.tx_receivers(tx)
            .iter()
            .map(|r| (r.node as usize, r.fresh_busy))
            .collect()
    }

    #[test]
    fn clean_delivery_within_range() {
        let pos = positions(&[(0.0, 0.0), (100.0, 0.0), (2000.0, 0.0)]);
        let mut ch: Channel<u32> = Channel::new(3, PhyConfig::default());
        let t0 = SimTime::ZERO;
        let b = ch.begin_tx(frame(0, Some(1)), t0, &BruteForceMedium(&pos));
        // Node 1 in range, node 2 far outside carrier sense.
        assert_eq!(receivers_of(&ch, b.tx_id), vec![(1, true)]);
        assert_eq!((b.receiver_count, b.fresh_busy), (1, 1));
        assert!(ch.is_busy(1));
        let end = t0 + b.airtime;
        let r = ch.finish_rx(1, b.tx_id, end);
        assert!(r.frame.is_some());
        assert!(r.became_idle);
        assert!(!r.collided);
        ch.finish_tx(b.tx_id);
        assert_eq!(ch.stats.delivered, 1);
        assert_eq!(ch.stats.collisions, 0);
    }

    #[test]
    fn gated_receiver_perceives_nothing() {
        // Node 1 is well inside range but the admittance gate blocks the
        // 0→1 link: no signal, no carrier sense, no collision accounting.
        let pos = positions(&[(0.0, 0.0), (100.0, 0.0), (150.0, 0.0)]);
        let mut ch: Channel<u32> = Channel::new(3, PhyConfig::default());
        let b = ch.begin_tx_gated(
            frame(0, Some(1)),
            SimTime::ZERO,
            &BruteForceMedium(&pos),
            |s, v| !(s == 0 && v == 1),
        );
        assert_eq!(
            receivers_of(&ch, b.tx_id),
            vec![(2, true)],
            "gated node 1 must not appear"
        );
        assert!(
            !ch.is_busy(1),
            "gated signal must not occupy node 1's medium"
        );
        let r = ch.finish_rx(2, b.tx_id, SimTime::ZERO + b.airtime);
        assert!(r.frame.is_some());
        ch.finish_tx(b.tx_id);
        assert_eq!(ch.stats.delivered, 1);
        assert_eq!(ch.stats.collisions, 0);
    }

    #[test]
    fn audible_but_not_receivable() {
        // 400 m: inside carrier sense (550) but outside reception (250).
        let pos = positions(&[(0.0, 0.0), (400.0, 0.0)]);
        let mut ch: Channel<u32> = Channel::new(2, PhyConfig::default());
        let b = ch.begin_tx(frame(0, Some(1)), SimTime::ZERO, &BruteForceMedium(&pos));
        assert_eq!(b.receiver_count, 1);
        assert!(ch.is_busy(1));
        let r = ch.finish_rx(1, b.tx_id, SimTime::ZERO + b.airtime);
        assert!(r.frame.is_none());
        assert!(!r.collided, "sub-threshold signal is not a collision");
        ch.finish_tx(b.tx_id);
    }

    #[test]
    fn overlapping_equal_power_collides() {
        // Nodes 0 and 2 both 100 m from node 1, transmit simultaneously.
        let pos = positions(&[(0.0, 0.0), (100.0, 0.0), (200.0, 0.0)]);
        let mut ch: Channel<u32> = Channel::new(3, PhyConfig::default());
        let a = ch.begin_tx(frame(0, Some(1)), SimTime::ZERO, &BruteForceMedium(&pos));
        let b = ch.begin_tx(frame(2, Some(1)), SimTime::ZERO, &BruteForceMedium(&pos));
        let end = SimTime::ZERO + a.airtime;
        let ra = ch.finish_rx(1, a.tx_id, end);
        let rb = ch.finish_rx(1, b.tx_id, end);
        assert!(ra.frame.is_none() && rb.frame.is_none());
        assert!(ra.collided && rb.collided);
        assert_eq!(ch.stats.collisions, 2);
        ch.finish_tx(a.tx_id);
        ch.finish_tx(b.tx_id);
    }

    #[test]
    fn capture_lets_strong_frame_through() {
        // Node 1 hears node 0 at 50 m and node 2 at 200 m: power ratio
        // (200/50)^4 = 256 ≥ 10 → node 0's frame captures.
        let pos = positions(&[(0.0, 0.0), (50.0, 0.0), (250.0, 0.0)]);
        let mut ch: Channel<u32> = Channel::new(3, PhyConfig::default());
        let a = ch.begin_tx(frame(0, Some(1)), SimTime::ZERO, &BruteForceMedium(&pos));
        let b = ch.begin_tx(frame(2, Some(1)), SimTime::ZERO, &BruteForceMedium(&pos));
        let end = SimTime::ZERO + a.airtime;
        let ra = ch.finish_rx(1, a.tx_id, end);
        let rb = ch.finish_rx(1, b.tx_id, end);
        assert!(ra.frame.is_some(), "strong frame should capture");
        assert!(rb.frame.is_none(), "weak frame is lost");
        ch.finish_tx(a.tx_id);
        ch.finish_tx(b.tx_id);
    }

    #[test]
    fn half_duplex_blocks_reception() {
        let pos = positions(&[(0.0, 0.0), (100.0, 0.0)]);
        let mut ch: Channel<u32> = Channel::new(2, PhyConfig::default());
        // Node 1 starts transmitting first.
        let own = ch.begin_tx(frame(1, None), SimTime::ZERO, &BruteForceMedium(&pos));
        // Node 0 transmits to node 1 while node 1 is busy sending.
        let a = ch.begin_tx(frame(0, Some(1)), SimTime::ZERO, &BruteForceMedium(&pos));
        let end = SimTime::ZERO + a.airtime;
        let r = ch.finish_rx(1, a.tx_id, end);
        assert!(r.frame.is_none(), "transmitting node cannot receive");
        // Drain remaining bookkeeping.
        let r0 = ch.finish_rx(0, own.tx_id, SimTime::ZERO + own.airtime);
        assert!(r0.frame.is_none(), "0 was transmitting too");
        ch.finish_tx(own.tx_id);
        ch.finish_tx(a.tx_id);
    }

    #[test]
    fn busy_transitions_are_reported() {
        let pos = positions(&[(0.0, 0.0), (100.0, 0.0), (150.0, 0.0)]);
        let mut ch: Channel<u32> = Channel::new(3, PhyConfig::default());
        let a = ch.begin_tx(frame(0, None), SimTime::ZERO, &BruteForceMedium(&pos));
        // Both 1 and 2 become busy.
        assert_eq!(receivers_of(&ch, a.tx_id), vec![(1, true), (2, true)]);
        assert_eq!(a.fresh_busy, 2);
        // A second overlapping tx does not re-report busy.
        let b = ch.begin_tx(frame(1, None), SimTime::ZERO, &BruteForceMedium(&pos));
        assert_eq!(receivers_of(&ch, b.tx_id), vec![(0, true), (2, false)]);
        assert_eq!(b.fresh_busy, 1);
        // End of first signal at node 2: still busy with second.
        let end = SimTime::ZERO + a.airtime;
        let r = ch.finish_rx(2, a.tx_id, end);
        assert!(!r.became_idle);
        let r2 = ch.finish_rx(2, b.tx_id, SimTime::ZERO + b.airtime);
        assert!(r2.became_idle);
        // Cleanup others.
        ch.finish_rx(1, a.tx_id, end);
        ch.finish_rx(0, b.tx_id, SimTime::ZERO + b.airtime);
        ch.finish_tx(a.tx_id);
        ch.finish_tx(b.tx_id);
    }

    #[test]
    fn take_and_recycle_receivers_round_trip() {
        // The batched-completion walk: detach the set, finish each signal,
        // finish the transmitter, hand the vector back. A later tx reuses
        // the pooled vector (observable as equal capacity growth, not
        // asserted — this guards the bookkeeping, not the allocator).
        let pos = positions(&[(0.0, 0.0), (100.0, 0.0), (150.0, 0.0)]);
        let mut ch: Channel<u32> = Channel::new(3, PhyConfig::default());
        let b = ch.begin_tx(frame(0, None), SimTime::ZERO, &BruteForceMedium(&pos));
        let set = ch.take_tx_receivers(b.tx_id);
        assert_eq!(set.len(), 2);
        let end = SimTime::ZERO + b.airtime;
        for r in &set {
            let fin = ch.finish_rx(r.node as usize, b.tx_id, end);
            assert!(fin.frame.is_some());
        }
        ch.recycle_receivers(set);
        ch.finish_tx(b.tx_id);
        assert_eq!(ch.stats.delivered, 2);
        // The window advanced: a new tx starts cleanly.
        let c = ch.begin_tx(frame(1, None), end, &BruteForceMedium(&pos));
        assert_eq!(c.receiver_count, 2);
    }

    /// The sharded completion path must be byte-for-byte the batched
    /// walk: same outcomes, same stat totals, regardless of how the node
    /// range is cut.
    #[test]
    fn sharded_finish_rx_matches_batched_walk() {
        let coords = &[(0.0, 0.0), (100.0, 0.0), (150.0, 0.0), (220.0, 0.0)];
        let run = |bounds: &[usize]| {
            let pos = positions(coords);
            let mut ch: Channel<u32> = Channel::new(4, PhyConfig::default());
            let a = ch.begin_tx(frame(0, None), SimTime::ZERO, &BruteForceMedium(&pos));
            let b = ch.begin_tx(frame(3, None), SimTime::ZERO, &BruteForceMedium(&pos));
            let end = SimTime::ZERO + a.airtime;
            let ra = ch.take_tx_receivers(a.tx_id);
            let rb = ch.take_tx_receivers(b.tx_id);
            let mut outcomes = Vec::new();
            {
                let (frames, mut shards) = ch.par_views(bounds);
                for (tx, set) in [(a.tx_id, &ra), (b.tx_id, &rb)] {
                    for r in set {
                        let node = r.node as usize;
                        let s = shards
                            .iter_mut()
                            .find(|s| s.contains(node))
                            .expect("owner shard");
                        let fin = s.finish_rx(&frames, node, tx, end);
                        outcomes.push((node, fin.frame.is_some(), fin.became_idle, fin.collided));
                    }
                }
                let (d, c) = shards
                    .iter()
                    .fold((0, 0), |(d, c), s| (d + s.delivered, c + s.collisions));
                ch.stats.delivered += d;
                ch.stats.collisions += c;
            }
            ch.recycle_receivers(ra);
            ch.recycle_receivers(rb);
            ch.finish_tx_batched(a.tx_id);
            ch.finish_tx_batched(b.tx_id);
            (outcomes, ch.stats)
        };
        let whole = run(&[0, 4]);
        let split = run(&[0, 1, 2, 4]);
        let ragged = run(&[0, 3, 3, 4]); // empty middle shard is legal
        assert_eq!(whole, split);
        assert_eq!(whole, ragged);
        assert!(whole.1.delivered > 0, "fixture delivers something");
    }

    #[test]
    fn crashed_receiver_counts_neither_delivery_nor_collision() {
        let pos = positions(&[(0.0, 0.0), (100.0, 0.0)]);
        let mut ch: Channel<u32> = Channel::new(2, PhyConfig::default());
        let b = ch.begin_tx(frame(0, Some(1)), SimTime::ZERO, &BruteForceMedium(&pos));
        // Node 1 crashes mid-reception: the signal still occupies its
        // medium but can no longer be decoded.
        ch.crash_receiver(1);
        assert!(ch.is_busy(1), "RF energy outlives the crashed radio");
        let r = ch.finish_rx(1, b.tx_id, SimTime::ZERO + b.airtime);
        assert!(r.frame.is_none(), "dead radio cannot decode");
        assert!(!r.collided, "an undecodable signal is not a collision");
        assert!(r.became_idle);
        ch.finish_tx(b.tx_id);
        assert_eq!(ch.stats.delivered, 0);
        assert_eq!(ch.stats.collisions, 0);
    }

    #[test]
    fn crashed_receiver_signal_still_interferes() {
        // Node 1 hears node 0 (strong) while crashed; node 2's later weak
        // frame must still lose the capture contest against the lingering
        // RF energy — physics does not reboot with the node.
        let pos = positions(&[(0.0, 0.0), (50.0, 0.0), (250.0, 0.0)]);
        let mut ch: Channel<u32> = Channel::new(3, PhyConfig::default());
        let a = ch.begin_tx(frame(0, None), SimTime::ZERO, &BruteForceMedium(&pos));
        ch.crash_receiver(1);
        let b = ch.begin_tx(frame(2, Some(1)), SimTime::ZERO, &BruteForceMedium(&pos));
        let end = SimTime::ZERO + a.airtime;
        let ra = ch.finish_rx(1, a.tx_id, end);
        assert!(ra.frame.is_none() && !ra.collided, "quarantined");
        // The weak frame was corrupted by the strong lingering signal;
        // node 1 rejoined in the meantime, so it *does* count a collision.
        let rb = ch.finish_rx(1, b.tx_id, SimTime::ZERO + b.airtime);
        assert!(rb.frame.is_none());
        assert!(rb.collided, "post-rejoin loss to interference is real");
        ch.finish_rx(2, a.tx_id, end);
        ch.finish_tx(a.tx_id);
        ch.finish_tx(b.tx_id);
    }
}
