//! Physical-layer model: timing and propagation.
//!
//! The paper's substrate is GloMoSim's 802.11 stack on a 2 Mbps channel.
//! We model propagation with a deterministic reception range (two-ray
//! ground at fixed transmit power reduces to a distance threshold), a
//! larger carrier-sense range, and power capture under the two-ray `d⁻⁴`
//! law: a frame survives interference if it is `capture_ratio` times
//! stronger than every overlapping signal.

use slr_netsim::time::SimDuration;

/// Physical-layer configuration.
#[derive(Debug, Clone, Copy)]
pub struct PhyConfig {
    /// Channel bit rate in bits/s (paper: 2 Mbps).
    pub bitrate_bps: u64,
    /// PLCP preamble + header time (802.11 long preamble: 192 µs).
    pub plcp_overhead: SimDuration,
    /// Reception range in meters (ns-2/GloMoSim default: 250 m).
    pub rx_range_m: f64,
    /// Carrier-sense range in meters (default: 550 m).
    pub cs_range_m: f64,
    /// Minimum power ratio for capture (10× under the d⁻⁴ two-ray law).
    pub capture_ratio: f64,
    /// Path-loss exponent (two-ray ground: 4).
    pub pathloss_exponent: f64,
}

impl Default for PhyConfig {
    fn default() -> Self {
        PhyConfig {
            bitrate_bps: 2_000_000,
            plcp_overhead: SimDuration::from_micros(192),
            rx_range_m: 250.0,
            cs_range_m: 550.0,
            capture_ratio: 10.0,
            pathloss_exponent: 4.0,
        }
    }
}

impl PhyConfig {
    /// Airtime of a frame of `bytes` total MAC-layer bytes.
    pub fn airtime(&self, bytes: u32) -> SimDuration {
        let payload_ns = (bytes as u64 * 8).saturating_mul(1_000_000_000) / self.bitrate_bps;
        self.plcp_overhead + SimDuration::from_nanos(payload_ns)
    }

    /// Relative received power at distance `d` meters (arbitrary units;
    /// only ratios matter). Distances below one meter clamp to one.
    ///
    /// The two-ray `d⁻⁴` default is computed with two multiplications —
    /// `powf` was measurable at dense scale, where every transmission
    /// evaluates this for ~50 carrier-sense neighbors.
    pub fn rx_power(&self, d: f64) -> f64 {
        let d = d.max(1.0);
        if self.pathloss_exponent == 4.0 {
            let d2 = d * d;
            1.0 / (d2 * d2)
        } else {
            1.0 / d.powf(self.pathloss_exponent)
        }
    }

    /// Whether a signal from distance `d` is decodable (within rx range).
    pub fn receivable(&self, d: f64) -> bool {
        d <= self.rx_range_m
    }

    /// Whether a signal from distance `d` is audible (within carrier-sense
    /// range) and therefore occupies the medium / interferes.
    pub fn audible(&self, d: f64) -> bool {
        d <= self.cs_range_m
    }

    /// Whether a signal of power `p` captures over interference power `q`.
    pub fn captures(&self, p: f64, q: f64) -> bool {
        p >= self.capture_ratio * q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn airtime_scales_with_size() {
        let phy = PhyConfig::default();
        // 512 B payload + 34 B MAC overhead = 546 B → 2184 µs at 2 Mbps,
        // plus 192 µs PLCP.
        let t = phy.airtime(546);
        assert_eq!(t.as_nanos(), 192_000 + 546 * 8 * 500);
        let ack = phy.airtime(14);
        assert_eq!(ack.as_nanos(), 192_000 + 14 * 8 * 500);
        assert!(ack < t);
    }

    #[test]
    fn power_law() {
        let phy = PhyConfig::default();
        let p100 = phy.rx_power(100.0);
        let p200 = phy.rx_power(200.0);
        // d⁻⁴: doubling distance cuts power 16×.
        assert!((p100 / p200 - 16.0).abs() < 1e-9);
        // Sub-meter clamps.
        assert_eq!(phy.rx_power(0.0), 1.0);
    }

    #[test]
    fn ranges() {
        let phy = PhyConfig::default();
        assert!(phy.receivable(250.0));
        assert!(!phy.receivable(250.1));
        assert!(phy.audible(550.0));
        assert!(!phy.audible(550.1));
    }

    #[test]
    fn capture_threshold() {
        let phy = PhyConfig::default();
        // 10× power ⇔ distance ratio 10^(1/4) ≈ 1.778 under d⁻⁴.
        let near = phy.rx_power(100.0);
        let far = phy.rx_power(178.0);
        assert!(phy.captures(near, far));
        let close_far = phy.rx_power(140.0);
        assert!(!phy.captures(near, close_far));
    }
}
