//! Regenerates **Fig. 4 — Delivery ratio, 100-nodes 30-flows** of the paper.
//!
//! ```sh
//! cargo run --release -p slr-bench --bin fig4 [-- --paper]
//! ```

use slr_bench::Cli;
use slr_runner::experiment::{run_sweep, Metric};
use slr_runner::report::render_figure;
use slr_runner::scenario::ProtocolKind;

fn main() {
    let cli = Cli::parse();
    eprintln!("running sweep: {}", cli.describe());
    let result = run_sweep(&ProtocolKind::all(), &cli.sweep);
    println!(
        "{}",
        render_figure(
            &result,
            Metric::DeliveryRatio,
            "Fig. 4 — Delivery ratio, 100-nodes 30-flows"
        )
    );
    println!("Paper shape: SRP highest at almost all pause times (~0.83 avg); DSR collapses with mobility.");
}
