//! `bench_parallel` — the intra-trial parallelism benchmark behind
//! `BENCH_parallel.json`: the conservative-lookahead `--engine parallel`
//! vs the serial batched engine, on full `dense`-family SRP trials, swept
//! over the worker count.
//!
//! Per node-count point it reports:
//!
//! * the **batched baseline** wall clock;
//! * the **parallel** wall clock at workers ∈ {1, 2, 4, 8}, each trial's
//!   summary asserted **bit-identical** to the batched baseline (the
//!   determinism contract the engine-equivalence proptests fuzz), each
//!   entry carrying its free window-occupancy counters (mean width,
//!   multi-event share, MAC-timer hops, speculation hit rate);
//! * `speedup_vs_batched` per worker count — workers@1 isolates the
//!   windowed-dispatch overhead (window composition plus, for the rare
//!   window whose execution width exceeds 1, task building and the
//!   canonical side-effect merge; width-1 windows collapse to the serial
//!   batched walk), so the curve decomposes into overhead × scaling;
//! * a **widening A/B** at 2 workers: the same trial with MAC-timer
//!   hopping disabled (the pre-widening engine) vs enabled, with
//!   wall-clock attribution of serial vs parallel dispatch sections —
//!   `width_gain` is how much the widened join rule grows the mean
//!   window, `serial_share_*` is how much of the dispatch clock stays
//!   serial either way.
//!
//! It also runs one oracle-checked parallel trial (SRP loop-freedom
//! oracle, 1 s checkpoints + after every dynamics event) and records that
//! **zero hard violations** occurred — the oracle stays in the loop while
//! the engine is restructured.
//!
//! **Read the committed numbers against `host_parallelism`.** The
//! parallel engine needs at least `workers` cores to show its scaling;
//! on a single-core container every extra worker is pure scheduling
//! overhead, so the committed curve documents the overhead floor, not
//! the multi-core scaling (the nightly workflow exercises `--workers 4`
//! on multi-core runners). The occupancy counters are deterministic and
//! meaningful at any core count. The per-phase breakdown in
//! `BENCH_events.json` attributes what fraction of a trial the windows
//! can parallelize at all.
//!
//! Regenerate the committed snapshot with:
//!
//! ```sh
//! cargo run --release -p slr-bench --bin bench_parallel > BENCH_parallel.json
//! ```
//!
//! Flags: `--values a,b,c` (node counts, default 1000,2000,5000),
//! `--seed N` (default 42), `--duration S` (override trial seconds).

use std::time::Instant;

use slr_netsim::time::{SimDuration, SimTime};
use slr_runner::cli::parse_cli;
use slr_runner::registry::{Family, SweepParam};
use slr_runner::scenario::ProtocolKind;
use slr_runner::sim::{EngineKind, Sim, WindowStats};
use slr_runner::TrialSummary;

/// Worker counts swept per point (1 = inline windows, no threads).
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_cli(&args) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let seed = opts.seed;
    let host_parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // (nodes, duration override): the paper-scale dense points, with the
    // 5000-node trial at the CI smoke budget (30 s simulated) so a full
    // regeneration stays affordable; `--values`/`--duration` override.
    let runs: Vec<(u64, Option<u64>)> = match opts.values {
        Some(v) => v.into_iter().map(|n| (n, opts.duration)).collect(),
        None => vec![(1000, None), (2000, Some(30)), (5000, Some(30))],
    };

    let mut points = Vec::new();
    for &(n, duration) in &runs {
        let scenario_for = || {
            let mut s =
                Family::Dense.scenario_at(ProtocolKind::Srp, seed, 0, false, SweepParam::Nodes, n);
            if let Some(d) = duration {
                s.end = SimTime::from_secs(d);
            }
            s
        };
        let duration_s = duration.unwrap_or_else(|| scenario_for().end.as_secs_f64() as u64);
        eprintln!("bench_parallel: N = {n} (batched baseline) …");
        let (baseline, batched_ms, _) = run_trial(scenario_for(), EngineKind::Batched, 1, true);

        let mut worker_fields = Vec::new();
        for &w in &WORKER_COUNTS {
            // A worker count above the host's parallelism measures pure
            // scheduling overhead, never scaling; mark those entries so a
            // single-core regeneration can't be misread as a speedup
            // regression (the nightly multi-core run produces the real
            // curve).
            let oversubscribed = w > host_parallelism;
            eprintln!(
                "bench_parallel: N = {n} (parallel, {w} worker(s){}) …",
                if oversubscribed {
                    ", oversubscribed"
                } else {
                    ""
                }
            );
            let (summary, ms, stats) = run_trial(scenario_for(), EngineKind::Parallel, w, true);
            assert_eq!(
                baseline, summary,
                "parallel@{w} diverged from batched at N={n}"
            );
            worker_fields.push(format!(
                "        {{ \"workers\": {w}, \"trial_ms\": {ms:.1}, \
                 \"speedup_vs_batched\": {:.2}, \"summary_identical\": true, \
                 \"oversubscribed\": {oversubscribed}, \"occupancy\": {} }}",
                batched_ms / ms,
                occupancy_json(&stats),
            ));
            eprintln!(
                "bench_parallel: N = {n}: parallel@{w} {ms:.0} ms ({:.2}x vs batched {batched_ms:.0} ms), \
                 mean width {:.2}, {} MAC hops, summary identical",
                batched_ms / ms,
                stats.mean_width(),
                stats.mac_hops,
            );
        }

        // Widening A/B at 2 workers, with wall-clock attribution: the
        // unwidened run is the pre-hopping engine (every MAC timer ends
        // its window), so width_gain measures what the widened join rule
        // buys and the serial shares bound Amdahl either way. Timing
        // probes perturb wall clock, which is why the speedup sweep above
        // uses the probe-free counters instead.
        eprintln!("bench_parallel: N = {n} (widening A/B, 2 workers, timed) …");
        let (sum_off, _, off) = run_timed(scenario_for(), 2, false);
        let (sum_on, _, on) = run_timed(scenario_for(), 2, true);
        assert_eq!(baseline, sum_off, "unwidened parallel diverged at N={n}");
        assert_eq!(baseline, sum_on, "widened parallel diverged at N={n}");
        let width_gain = if off.mean_width() > 0.0 {
            on.mean_width() / off.mean_width()
        } else {
            0.0
        };
        eprintln!(
            "bench_parallel: N = {n}: width {:.2} -> {:.2} ({width_gain:.2}x), \
             serial share {:.3} -> {:.3}",
            off.mean_width(),
            on.mean_width(),
            off.serial_share(),
            on.serial_share(),
        );

        points.push(format!(
            "    {{\n      \"nodes\": {n},\n      \"duration_s\": {duration_s},\n      \
             \"trial_ms_batched\": {batched_ms:.1},\n      \"workers\": [\n{}\n      ],\n      \
             \"widening_ab\": {{\n        \"workers\": 2,\n        \
             \"unwidened\": {},\n        \"widened\": {},\n        \
             \"width_gain\": {width_gain:.2},\n        \
             \"serial_share_unwidened\": {:.4},\n        \
             \"serial_share_widened\": {:.4}\n      }},\n      \
             \"delivery_ratio\": {:.4}\n    }}",
            worker_fields.join(",\n"),
            occupancy_json(&off),
            occupancy_json(&on),
            off.serial_share(),
            on.serial_share(),
            baseline.delivery_ratio,
        ));
    }

    // One oracle-checked parallel trial: Theorem 3 machine-checked at 1 s
    // checkpoints and after every dynamics event, under the crash-rejoin
    // family (the adversarial dynamics for loop freedom), executed through
    // conservative windows on 4 workers. Reaching the print below means
    // zero hard violations (the oracle panics on any).
    eprintln!("bench_parallel: oracle-checked parallel trial (crash-rejoin, 4 workers) …");
    let oracle_scenario = {
        let mut s = Family::CrashRejoin.scenario_at(
            ProtocolKind::Srp,
            seed,
            0,
            false,
            SweepParam::Nodes,
            60,
        );
        s.end = SimTime::from_secs(45);
        s
    };
    let sim = Sim::new(oracle_scenario)
        .with_engine(EngineKind::Parallel)
        .with_workers(4);
    let (oracle_summary, soft) = sim.run_with_loop_oracle(SimDuration::from_secs(1));
    eprintln!(
        "bench_parallel: oracle held ({} soft order drift(s), {} dynamics event(s))",
        soft, oracle_summary.dynamics_events
    );

    println!(
        "{{\n  \"benchmark\": \"parallel-event-engine\",\n  \
         \"command\": \"cargo run --release -p slr-bench --bin bench_parallel > BENCH_parallel.json\",\n  \
         \"description\": \"conservative-lookahead parallel engine (same-timestamp windows of node-local tasks sharded over a work-stealing pool, widened across independent MAC timers via spatial disjointness, canonical side-effect merge) vs the serial batched engine on dense-family SRP trials; every parallel trial's summary is asserted bit-identical to batched; workers=1 isolates the windowed-dispatch overhead (width-1 windows collapse to the serial batched walk); each worker entry carries probe-free window-occupancy counters and the widening_ab block times the pre-hopping engine against the widened one at 2 workers; interpret speedups against host_parallelism — with fewer cores than workers the curve measures scheduling overhead, not scaling (nightly CI exercises --workers 4 on multi-core runners)\",\n  \
         \"seed\": {seed},\n  \"host_parallelism\": {host_parallelism},\n  \
         \"oracle\": {{\n    \"family\": \"crash-rejoin\", \"nodes\": 60, \"workers\": 4,\n    \
         \"hard_violations\": 0, \"soft_order_drifts\": {soft},\n    \
         \"dynamics_events\": {}\n  }},\n  \"points\": [\n{}\n  ]\n}}",
        oracle_summary.dynamics_events,
        points.join(",\n")
    );
}

/// Serializes the probe-free occupancy counters of one trial.
fn occupancy_json(s: &WindowStats) -> String {
    format!(
        "{{ \"mean_width\": {:.2}, \"multi_share\": {:.4}, \"max_width\": {}, \
         \"windows\": {}, \"widened_windows\": {}, \"mac_hops\": {}, \
         \"spec_hits\": {}, \"spec_misses\": {} }}",
        s.mean_width(),
        s.multi_share(),
        s.max_width,
        s.windows,
        s.widened_windows,
        s.mac_hops,
        s.spec_hits,
        s.spec_misses,
    )
}

/// Times one full dense trial under `engine` with `workers` workers,
/// returning the free occupancy counters alongside (no timing probes —
/// the wall clock is undisturbed).
fn run_trial(
    scenario: slr_runner::Scenario,
    engine: EngineKind,
    workers: usize,
    widening: bool,
) -> (TrialSummary, f64, WindowStats) {
    let sim = Sim::new(scenario)
        .with_engine(engine)
        .with_workers(workers)
        .with_widening(widening);
    let start = Instant::now();
    let (summary, stats) = sim.run_counted();
    let ms = start.elapsed().as_secs_f64() * 1e3;
    (summary, ms, stats)
}

/// Like [`run_trial`] but on the parallel engine with the serial /
/// parallel wall-clock attribution probes enabled (for the widening A/B
/// `serial_share` fields; the probes make the trial_ms incomparable to
/// the probe-free sweep, so it is not reported).
fn run_timed(
    scenario: slr_runner::Scenario,
    workers: usize,
    widening: bool,
) -> (TrialSummary, f64, WindowStats) {
    let sim = Sim::new(scenario)
        .with_engine(EngineKind::Parallel)
        .with_workers(workers)
        .with_widening(widening);
    let start = Instant::now();
    let (summary, stats) = sim.run_with_window_stats();
    let ms = start.elapsed().as_secs_f64() * 1e3;
    (summary, ms, stats)
}
