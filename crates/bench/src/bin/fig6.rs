//! Regenerates **Fig. 6 — Data latency (seconds), 100-nodes 30-flows** of the paper.
//!
//! ```sh
//! cargo run --release -p slr-bench --bin fig6 [-- --paper]
//! ```

use slr_bench::Cli;
use slr_runner::experiment::{run_sweep, Metric};
use slr_runner::report::render_figure;
use slr_runner::scenario::ProtocolKind;

fn main() {
    let cli = Cli::parse();
    eprintln!("running sweep: {}", cli.describe());
    let result = run_sweep(&ProtocolKind::all(), &cli.sweep);
    println!(
        "{}",
        render_figure(
            &result,
            Metric::Latency,
            "Fig. 6 — Data latency (seconds), 100-nodes 30-flows"
        )
    );
    println!("Paper shape: OLSR and SRP lowest and statistically close; AODV and DSR much higher.");
}
