//! Regenerates **Table I** (performance averaged over all pause times).
//!
//! ```sh
//! cargo run --release -p slr-bench --bin table1 [-- --paper]
//! ```

use slr_bench::Cli;
use slr_runner::experiment::run_sweep;
use slr_runner::report::render_table1;
use slr_runner::scenario::ProtocolKind;

fn main() {
    let cli = Cli::parse();
    eprintln!("running sweep: {}", cli.describe());
    let result = run_sweep(&ProtocolKind::all(), &cli.sweep);
    println!("{}", render_table1(&result));
    println!("Paper (±95% CI): SRP 0.830/0.905/0.927, LDR 0.766/4.364/1.172,");
    println!("AODV 0.741/4.996/2.769, DSR 0.500/5.394/5.725, OLSR 0.710/4.728/0.781");
}
