//! Ablation: uni-path SRP (the paper's evaluated mode) versus round-robin
//! multipath forwarding over the same label DAG. Multipath is "inherent"
//! to SLR (§II); choosing good multipaths is the paper's open problem.
//!
//! ```sh
//! cargo run --release -p slr-bench --bin ablation_multipath [-- --paper]
//! ```

use slr_bench::Cli;
use slr_runner::experiment::{run_sweep, Metric};
use slr_runner::report::render_figure;
use slr_runner::scenario::ProtocolKind;

fn main() {
    let cli = Cli::parse();
    eprintln!("running sweep: {}", cli.describe());
    let protocols = [ProtocolKind::Srp, ProtocolKind::SrpMultipath];
    let result = run_sweep(&protocols, &cli.sweep);
    println!(
        "{}",
        render_figure(
            &result,
            Metric::DeliveryRatio,
            "Ablation — uni-path SRP vs round-robin multipath: delivery"
        )
    );
    println!(
        "{}",
        render_figure(&result, Metric::Latency, "Ablation — latency (s)")
    );
    println!(
        "{}",
        render_figure(&result, Metric::NetworkLoad, "Ablation — network load")
    );
}
