//! Regenerates **Fig. 5 — Network load, 100-nodes 30-flows** of the paper.
//!
//! ```sh
//! cargo run --release -p slr-bench --bin fig5 [-- --paper]
//! ```

use slr_bench::Cli;
use slr_runner::experiment::{run_sweep, Metric};
use slr_runner::report::render_figure;
use slr_runner::scenario::ProtocolKind;

fn main() {
    let cli = Cli::parse();
    eprintln!("running sweep: {}", cli.describe());
    let result = run_sweep(&ProtocolKind::all(), &cli.sweep);
    println!(
        "{}",
        render_figure(
            &result,
            Metric::NetworkLoad,
            "Fig. 5 — Network load, 100-nodes 30-flows"
        )
    );
    println!("Paper shape: SRP ~0.2x the load of LDR/AODV/OLSR (0.9 vs 4.4-5.0).");
}
