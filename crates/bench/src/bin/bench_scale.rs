//! `bench_scale` — the memory-lean scale benchmark behind
//! `BENCH_scale.json`: full `huge`-family SRP trials (static
//! constant-density disc, locality-bounded flows) swept over node count
//! on the serial batched engine.
//!
//! Per point it reports:
//!
//! * the wall clock and **µs/event** (events from `Metrics::sim_events`)
//!   — the curve that must stay flat-to-sublinear from 5k to 100k nodes
//!   for the compact-table profile to have paid off;
//! * the end-of-run **per-subsystem memory report**
//!   (`Sim::run_with_mem_report`): live heap bytes of protocol tables,
//!   MAC state, channel, spatial index, event queue and delivery-dedup
//!   metrics, plus bytes/node and the protocol+MAC bytes/node figure the
//!   ≤ 1 KiB/node budget is stated against;
//! * the **geodesic stretch** of delivered packets (hops taken over the
//!   straight-line minimum at radio range) — finite stretch is the
//!   liveness sanity check that the locality-bounded script is actually
//!   deliverable at scale.
//!
//! Regenerate the committed snapshot with:
//!
//! ```sh
//! cargo run --release -p slr-bench --bin bench_scale > BENCH_scale.json
//! ```
//!
//! Flags: `--values a,b,c` (node counts, default 5000,20000,100000),
//! `--seed N` (default 42), `--duration S` (override trial seconds).

use std::time::Instant;

use slr_netsim::time::SimTime;
use slr_runner::cli::parse_cli;
use slr_runner::registry::{Family, SweepParam};
use slr_runner::scenario::ProtocolKind;
use slr_runner::sim::{EngineKind, Sim};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_cli(&args) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let seed = opts.seed;
    let values: Vec<u64> = opts.values.unwrap_or_else(|| vec![5_000, 20_000, 100_000]);

    let mut points = Vec::new();
    for &n in &values {
        let mut scenario =
            Family::Huge.scenario_at(ProtocolKind::Srp, seed, 0, false, SweepParam::Nodes, n);
        if let Some(d) = opts.duration {
            scenario.end = SimTime::from_secs(d);
        }
        let duration_s = scenario.end.as_secs_f64();
        eprintln!("bench_scale: N = {n} (batched, {duration_s} s simulated) …");
        let sim = Sim::new(scenario).with_engine(EngineKind::Batched);
        let start = Instant::now();
        let (summary, metrics, mem) = sim.run_with_mem_report();
        let ms = start.elapsed().as_secs_f64() * 1e3;
        let us_per_event = ms * 1e3 / metrics.sim_events.max(1) as f64;
        let stretch = metrics.geodesic_stretch().unwrap_or(f64::NAN);
        eprintln!(
            "bench_scale: N = {n}: {ms:.0} ms, {} events ({us_per_event:.2} µs/event), \
             {:.1} B/node total, {:.1} B/node proto+MAC, delivery {:.4}, stretch {stretch:.3}",
            metrics.sim_events,
            mem.bytes_per_node(),
            mem.proto_mac_bytes_per_node(),
            summary.delivery_ratio,
        );
        points.push(format!(
            "    {{\n      \"nodes\": {n},\n      \"duration_s\": {duration_s},\n      \
             \"trial_ms\": {ms:.1},\n      \"sim_events\": {},\n      \
             \"us_per_event\": {us_per_event:.3},\n      \
             \"mem_bytes\": {{\n        \"proto\": {},\n        \"mac\": {},\n        \
             \"channel\": {},\n        \"spatial\": {},\n        \"queue\": {},\n        \
             \"metrics_dedup\": {},\n        \"total\": {}\n      }},\n      \
             \"bytes_per_node\": {:.1},\n      \"proto_mac_bytes_per_node\": {:.1},\n      \
             \"delivery_ratio\": {:.4},\n      \"geodesic_stretch\": {stretch:.4}\n    }}",
            metrics.sim_events,
            mem.proto_bytes,
            mem.mac_bytes,
            mem.channel_bytes,
            mem.spatial_bytes,
            mem.queue_bytes,
            mem.metrics_bytes,
            mem.total(),
            mem.bytes_per_node(),
            mem.proto_mac_bytes_per_node(),
            summary.delivery_ratio,
        ));
    }

    println!(
        "{{\n  \"benchmark\": \"memory-lean-scale\",\n  \
         \"command\": \"cargo run --release -p slr-bench --bin bench_scale > BENCH_scale.json\",\n  \
         \"description\": \"huge-family SRP trials (static constant-density disc, locality-bounded \
         flows) on the serial batched engine, swept over node count; us_per_event must stay \
         flat-to-sublinear with N and proto_mac_bytes_per_node inside the 1 KiB/node budget for \
         the compact-table (sorted-vec + interned-label + flow-window-dedup) profile to hold; \
         geodesic_stretch is mean hops over the straight-line minimum at radio range — finite \
         means the locality-bounded script is deliverable, and it falls as density rises\",\n  \
         \"seed\": {seed},\n  \"engine\": \"batched\",\n  \"points\": [\n{}\n  ]\n}}",
        points.join(",\n")
    );
}
