//! Regenerates **Fig. 7 — Average node sequence number (SRP is exactly 0)** of the paper.
//!
//! ```sh
//! cargo run --release -p slr-bench --bin fig7 [-- --paper]
//! ```

use slr_bench::Cli;
use slr_runner::experiment::{run_sweep, Metric};
use slr_runner::report::render_figure;
use slr_runner::scenario::ProtocolKind;

fn main() {
    let cli = Cli::parse();
    eprintln!("running sweep: {}", cli.describe());
    let result = run_sweep(
        &[ProtocolKind::Srp, ProtocolKind::Ldr, ProtocolKind::Aodv],
        &cli.sweep,
    );
    println!(
        "{}",
        render_figure(
            &result,
            Metric::AvgSeqno,
            "Fig. 7 — Average node sequence number (SRP is exactly 0)"
        )
    );
    println!("Paper shape: AODV highest (up to ~140), LDR low, SRP identically zero in all 80 simulations.");
}
