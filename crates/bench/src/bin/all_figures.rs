//! Regenerates Table I and Figures 3–7 from one sweep.
//!
//! ```sh
//! cargo run --release -p slr-bench --bin all_figures            # quick
//! cargo run --release -p slr-bench --bin all_figures -- --paper # full §V
//! ```

use slr_bench::Cli;
use slr_runner::experiment::{run_sweep, Metric};
use slr_runner::report::{render_figure, render_srp_diagnostics, render_table1, render_trend};
use slr_runner::scenario::ProtocolKind;

fn main() {
    let cli = Cli::parse();
    eprintln!("running sweep: {}", cli.describe());
    let t0 = std::time::Instant::now();
    let result = run_sweep(&ProtocolKind::all(), &cli.sweep);
    println!(
        "# SLR reproduction — all experiments ({})\n",
        cli.describe()
    );
    println!("{}", render_table1(&result));
    for (metric, title) in [
        (Metric::MacDrops, "Fig. 3 — Average MAC layer drops"),
        (Metric::DeliveryRatio, "Fig. 4 — Delivery ratio"),
        (
            Metric::NetworkLoad,
            "Fig. 5 — Network load (semi-log in the paper)",
        ),
        (
            Metric::Latency,
            "Fig. 6 — Data latency (semi-log in the paper)",
        ),
        (Metric::AvgSeqno, "Fig. 7 — Average node sequence number"),
    ] {
        println!("{}", render_figure(&result, metric, title));
        println!("{}", render_trend(&result, metric));
    }
    println!("{}", render_srp_diagnostics(&result));
    eprintln!("sweep completed in {:?}", t0.elapsed());
}
