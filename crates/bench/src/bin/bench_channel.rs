//! `bench_channel` — the channel-medium scaling benchmark behind
//! `BENCH_channel.json`: brute-force O(N) scan vs grid-bucketed spatial
//! index, at N ∈ {100, 500, 1000} nodes on the `dense` family's
//! constant-density disc.
//!
//! Two measurements per point:
//!
//! * **medium** — the per-transmission medium path against the dense
//!   family's *moving* nodes: the brute-force channel must rebuild the
//!   exact O(N) position snapshot and scan it for audible neighbors; the
//!   indexed channel syncs the incremental tracker and queries the grid.
//!   Both are timed answering identical carrier-sense-range queries
//!   (results are asserted equal). This is the cost the refactor
//!   removes and the headline `speedup`; everything else `begin_tx`
//!   does (signal bookkeeping per receiver) is shared code, identical
//!   under either medium;
//! * **trial** — a full end-to-end `dense`-family SRP trial under each
//!   medium, whose summaries must be **bit-identical** (the equivalence
//!   guarantee) and whose wall-clock ratio shows what the refactor buys
//!   a whole simulation today (the event loop and MAC, not the medium,
//!   now dominate dense trials).
//!
//! Regenerate the committed snapshot with:
//!
//! ```sh
//! cargo run --release -p slr-bench --bin bench_channel > BENCH_channel.json
//! ```
//!
//! Flags: `--values a,b,c` (node counts, default 100,500,1000),
//! `--seed N` (default 42), `--duration S` (trial seconds, default the
//! family's).

use std::time::Instant;

use slr_mobility::{MobilityScript, Position, WaypointConfig};
use slr_netsim::rng::stream;
use slr_netsim::time::{SimDuration, SimTime};
use slr_radio::{BruteForceMedium, NeighborQuery, PhyConfig};
use slr_runner::cli::parse_cli;
use slr_runner::medium::{MediumView, PositionTracker};
use slr_runner::registry::{Family, SweepParam};
use slr_runner::scenario::ProtocolKind;
use slr_runner::sim::{MediumKind, Sim};
use slr_runner::TrialSummary;

/// Neighbor queries per medium measurement (one per simulated
/// transmission, spaced a 512-byte frame's airtime apart).
const QUERY_TXS: u64 = 50_000;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_cli(&args) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let seed = opts.seed;
    let values = opts.values.unwrap_or_else(|| vec![100, 500, 1000]);

    let mut points = Vec::new();
    for &n in &values {
        eprintln!("bench_channel: N = {n} …");
        let (query_brute, query_grid) = bench_medium(n as usize, seed);

        let scenario_for = |_| {
            let mut s =
                Family::Dense.scenario_at(ProtocolKind::Srp, seed, 0, false, SweepParam::Nodes, n);
            if let Some(d) = opts.duration {
                s.end = SimTime::from_secs(d);
            }
            s
        };
        let (brute_summary, trial_brute_ms) = run_trial(scenario_for(()), MediumKind::BruteForce);
        let (grid_summary, trial_grid_ms) = run_trial(scenario_for(()), MediumKind::SpatialGrid);
        let identical = brute_summary == grid_summary;
        assert!(
            identical,
            "media diverged at N={n}:\n brute {brute_summary:?}\n grid  {grid_summary:?}"
        );

        points.push(format!(
            "    {{\n      \"nodes\": {n},\n      \
             \"medium_ns_per_tx_brute\": {:.0},\n      \
             \"medium_ns_per_tx_grid\": {:.0},\n      \
             \"speedup\": {:.2},\n      \
             \"trial_ms_brute\": {:.1},\n      \
             \"trial_ms_grid\": {:.1},\n      \
             \"trial_speedup\": {:.2},\n      \
             \"summaries_identical\": {identical},\n      \
             \"delivery_ratio\": {:.4}\n    }}",
            query_brute,
            query_grid,
            query_brute / query_grid,
            trial_brute_ms,
            trial_grid_ms,
            trial_brute_ms / trial_grid_ms,
            grid_summary.delivery_ratio,
        ));
        eprintln!(
            "bench_channel: N = {n}: medium {:.0} → {:.0} ns/tx ({:.1}×), \
             trial {:.0} → {:.0} ms ({:.1}×), summaries identical",
            query_brute,
            query_grid,
            query_brute / query_grid,
            trial_brute_ms,
            trial_grid_ms,
            trial_brute_ms / trial_grid_ms,
        );
    }

    println!(
        "{{\n  \"benchmark\": \"channel-medium-scaling\",\n  \
         \"command\": \"cargo run --release -p slr-bench --bin bench_channel > BENCH_channel.json\",\n  \
         \"description\": \"brute-force O(N) medium (exact snapshot rebuild + linear scan per tx) vs grid-bucketed spatial index with incremental position tracking, on the dense family's mobile constant-density disc; medium_ns_per_tx = per-transmission position maintenance + carrier-sense neighbor query, trial = full SRP dense trial (summaries must be bit-identical)\",\n  \
         \"seed\": {seed},\n  \"txs_per_point\": {QUERY_TXS},\n  \"points\": [\n{}\n  ]\n}}",
        points.join(",\n")
    );
}

/// Times one full dense trial under `medium`.
fn run_trial(scenario: slr_runner::Scenario, medium: MediumKind) -> (TrialSummary, f64) {
    let sim = Sim::new(scenario).with_medium(medium);
    let start = Instant::now();
    let summary = sim.run();
    (summary, start.elapsed().as_secs_f64() * 1e3)
}

/// Times the per-transmission medium path against the dense family's
/// moving nodes, returning (brute, grid) nanoseconds per transmission.
/// Both implementations answer the same carrier-sense-range queries; the
/// results are asserted identical (index, distance and order).
fn bench_medium(n: usize, seed: u64) -> (f64, f64) {
    let script = dense_script(n, seed);
    let cs_range = PhyConfig::default().cs_range_m;

    // Brute-force path: exact snapshot rebuild + O(N) scan per tx.
    let mut snapshot: Vec<Position> = Vec::new();
    let mut brute_out: Vec<(usize, f64)> = Vec::new();
    let brute_ns = time_medium(
        n,
        |src, now, out| {
            script.positions_into(now, &mut snapshot);
            BruteForceMedium(&snapshot).neighbors_within(src, cs_range, out);
        },
        &mut brute_out,
    );

    // Indexed path: incremental tracker sync + grid query.
    let mut tracker = PositionTracker::new(&script, cs_range);
    let mut grid_out: Vec<(usize, f64)> = Vec::new();
    let grid_ns = time_medium(
        n,
        |src, now, out| {
            tracker.sync_to(&script, now);
            MediumView::new(&tracker, &script, now).neighbors_within(src, cs_range, out);
        },
        &mut grid_out,
    );

    assert_eq!(brute_out, grid_out, "media answered differently at N={n}");
    (brute_ns, grid_ns)
}

/// The dense family's mobility script: waypoint motion (max 20 m/s, no
/// pauses) over the constant-density disc.
fn dense_script(n: usize, seed: u64) -> MobilityScript {
    let radius = Family::dense_disc_radius(n);
    let spec = slr_runner::TopologySpec::Disc { radius };
    let terrain = slr_mobility::Terrain::new(2.0 * radius, 2.0 * radius);
    let starts = spec.positions(n, &terrain, &mut stream(seed, "bench-channel", 0));
    let cfg = WaypointConfig {
        terrain,
        min_speed: 0.1,
        max_speed: 20.0,
        pause: SimDuration::ZERO,
        duration: SimDuration::from_secs(150),
    };
    MobilityScript::generate_from(&starts, &cfg, &mut stream(seed, "bench-channel-mob", 0))
}

/// Runs `QUERY_TXS` queries through `medium`, one per simulated
/// transmission (times advance by a 512-byte frame's airtime), after an
/// untimed warm-up eighth (steady-state numbers, not cold-cache ones).
/// Every 64th timed result is retained in `kept` for
/// cross-implementation checking.
fn time_medium(
    n: usize,
    mut medium: impl FnMut(usize, SimTime, &mut Vec<(usize, f64)>),
    kept: &mut Vec<(usize, f64)>,
) -> f64 {
    let airtime = PhyConfig::default().airtime(512 + 34);
    let mut out: Vec<(usize, f64)> = Vec::new();
    let mut now = SimTime::ZERO;
    for i in 0..QUERY_TXS / 8 {
        out.clear();
        medium((i as usize * 7919) % n, now, &mut out);
        now += airtime;
    }
    let start = Instant::now();
    for i in 0..QUERY_TXS {
        let src = (i as usize * 7919) % n; // co-prime stride over sources
        out.clear();
        medium(src, now, &mut out);
        if i % 64 == 0 {
            kept.extend_from_slice(&out);
        }
        now += airtime;
    }
    start.elapsed().as_nanos() as f64 / QUERY_TXS as f64
}
