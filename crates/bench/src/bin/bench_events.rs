//! `bench_events` — the event-engine scaling benchmark behind
//! `BENCH_events.json`: batched `TxComplete` completion vs the retained
//! per-receiver `RxEnd`/`TxEnd` scheduling, on full `dense`-family SRP
//! trials at N ∈ {1000, 2000, 5000}.
//!
//! Per point it reports:
//!
//! * **trial wall clock** under each engine (the per-receiver oracle is
//!   skipped above `--values` entries past `PER_RECEIVER_CAP` nodes to
//!   keep regeneration affordable; the summaries of every pair that does
//!   run are asserted **bit-identical** — the equivalence guarantee the
//!   proptests fuzz);
//! * **events processed** under each engine: batching collapses ~50
//!   per-receiver heap events per transmission into one;
//! * the **whole-trial speedup** against the last per-receiver-engine
//!   whole-trial figure committed before the engine overhaul
//!   (`BENCH_channel.json` of the spatial-index PR recorded the N = 1000
//!   dense trial at 7636.6 ms through the same grid medium), answering
//!   the ROADMAP scaling item in its own units.
//!
//! The default run records every node count at the dense family's
//! default duration (40 s simulated) and appends one more 5000-node
//! point at the CI smoke budget (30 s simulated, the duration the
//! workflow's dense trial has used since the spatial-index PR) — the
//! ROADMAP "5,000-node dense trial under 10 s wall-clock" gate is scored
//! on that budget trial, with the full-duration figure alongside it.
//!
//! Every point also carries a **per-phase wall-clock breakdown** (medium
//! query / signal completion / MAC / protocol, from a separately timed
//! instrumented batched trial whose summary is asserted identical): the
//! attribution that makes `BENCH_parallel.json`'s worker-count scaling
//! curve explainable — only the signal/MAC/protocol phases run inside
//! conservative windows; the medium query lives in MAC-timer dispatch,
//! which the parallel engine keeps serial.
//!
//! Regenerate the committed snapshot with:
//!
//! ```sh
//! cargo run --release -p slr-bench --bin bench_events > BENCH_events.json
//! ```
//!
//! Flags: `--values a,b,c` (node counts, default 1000,2000,5000),
//! `--seed N` (default 42), `--duration S` (override trial seconds).

use std::time::Instant;

use slr_netsim::time::SimTime;
use slr_runner::cli::parse_cli;
use slr_runner::registry::{Family, SweepParam};
use slr_runner::scenario::ProtocolKind;
use slr_runner::sim::{EngineKind, Sim};
use slr_runner::{Metrics, TrialSummary};

/// Largest node count at which the per-receiver oracle trial also runs
/// (it schedules ~50× the heap events; above this it only costs
/// regeneration time without adding information — equivalence at scale
/// is covered by `proptest_engine.rs`).
const PER_RECEIVER_CAP: u64 = 2000;

/// The N = 1000 dense whole-trial wall clock committed in
/// `BENCH_channel.json` before the engine overhaul (same grid medium,
/// same family defaults, per-receiver scheduling and lazy-cancel queue).
const PRE_OVERHAUL_N1000_TRIAL_MS: f64 = 7636.6;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_cli(&args) {
        Ok(opts) => opts,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    let seed = opts.seed;
    // (nodes, duration override): family-default duration per count,
    // plus the 5000-node CI-smoke-budget trial (30 s simulated).
    let runs: Vec<(u64, Option<u64>)> = match opts.values {
        Some(v) => v.into_iter().map(|n| (n, opts.duration)).collect(),
        None => vec![(1000, None), (2000, None), (5000, None), (5000, Some(30))],
    };

    let mut points = Vec::new();
    for &(n, duration) in &runs {
        eprintln!("bench_events: N = {n} (batched) …");
        let scenario_for = || {
            let mut s =
                Family::Dense.scenario_at(ProtocolKind::Srp, seed, 0, false, SweepParam::Nodes, n);
            if let Some(d) = duration {
                s.end = SimTime::from_secs(d);
            }
            s
        };
        let duration_s = duration.unwrap_or_else(|| scenario_for().end.as_secs_f64() as u64);
        // The CI-smoke-budget point is the ROADMAP gate and the one
        // figure compared across PRs, so sample it several times and
        // score the minimum: single-run wall clocks on shared containers
        // vary ±5–10 % run-to-run, which a lone sample misreads as an
        // engine regression (the Rc→Arc payload switch was blamed for a
        // delta that multi-run timing attributes mostly to noise).
        let samples = if duration.is_some() { 3 } else { 1 };
        let mut runs_ms = Vec::new();
        let mut first: Option<(TrialSummary, Metrics)> = None;
        for _ in 0..samples {
            let (summary, metrics, ms) = run_trial(scenario_for(), EngineKind::Batched);
            if let Some((s0, _)) = &first {
                assert_eq!(s0, &summary, "repeated batched trials diverged at N={n}");
            } else {
                first = Some((summary, metrics));
            }
            runs_ms.push(ms);
        }
        let (batched_summary, batched_metrics) = first.expect("at least one sample");
        let batched_ms = runs_ms.iter().copied().fold(f64::INFINITY, f64::min);
        let runs_field = if samples > 1 {
            format!(
                "\n      \"trial_ms_batched_runs\": [{}],",
                runs_ms
                    .iter()
                    .map(|ms| format!("{ms:.1}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        } else {
            String::new()
        };

        // The phase breakdown comes from a second, instrumented trial so
        // the headline wall clock stays probe-free; instrumentation must
        // not perturb the simulation itself.
        eprintln!("bench_events: N = {n} (batched, phase-instrumented) …");
        let (phased_summary, _, phases, phased_ms) = {
            let sim = Sim::new(scenario_for()).with_engine(EngineKind::Batched);
            let start = Instant::now();
            let (summary, metrics, phases) = sim.run_phased();
            let ms = start.elapsed().as_secs_f64() * 1e3;
            (summary, metrics, phases, ms)
        };
        assert_eq!(
            batched_summary, phased_summary,
            "phase instrumentation perturbed the trial at N={n}"
        );
        let phase_ms = |d: std::time::Duration| d.as_secs_f64() * 1e3;
        let accounted = phase_ms(phases.medium)
            + phase_ms(phases.signal)
            + phase_ms(phases.mac)
            + phase_ms(phases.proto);
        let phases_json = format!(
            "\n      \"phases\": {{\n        \"instrumented_trial_ms\": {phased_ms:.1},\n        \
             \"medium_ms\": {:.1},\n        \"signal_ms\": {:.1},\n        \
             \"mac_ms\": {:.1},\n        \"proto_ms\": {:.1},\n        \
             \"other_ms\": {:.1}\n      }},",
            phase_ms(phases.medium),
            phase_ms(phases.signal),
            phase_ms(phases.mac),
            phase_ms(phases.proto),
            (phased_ms - accounted).max(0.0),
        );

        let per_receiver = if n <= PER_RECEIVER_CAP {
            eprintln!("bench_events: N = {n} (per-receiver oracle) …");
            let (summary, metrics, ms) = run_trial(scenario_for(), EngineKind::PerReceiver);
            assert_eq!(
                batched_summary, summary,
                "engines diverged at N={n}:\n batched {batched_summary:?}\n per-rx {summary:?}"
            );
            Some((metrics, ms))
        } else {
            None
        };

        let per_rx_fields = match &per_receiver {
            Some((m, ms)) => format!(
                "\n      \"trial_ms_per_receiver\": {ms:.1},\n      \
                 \"events_per_receiver\": {},\n      \
                 \"speedup_vs_per_receiver\": {:.2},\n      \
                 \"summaries_identical\": true,",
                m.sim_events,
                ms / batched_ms,
            ),
            None => String::new(),
        };
        let vs_pre = if n == 1000 && duration.is_none() {
            format!(
                "\n      \"speedup_vs_pre_overhaul_trial\": {:.2},",
                PRE_OVERHAUL_N1000_TRIAL_MS / batched_ms
            )
        } else {
            String::new()
        };
        points.push(format!(
            "    {{\n      \"nodes\": {n},\n      \
             \"duration_s\": {duration_s},{runs_field}\n      \
             \"trial_ms_batched\": {batched_ms:.1},\n      \
             \"events_batched\": {},{per_rx_fields}{vs_pre}{phases_json}\n      \
             \"transmissions\": {},\n      \
             \"delivery_ratio\": {:.4}\n    }}",
            batched_metrics.sim_events,
            batched_metrics.mac_tx_data + batched_metrics.control_sent,
            batched_summary.delivery_ratio,
        ));
        eprintln!(
            "bench_events: N = {n}: batched {batched_ms:.0} ms ({} events){}",
            batched_metrics.sim_events,
            match &per_receiver {
                Some((m, ms)) => format!(
                    ", per-receiver {ms:.0} ms ({} events, {:.2}×), summaries identical",
                    m.sim_events,
                    ms / batched_ms
                ),
                None => String::new(),
            }
        );
    }

    println!(
        "{{\n  \"benchmark\": \"event-engine-scaling\",\n  \
         \"command\": \"cargo run --release -p slr-bench --bin bench_events > BENCH_events.json\",\n  \
         \"description\": \"batched TxComplete completion (one heap event per transmission; receivers complete in ascending order from the channel's retained receiver set) vs the retained per-receiver RxEnd/TxEnd oracle, on full dense-family SRP trials at the family's default duration; paired summaries are asserted bit-identical; speedup_vs_pre_overhaul_trial compares against the N=1000 whole-trial figure committed in BENCH_channel.json before the engine overhaul (7636.6 ms); phases attributes a separately-instrumented batched trial's wall clock to medium query / signal completion / MAC / protocol (signal+mac+proto parallelize under --engine parallel, the medium query stays serial — see BENCH_parallel.json)\",\n  \
         \"seed\": {seed},\n  \"points\": [\n{}\n  ]\n}}",
        points.join(",\n")
    );
}

/// Times one full dense trial under `engine`.
fn run_trial(scenario: slr_runner::Scenario, engine: EngineKind) -> (TrialSummary, Metrics, f64) {
    let sim = Sim::new(scenario).with_engine(engine);
    let start = Instant::now();
    let (summary, metrics) = sim.run_detailed();
    let ms = start.elapsed().as_secs_f64() * 1e3;
    (summary, metrics, ms)
}
