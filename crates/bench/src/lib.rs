//! # slr-bench — benchmark harness for the SLR reproduction
//!
//! Two kinds of targets:
//!
//! * **Binaries**, one per paper table/figure (`table1`, `fig3` … `fig7`,
//!   plus `all_figures` which regenerates everything from a single sweep).
//!   Default is a laptop-scale quick mode (50 nodes, 160 s, 3 trials);
//!   pass `--paper` for the full §V configuration (100 nodes, 910 s,
//!   10 trials — hours of CPU).
//! * **Criterion micro-benches** for the label algebra, `NEWORDER`, the
//!   event queue, the MAC state machine, protocol packet handling, and
//!   miniature end-to-end scenarios, including the mediant-vs-Farey
//!   ablation from the paper's conclusion.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use slr_runner::experiment::{SweepConfig, PAUSE_TIMES};

/// Command-line options shared by the figure/table binaries.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Sweep configuration assembled from the flags.
    pub sweep: SweepConfig,
    /// Whether `--paper` was requested.
    pub paper: bool,
}

impl Cli {
    /// Parses `std::env::args`.
    ///
    /// Flags: `--paper`, `--trials N`, `--seed N`, `--threads N`,
    /// `--pauses a,b,c` (defaults to the paper's eight pause times).
    pub fn parse() -> Cli {
        let mut paper = false;
        let mut trials: Option<u64> = None;
        let mut seed = 42u64;
        let mut threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        let mut pauses: &'static [u64] = &PAUSE_TIMES;

        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--paper" => paper = true,
                "--trials" => {
                    i += 1;
                    trials = args.get(i).and_then(|s| s.parse().ok());
                }
                "--seed" => {
                    i += 1;
                    seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(seed);
                }
                "--threads" => {
                    i += 1;
                    threads = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(threads);
                }
                "--pauses" => {
                    i += 1;
                    if let Some(list) = args.get(i) {
                        let parsed: Vec<u64> =
                            list.split(',').filter_map(|s| s.parse().ok()).collect();
                        if !parsed.is_empty() {
                            pauses = Box::leak(parsed.into_boxed_slice());
                        }
                    }
                }
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --paper (full §V scale) --trials N --seed N --threads N --pauses a,b,c"
                    );
                    std::process::exit(0);
                }
                other => eprintln!("ignoring unknown flag {other}"),
            }
            i += 1;
        }

        let trials = trials.unwrap_or(if paper { 10 } else { 3 });
        Cli {
            sweep: SweepConfig {
                seed,
                trials,
                pauses,
                paper_scale: paper,
                threads,
            },
            paper,
        }
    }

    /// One-line description of the configuration, for run logs.
    pub fn describe(&self) -> String {
        format!(
            "{} scale, {} trials/point, pauses {:?}, seed {}, {} threads",
            if self.paper { "paper (100 nodes, 910 s)" } else { "quick (50 nodes, 160 s)" },
            self.sweep.trials,
            self.sweep.pauses,
            self.sweep.seed,
            self.sweep.threads
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cli_shape() {
        // Parsing with no args (test binary args are filtered out as
        // unknown flags at worst).
        let cli = Cli {
            sweep: SweepConfig {
                seed: 42,
                trials: 3,
                pauses: &PAUSE_TIMES,
                paper_scale: false,
                threads: 2,
            },
            paper: false,
        };
        assert!(cli.describe().contains("quick"));
        assert_eq!(cli.sweep.pauses.len(), 8);
    }
}
