//! # slr-bench — benchmark harness for the SLR reproduction
//!
//! Two kinds of targets:
//!
//! * **Binaries**, one per paper table/figure (`table1`, `fig3` … `fig7`,
//!   plus `all_figures` which regenerates everything from a single sweep).
//!   Default is a laptop-scale quick mode (50 nodes, 160 s, 3 trials);
//!   pass `--paper` for the full §V configuration (100 nodes, 910 s,
//!   10 trials — hours of CPU). Any registered scenario family can be
//!   substituted with `--scenario NAME`.
//! * **Criterion micro-benches** for the label algebra, `NEWORDER`, the
//!   event queue, the MAC state machine, protocol packet handling, and
//!   miniature end-to-end scenarios, including the mediant-vs-Farey
//!   ablation from the paper's conclusion.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use slr_runner::cli::{parse_cli, render_scenario_list, usage, CliAction};
use slr_runner::experiment::SweepConfig;

/// Command-line options shared by the figure/table binaries.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Sweep configuration assembled from the flags.
    pub sweep: SweepConfig,
    /// Whether `--paper` was requested.
    pub paper: bool,
}

impl Cli {
    /// Parses `std::env::args` with the flag parser shared with `slrsim`
    /// ([`slr_runner::cli::parse_cli`]).
    ///
    /// Flags: `--paper`, `--trials N` (default 10 at paper scale, else 3),
    /// `--seed N`, `--threads N` (default: available parallelism),
    /// `--pauses a,b,c` (defaults to the paper's eight pause times),
    /// `--scenario NAME` (any registry family; its default param/values
    /// replace the pause sweep), `--param NAME`, `--values a,b,c`,
    /// `--dynamics churn[:R]|partition[:K]|crash[:N]`.
    pub fn parse() -> Cli {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let opts = match parse_cli(&args) {
            Ok(opts) => opts,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        };
        match opts.action {
            CliAction::Help => {
                eprintln!("{}", usage("(figure/table binary)"));
                std::process::exit(0);
            }
            CliAction::ListScenarios => {
                print!("{}", render_scenario_list());
                std::process::exit(0);
            }
            CliAction::Run => {}
        }
        // The figure/table binaries fix their own protocol sets and output
        // formats; accepting these flags and ignoring them would silently
        // change what an hours-long sweep appears to measure.
        if opts.protocols.is_some() || opts.json || opts.oracle {
            eprintln!(
                "--protocol/--json/--oracle are slrsim flags; the figure binaries \
                 run the paper's protocol set with their own output"
            );
            std::process::exit(2);
        }
        let paper = opts.paper;
        let workers = opts.effective_workers();
        let trials = opts.trials.unwrap_or(if paper { 10 } else { 3 });
        let threads = opts.threads.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        });
        let (param, values) =
            match SweepConfig::resolve(opts.family, opts.param, opts.values, paper) {
                Ok(resolved) => resolved,
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(2);
                }
            };
        let sweep = SweepConfig {
            seed: opts.seed,
            trials,
            family: opts.family,
            param,
            values,
            paper_scale: paper,
            threads,
            override_nodes: opts.nodes,
            override_flows: opts.flows,
            override_duration: opts.duration,
            override_dynamics: opts.dynamics,
            override_adversary: opts.adversary,
            validate_spatial: opts.validate_spatial,
            engine: opts.engine,
            workers,
        };
        if let Err(e) = sweep.validate() {
            eprintln!("{e}");
            std::process::exit(2);
        }
        Cli { sweep, paper }
    }

    /// One-line description of the configuration, for run logs.
    pub fn describe(&self) -> String {
        format!(
            "{} scale, family {}, {} trials/point, {} {:?}, seed {}, {} threads",
            if self.paper {
                "paper (100 nodes, 910 s)"
            } else {
                "quick (50 nodes, 160 s)"
            },
            self.sweep.family.name(),
            self.sweep.trials,
            self.sweep.param.name(),
            self.sweep.values,
            self.sweep.seed,
            self.sweep.threads
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slr_runner::experiment::PAUSE_TIMES;

    #[test]
    fn default_cli_shape() {
        // Parsing with no args (test binary args are filtered out as
        // unknown flags at worst).
        let cli = Cli {
            sweep: SweepConfig {
                seed: 42,
                trials: 3,
                values: PAUSE_TIMES.to_vec(),
                threads: 2,
                ..SweepConfig::default()
            },
            paper: false,
        };
        assert!(cli.describe().contains("quick"));
        assert!(cli.describe().contains("paper-sweep"));
        assert_eq!(cli.sweep.values.len(), 8);
    }
}
