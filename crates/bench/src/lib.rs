//! # slr-bench — benchmark harness for the SLR reproduction
//!
//! Two kinds of targets:
//!
//! * **Binaries**, one per paper table/figure (`table1`, `fig3` … `fig7`,
//!   plus `all_figures` which regenerates everything from a single sweep).
//!   Default is a laptop-scale quick mode (50 nodes, 160 s, 3 trials);
//!   pass `--paper` for the full §V configuration (100 nodes, 910 s,
//!   10 trials — hours of CPU). Any registered scenario family can be
//!   substituted with `--scenario NAME`.
//! * **Criterion micro-benches** for the label algebra, `NEWORDER`, the
//!   event queue, the MAC state machine, protocol packet handling, and
//!   miniature end-to-end scenarios, including the mediant-vs-Farey
//!   ablation from the paper's conclusion.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use slr_runner::experiment::{parse_values, SweepConfig};
use slr_runner::registry::{Family, SweepParam};

/// Command-line options shared by the figure/table binaries.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Sweep configuration assembled from the flags.
    pub sweep: SweepConfig,
    /// Whether `--paper` was requested.
    pub paper: bool,
}

impl Cli {
    /// Parses `std::env::args`.
    ///
    /// Flags: `--paper`, `--trials N`, `--seed N`, `--threads N`,
    /// `--pauses a,b,c` (defaults to the paper's eight pause times),
    /// `--scenario NAME` (any registry family; its default param/values
    /// replace the pause sweep), `--param NAME`, `--values a,b,c`.
    pub fn parse() -> Cli {
        let mut paper = false;
        let mut trials: Option<u64> = None;
        let mut seed = 42u64;
        let mut threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        let mut family = Family::PaperSweep;
        let mut param: Option<SweepParam> = None;
        let mut values: Option<Vec<u64>> = None;

        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--paper" => paper = true,
                "--trials" => {
                    i += 1;
                    trials = args.get(i).and_then(|s| s.parse().ok());
                }
                "--seed" => {
                    i += 1;
                    seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(seed);
                }
                "--threads" => {
                    i += 1;
                    threads = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(threads);
                }
                "--scenario" | "--family" => {
                    i += 1;
                    match args.get(i).and_then(|s| Family::parse(s)) {
                        Some(f) => family = f,
                        None => {
                            eprintln!("unknown scenario family {:?}", args.get(i));
                            std::process::exit(2);
                        }
                    }
                }
                "--param" => {
                    i += 1;
                    match args.get(i).and_then(|s| SweepParam::parse(s)) {
                        Some(p) => param = Some(p),
                        None => {
                            eprintln!(
                                "unknown sweep parameter {:?} (pause|nodes|flows|rate|speed)",
                                args.get(i)
                            );
                            std::process::exit(2);
                        }
                    }
                }
                "--pauses" | "--values" => {
                    i += 1;
                    match parse_values(args.get(i).map(String::as_str).unwrap_or_default()) {
                        Ok(list) => values = Some(list),
                        Err(e) => {
                            eprintln!("--values: {e}");
                            std::process::exit(2);
                        }
                    }
                }
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --paper (full §V scale) --trials N --seed N --threads N \
                         --pauses a,b,c --scenario NAME --param NAME --values a,b,c"
                    );
                    std::process::exit(0);
                }
                other => eprintln!("ignoring unknown flag {other}"),
            }
            i += 1;
        }

        let trials = trials.unwrap_or(if paper { 10 } else { 3 });
        let (param, values) = match SweepConfig::resolve(family, param, values, paper) {
            Ok(resolved) => resolved,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        };
        Cli {
            sweep: SweepConfig {
                seed,
                trials,
                family,
                param,
                values,
                paper_scale: paper,
                threads,
                ..SweepConfig::default()
            },
            paper,
        }
    }

    /// One-line description of the configuration, for run logs.
    pub fn describe(&self) -> String {
        format!(
            "{} scale, family {}, {} trials/point, {} {:?}, seed {}, {} threads",
            if self.paper {
                "paper (100 nodes, 910 s)"
            } else {
                "quick (50 nodes, 160 s)"
            },
            self.sweep.family.name(),
            self.sweep.trials,
            self.sweep.param.name(),
            self.sweep.values,
            self.sweep.seed,
            self.sweep.threads
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slr_runner::experiment::PAUSE_TIMES;

    #[test]
    fn default_cli_shape() {
        // Parsing with no args (test binary args are filtered out as
        // unknown flags at worst).
        let cli = Cli {
            sweep: SweepConfig {
                seed: 42,
                trials: 3,
                values: PAUSE_TIMES.to_vec(),
                threads: 2,
                ..SweepConfig::default()
            },
            paper: false,
        };
        assert!(cli.describe().contains("quick"));
        assert!(cli.describe().contains("paper-sweep"));
        assert_eq!(cli.sweep.values.len(), 8);
    }
}
