//! Algorithm 1 (`NEWORDER`) throughput over its distinct cases.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use slr_core::{new_order, Fraction, SplitLabel};

fn label(sn: u64, n: u32, d: u32) -> SplitLabel<u32> {
    SplitLabel::new(sn, Fraction::new(n, d).unwrap())
}

fn bench_neworder_cases(c: &mut Criterion) {
    let cases = [
        (
            "next_element",
            label(1, 1, 2),
            label(1, 2, 3),
            label(2, 1, 3),
        ),
        ("split", label(1, 1, 2), label(2, 2, 3), label(2, 1, 3)),
        ("keep_own", label(3, 1, 2), label(3, 2, 3), label(3, 1, 3)),
        ("infeasible", label(5, 1, 2), label(0, 1, 1), label(4, 1, 3)),
    ];
    for (name, own, cached, adv) in cases {
        c.bench_function(format!("neworder/{name}"), |b| {
            b.iter(|| new_order(black_box(own), black_box(cached), black_box(adv)))
        });
    }
}

fn bench_neworder_chain(c: &mut Criterion) {
    // A full reply path: 20 hops of successive relabeling.
    c.bench_function("neworder/20_hop_reply_path", |b| {
        b.iter(|| {
            let mut adv = SplitLabel::<u32>::destination(1);
            for _ in 0..20 {
                let g = new_order(SplitLabel::unassigned(), SplitLabel::unassigned(), adv);
                adv = g.label;
            }
            adv
        })
    });
}

criterion_group!(benches, bench_neworder_cases, bench_neworder_chain);
criterion_main!(benches);
