//! Ablation A (DESIGN.md): raw **mediant** splitting versus the
//! **Farey-tree** simplest-in-interval interpolation the paper's
//! conclusion proposes. Farey consumes the fixed-width budget far more
//! slowly (more splits before a path reset) at a higher per-split cost.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use slr_core::slr::{DenseLabel, FareyFraction};
use slr_core::sternbrocot::simplest_between;
use slr_core::{Frac32, Fraction};

/// Split budget under a **relabel storm**: a chain of 8 nodes between two
/// anchors, where every node repeatedly relabels itself strictly between
/// its current neighbors (the §II insertion pattern applied in place).
/// Neighboring labels come from independent histories, so the intervals
/// are not Farey neighbors — the case where reduction pays.
///
/// With raw mediants the denominators compound and a 32-bit label
/// overflows after ~15 rounds (forcing a path reset); with Farey
/// interpolation the denominators never exceed single digits, so the cap
/// of 2 000 rounds is reached without any reset.
fn relabel_storm_rounds(farey: bool) -> u32 {
    const N: usize = 8;
    const CAP: u32 = 2_000;
    let mut labels: Vec<Frac32> = (0..N + 2)
        .map(|i| Fraction::new(i as u32, (N + 1) as u32).unwrap())
        .collect();
    let mut rounds = 0;
    while rounds < CAP {
        for i in 1..=N {
            let lo = labels[i - 1];
            let hi = labels[i + 1];
            let m = if farey {
                match simplest_between(&lo, &hi) {
                    Some(m) => m,
                    None => return rounds,
                }
            } else {
                match lo.checked_mediant(&hi) {
                    Some(m) => m,
                    None => return rounds,
                }
            };
            labels[i] = m;
        }
        rounds += 1;
    }
    rounds
}

fn mediant_splits_until_overflow() -> u32 {
    relabel_storm_rounds(false)
}

fn farey_splits_until_overflow() -> u32 {
    relabel_storm_rounds(true)
}

fn bench_split_budget(c: &mut Criterion) {
    c.bench_function("strategy/mediant_relabel_storm", |b| {
        b.iter(mediant_splits_until_overflow)
    });
    c.bench_function("strategy/farey_relabel_storm", |b| {
        b.iter(farey_splits_until_overflow)
    });
    // Report the ablation numbers once.
    eprintln!(
        "[ablation] relabel-storm rounds before u32 overflow: mediant = {}, farey = {} (2000 = never)",
        mediant_splits_until_overflow(),
        farey_splits_until_overflow()
    );
}

fn bench_single_split_cost(c: &mut Criterion) {
    let lo: Frac32 = Fraction::new(355, 1130).unwrap();
    let hi: Frac32 = Fraction::new(356, 1131).unwrap();
    c.bench_function("strategy/single_mediant", |b| {
        b.iter(|| black_box(lo).checked_mediant(&black_box(hi)))
    });
    c.bench_function("strategy/single_farey", |b| {
        b.iter(|| simplest_between(&black_box(lo), &black_box(hi)))
    });
    let flo = FareyFraction(lo);
    let fhi = FareyFraction(hi);
    c.bench_function("strategy/dense_label_between_farey", |b| {
        b.iter(|| FareyFraction::between(&black_box(flo), &black_box(fhi)))
    });
}

criterion_group!(benches, bench_split_budget, bench_single_split_cost);
criterion_main!(benches);
