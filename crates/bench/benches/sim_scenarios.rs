//! Miniature end-to-end scenario benchmarks: one per protocol, measuring
//! whole-simulation wall time on a small static network. These exist to
//! track harness performance, not the paper's metrics (the figure binaries
//! regenerate those).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use slr_mobility::Position;
use slr_netsim::time::SimTime;
use slr_runner::scenario::{ProtocolKind, Scenario};
use slr_runner::sim::Sim;
use slr_traffic::{PacketSpec, TrafficScript};

fn tiny_sim(kind: ProtocolKind) -> Sim {
    let mut scenario = Scenario::quick(kind, 900, 3, 0);
    scenario.nodes = 10;
    scenario.end = SimTime::from_secs(15);
    let positions: Vec<Position> = (0..10)
        .map(|i| Position::new(150.0 * i as f64, 0.0))
        .collect();
    let packets: Vec<PacketSpec> = (0..40)
        .map(|i| PacketSpec {
            time: SimTime::from_millis(5_000 + i * 250),
            src: 0,
            dst: 9,
            bytes: 512,
            flow: 0,
        })
        .collect();
    Sim::with_static_topology(scenario, positions, TrafficScript::from_packets(packets))
}

fn bench_scenarios(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim");
    group.sample_size(10);
    for kind in ProtocolKind::all() {
        group.bench_function(format!("10_node_line_15s/{}", kind.name()), |b| {
            b.iter_batched(|| tiny_sim(kind), |sim| sim.run(), BatchSize::PerIteration)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scenarios);
criterion_main!(benches);
