//! Micro-benchmarks of the fraction algebra, including the 32-bit vs
//! 64-bit split-capacity ablation (DESIGN.md Ablation B).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use slr_core::fraction::worst_case_split_capacity;
use slr_core::{Frac32, Frac64, Fraction};

fn bench_mediant(c: &mut Criterion) {
    let a: Frac32 = Fraction::new(355, 113_000).unwrap();
    let b: Frac32 = Fraction::new(377, 120_000).unwrap();
    c.bench_function("fraction/mediant_u32", |bench| {
        bench.iter(|| black_box(a).checked_mediant(&black_box(b)))
    });
    let a64: Frac64 = Fraction::new(355, 113_000).unwrap();
    let b64: Frac64 = Fraction::new(377, 120_000).unwrap();
    c.bench_function("fraction/mediant_u64", |bench| {
        bench.iter(|| black_box(a64).checked_mediant(&black_box(b64)))
    });
}

fn bench_compare(c: &mut Criterion) {
    let a: Frac32 = Fraction::new(499_999, 1_000_000).unwrap();
    let b: Frac32 = Fraction::new(500_001, 1_000_001).unwrap();
    c.bench_function("fraction/cmp_cross_multiply", |bench| {
        bench.iter(|| black_box(a) < black_box(b))
    });
}

fn bench_reduce(c: &mut Criterion) {
    let a: Frac32 = Fraction::new(2 * 3 * 5 * 7 * 11, 2 * 3 * 5 * 7 * 13).unwrap();
    c.bench_function("fraction/reduce_gcd", |bench| {
        bench.iter(|| black_box(a).reduced())
    });
}

fn bench_split_capacity_ablation(c: &mut Criterion) {
    // Worst-case Fibonacci splitting until overflow: 45 splits for u32,
    // 91 for u64 — the paper's §III bound, measured.
    c.bench_function("fraction/worst_case_splits_u32", |bench| {
        bench.iter(|| {
            let mut a = Frac32::zero();
            let mut b = Frac32::one();
            let mut n = 0u32;
            while let Some(m) = a.checked_mediant(&b) {
                a = b;
                b = m;
                n += 1;
            }
            assert_eq!(n, worst_case_split_capacity::<u32>());
            n
        })
    });
    c.bench_function("fraction/worst_case_splits_u64", |bench| {
        bench.iter(|| {
            let mut a = Frac64::zero();
            let mut b = Frac64::one();
            let mut n = 0u32;
            while let Some(m) = a.checked_mediant(&b) {
                a = b;
                b = m;
                n += 1;
            }
            assert_eq!(n, worst_case_split_capacity::<u64>());
            n
        })
    });
}

criterion_group!(
    benches,
    bench_mediant,
    bench_compare,
    bench_reduce,
    bench_split_capacity_ablation
);
criterion_main!(benches);
