//! MAC state-machine micro-benchmarks: the cost of one contention cycle
//! and of receive-path processing.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use slr_netsim::time::{SimDuration, SimTime};
use slr_radio::{Frame, FrameKind, Mac, MacConfig, MacEffect, MacTimer};

fn drive_one_broadcast(mac: &mut Mac<u32>, now: SimTime) -> SimTime {
    let mut now = now;
    let mut fx = mac.enqueue(1, None, 48, true, now);
    for _ in 0..4 {
        let timer = fx.iter().find_map(|e| match e {
            MacEffect::SetTimer(k, d) => Some((*k, *d)),
            _ => None,
        });
        match timer {
            Some((k, d)) => {
                now += d;
                fx = mac.on_timer(k, now);
            }
            None => break,
        }
        if fx.iter().any(|e| matches!(e, MacEffect::StartTx(_))) {
            now += SimDuration::from_micros(500);
            let _ = mac.on_tx_end(now);
            break;
        }
    }
    now
}

fn bench_contention_cycle(c: &mut Criterion) {
    c.bench_function("mac/broadcast_contention_cycle", |b| {
        let mut mac: Mac<u32> = Mac::new(0, MacConfig::default(), 7);
        let mut now = SimTime::ZERO;
        b.iter(|| {
            now = drive_one_broadcast(&mut mac, now) + SimDuration::from_micros(100);
            black_box(now)
        })
    });
}

fn bench_rx_path(c: &mut Criterion) {
    c.bench_function("mac/rx_unicast_data", |b| {
        let mut mac: Mac<u32> = Mac::new(0, MacConfig::default(), 7);
        let mut seq = 0u64;
        let mut now = SimTime::ZERO;
        b.iter(|| {
            seq += 1;
            now += SimDuration::from_millis(1);
            let frame = Frame {
                kind: FrameKind::Data,
                src: 3,
                dst: Some(0),
                bytes: 546,
                nav: SimDuration::ZERO,
                payload: Some(9u32),
                seq,
            };
            let fx = mac.on_rx_frame(frame, now);
            // Complete the SIFS/ACK response so state resets.
            now += SimDuration::from_micros(10);
            let _ = mac.on_timer(MacTimer::RespSifs, now);
            now += SimDuration::from_micros(300);
            let _ = mac.on_tx_end(now);
            black_box(fx.len())
        })
    });
}

fn bench_nav_updates(c: &mut Criterion) {
    c.bench_function("mac/overheard_nav_update", |b| {
        let mut mac: Mac<u32> = Mac::new(0, MacConfig::default(), 7);
        let mut now = SimTime::ZERO;
        b.iter(|| {
            now += SimDuration::from_micros(50);
            let frame = Frame {
                kind: FrameKind::Rts,
                src: 5,
                dst: Some(6),
                bytes: 20,
                nav: SimDuration::from_millis(3),
                payload: None,
                seq: 0,
            };
            black_box(mac.on_rx_frame(frame, now).len())
        })
    });
}

criterion_group!(
    benches,
    bench_contention_cycle,
    bench_rx_path,
    bench_nav_updates
);
criterion_main!(benches);
