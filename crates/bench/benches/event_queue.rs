//! Discrete-event engine throughput.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use slr_netsim::{EventQueue, SimDuration, SimTime, Simulator};

fn bench_schedule_pop(c: &mut Criterion) {
    c.bench_function("event_queue/schedule_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.schedule(SimTime::from_nanos((i * 7919) % 1_000_000), i);
            }
            let mut sum = 0u64;
            while let Some(e) = q.pop() {
                sum = sum.wrapping_add(e.event);
            }
            black_box(sum)
        })
    });
}

fn bench_cancellation(c: &mut Criterion) {
    // Setup (building the 10k-event queue) runs outside the measurement;
    // only the cancels and the drain are timed. The old version scheduled
    // inside `b.iter`, so two thirds of the reported figure was setup.
    c.bench_function("event_queue/cancel_half_then_drain_10k", |b| {
        b.iter_batched(
            || {
                let mut q = EventQueue::new();
                let mut tokens = Vec::with_capacity(10_000);
                for i in 0..10_000u64 {
                    tokens.push(q.schedule(SimTime::from_nanos(i), i));
                }
                (q, tokens)
            },
            |(mut q, tokens)| {
                for t in tokens.iter().step_by(2) {
                    q.cancel(*t);
                }
                let mut n = 0;
                while q.pop().is_some() {
                    n += 1;
                }
                black_box(n)
            },
            BatchSize::LargeInput,
        )
    });
}

/// The pattern that actually hurts in a trial: per-frame ACK/CTS timers
/// armed ~hundreds of microseconds ahead and cancelled almost immediately
/// (the ACK arrived), re-armed for the next frame — across many nodes,
/// with the occasional timer surviving to fire. Roughly the MAC's
/// observed ~1 cancel per 1.1 scheduled timers. The old lazy-cancel queue
/// accumulated every cancelled entry until its distant fire time; the
/// compacting queue keeps the heap near the live-timer count.
fn bench_timer_churn(c: &mut Criterion) {
    const NODES: usize = 200;
    const ROUNDS: u64 = 500;
    c.bench_function("event_queue/mac_timer_churn_200x500", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let timeout = SimDuration::from_micros(700);
            let step = SimDuration::from_micros(40);
            let mut now = SimTime::ZERO;
            let mut tokens: Vec<_> = (0..NODES)
                .map(|i| q.schedule(now + timeout, i as u64))
                .collect();
            let mut fired = 0u64;
            for round in 0..ROUNDS {
                now += step;
                // Fire anything due (the ~1-in-10 timer that ran out).
                while let Some(t) = q.peek_time() {
                    if t > now {
                        break;
                    }
                    let ev = q.pop().expect("peeked");
                    fired += 1;
                    tokens[ev.event as usize] = q.schedule(now + timeout, ev.event);
                }
                // 9 of 10 nodes see their ACK: cancel + re-arm.
                for (i, tok) in tokens.iter_mut().enumerate() {
                    if (i as u64 + round) % 10 != 0 {
                        q.cancel(*tok);
                        *tok = q.schedule(now + timeout, i as u64);
                    }
                }
            }
            black_box((fired, q.heap_len()))
        })
    });
}

fn bench_simulator_loop(c: &mut Criterion) {
    c.bench_function("simulator/self_rescheduling_10k", |b| {
        b.iter(|| {
            let mut sim: Simulator<u32> = Simulator::new();
            sim.schedule_at(SimTime::from_nanos(1), 0);
            let mut count = 0u32;
            while let Some(ev) = sim.next() {
                count += 1;
                if count < 10_000 {
                    sim.schedule_in(slr_netsim::SimDuration::from_nanos(100), ev.event + 1);
                }
            }
            black_box(count)
        })
    });
}

criterion_group!(
    benches,
    bench_schedule_pop,
    bench_cancellation,
    bench_timer_churn,
    bench_simulator_loop
);
criterion_main!(benches);
