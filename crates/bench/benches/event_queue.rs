//! Discrete-event engine throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use slr_netsim::{EventQueue, SimTime, Simulator};

fn bench_schedule_pop(c: &mut Criterion) {
    c.bench_function("event_queue/schedule_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.schedule(SimTime::from_nanos((i * 7919) % 1_000_000), i);
            }
            let mut sum = 0u64;
            while let Some(e) = q.pop() {
                sum = sum.wrapping_add(e.event);
            }
            black_box(sum)
        })
    });
}

fn bench_cancellation(c: &mut Criterion) {
    c.bench_function("event_queue/schedule_cancel_half_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut tokens = Vec::with_capacity(10_000);
            for i in 0..10_000u64 {
                tokens.push(q.schedule(SimTime::from_nanos(i), i));
            }
            for t in tokens.iter().step_by(2) {
                q.cancel(*t);
            }
            let mut n = 0;
            while q.pop().is_some() {
                n += 1;
            }
            black_box(n)
        })
    });
}

fn bench_simulator_loop(c: &mut Criterion) {
    c.bench_function("simulator/self_rescheduling_10k", |b| {
        b.iter(|| {
            let mut sim: Simulator<u32> = Simulator::new();
            sim.schedule_at(SimTime::from_nanos(1), 0);
            let mut count = 0u32;
            while let Some(ev) = sim.next() {
                count += 1;
                if count < 10_000 {
                    sim.schedule_in(slr_netsim::SimDuration::from_nanos(100), ev.event + 1);
                }
            }
            black_box(count)
        })
    });
}

criterion_group!(
    benches,
    bench_schedule_pop,
    bench_cancellation,
    bench_simulator_loop
);
criterion_main!(benches);
