//! Control-packet processing throughput for every protocol.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use slr_core::Fraction;
use slr_netsim::time::SimTime;
use slr_protocols::aodv::{Aodv, AodvConfig, AodvMessage, AodvRreq};
use slr_protocols::dsr::{Dsr, DsrConfig, DsrMessage, DsrRreq};
use slr_protocols::ldr::{Ldr, LdrConfig, LdrMessage, LdrRreq};
use slr_protocols::olsr::{Olsr, OlsrConfig, OlsrHello, OlsrMessage};
use slr_protocols::srp::{Srp, SrpConfig, SrpMessage, SrpRreq};
use slr_protocols::{ControlPacket, ProtoCtx, RoutingProtocol};

fn bench_rreq_handling(c: &mut Criterion) {
    let mut rng = SmallRng::seed_from_u64(1);

    c.bench_function("protocol/srp_rreq_relay", |b| {
        let mut node = Srp::new(1, SrpConfig::default());
        let mut id = 0u64;
        b.iter(|| {
            id += 1;
            let rreq = SrpRreq {
                src: 7,
                rreq_id: id,
                dst: 9,
                dst_seqno: 0,
                fd: Fraction::one(),
                unknown: true,
                reset: false,
                dest_only: false,
                no_advert: false,
                d: 1,
                ttl: 5,
                src_seqno: 1,
                src_lfd: Fraction::new(1, 2).unwrap(),
                src_ld: 1,
            };
            let mut ctx = ProtoCtx {
                now: SimTime::from_secs(1),
                rng: &mut rng,
            };
            black_box(
                node.on_control_received(&mut ctx, 3, ControlPacket::Srp(SrpMessage::Rreq(rreq)))
                    .len(),
            )
        })
    });

    c.bench_function("protocol/aodv_rreq_relay", |b| {
        let mut node = Aodv::new(1, AodvConfig::default());
        let mut id = 0u64;
        b.iter(|| {
            id += 1;
            let rreq = AodvRreq {
                orig: 7,
                orig_seqno: id,
                rreq_id: id,
                dst: 9,
                dst_seqno: 0,
                unknown: true,
                hop_count: 1,
                ttl: 5,
            };
            let mut ctx = ProtoCtx {
                now: SimTime::from_secs(1),
                rng: &mut rng,
            };
            black_box(
                node.on_control_received(&mut ctx, 3, ControlPacket::Aodv(AodvMessage::Rreq(rreq)))
                    .len(),
            )
        })
    });

    c.bench_function("protocol/ldr_rreq_relay", |b| {
        let mut node = Ldr::new(1, LdrConfig::default());
        let mut id = 0u64;
        b.iter(|| {
            id += 1;
            let rreq = LdrRreq {
                orig: 7,
                rreq_id: id,
                dst: 9,
                dst_seqno: 0,
                fd: u32::MAX,
                unknown: true,
                reset: false,
                hop_count: 1,
                ttl: 5,
            };
            let mut ctx = ProtoCtx {
                now: SimTime::from_secs(1),
                rng: &mut rng,
            };
            black_box(
                node.on_control_received(&mut ctx, 3, ControlPacket::Ldr(LdrMessage::Rreq(rreq)))
                    .len(),
            )
        })
    });

    c.bench_function("protocol/dsr_rreq_relay", |b| {
        let mut node = Dsr::new(1, DsrConfig::default());
        let mut id = 0u64;
        b.iter(|| {
            id += 1;
            let rreq = DsrRreq {
                orig: 7,
                rreq_id: id,
                target: 9,
                route: vec![7, 3],
                ttl: 5,
            };
            let mut ctx = ProtoCtx {
                now: SimTime::from_secs(1),
                rng: &mut rng,
            };
            black_box(
                node.on_control_received(&mut ctx, 3, ControlPacket::Dsr(DsrMessage::Rreq(rreq)))
                    .len(),
            )
        })
    });

    c.bench_function("protocol/olsr_hello_processing", |b| {
        let mut node = Olsr::new(1, OlsrConfig::default());
        let mut t = 1u64;
        b.iter(|| {
            t += 1;
            let hello = OlsrHello {
                origin: 2,
                sym_neighbors: vec![1, 5, 6, 7, 8],
                heard_neighbors: vec![9],
                mprs: vec![1],
            };
            let mut ctx = ProtoCtx {
                now: SimTime::from_millis(t),
                rng: &mut rng,
            };
            black_box(
                node.on_control_received(
                    &mut ctx,
                    2,
                    ControlPacket::Olsr(OlsrMessage::Hello(hello)),
                )
                .len(),
            )
        })
    });
}

criterion_group!(benches, bench_rreq_handling);
criterion_main!(benches);
