//! The SRP composite ordering `O = (sequence number, feasible-distance
//! fraction)` and its Ordering Criteria (Definitions 4–7 of the paper).
//!
//! The relation [`SplitLabel::precedes`] implements the strict partial order
//! `≺` of Definition 5: `O_A ≺ O_B` reads *"B is a feasible in-order
//! successor for A toward the destination"*. The sequence number follows a
//! reversed sense relative to the fraction: a **higher** sequence number
//! means a *fresher* (lower-ordered) route and supersedes all routes with a
//! lower sequence number; with equal sequence numbers a **smaller** fraction
//! is lower-ordered.

use core::fmt;
use core::hash::{Hash, Hasher};

use crate::fraction::{FracInt, Fraction};

/// A 64-bit destination-controlled sequence number.
///
/// The paper uses a 64-bit time-stamp sequence number, which "avoids reset
/// on reboot and avoids wrap-around problems" (§III).
pub type SeqNo = u64;

/// The composite SRP label `O = (sn, F)` (Definition 5).
///
/// # Examples
///
/// ```
/// use slr_core::{Fraction, SplitLabel};
///
/// let dest: SplitLabel<u32> = SplitLabel::destination(1);
/// let mid = SplitLabel::new(1, Fraction::new(1, 2)?);
/// // The destination label is in-order (feasible) for the intermediate node:
/// assert!(mid.precedes(&dest));
/// assert!(!dest.precedes(&mid));
/// // An unassigned node is above everything:
/// assert!(SplitLabel::unassigned().precedes(&mid));
/// # Ok::<(), slr_core::FractionError>(())
/// ```
#[derive(Clone, Copy)]
pub struct SplitLabel<T: FracInt> {
    seqno: SeqNo,
    fd: Fraction<T>,
}

/// The paper's practical label with 32-bit fraction components.
pub type SplitLabel32 = SplitLabel<u32>;
/// A label with 64-bit fraction components.
pub type SplitLabel64 = SplitLabel<u64>;

impl<T: FracInt> SplitLabel<T> {
    /// Creates a label from a sequence number and feasible-distance fraction.
    pub fn new(seqno: SeqNo, fd: Fraction<T>) -> Self {
        SplitLabel { seqno, fd }
    }

    /// The maximum ordering `(0, (1,1))` held by an unassigned node
    /// (Definition 5).
    pub fn unassigned() -> Self {
        SplitLabel {
            seqno: 0,
            fd: Fraction::one(),
        }
    }

    /// The label a destination assigns itself: `(sn, (0,1))` with a non-zero
    /// sequence number (Definition 7).
    ///
    /// # Panics
    ///
    /// Panics if `seqno == 0`; the paper requires a *new non-zero* sequence
    /// number at node initialization.
    pub fn destination(seqno: SeqNo) -> Self {
        assert!(seqno != 0, "destination sequence number must be non-zero");
        SplitLabel {
            seqno,
            fd: Fraction::zero(),
        }
    }

    /// The sequence-number component.
    pub fn seqno(&self) -> SeqNo {
        self.seqno
    }

    /// The feasible-distance fraction component.
    pub fn fd(&self) -> Fraction<T> {
        self.fd
    }

    /// Whether this is the maximum (unassigned) ordering `(0, (1,1))`.
    pub fn is_unassigned(&self) -> bool {
        self.seqno == 0 && self.fd.is_one()
    }

    /// Whether the ordering is *finite*, i.e. its fraction is `< 1/1`
    /// (Definition 5). `NEWORDER` returns an infinite ordering to signal
    /// that an advertisement must be dropped.
    pub fn is_finite(&self) -> bool {
        !self.fd.is_one()
    }

    /// The strict partial order `≺` of Definition 5 (the Ordering Criteria).
    ///
    /// `a.precedes(&b)` is true iff `sn_a < sn_b`, or `sn_a == sn_b` and
    /// `F_b < F_a`; it reads "`b` is a feasible in-order successor for `a`".
    pub fn precedes(&self, other: &Self) -> bool {
        self.seqno < other.seqno || (self.seqno == other.seqno && other.fd < self.fd)
    }

    /// `self ⪯ other`: [`SplitLabel::precedes`] or numerically equal.
    pub fn precedes_eq(&self, other: &Self) -> bool {
        self.precedes(other) || self == other
    }

    /// The minimum function of Definition 5: returns `b` if `a ≺ b`,
    /// otherwise `a`. The "minimum" label is the one *lower* in the DAG
    /// (closer to the destination), i.e. the one that supersedes.
    pub fn min_label(a: Self, b: Self) -> Self {
        if a.precedes(&b) {
            b
        } else {
            a
        }
    }

    /// The dual of [`SplitLabel::min_label`]: the label *higher* in the DAG.
    pub fn max_label(a: Self, b: Self) -> Self {
        if a.precedes(&b) {
            a
        } else {
            b
        }
    }

    /// Ordering addition `O + p/q` (Definition 6): the component-wise sum
    /// `(sn, (m+p, n+q))`, i.e. the mediant applied inside the label.
    ///
    /// Returns `None` on fraction overflow or if the ordering is not finite.
    pub fn plus(&self, frac: Fraction<T>) -> Option<Self> {
        if !self.is_finite() {
            return None;
        }
        let fd = self.fd.checked_mediant(&frac)?;
        Some(SplitLabel {
            seqno: self.seqno,
            fd,
        })
    }

    /// `O + 1/1`, the next-element of the ordering (used by Theorem 5 and
    /// Algorithm 1 line 5).
    pub fn next_element(&self) -> Option<Self> {
        self.plus(Fraction::one())
    }
}

impl<T: FracInt> PartialEq for SplitLabel<T> {
    fn eq(&self, other: &Self) -> bool {
        self.seqno == other.seqno && self.fd == other.fd
    }
}

impl<T: FracInt> Eq for SplitLabel<T> {}

impl<T: FracInt> Hash for SplitLabel<T> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.seqno.hash(state);
        self.fd.hash(state);
    }
}

impl<T: FracInt> fmt::Debug for SplitLabel<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.seqno, self.fd)
    }
}

impl<T: FracInt> fmt::Display for SplitLabel<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.seqno, self.fd)
    }
}

impl<T: FracInt> Default for SplitLabel<T> {
    /// The default is the unassigned (maximum) ordering.
    fn default() -> Self {
        Self::unassigned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(sn: SeqNo, n: u32, d: u32) -> SplitLabel32 {
        SplitLabel::new(sn, Fraction::new(n, d).unwrap())
    }

    #[test]
    fn higher_seqno_is_lower_ordered() {
        // Eq. 7: sn_A < sn_B ⟹ A ≺ B ("B supersedes").
        assert!(l(1, 1, 2).precedes(&l(2, 9, 10)));
        assert!(!l(2, 9, 10).precedes(&l(1, 1, 2)));
    }

    #[test]
    fn equal_seqno_orders_by_fraction() {
        // Eq. 8: with equal sequence numbers the smaller fraction is lower.
        assert!(l(1, 2, 3).precedes(&l(1, 1, 2)));
        assert!(!l(1, 1, 2).precedes(&l(1, 2, 3)));
    }

    #[test]
    fn equal_labels_are_incomparable() {
        let a = l(1, 1, 2);
        let b = l(1, 2, 4);
        assert_eq!(a, b);
        assert!(!a.precedes(&b));
        assert!(!b.precedes(&a));
        assert!(a.precedes_eq(&b));
    }

    #[test]
    fn unassigned_is_maximum() {
        let u = SplitLabel32::unassigned();
        assert!(u.is_unassigned());
        assert!(!u.is_finite());
        for other in [l(1, 0, 1), l(1, 1, 2), l(5, 999, 1000)] {
            assert!(u.precedes(&other), "{u} should precede {other}");
            assert!(!other.precedes(&u));
        }
    }

    #[test]
    fn destination_label() {
        let d = SplitLabel32::destination(7);
        assert_eq!(d.seqno(), 7);
        assert!(d.fd().is_zero());
        assert!(d.is_finite());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn destination_rejects_zero_seqno() {
        let _ = SplitLabel32::destination(0);
    }

    #[test]
    fn min_label_picks_the_superseding_one() {
        let a = l(1, 1, 2);
        let b = l(2, 9, 10);
        assert_eq!(SplitLabel::min_label(a, b), b);
        assert_eq!(SplitLabel::min_label(b, a), b);
        let c = l(1, 1, 3);
        assert_eq!(SplitLabel::min_label(a, c), c);
        assert_eq!(SplitLabel::max_label(a, c), a);
        // Ties return the first argument.
        assert_eq!(SplitLabel::min_label(a, a), a);
    }

    #[test]
    fn ordering_addition_is_mediant() {
        // Definition 6: if m/n < p/q then O + p/q ≺ O.
        let o = l(3, 1, 3);
        let sum = o.plus(Fraction::new(1, 2).unwrap()).unwrap();
        assert_eq!(sum, l(3, 2, 5));
        assert!(sum.precedes(&o));
    }

    #[test]
    fn next_element_of_label() {
        let o = l(3, 2, 3);
        let n = o.next_element().unwrap();
        assert_eq!(n, l(3, 3, 4));
        // O + 1/1 ≺ O? No: next-element has a *larger* fraction, so it is
        // *higher* in the DAG; the original precedes nothing new. Check the
        // documented direction: n ≺ o, because o's fraction < n's fraction.
        assert!(n.precedes(&o));
        assert!(SplitLabel32::unassigned().next_element().is_none());
    }

    #[test]
    fn plus_overflow_returns_none() {
        let near = SplitLabel::new(1, Fraction::<u32>::new(u32::MAX - 1, u32::MAX).unwrap());
        assert!(near.plus(near.fd()).is_none());
    }

    #[test]
    fn display() {
        assert_eq!(l(4, 2, 3).to_string(), "(4, 2/3)");
        assert_eq!(SplitLabel32::unassigned().to_string(), "(0, 1/1)");
    }
}
