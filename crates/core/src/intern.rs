//! Label interning: u32 handles for [`SplitLabel`]s in hot per-node state.
//!
//! At 100k nodes the engaged-calculation caches hold millions of
//! `SplitLabel32`s, yet the number of *distinct* orderings circulating in
//! a trial is small — floods carry the same few solicitation orderings to
//! every node they reach. An interner stores each distinct label once and
//! hands out a dense `u32` handle, shrinking hot cache entries and making
//! label equality a single integer compare.
//!
//! Interning is **numeric**: two labels that are numerically equal under
//! the paper's Definition 4 comparison (`1/2 == 2/4`) share one handle,
//! because [`SplitLabel`]'s `Eq`/`Hash` already cross-multiply and hash
//! the reduced form. The first representation seen is the one stored, so
//! `get` returns a label numerically equal to — not necessarily
//! component-identical with — the interned one; hot structures that need
//! the exact components (a node's own label) keep the full `SplitLabel`.

use std::collections::HashMap;

use crate::fraction::FracInt;
use crate::label::SplitLabel;

/// A handle into a [`LabelInterner`] (index of first insertion).
pub type LabelHandle = u32;

/// A per-node (or per-trial) table of distinct split labels.
///
/// # Examples
///
/// ```
/// use slr_core::{Fraction, LabelInterner, SplitLabel};
///
/// let mut it: LabelInterner<u32> = LabelInterner::new();
/// let a = it.intern(SplitLabel::new(1, Fraction::new(1, 2)?));
/// let b = it.intern(SplitLabel::new(1, Fraction::new(2, 4)?));
/// // Numeric equality survives interning: 1/2 and 2/4 share a handle.
/// assert_eq!(a, b);
/// assert_eq!(it.get(a), SplitLabel::new(1, Fraction::new(1, 2)?));
/// # Ok::<(), slr_core::FractionError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct LabelInterner<T: FracInt> {
    labels: Vec<SplitLabel<T>>,
    index: HashMap<SplitLabel<T>, LabelHandle>,
}

impl<T: FracInt> LabelInterner<T> {
    /// An empty interner.
    pub fn new() -> Self {
        LabelInterner {
            labels: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Returns the handle for `label`, interning it on first sight.
    /// Numerically equal labels (Definition 4) map to the same handle.
    pub fn intern(&mut self, label: SplitLabel<T>) -> LabelHandle {
        if let Some(&h) = self.index.get(&label) {
            return h;
        }
        let h = self.labels.len() as LabelHandle;
        self.labels.push(label);
        self.index.insert(label, h);
        h
    }

    /// The label behind `handle` (the first representation interned).
    ///
    /// # Panics
    ///
    /// Panics if `handle` was not produced by this interner.
    pub fn get(&self, handle: LabelHandle) -> SplitLabel<T> {
        self.labels[handle as usize]
    }

    /// Number of distinct labels interned.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Live heap bytes held by the interner (both the label store and the
    /// lookup index; capacities, since the allocator holds capacity).
    pub fn mem_bytes(&self) -> usize {
        self.labels.capacity() * std::mem::size_of::<SplitLabel<T>>()
            + self.index.capacity()
                * (std::mem::size_of::<(SplitLabel<T>, LabelHandle)>() + std::mem::size_of::<u64>())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fraction::Fraction;
    use crate::label::SplitLabel32;

    fn l(sn: u64, n: u32, d: u32) -> SplitLabel32 {
        SplitLabel::new(sn, Fraction::new(n, d).unwrap())
    }

    #[test]
    fn roundtrip_and_dedup() {
        let mut it: LabelInterner<u32> = LabelInterner::new();
        let a = it.intern(l(1, 1, 2));
        let b = it.intern(l(1, 1, 3));
        let a2 = it.intern(l(1, 1, 2));
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(it.len(), 2);
        assert_eq!(it.get(a), l(1, 1, 2));
        assert_eq!(it.get(b), l(1, 1, 3));
    }

    #[test]
    fn numeric_equality_shares_handles() {
        let mut it: LabelInterner<u32> = LabelInterner::new();
        let a = it.intern(l(3, 1, 2));
        let b = it.intern(l(3, 2, 4));
        let c = it.intern(l(3, 500, 1000));
        assert_eq!(a, b);
        assert_eq!(b, c);
        assert_eq!(it.len(), 1);
        // Different seqno must not collapse.
        let d = it.intern(l(4, 1, 2));
        assert_ne!(a, d);
    }

    #[test]
    fn unassigned_and_destination_are_distinct() {
        let mut it: LabelInterner<u32> = LabelInterner::new();
        let u = it.intern(SplitLabel32::unassigned());
        let d = it.intern(SplitLabel32::destination(1));
        assert_ne!(u, d);
        assert!(it.get(u).is_unassigned());
    }

    #[test]
    fn mem_bytes_grows_with_contents() {
        let mut it: LabelInterner<u32> = LabelInterner::new();
        assert_eq!(it.mem_bytes(), 0);
        it.intern(l(1, 1, 2));
        assert!(it.mem_bytes() > 0);
    }
}
