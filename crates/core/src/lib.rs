//! # slr-core — Split Label Routing label algebra
//!
//! A from-scratch implementation of the label machinery behind
//! *Loop-Free Routing Using a Dense Label Set in Wireless Networks*
//! (Mosko & Garcia-Luna-Aceves, ICDCS 2004).
//!
//! SLR keeps per-destination node labels in topological order over a
//! **dense** ordinal set, so the successor graph is a DAG at every instant
//! (Theorem 3) and a node can be inserted between two existing labels
//! without relabeling its predecessors. This crate provides:
//!
//! * [`Fraction`] — proper fractions with **mediant** splitting (Eq. 1) and
//!   the next-element operator (Eq. 2), in the paper's 32-bit flavor
//!   ([`Frac32`]) and a 64-bit variant, with overflow detection and the
//!   Fibonacci worst-case split bound
//!   ([`fraction::worst_case_split_capacity`] = 45 for `u32`);
//! * [`SplitLabel`] — SRP's composite ordering `O = (sn, F)` with the
//!   Ordering Criteria `≺` of Definition 5;
//! * [`new_order`] — Algorithm 1 (`NEWORDER`), plus the Definition 1
//!   *maintain order* predicate ([`maintains_order`]) it provably satisfies
//!   (Theorem 6);
//! * [`SuccessorTable`] — the multi-path successor set `S_i` with `S_max`
//!   and the Algorithm 1 line 13 pruning;
//! * [`slr::DenseLabel`] — the abstract dense ordinal set of §II, with
//!   three implementations: bounded fractions, Farey-reduced fractions
//!   ([`slr::FareyFraction`], the conclusion's future-work extension), and
//!   an unbounded Stern–Brocot path label ([`sternbrocot::SbPath`], the
//!   "lexicographically sorted string" the paper mentions);
//! * [`engine::SlrGraph`] — a pure graph-level model of §II route
//!   computations used to machine-check Theorems 1–4;
//! * [`dag`] — loop-freedom oracles (label-order check, cycle search).
//!
//! ## Quick example
//!
//! ```
//! use slr_core::engine::SlrGraph;
//! use slr_core::Fraction;
//!
//! // The paper's Fig. 1: a line E-D-C-B-A-T. E requests a route to T.
//! let mut g: SlrGraph<Fraction<u32>> = SlrGraph::new(6, 0);
//! g.run_request(&[5, 4, 3, 2, 1, 0])?;
//! // Final topological order 5/6 → 4/5 → 3/4 → 2/3 → 1/2 → 0/1.
//! assert_eq!(*g.label(5), Fraction::new(5, 6)?);
//! g.check_topological_order()?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dag;
pub mod engine;
pub mod fraction;
pub mod intern;
pub mod invariant;
pub mod label;
pub mod neworder;
pub mod slr;
pub mod sternbrocot;
pub mod successors;

pub use fraction::{Frac32, Frac64, FracInt, Fraction, FractionError};
pub use intern::{LabelHandle, LabelInterner};
pub use invariant::{InvariantViolation, SuccessorEdge};
pub use label::{SeqNo, SplitLabel, SplitLabel32, SplitLabel64};
pub use neworder::{
    check_order, maintains_order, needs_denominator_reset, new_order, reduce_label, NewOrder,
    NewOrderCase, OrderCheck,
};
pub use successors::{SuccessorEntry, SuccessorTable};
