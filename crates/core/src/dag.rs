//! Loop-freedom oracles: topological-order and acyclicity checks over
//! successor graphs.
//!
//! A digraph is acyclic iff it has a topological order (§II, citing Ahuja);
//! SLR's claim (Theorem 3) is that current labels *are* such an order at
//! every instant. These helpers let tests and the simulation harness verify
//! both halves independently: [`check_label_order`] checks the label
//! inequality edge-by-edge, and [`find_cycle`] searches for cycles with a
//! DFS that does not look at labels at all.

use core::fmt;

/// A violated edge discovered by an order check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderViolation {
    /// The upstream node (the one holding the successor entry).
    pub from: usize,
    /// The successor node.
    pub to: usize,
    /// Human-readable description of the violated inequality.
    pub detail: String,
}

impl fmt::Display for OrderViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "edge ({}, {}): {}", self.from, self.to, self.detail)
    }
}

/// Checks that every directed edge `(i, j)` (given as index pairs into
/// `labels`) satisfies `labels[j] < labels[i]` under `lt` — the paper's
/// topological-order condition with the destination-least orientation.
///
/// Returns the first violating edge, if any.
pub fn check_label_order<L, F>(
    labels: &[L],
    edges: &[(usize, usize)],
    mut lt: F,
) -> Result<(), OrderViolation>
where
    L: fmt::Debug,
    F: FnMut(&L, &L) -> bool,
{
    for &(i, j) in edges {
        if !lt(&labels[j], &labels[i]) {
            return Err(OrderViolation {
                from: i,
                to: j,
                detail: format!("{:?} !< {:?}", labels[j], labels[i]),
            });
        }
    }
    Ok(())
}

/// Searches a digraph of `n` nodes for a directed cycle. Returns the cycle
/// as a node sequence (first node repeated implicitly) or `None` if the
/// graph is acyclic.
///
/// Iterative three-color DFS; no recursion, safe for large graphs.
pub fn find_cycle(n: usize, edges: &[(usize, usize)]) -> Option<Vec<usize>> {
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in edges {
        adj[a].push(b);
    }
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color = vec![Color::White; n];
    let mut parent: Vec<Option<usize>> = vec![None; n];

    for start in 0..n {
        if color[start] != Color::White {
            continue;
        }
        // Stack of (node, next-edge-index).
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        color[start] = Color::Gray;
        while let Some(frame) = stack.last_mut() {
            let u = frame.0;
            if frame.1 < adj[u].len() {
                let v = adj[u][frame.1];
                frame.1 += 1;
                match color[v] {
                    Color::White => {
                        color[v] = Color::Gray;
                        parent[v] = Some(u);
                        stack.push((v, 0));
                    }
                    Color::Gray => {
                        // Found a cycle: unwind u → … → v.
                        let mut cyc = vec![u];
                        let mut cur = u;
                        while cur != v {
                            cur = parent[cur].expect("gray nodes have parents on the stack");
                            cyc.push(cur);
                        }
                        cyc.reverse();
                        return Some(cyc);
                    }
                    Color::Black => {}
                }
            } else {
                color[u] = Color::Black;
                stack.pop();
            }
        }
    }
    None
}

/// Computes a topological order of the digraph (Kahn's algorithm), or
/// `None` if it contains a cycle. Useful for asserting that a labeling
/// *could* exist and for deterministic traversal in tests.
pub fn topological_sort(n: usize, edges: &[(usize, usize)]) -> Option<Vec<usize>> {
    let mut indeg = vec![0usize; n];
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in edges {
        adj[a].push(b);
        indeg[b] += 1;
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut out = Vec::with_capacity(n);
    while let Some(u) = queue.pop() {
        out.push(u);
        for &v in &adj[u] {
            indeg[v] -= 1;
            if indeg[v] == 0 {
                queue.push(v);
            }
        }
    }
    if out.len() == n {
        Some(out)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_order_accepts_valid_dag() {
        // 2 → 1 → 0 with labels 0.75, 0.5, 0.0.
        let labels = [0.0f64, 0.5, 0.75];
        let edges = [(2, 1), (1, 0)];
        assert!(check_label_order(&labels, &edges, |a, b| a < b).is_ok());
    }

    #[test]
    fn label_order_rejects_equal_labels() {
        let labels = [0.5f64, 0.5];
        let edges = [(1, 0)];
        let v = check_label_order(&labels, &edges, |a, b| a < b).unwrap_err();
        assert_eq!((v.from, v.to), (1, 0));
    }

    #[test]
    fn find_cycle_none_on_dag() {
        let edges = [(3, 2), (2, 1), (1, 0), (3, 1)];
        assert!(find_cycle(4, &edges).is_none());
    }

    #[test]
    fn find_cycle_detects_simple_loop() {
        let edges = [(0, 1), (1, 2), (2, 0)];
        let cyc = find_cycle(3, &edges).unwrap();
        assert_eq!(cyc.len(), 3);
        // Every consecutive pair is an edge.
        for w in cyc.windows(2) {
            assert!(edges.contains(&(w[0], w[1])), "{:?} missing {:?}", edges, w);
        }
        assert!(edges.contains(&(cyc[cyc.len() - 1], cyc[0])));
    }

    #[test]
    fn find_cycle_detects_self_loop() {
        let edges = [(0, 0)];
        let cyc = find_cycle(1, &edges).unwrap();
        assert_eq!(cyc, vec![0]);
    }

    #[test]
    fn find_cycle_two_node_loop_among_dag() {
        let edges = [(0, 1), (2, 3), (3, 2)];
        let cyc = find_cycle(4, &edges).unwrap();
        assert_eq!(cyc.len(), 2);
    }

    #[test]
    fn topological_sort_on_dag() {
        let edges = [(3, 2), (2, 1), (1, 0)];
        let order = topological_sort(4, &edges).unwrap();
        let pos: Vec<usize> = {
            let mut p = vec![0; 4];
            for (i, &n) in order.iter().enumerate() {
                p[n] = i;
            }
            p
        };
        for &(a, b) in &edges {
            assert!(pos[a] < pos[b]);
        }
    }

    #[test]
    fn topological_sort_none_on_cycle() {
        let edges = [(0, 1), (1, 0)];
        assert!(topological_sort(2, &edges).is_none());
    }
}
