//! Proper fractions with mediant interpolation.
//!
//! The paper's label set for SRP is built from proper fractions `m/n`
//! (`0 <= m <= n`, `n >= 1`) with the least element `0/1` and the greatest
//! element `1/1` (§II). Two operations matter:
//!
//! * the **mediant** `(m+p)/(n+q)` of `m/n < p/q`, which always lies strictly
//!   between them (Eq. 1) and is how SLR "splits" an interval to insert a
//!   node into an existing DAG, and
//! * the **next-element** `(m+1)/(n+1)`, the mediant with `1/1` (Eq. 2).
//!
//! Fractions are deliberately **not** reduced when splitting — the paper's
//! SRP circulates raw mediants (§VI notes reduction as future work; see
//! [`crate::sternbrocot::simplest_between`] for the Farey-tree reduction this
//! crate implements as that extension).
//!
//! Comparison, equality and hashing are **numeric** (cross-multiplication in
//! 128-bit), so `1/2 == 2/4`; the component pair is still observable through
//! [`Fraction::num`] / [`Fraction::den`].

use core::cmp::Ordering;
use core::fmt;
use core::hash::{Hash, Hasher};

mod private {
    pub trait Sealed {}
    impl Sealed for u32 {}
    impl Sealed for u64 {}
}

/// Unsigned integer types usable as fraction components.
///
/// This trait is sealed: it is implemented for `u32` (the paper's practical
/// implementation, §III) and `u64` (twice the worst-case split capacity; see
/// [`worst_case_split_capacity`]) and cannot be implemented outside this
/// crate.
pub trait FracInt:
    private::Sealed + Copy + Eq + Ord + Hash + fmt::Debug + fmt::Display + Send + Sync + 'static
{
    /// The additive identity.
    const ZERO: Self;
    /// The multiplicative identity.
    const ONE: Self;
    /// The largest representable value.
    const MAX: Self;
    /// Number of bits in the representation.
    const BITS: u32;

    /// Checked addition, `None` on overflow.
    fn checked_add(self, rhs: Self) -> Option<Self>;
    /// Checked subtraction, `None` on underflow.
    fn checked_sub(self, rhs: Self) -> Option<Self>;
    /// Checked multiplication, `None` on overflow.
    fn checked_mul(self, rhs: Self) -> Option<Self>;
    /// Lossless widening to `u128` for overflow-free cross-multiplication.
    fn as_u128(self) -> u128;
    /// Narrowing from `u128`, `None` if the value does not fit.
    fn try_from_u128(v: u128) -> Option<Self>;
}

macro_rules! impl_frac_int {
    ($t:ty) => {
        impl FracInt for $t {
            const ZERO: Self = 0;
            const ONE: Self = 1;
            const MAX: Self = <$t>::MAX;
            const BITS: u32 = <$t>::BITS;

            #[inline]
            fn checked_add(self, rhs: Self) -> Option<Self> {
                <$t>::checked_add(self, rhs)
            }
            #[inline]
            fn checked_sub(self, rhs: Self) -> Option<Self> {
                <$t>::checked_sub(self, rhs)
            }
            #[inline]
            fn checked_mul(self, rhs: Self) -> Option<Self> {
                <$t>::checked_mul(self, rhs)
            }
            #[inline]
            fn as_u128(self) -> u128 {
                self as u128
            }
            #[inline]
            fn try_from_u128(v: u128) -> Option<Self> {
                <$t>::try_from(v).ok()
            }
        }
    };
}

impl_frac_int!(u32);
impl_frac_int!(u64);

/// Errors returned when constructing a [`Fraction`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FractionError {
    /// The denominator was zero.
    ZeroDenominator,
    /// The numerator exceeded the denominator (`m > n`).
    Improper,
}

impl fmt::Display for FractionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FractionError::ZeroDenominator => write!(f, "fraction denominator must be non-zero"),
            FractionError::Improper => {
                write!(f, "fraction numerator must not exceed its denominator")
            }
        }
    }
}

impl std::error::Error for FractionError {}

/// A fraction `m/n` with `0 <= m <= n` and `n >= 1`.
///
/// The value range is the closed interval `[0, 1]`: `0/1` is the paper's
/// least element (the destination's own feasible distance) and `1/1` the
/// greatest (an unassigned node). Values strictly inside `(0, 1)` are the
/// *proper fractions* the paper labels intermediate nodes with.
///
/// # Examples
///
/// ```
/// use slr_core::fraction::Fraction;
///
/// let half: Fraction<u32> = Fraction::new(1, 2)?;
/// let two_thirds = Fraction::new(2, 3)?;
/// // Eq. 1: the mediant lies strictly between its arguments.
/// let m = half.checked_mediant(&two_thirds).unwrap();
/// assert_eq!(m, Fraction::new(3, 5)?);
/// assert!(half < m && m < two_thirds);
/// # Ok::<(), slr_core::fraction::FractionError>(())
/// ```
#[derive(Clone, Copy)]
pub struct Fraction<T: FracInt> {
    num: T,
    den: T,
}

/// The paper's 32-bit practical implementation (§III).
pub type Frac32 = Fraction<u32>;
/// A 64-bit variant with roughly double the worst-case split capacity.
pub type Frac64 = Fraction<u64>;

impl<T: FracInt> Fraction<T> {
    /// Creates the fraction `num/den`.
    ///
    /// # Errors
    ///
    /// Returns [`FractionError::ZeroDenominator`] if `den == 0` and
    /// [`FractionError::Improper`] if `num > den`.
    pub fn new(num: T, den: T) -> Result<Self, FractionError> {
        if den == T::ZERO {
            return Err(FractionError::ZeroDenominator);
        }
        if num > den {
            return Err(FractionError::Improper);
        }
        Ok(Fraction { num, den })
    }

    /// The least element `0/1` (the destination's feasible distance).
    pub fn zero() -> Self {
        Fraction {
            num: T::ZERO,
            den: T::ONE,
        }
    }

    /// The greatest element `1/1` (an unassigned node).
    pub fn one() -> Self {
        Fraction {
            num: T::ONE,
            den: T::ONE,
        }
    }

    /// The numerator component.
    pub fn num(&self) -> T {
        self.num
    }

    /// The denominator component.
    pub fn den(&self) -> T {
        self.den
    }

    /// Whether the value equals zero (`m == 0`).
    pub fn is_zero(&self) -> bool {
        self.num == T::ZERO
    }

    /// Whether the value equals one (`m == n`), i.e. the greatest element.
    pub fn is_one(&self) -> bool {
        self.num == self.den
    }

    /// Whether the value lies strictly inside `(0, 1)` — a proper fraction
    /// in the paper's sense of a label assigned to an intermediate node.
    pub fn is_proper(&self) -> bool {
        !self.is_zero() && !self.is_one()
    }

    /// Numeric comparison by 128-bit cross-multiplication (Definition 4):
    /// `m/n < p/q` iff `m·q < n·p`.
    pub fn cmp_value(&self, other: &Self) -> Ordering {
        let lhs = self.num.as_u128() * other.den.as_u128();
        let rhs = other.num.as_u128() * self.den.as_u128();
        lhs.cmp(&rhs)
    }

    /// The mediant `(m+p)/(n+q)` of `self` and `other` (Eq. 1).
    ///
    /// Returns `None` if either component addition overflows `T` — the
    /// condition SRP's Eq. 11 calls an "F overflow", which forces a path
    /// reset request.
    pub fn checked_mediant(&self, other: &Self) -> Option<Self> {
        let num = self.num.checked_add(other.num)?;
        let den = self.den.checked_add(other.den)?;
        debug_assert!(num <= den);
        Some(Fraction { num, den })
    }

    /// Whether taking the mediant of `self` and `other` would overflow `T`.
    ///
    /// SRP's relay rule (Eq. 11) tests exactly this (`n + q` overflowing)
    /// to decide whether to set the reset-required T bit.
    pub fn mediant_overflows(&self, other: &Self) -> bool {
        self.den.checked_add(other.den).is_none() || self.num.checked_add(other.num).is_none()
    }

    /// The next-element `(m+1)/(n+1)`, the mediant with `1/1` (Eq. 2).
    ///
    /// Returns `None` for the greatest element `1/1` (which the paper
    /// defines as not being the next-element of anything and having none),
    /// or on component overflow.
    pub fn next_element(&self) -> Option<Self> {
        if self.is_one() {
            return None;
        }
        self.checked_mediant(&Self::one())
    }

    /// The numeric value as `f64` (lossy; for display and diagnostics only).
    pub fn value(&self) -> f64 {
        self.num.as_u128() as f64 / self.den.as_u128() as f64
    }

    /// The fraction reduced to lowest terms.
    ///
    /// SRP as specified never reduces (§VI); this is provided for hashing,
    /// diagnostics and the Farey-reduction extension.
    pub fn reduced(&self) -> Self {
        let g = gcd_u128(self.num.as_u128(), self.den.as_u128());
        if g <= 1 {
            return *self;
        }
        // Division by a common divisor cannot fail to fit.
        let num = T::try_from_u128(self.num.as_u128() / g).expect("reduced numerator fits");
        let den = T::try_from_u128(self.den.as_u128() / g).expect("reduced denominator fits");
        Fraction { num, den }
    }

    /// Depth of the reduced fraction in the Stern–Brocot tree rooted at the
    /// unit interval (the number of mediant steps needed to reach it from
    /// `0/1` and `1/1`). `0/1` and `1/1` have depth 0.
    ///
    /// This is the sum of the continued-fraction coefficients of `m/n`,
    /// minus one — a useful measure of how much "split budget" a label has
    /// consumed.
    pub fn stern_brocot_depth(&self) -> u64 {
        if self.is_zero() || self.is_one() {
            return 0;
        }
        let r = self.reduced();
        let a = r.num.as_u128();
        let b = r.den.as_u128();
        // Continued fraction expansion of den/num for a value in (0,1):
        // depth = sum of coefficients - 1.
        let mut depth: u64 = 0;
        // Expand b/a = [c0; c1, ...].
        let mut x = b;
        let mut y = a;
        while y != 0 {
            depth += (x / y) as u64;
            let r = x % y;
            x = y;
            y = r;
        }
        depth - 1
    }

    /// The "lying" RREQ ordering heuristic from §V: a node advertising a
    /// solicitation understates its fraction so only strictly better nodes
    /// reply. For `p/q` with `p >= 2` this is `(p-1)/(q-1)`; for `p == 1`
    /// the fraction is first scaled by `k` giving `(k-1)/(k·q - 1)` (the
    /// paper used `k = 10000`).
    ///
    /// Returns `self` unchanged for `0/1` (a destination never lies about
    /// itself) and `None` only if the `k` scaling overflows.
    pub fn lie_down(&self, k: u64) -> Option<Self> {
        if self.is_zero() {
            return Some(*self);
        }
        if self.is_one() {
            // Unassigned labels are flagged with the U bit instead of lying.
            return Some(*self);
        }
        let one = T::ONE;
        if self.num > one {
            let num = self.num.checked_sub(one)?;
            let den = self.den.checked_sub(one)?;
            return Some(Fraction { num, den });
        }
        // num == 1: scale both components by k, then subtract one.
        let k = T::try_from_u128(k as u128)?;
        let num = self.num.checked_mul(k)?.checked_sub(one)?;
        let den = self.den.checked_mul(k)?.checked_sub(one)?;
        Some(Fraction { num, den })
    }
}

impl<T: FracInt> PartialEq for Fraction<T> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp_value(other) == Ordering::Equal
    }
}

impl<T: FracInt> Eq for Fraction<T> {}

impl<T: FracInt> PartialOrd for Fraction<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T: FracInt> Ord for Fraction<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.cmp_value(other)
    }
}

impl<T: FracInt> Hash for Fraction<T> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Hash the reduced form so numerically-equal fractions hash equally.
        let r = self.reduced();
        r.num.as_u128().hash(state);
        r.den.as_u128().hash(state);
    }
}

impl<T: FracInt> fmt::Debug for Fraction<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.num, self.den)
    }
}

impl<T: FracInt> fmt::Display for Fraction<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.num, self.den)
    }
}

impl<T: FracInt> Default for Fraction<T> {
    /// The default is the greatest element `1/1` (an unassigned label).
    fn default() -> Self {
        Self::one()
    }
}

/// Greatest common divisor (Euclid, 128-bit).
pub(crate) fn gcd_u128(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

/// Worst-case number of consecutive mediant splits representable in `T`.
///
/// Repeatedly splitting between the latest mediant and the nearer endpoint
/// produces Fibonacci denominators, the fastest-growing case. The paper
/// computes the bound 45 for 32-bit components ("this scheme can mask at
/// least 45 ordering violations along a path"); for `u64` it is 91.
///
/// # Examples
///
/// ```
/// assert_eq!(slr_core::fraction::worst_case_split_capacity::<u32>(), 45);
/// assert_eq!(slr_core::fraction::worst_case_split_capacity::<u64>(), 91);
/// ```
pub fn worst_case_split_capacity<T: FracInt>() -> u32 {
    let max = T::MAX.as_u128();
    let (mut a, mut b): (u128, u128) = (1, 1);
    let mut k = 0u32;
    loop {
        let c = a + b;
        if c > max {
            return k;
        }
        a = b;
        b = c;
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(n: u32, d: u32) -> Frac32 {
        Fraction::new(n, d).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(Fraction::<u32>::new(1, 0).is_err());
        assert_eq!(
            Fraction::<u32>::new(3, 2).unwrap_err(),
            FractionError::Improper
        );
        assert!(Fraction::<u32>::new(0, 1).is_ok());
        assert!(Fraction::<u32>::new(1, 1).is_ok());
        assert!(Fraction::<u32>::new(7, 7).is_ok());
    }

    #[test]
    fn zero_and_one() {
        assert!(Frac32::zero().is_zero());
        assert!(Frac32::one().is_one());
        assert!(!Frac32::zero().is_proper());
        assert!(!Frac32::one().is_proper());
        assert!(f(1, 2).is_proper());
    }

    #[test]
    fn numeric_equality() {
        assert_eq!(f(1, 2), f(2, 4));
        assert_eq!(f(3, 9), f(1, 3));
        assert_ne!(f(1, 2), f(2, 3));
        assert_eq!(f(7, 7), Frac32::one());
    }

    #[test]
    fn ordering_by_cross_multiplication() {
        assert!(f(1, 3) < f(1, 2));
        assert!(f(2, 3) > f(1, 2));
        assert!(Frac32::zero() < f(1, 1000000));
        assert!(f(999999, 1000000) < Frac32::one());
    }

    #[test]
    fn mediant_lies_strictly_between() {
        // Eq. 1 of the paper.
        let a = f(1, 2);
        let b = f(2, 3);
        let m = a.checked_mediant(&b).unwrap();
        assert_eq!(m, f(3, 5));
        assert!(a < m && m < b);
    }

    #[test]
    fn mediant_of_endpoints_is_one_half() {
        let m = Frac32::zero().checked_mediant(&Frac32::one()).unwrap();
        assert_eq!(m, f(1, 2));
    }

    #[test]
    fn next_element_matches_eq2() {
        assert_eq!(f(1, 2).next_element().unwrap(), f(2, 3));
        assert_eq!(f(2, 3).next_element().unwrap(), f(3, 4));
        assert_eq!(Frac32::zero().next_element().unwrap(), f(1, 2));
        assert!(Frac32::one().next_element().is_none());
    }

    #[test]
    fn next_element_is_strictly_greater() {
        let cases = [f(0, 1), f(1, 2), f(3, 7), f(999, 1000)];
        for c in cases {
            let n = c.next_element().unwrap();
            assert!(c < n, "{c} !< {n}");
        }
    }

    #[test]
    fn mediant_overflow_detection() {
        let near_max = Fraction::<u32>::new(u32::MAX - 1, u32::MAX).unwrap();
        assert!(near_max.mediant_overflows(&near_max));
        assert!(near_max.checked_mediant(&near_max).is_none());
        assert!(!f(1, 2).mediant_overflows(&f(1, 3)));
    }

    #[test]
    fn reduction() {
        assert_eq!(f(2, 4).reduced().num(), 1);
        assert_eq!(f(2, 4).reduced().den(), 2);
        assert_eq!(f(3, 5).reduced().num(), 3);
        assert_eq!(Frac32::zero().reduced(), Frac32::zero());
    }

    #[test]
    fn fibonacci_split_capacity_matches_paper() {
        // §III: "The least upper bound ... in a 32-bit unsigned integer is
        // found from the Fibonacci sequence to be 45 times."
        assert_eq!(worst_case_split_capacity::<u32>(), 45);
        assert_eq!(worst_case_split_capacity::<u64>(), 91);
    }

    #[test]
    fn worst_case_split_sequence_overflows_exactly_at_capacity() {
        // The worst case splits between the two most recent labels, which
        // grows denominators as Fibonacci numbers (the paper's bound of 45
        // for 32-bit components).
        let mut a = Frac32::zero();
        let mut b = Frac32::one();
        let mut fib_splits = 0u32;
        while let Some(m) = a.checked_mediant(&b) {
            a = b;
            b = m;
            fib_splits += 1;
        }
        assert_eq!(fib_splits, worst_case_split_capacity::<u32>());
    }

    #[test]
    fn stern_brocot_depths() {
        assert_eq!(Frac32::zero().stern_brocot_depth(), 0);
        assert_eq!(Frac32::one().stern_brocot_depth(), 0);
        assert_eq!(f(1, 2).stern_brocot_depth(), 1);
        assert_eq!(f(1, 3).stern_brocot_depth(), 2);
        assert_eq!(f(2, 3).stern_brocot_depth(), 2);
        assert_eq!(f(3, 5).stern_brocot_depth(), 3);
        // Equal values have equal depth regardless of representation.
        assert_eq!(f(2, 4).stern_brocot_depth(), 1);
    }

    #[test]
    fn lie_heuristic() {
        // p >= 2: subtract one from both components.
        assert_eq!(f(3, 4).lie_down(10_000).unwrap(), f(2, 3));
        assert!(f(3, 4).lie_down(10_000).unwrap() < f(3, 4));
        // p == 1: scale by k first.
        let lied = f(1, 2).lie_down(10_000).unwrap();
        assert_eq!(lied, f(9_999, 19_999));
        assert!(lied < f(1, 2));
        // Degenerate labels pass through unchanged.
        assert_eq!(Frac32::zero().lie_down(10_000).unwrap(), Frac32::zero());
        assert_eq!(Frac32::one().lie_down(10_000).unwrap(), Frac32::one());
    }

    #[test]
    fn display_formats() {
        assert_eq!(f(3, 5).to_string(), "3/5");
        assert_eq!(format!("{:?}", f(3, 5)), "3/5");
    }

    #[test]
    fn hash_consistent_with_numeric_eq() {
        use std::collections::hash_map::DefaultHasher;
        fn h(x: &Frac32) -> u64 {
            let mut s = DefaultHasher::new();
            x.hash(&mut s);
            s.finish()
        }
        assert_eq!(h(&f(1, 2)), h(&f(2, 4)));
        assert_eq!(h(&f(3, 9)), h(&f(1, 3)));
    }

    #[test]
    fn value_approximation() {
        assert!((f(1, 2).value() - 0.5).abs() < 1e-12);
        assert!((f(2, 3).value() - 0.666_666).abs() < 1e-3);
    }

    #[test]
    fn default_is_unassigned() {
        assert!(Frac32::default().is_one());
    }
}
