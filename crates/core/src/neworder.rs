//! Algorithm 1 of the paper: `NEWORDER`, the label-selection procedure of
//! SRP, together with the Definition 1 "maintain order" predicate it must
//! satisfy (Theorem 6).
//!
//! Given a node's current ordering `O_A`, the cached minimum-predecessor
//! ordering `C_A?` recorded when the corresponding solicitation was relayed,
//! and the ordering `O_?` carried by an incoming advertisement, `NEWORDER`
//! either returns a new finite ordering that maintains the graph's
//! topological order, or the infinite ordering `(0, (1,1))`, which forces
//! the caller (Procedure 3, *Set Route*) to ignore the advertisement.

use crate::fraction::{FracInt, Fraction};
use crate::label::SplitLabel;
use crate::sternbrocot::simplest_between;

/// The outcome of [`new_order`] with the reason it was chosen, mirroring the
/// five assignment cases distinguished in the proof of Theorem 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NewOrderCase {
    /// Line 2: the advertisement is infeasible, or splitting would overflow;
    /// the returned ordering is infinite and must be discarded.
    Infeasible,
    /// Line 5: fresher sequence number than both the node and its cached
    /// predecessors — take the advertisement's next-element `O_? + 1/1`.
    NextElement,
    /// Lines 7/12: split the cached predecessor ordering and the advertised
    /// ordering with the mediant.
    Split,
    /// Line 10: the node's current label already satisfies predecessor
    /// order; keep it.
    KeepOwn,
}

/// The result of [`new_order`]: the chosen ordering plus which case fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NewOrder<T: FracInt> {
    /// The proposed new ordering `G_A^T` (infinite when infeasible).
    pub label: SplitLabel<T>,
    /// Which assignment case of Algorithm 1 produced it.
    pub case: NewOrderCase,
}

/// Algorithm 1 (`NEWORDER`) from §III of the paper.
///
/// * `own` — the node's current ordering `O_A^T` (unassigned if none).
/// * `cached` — the cached solicitation ordering `C_A^?` (the minimum label
///   of the predecessors along the request's reverse path). For
///   advertisements without a cached solicitation (RREQ or hello
///   advertisements) or when the node is the terminus of the reply, pass
///   [`SplitLabel::unassigned`] per Procedure 3.
/// * `adv` — the ordering `O_?^T` in the received advertisement.
///
/// Returns the proposed ordering; when it is not finite the advertisement
/// must be dropped (Procedure 3). Successor pruning (line 13) is the
/// caller's responsibility because the successor table lives with the
/// routing protocol — see `SuccessorTable::prune_out_of_order` in
/// [`crate::successors`].
///
/// # Examples
///
/// ```
/// use slr_core::{new_order, Fraction, NewOrderCase, SplitLabel};
///
/// // A fresher destination sequence number resets the path: take the
/// // advertisement's next-element.
/// let own: SplitLabel<u32> = SplitLabel::new(1, Fraction::new(1, 2)?);
/// let cached = SplitLabel::new(1, Fraction::new(2, 3)?);
/// let adv = SplitLabel::new(2, Fraction::new(1, 4)?);
/// let g = new_order(own, cached, adv);
/// assert_eq!(g.case, NewOrderCase::NextElement);
/// assert_eq!(g.label, SplitLabel::new(2, Fraction::new(2, 5)?));
/// # Ok::<(), slr_core::FractionError>(())
/// ```
pub fn new_order<T: FracInt>(
    own: SplitLabel<T>,
    cached: SplitLabel<T>,
    adv: SplitLabel<T>,
) -> NewOrder<T> {
    let infeasible = NewOrder {
        label: SplitLabel::unassigned(),
        case: NewOrderCase::Infeasible,
    };

    if own.seqno() < adv.seqno() {
        if cached.seqno() < adv.seqno() {
            // Line 5: G ← O_? + 1/1.
            match adv.next_element() {
                Some(g) => NewOrder {
                    label: g,
                    case: NewOrderCase::NextElement,
                },
                None => infeasible,
            }
        } else {
            // Line 6–7: split C and O_? if n + q does not overflow.
            match cached.fd().checked_mediant(&adv.fd()) {
                Some(fd) => NewOrder {
                    label: SplitLabel::new(adv.seqno(), fd),
                    case: NewOrderCase::Split,
                },
                None => infeasible,
            }
        }
    } else if own.seqno() == adv.seqno() {
        if cached.precedes(&own) {
            // Line 10: current label already satisfies predecessor order.
            NewOrder {
                label: own,
                case: NewOrderCase::KeepOwn,
            }
        } else {
            // Line 11–12: split C and O_?.
            match cached.fd().checked_mediant(&adv.fd()) {
                Some(fd) => NewOrder {
                    label: SplitLabel::new(adv.seqno(), fd),
                    case: NewOrderCase::Split,
                },
                None => infeasible,
            }
        }
    } else {
        // sn_A > sn_?: contradicts feasibility; return the infinite
        // ordering (Theorem 6, Case I).
        infeasible
    }
}

/// The four inequalities of Definition 1 (*Maintain Order*), restated for
/// the SRP ordering `≺` where "less" means closer to the destination.
///
/// For a proposed label `g` at a node with current label `own`, cached
/// minimum-predecessor ordering `cached`, advertisement ordering `adv`, and
/// (optionally) the maximum successor ordering `s_max`:
///
/// * **Eq. 3** `G ⪯ L_i` — labels are non-increasing: `own ≺ g` or `g == own`.
/// * **Eq. 4** `G < M_i` — the relayed advertisement stays feasible along
///   the reverse path: `cached ≺ g`.
/// * **Eq. 5** `L_? < G` — the advertiser is strictly below: `g ≺ adv`.
/// * **Eq. 6** `S_max < G` — existing successors stay strictly below:
///   `g ≺ s_max`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrderCheck {
    /// Eq. 3 — the new label does not increase.
    pub non_increasing: bool,
    /// Eq. 4 — predecessor (cached solicitation) order is kept.
    pub predecessor_order: bool,
    /// Eq. 5 — the advertised successor is strictly lower.
    pub successor_feasible: bool,
    /// Eq. 6 — existing successors remain strictly lower (true when the
    /// successor set is empty).
    pub existing_successors: bool,
}

impl OrderCheck {
    /// Whether all four inequalities hold.
    pub fn maintains_order(&self) -> bool {
        self.non_increasing
            && self.predecessor_order
            && self.successor_feasible
            && self.existing_successors
    }
}

/// Evaluates Definition 1 for a proposed label `g`.
///
/// `s_max` is the maximum successor ordering (`None` when the successor set
/// is empty, in which case Eq. 6 is trivially satisfied: the paper takes
/// `S_max` as the least element then).
pub fn check_order<T: FracInt>(
    g: &SplitLabel<T>,
    own: &SplitLabel<T>,
    cached: &SplitLabel<T>,
    adv: &SplitLabel<T>,
    s_max: Option<&SplitLabel<T>>,
) -> OrderCheck {
    OrderCheck {
        non_increasing: own.precedes_eq(g),
        predecessor_order: cached.precedes(g),
        successor_feasible: g.precedes(adv),
        existing_successors: s_max.map_or(true, |s| g.precedes(s)),
    }
}

/// Convenience wrapper: true iff `g` maintains order per Definition 1.
pub fn maintains_order<T: FracInt>(
    g: &SplitLabel<T>,
    own: &SplitLabel<T>,
    cached: &SplitLabel<T>,
    adv: &SplitLabel<T>,
    s_max: Option<&SplitLabel<T>>,
) -> bool {
    check_order(g, own, cached, adv, s_max).maintains_order()
}

/// A helper mirroring Procedure 3's overflow safeguard: whether a label's
/// feasible-distance denominator exceeds `max_denom`, in which case the
/// terminus of an advertisement should request a path reset (unicast RREQ
/// with the D bit set). The paper uses `max_denom = 10^9`.
pub fn needs_denominator_reset<T: FracInt>(label: &SplitLabel<T>, max_denom: u64) -> bool {
    label.fd().den().as_u128() > max_denom as u128
}

/// Farey reduction of a proposed label (the paper's §VI future-work item):
/// replace `g`'s raw-mediant fraction with the *simplest* fraction whose
/// adoption satisfies exactly the same Definition 1 inequalities.
///
/// The open interval the reduced fraction must lie in is read off
/// Definition 1 restricted to `g`'s sequence number:
///
/// * below (`lo`): the advertiser's fraction when `adv` shares the seqno
///   (Eq. 5), and `succ_floor` — the largest same-seqno fraction among
///   successors that remain installed (Eq. 6);
/// * above (`hi`): `own`'s and `cached`'s fractions when they share the
///   seqno (Eqs. 3–4), and `1/1` (the result must stay finite).
///
/// `g` itself lies in that interval whenever it maintains order, so
/// [`simplest_between`] can only return a denominator ≤ `g`'s. Returns
/// `None` when no strictly simpler fraction exists (the caller keeps `g`)
/// and defensively re-verifies Definition 1 on the candidate.
pub fn reduce_label<T: FracInt>(
    g: &SplitLabel<T>,
    own: &SplitLabel<T>,
    cached: &SplitLabel<T>,
    adv: &SplitLabel<T>,
    succ_floor: Option<Fraction<T>>,
) -> Option<SplitLabel<T>> {
    let sn = g.seqno();
    let mut lo = Fraction::zero();
    let mut hi = Fraction::one();
    if adv.seqno() == sn && adv.fd() > lo {
        lo = adv.fd();
    }
    if let Some(f) = succ_floor {
        if f > lo {
            lo = f;
        }
    }
    if own.seqno() == sn && own.fd() < hi {
        hi = own.fd();
    }
    if cached.seqno() == sn && cached.fd() < hi {
        hi = cached.fd();
    }
    let r = simplest_between(&lo, &hi)?;
    if r.den() >= g.fd().den() {
        return None; // no simpler representation exists
    }
    let reduced = SplitLabel::new(sn, r);
    // Defense in depth: the interval construction above implies these,
    // but adopting a label is exactly where an error would break the
    // Theorem 3 loop-freedom argument — never trust the fast path.
    if !maintains_order(&reduced, own, cached, adv, None) {
        return None;
    }
    if let Some(f) = succ_floor {
        if r <= f {
            return None;
        }
    }
    Some(reduced)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fraction::Fraction;

    type L = SplitLabel<u32>;

    fn l(sn: u64, n: u32, d: u32) -> L {
        SplitLabel::new(sn, Fraction::new(n, d).unwrap())
    }

    fn una() -> L {
        SplitLabel::unassigned()
    }

    #[test]
    fn case_next_element_fresher_seqno() {
        // own and cached both stale: adopt adv's next-element.
        let g = new_order(l(1, 1, 2), l(1, 2, 3), l(2, 1, 3));
        assert_eq!(g.case, NewOrderCase::NextElement);
        assert_eq!(g.label, l(2, 2, 4));
    }

    #[test]
    fn case_split_when_cached_has_same_seqno_as_adv() {
        // own stale, cached at adv's seqno: split cached and adv fractions.
        let g = new_order(l(1, 1, 2), l(2, 2, 3), l(2, 1, 3));
        assert_eq!(g.case, NewOrderCase::Split);
        // mediant of 2/3 and 1/3 = 3/6.
        assert_eq!(g.label, l(2, 3, 6));
        // The result is strictly between adv (below) and cached (above):
        // cached ≺ g (Eq. 4) and g ≺ adv (Eq. 5).
        assert!(l(2, 2, 3).precedes(&g.label));
        assert!(g.label.precedes(&l(2, 1, 3)));
    }

    #[test]
    fn case_keep_own() {
        // Equal seqno and cached ≺ own: keep the current label.
        let own = l(3, 1, 2);
        let cached = l(3, 2, 3); // F_own (1/2) < F_cached (2/3) → cached ≺ own
        let adv = l(3, 1, 3);
        let g = new_order(own, cached, adv);
        assert_eq!(g.case, NewOrderCase::KeepOwn);
        assert_eq!(g.label, own);
    }

    #[test]
    fn case_split_same_seqno_out_of_order() {
        // Equal seqno, cached ⊀ own (node is out of order w.r.t. the
        // request): split cached and adv.
        let own = l(3, 3, 4);
        let cached = l(3, 2, 3); // F_own (3/4) > F_cached (2/3) → cached ⊀ own
        let adv = l(3, 1, 2);
        let g = new_order(own, cached, adv);
        assert_eq!(g.case, NewOrderCase::Split);
        assert_eq!(g.label, l(3, 3, 5)); // mediant(2/3, 1/2)
    }

    #[test]
    fn case_infeasible_higher_own_seqno() {
        // sn_A > sn_?: Theorem 6 Case I — never accept.
        let g = new_order(l(5, 1, 2), una(), l(4, 1, 3));
        assert_eq!(g.case, NewOrderCase::Infeasible);
        assert!(!g.label.is_finite());
    }

    #[test]
    fn case_infeasible_on_overflow() {
        let big = Fraction::<u32>::new(u32::MAX - 1, u32::MAX).unwrap();
        let own = l(1, 1, 2);
        let cached = SplitLabel::new(2, big);
        let adv = SplitLabel::new(2, big);
        let g = new_order(own, cached, adv);
        assert_eq!(g.case, NewOrderCase::Infeasible);
    }

    #[test]
    fn unassigned_node_adopts_next_element() {
        // A node with no label hearing a fresh advertisement takes the
        // next-element (fresher seqno path, cached unassigned → sn 0 < adv).
        let g = new_order(una(), una(), l(1, 0, 1));
        assert_eq!(g.case, NewOrderCase::NextElement);
        assert_eq!(g.label, l(1, 1, 2));
    }

    #[test]
    fn theorem6_feasible_results_maintain_order() {
        // Whenever Fact 1 (own ≺ adv or own unassigned-below) and Fact 2
        // (cached ≺ adv) hold and the result is finite, the chosen label
        // must satisfy Eqs. 3–5.
        let fracs: Vec<Fraction<u32>> = [
            (0u32, 1u32),
            (1, 4),
            (1, 3),
            (2, 5),
            (1, 2),
            (3, 5),
            (2, 3),
            (3, 4),
            (1, 1),
        ]
        .iter()
        .map(|&(n, d)| Fraction::new(n, d).unwrap())
        .collect();
        let mut checked = 0;
        for &sn_own in &[0u64, 1, 2] {
            for &sn_c in &[0u64, 1, 2] {
                for &sn_adv in &[1u64, 2] {
                    for &f_own in &fracs {
                        for &f_c in &fracs {
                            for &f_adv in &fracs {
                                let own = SplitLabel::new(sn_own, f_own);
                                let cached = SplitLabel::new(sn_c, f_c);
                                let adv = SplitLabel::new(sn_adv, f_adv);
                                if !own.precedes(&adv) || !cached.precedes(&adv) {
                                    continue; // Facts 1–2 violated.
                                }
                                let g = new_order(own, cached, adv);
                                if !g.label.is_finite() {
                                    continue; // overflow path, allowed.
                                }
                                let chk = check_order(&g.label, &own, &cached, &adv, None);
                                assert!(
                                    chk.non_increasing
                                        && chk.predecessor_order
                                        && chk.successor_feasible,
                                    "own={own} cached={cached} adv={adv} g={:?} chk={chk:?}",
                                    g
                                );
                                checked += 1;
                            }
                        }
                    }
                }
            }
        }
        assert!(checked > 100, "exhaustive sweep too small: {checked}");
    }

    #[test]
    fn check_order_flags_each_inequality() {
        let own = l(1, 1, 2);
        let cached = l(1, 2, 3);
        let adv = l(1, 1, 3);
        // Proposal above own label → Eq. 3 violated.
        let too_high = l(1, 3, 4);
        assert!(!check_order(&too_high, &own, &cached, &adv, None).non_increasing);
        // Proposal below adv → Eq. 5 violated.
        let too_low = l(1, 1, 4);
        assert!(!check_order(&too_low, &own, &cached, &adv, None).successor_feasible);
        // Valid proposal between adv and own.
        let good = l(1, 2, 5);
        let chk = check_order(&good, &own, &cached, &adv, None);
        assert!(chk.maintains_order());
        // Eq. 6 with a successor max above the proposal.
        let s_max = l(1, 1, 4);
        assert!(check_order(&good, &own, &cached, &adv, Some(&s_max)).existing_successors);
        let s_bad = l(1, 3, 10); // 3/10 < ... wait 3/10 < 2/5: successor fraction must be < g
        let _ = s_bad;
        let s_above = l(1, 1, 2);
        assert!(!check_order(&good, &own, &cached, &adv, Some(&s_above)).existing_successors);
    }

    #[test]
    fn reduce_label_simplifies_within_definition1_interval() {
        // g = mediant-grown 400/1000 between adv 1/3 and cached 1/2: the
        // simplest fraction in (1/3, 1/2) is 2/5, and it must satisfy the
        // same Definition 1 inequalities g did.
        let own = l(4, 600, 1000);
        let cached = l(4, 1, 2);
        let adv = l(4, 1, 3);
        let g = l(4, 400, 1000);
        assert!(maintains_order(&g, &own, &cached, &adv, None));
        let r = reduce_label(&g, &own, &cached, &adv, None).expect("reducible");
        assert_eq!(r, l(4, 2, 5));
        assert!(maintains_order(&r, &own, &cached, &adv, None));
    }

    #[test]
    fn reduce_label_respects_successor_floor() {
        let own = l(4, 600, 1000);
        let cached = l(4, 1, 2);
        let adv = l(4, 1, 3);
        let g = l(4, 440, 1000);
        // A surviving successor at 2/5 forbids reducing to 2/5 or below.
        let floor = Some(Fraction::new(2, 5).unwrap());
        let r = reduce_label(&g, &own, &cached, &adv, floor).expect("reducible");
        assert!(r.fd() > Fraction::new(2, 5).unwrap());
        assert!(r.fd() < Fraction::new(1, 2).unwrap());
        assert!(r.fd().den() < 1000);
    }

    #[test]
    fn reduce_label_declines_when_already_simplest() {
        // g = 2/5 in (1/3, 1/2) is already the simplest fraction there.
        let own = l(4, 1, 2);
        let cached = una();
        let adv = l(4, 1, 3);
        let g = l(4, 2, 5);
        assert!(reduce_label(&g, &own, &cached, &adv, None).is_none());
    }

    #[test]
    fn reduce_label_fresher_seqno_ignores_stale_fractions() {
        // own/cached sit at an older seqno: their fractions do not bound
        // the interval, so the reduction may use the whole (adv, 1).
        let own = l(1, 1, 9);
        let cached = l(1, 1, 8);
        let adv = l(2, 1, 3);
        let g = l(2, 400, 1000);
        assert!(maintains_order(&g, &own, &cached, &adv, None));
        let r = reduce_label(&g, &own, &cached, &adv, None).expect("reducible");
        assert_eq!(r, l(2, 1, 2));
        assert!(maintains_order(&r, &own, &cached, &adv, None));
    }

    #[test]
    fn denominator_reset_threshold() {
        let ok = l(1, 1, 1_000_000);
        assert!(!needs_denominator_reset(&ok, 1_000_000_000));
        let big = SplitLabel::new(1, Fraction::<u32>::new(1, 2_000_000_000).unwrap());
        assert!(needs_denominator_reset(&big, 1_000_000_000));
    }
}
