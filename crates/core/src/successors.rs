//! Per-destination successor tables (the set `S_i` of §II and `S_A^T` of
//! §III).
//!
//! SLR is inherently multi-path: a node may keep any set of successors whose
//! recorded advertisement orderings are all strictly below its own label.
//! The table records, per successor, the ordering carried by the
//! advertisement that created the link plus the measured distance, supports
//! the maximum-successor query (`S_max`, the strict lower bound for the
//! node's own label, Eq. 6), and implements line 13 of Algorithm 1 —
//! eliminating successors that would be out of order under a proposed new
//! label.

use crate::fraction::FracInt;
use crate::label::SplitLabel;

/// One successor entry: the advertised ordering and measured distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuccessorEntry<T: FracInt> {
    /// The ordering `O_?^T` advertised when this successor was installed.
    pub label: SplitLabel<T>,
    /// Measured distance (cumulative link cost) via this successor. With
    /// unit link costs this is a hop count. Not used for loop-freedom —
    /// only for multi-path successor choice (§II).
    pub distance: u32,
}

/// The successor set `S_i` for one destination, keyed by neighbor id.
///
/// # Examples
///
/// ```
/// use slr_core::{Fraction, SplitLabel, SuccessorTable};
///
/// let mut s: SuccessorTable<u64, u32> = SuccessorTable::new();
/// s.insert(7, SplitLabel::new(1, Fraction::new(1, 3)?), 2);
/// s.insert(9, SplitLabel::new(1, Fraction::new(1, 2)?), 3);
/// // S_max is the successor ordering *highest* in the DAG (largest label).
/// assert_eq!(s.max_label().unwrap(), SplitLabel::new(1, Fraction::new(1, 2)?));
/// // The best (min-hop) successor is node 7.
/// assert_eq!(s.best_successor().unwrap().0, 7);
/// # Ok::<(), slr_core::FractionError>(())
/// ```
/// Backed by one sorted `Vec` rather than a `BTreeMap`: a node's
/// successor set for one destination holds a handful of entries, and at
/// 100k+ nodes the tree's per-node allocations dominated the table's
/// payload. Iteration stays in ascending neighbor order.
#[derive(Debug, Clone, PartialEq)]
pub struct SuccessorTable<K: Ord + Copy, T: FracInt> {
    entries: Vec<(K, SuccessorEntry<T>)>,
}

impl<K: Ord + Copy, T: FracInt> SuccessorTable<K, T> {
    /// Creates an empty successor table (an *invalid* route, Definition 2).
    pub fn new() -> Self {
        SuccessorTable {
            entries: Vec::new(),
        }
    }

    fn index_of(&self, neighbor: &K) -> Result<usize, usize> {
        self.entries.binary_search_by(|(k, _)| k.cmp(neighbor))
    }

    /// Whether the table is empty (the route is invalid, Definition 2).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of successors.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Installs or refreshes a successor with the ordering its
    /// advertisement carried (`S_A^{T,B} ← O_?^T`, Procedure 3).
    pub fn insert(&mut self, neighbor: K, label: SplitLabel<T>, distance: u32) {
        let entry = SuccessorEntry { label, distance };
        match self.index_of(&neighbor) {
            Ok(i) => self.entries[i].1 = entry,
            Err(i) => self.entries.insert(i, (neighbor, entry)),
        }
    }

    /// Removes a successor (link break, RERR, or route timeout). Returns the
    /// removed entry if present.
    pub fn remove(&mut self, neighbor: &K) -> Option<SuccessorEntry<T>> {
        match self.index_of(neighbor) {
            Ok(i) => Some(self.entries.remove(i).1),
            Err(_) => None,
        }
    }

    /// Clears all successors (invalidating the route).
    pub fn clear(&mut self) {
        self.entries.clear()
    }

    /// Looks up a successor's entry.
    pub fn get(&self, neighbor: &K) -> Option<&SuccessorEntry<T>> {
        self.index_of(neighbor).ok().map(|i| &self.entries[i].1)
    }

    /// Whether `neighbor` is currently a successor.
    pub fn contains(&self, neighbor: &K) -> bool {
        self.index_of(neighbor).is_ok()
    }

    /// Iterates over `(neighbor, entry)` pairs in neighbor order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &SuccessorEntry<T>)> {
        self.entries.iter().map(|(k, e)| (k, e))
    }

    /// Live heap bytes held by this table (capacity, not length — the
    /// allocator holds capacity).
    pub fn mem_bytes(&self) -> usize {
        self.entries.capacity() * std::mem::size_of::<(K, SuccessorEntry<T>)>()
    }

    /// The maximum successor ordering `S_max` — the strict lower bound for
    /// this node's own label (Eq. 6). `None` when the table is empty (the
    /// paper then takes the least element, making Eq. 6 trivial).
    pub fn max_label(&self) -> Option<SplitLabel<T>> {
        let mut it = self.entries.iter().map(|(_, e)| e);
        let first = it.next()?.label;
        Some(it.fold(first, |acc, e| SplitLabel::max_label(acc, e.label)))
    }

    /// The successor with minimum measured distance (ties broken by lowest
    /// neighbor id) — the simple min-hop uni-path choice from §III.
    pub fn best_successor(&self) -> Option<(K, SuccessorEntry<T>)> {
        self.entries
            .iter()
            .min_by_key(|(k, e)| (e.distance, *k))
            .map(|(k, e)| (*k, *e))
    }

    /// Line 13 of Algorithm 1: eliminate any successor `i` whose recorded
    /// ordering is not strictly below a proposed label `g`
    /// (`G_A^T ⊀ S_A^{T,i}`). Returns the neighbors removed.
    pub fn prune_out_of_order(&mut self, g: &SplitLabel<T>) -> Vec<K> {
        let mut doomed = Vec::new();
        self.entries.retain(|(k, e)| {
            if g.precedes(&e.label) {
                true
            } else {
                doomed.push(*k);
                false
            }
        });
        doomed
    }
}

impl<K: Ord + Copy, T: FracInt> Default for SuccessorTable<K, T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fraction::Fraction;

    type Tbl = SuccessorTable<u32, u32>;

    fn l(sn: u64, n: u32, d: u32) -> SplitLabel<u32> {
        SplitLabel::new(sn, Fraction::new(n, d).unwrap())
    }

    #[test]
    fn empty_route_is_invalid() {
        let t = Tbl::new();
        assert!(t.is_empty());
        assert!(t.max_label().is_none());
        assert!(t.best_successor().is_none());
    }

    #[test]
    fn insert_and_query() {
        let mut t = Tbl::new();
        t.insert(1, l(1, 1, 3), 2);
        t.insert(2, l(1, 1, 2), 4);
        assert_eq!(t.len(), 2);
        assert!(t.contains(&1));
        assert_eq!(t.get(&1).unwrap().distance, 2);
    }

    #[test]
    fn max_label_is_the_highest_successor() {
        let mut t = Tbl::new();
        t.insert(1, l(1, 1, 3), 2); // fraction 1/3
        t.insert(2, l(1, 1, 2), 4); // fraction 1/2 — higher in DAG
        t.insert(3, l(2, 2, 3), 1); // seqno 2 — lower in DAG (fresher)
                                    // max picks the label *highest* in the DAG: seqno 1, fraction 1/2.
        assert_eq!(t.max_label().unwrap(), l(1, 1, 2));
    }

    #[test]
    fn best_successor_is_min_distance() {
        let mut t = Tbl::new();
        t.insert(5, l(1, 1, 3), 3);
        t.insert(9, l(1, 1, 4), 1);
        assert_eq!(t.best_successor().unwrap().0, 9);
        // Tie on distance → lowest id.
        t.insert(2, l(1, 1, 5), 1);
        assert_eq!(t.best_successor().unwrap().0, 2);
    }

    #[test]
    fn prune_removes_out_of_order_successors() {
        let mut t = Tbl::new();
        t.insert(1, l(1, 1, 4), 2); // 1/4 — fine below g = 1/3
        t.insert(2, l(1, 1, 2), 2); // 1/2 — above g, must go
        t.insert(3, l(2, 3, 4), 2); // fresher seqno — below g, stays
        let g = l(1, 1, 3);
        let removed = t.prune_out_of_order(&g);
        assert_eq!(removed, vec![2]);
        assert!(t.contains(&1));
        assert!(t.contains(&3));
    }

    #[test]
    fn remove_and_clear() {
        let mut t = Tbl::new();
        t.insert(1, l(1, 1, 4), 2);
        assert!(t.remove(&1).is_some());
        assert!(t.remove(&1).is_none());
        t.insert(2, l(1, 1, 4), 2);
        t.clear();
        assert!(t.is_empty());
    }
}
