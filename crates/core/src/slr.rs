//! The generic SLR class of §II: a dense ordinal label set and the
//! Definition 1 relabeling discipline, independent of any concrete protocol.
//!
//! This module uses the *SLR orientation* of the order — the destination
//! carries the **least** label, labels strictly decrease along every
//! successor edge toward it — matching the paper's `<` on the ordinal set
//! `L` (the SRP ordering of Definition 5 inverts the fraction sense inside
//! the composite label; see [`crate::label`]).

use core::cmp::Ordering;
use core::fmt;

use crate::fraction::{FracInt, Fraction};
use crate::sternbrocot::{simplest_between, SbPath};

/// A dense ordinal label set `L` (§II): a strict linear order with least
/// and greatest elements, a next-element operator, and interpolation
/// between any two distinct elements.
///
/// `between`/`next_up` return `None` only for *bounded* implementations
/// (such as fixed-width fractions) when the representation overflows, or
/// when the request is vacuous (`next_up` of the greatest element, or
/// `between` on an empty interval).
pub trait DenseLabel: Clone + Eq + fmt::Debug {
    /// The least element — the natural label for the destination.
    fn least() -> Self;
    /// The greatest element `∞` — the label of an unassigned node.
    fn greatest() -> Self;
    /// The strict linear order on the set.
    fn cmp_label(&self, other: &Self) -> Ordering;
    /// A label strictly between `lo` and `hi` (requires `lo < hi`).
    fn between(lo: &Self, hi: &Self) -> Option<Self>;
    /// A label strictly greater than `self` (`ε⁺`); `None` for the
    /// greatest element.
    fn next_up(&self) -> Option<Self>;

    /// `self < other` in label order.
    fn lt(&self, other: &Self) -> bool {
        self.cmp_label(other) == Ordering::Less
    }

    /// `self <= other` in label order.
    fn le(&self, other: &Self) -> bool {
        self.cmp_label(other) != Ordering::Greater
    }

    /// The smaller of two labels.
    fn min_of(a: Self, b: Self) -> Self {
        if a.le(&b) {
            a
        } else {
            b
        }
    }
}

impl<T: FracInt> DenseLabel for Fraction<T> {
    fn least() -> Self {
        Fraction::zero()
    }
    fn greatest() -> Self {
        Fraction::one()
    }
    fn cmp_label(&self, other: &Self) -> Ordering {
        self.cmp_value(other)
    }
    fn between(lo: &Self, hi: &Self) -> Option<Self> {
        if lo.cmp_value(hi) != Ordering::Less {
            return None;
        }
        lo.checked_mediant(hi)
    }
    fn next_up(&self) -> Option<Self> {
        self.next_element()
    }
}

/// A fraction label that interpolates with the **simplest** fraction in the
/// open interval (Farey / Stern–Brocot reduction) instead of the raw
/// mediant — the extension sketched in the paper's conclusion. Splitting
/// consumes the fixed-width budget much more slowly; see the
/// `label_strategies` bench.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FareyFraction<T: FracInt>(pub Fraction<T>);

impl<T: FracInt> fmt::Debug for FareyFraction<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl<T: FracInt> fmt::Display for FareyFraction<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl<T: FracInt> DenseLabel for FareyFraction<T> {
    fn least() -> Self {
        FareyFraction(Fraction::zero())
    }
    fn greatest() -> Self {
        FareyFraction(Fraction::one())
    }
    fn cmp_label(&self, other: &Self) -> Ordering {
        self.0.cmp_value(&other.0)
    }
    fn between(lo: &Self, hi: &Self) -> Option<Self> {
        simplest_between(&lo.0, &hi.0).map(FareyFraction)
    }
    fn next_up(&self) -> Option<Self> {
        if self.0.is_one() {
            return None;
        }
        // The simplest fraction strictly above self.
        simplest_between(&self.0, &Fraction::one()).map(FareyFraction)
    }
}

impl DenseLabel for SbPath {
    fn least() -> Self {
        SbPath::Least
    }
    fn greatest() -> Self {
        SbPath::Greatest
    }
    fn cmp_label(&self, other: &Self) -> Ordering {
        self.cmp_value(other)
    }
    fn between(lo: &Self, hi: &Self) -> Option<Self> {
        SbPath::between(lo, hi)
    }
    fn next_up(&self) -> Option<Self> {
        SbPath::next_up(self)
    }
}

/// The Definition 1 inequalities in SLR orientation, for a proposed label
/// `g` given the node's current label, the cached minimum predecessor label
/// `M_i`, the advertised label `L_?`, and the maximum successor label
/// `S_max` (the least element when the successor set is empty).
pub fn maintains_order_slr<L: DenseLabel>(
    g: &L,
    own: &L,
    cached_min: &L,
    adv: &L,
    s_max: &L,
) -> bool {
    g.le(own)              // Eq. 3: labels non-increasing
        && g.lt(cached_min) // Eq. 4: below all predecessors on the path
        && adv.lt(g)        // Eq. 5: strictly above the advertiser
        && s_max.lt(g) // Eq. 6: strictly above existing successors
}

/// Chooses a new label per §II's narrative rule: keep the current label if
/// it already maintains order; otherwise take the advertisement's
/// next-element; otherwise split between the advertised label and
/// `min(M_i, L_i)`. Returns `None` when no maintaining label exists in the
/// (possibly bounded) set.
///
/// This reproduces both worked examples of the paper — see
/// `examples/paper_figures.rs`.
pub fn choose_label<L: DenseLabel>(own: &L, cached_min: &L, adv: &L, s_max: &L) -> Option<L> {
    // Keep the current label when possible (the paper's nodes G and H in
    // Example 2 "satisfy Eq. 4 with their current labels, so no change is
    // necessary").
    if maintains_order_slr(own, own, cached_min, adv, s_max) {
        return Some(own.clone());
    }
    // Generally choose the next-element of the advertisement…
    if let Some(g) = adv.next_up() {
        if maintains_order_slr(&g, own, cached_min, adv, s_max) {
            return Some(g);
        }
    }
    // …otherwise split the advertised label and the cached minimum. Eq. 6
    // is re-checked on the result: if the split lands at or below S_max the
    // caller must either drop successors or reject (Theorem 4 ignores Eq. 6
    // for the same reason).
    let hi = L::min_of(cached_min.clone(), own.clone());
    let g = L::between(adv, &hi)?;
    if maintains_order_slr(&g, own, cached_min, adv, s_max) {
        Some(g)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type F = Fraction<u32>;

    fn f(n: u32, d: u32) -> F {
        Fraction::new(n, d).unwrap()
    }

    #[test]
    fn fraction_dense_label_basics() {
        assert_eq!(F::least(), f(0, 1));
        assert_eq!(F::greatest(), f(1, 1));
        assert!(F::least() < F::greatest());
        assert_eq!(F::between(&f(1, 2), &f(2, 3)).unwrap(), f(3, 5));
        assert!(F::between(&f(2, 3), &f(1, 2)).is_none());
        assert_eq!(f(1, 2).next_up().unwrap(), f(2, 3));
        assert!(F::greatest().next_up().is_none());
    }

    #[test]
    fn farey_fraction_splits_simpler() {
        type G = FareyFraction<u32>;
        let lo = FareyFraction(f(1, 3));
        let hi = FareyFraction(f(1, 2));
        // Mediant would give 2/5; simplest in (1/3, 1/2) is also 2/5.
        assert_eq!(G::between(&lo, &hi).unwrap().0, f(2, 5));
        // But for (2/7, 1/3): mediant 3/10 = simplest 3/10; deeper case:
        let lo = FareyFraction(f(4, 9));
        let hi = FareyFraction(f(5, 9));
        // Mediant = 9/18 = 1/2 unreduced; Farey gives 1/2 reduced.
        let g = G::between(&lo, &hi).unwrap();
        assert_eq!(g.0.num(), 1);
        assert_eq!(g.0.den(), 2);
    }

    #[test]
    fn sbpath_is_a_dense_label() {
        let a = SbPath::least();
        let b = SbPath::greatest();
        let m = SbPath::between(&a, &b).unwrap();
        assert!(a.lt(&m) && m.lt(&b));
        assert!(m.next_up().is_some());
    }

    #[test]
    fn example1_initial_labeling() {
        // Fig. 1: T=0/1 replies; A..E relabel to 1/2, 2/3, 3/4, 4/5, 5/6.
        let mut adv = f(0, 1);
        let mut labels = Vec::new();
        for _ in 0..5 {
            let own = F::greatest();
            let cached = F::greatest(); // request carried 1/1
            let g = choose_label(&own, &cached, &adv, &F::least()).unwrap();
            labels.push(g);
            adv = g;
        }
        assert_eq!(labels, vec![f(1, 2), f(2, 3), f(3, 4), f(4, 5), f(5, 6)]);
    }

    #[test]
    fn example2_relabeling() {
        // Fig. 2: A replies with 1/2. B (label 2/3, cached M=2/3) splits to
        // 3/5; F (label 2/3, cached M=2/3) splits to 5/8; G and H keep
        // their labels.
        let least = F::least();

        // Node B: own 2/3, cached 2/3, adv 1/2, successors empty.
        let g_b = choose_label(&f(2, 3), &f(2, 3), &f(1, 2), &least).unwrap();
        assert_eq!(g_b, f(3, 5));

        // Node F: own 2/3, cached 2/3 (G relayed min(2/3, 3/4)), adv 3/5.
        let g_f = choose_label(&f(2, 3), &f(2, 3), &f(3, 5), &least).unwrap();
        assert_eq!(g_f, f(5, 8));

        // Node G: own 2/3, cached 3/4 (from H), adv 5/8 → keeps 2/3.
        let g_g = choose_label(&f(2, 3), &f(3, 4), &f(5, 8), &least).unwrap();
        assert_eq!(g_g, f(2, 3));

        // Node H: own 3/4, cached ∞ (it originated), adv 2/3 → keeps 3/4.
        let g_h = choose_label(&f(3, 4), &F::greatest(), &f(2, 3), &least).unwrap();
        assert_eq!(g_h, f(3, 4));
    }

    #[test]
    fn choose_label_none_when_interval_empty() {
        // own == adv: no label strictly between can also be <= own.
        let r = choose_label(&f(1, 2), &f(1, 2), &f(1, 2), &F::least());
        assert!(r.is_none());
    }

    #[test]
    fn choose_label_respects_smax() {
        // s_max above the only viable interval forces None.
        let r = choose_label(&f(1, 2), &f(2, 3), &f(1, 3), &f(1, 2));
        assert!(r.is_none(), "got {r:?}");
        // With a low s_max the same call succeeds.
        let r = choose_label(&f(1, 2), &f(2, 3), &f(1, 3), &f(1, 4)).unwrap();
        assert!(f(1, 3) < r && r <= f(1, 2));
    }
}
