//! A pure graph-level model of an SLR route computation (§II), independent
//! of radios, timers and packet loss.
//!
//! [`SlrGraph`] holds one destination's DAG: per-node labels and successor
//! sets. Route computations follow the paper's narrative: a request travels
//! `v_k … v_0` carrying the running minimum predecessor label `M_i`; the
//! reply travels back, each node relabeling per Definition 1 via
//! [`crate::slr::choose_label`] and adding the advertiser as successor.
//!
//! The engine asserts the topological-order invariant after every mutation
//! when built with `debug_assertions`, and exposes
//! [`SlrGraph::check_topological_order`] for tests — a machine check of
//! Theorem 3 (instantaneous loop freedom).

use std::collections::BTreeMap;

use crate::dag;
use crate::slr::{choose_label, DenseLabel};

/// Node identifier inside an [`SlrGraph`].
pub type NodeId = usize;

/// Errors from SLR graph route computations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlrError {
    /// A node id was out of range.
    UnknownNode(NodeId),
    /// The request path was empty or degenerate.
    BadPath,
    /// The replying node cannot reply (greatest label and not destination,
    /// or its label is not below the request minimum).
    CannotReply(NodeId),
    /// No maintaining label exists at a node (bounded label sets only).
    LabelExhausted(NodeId),
    /// The graph's labels are no longer in topological order.
    OrderViolation(dag::OrderViolation),
}

impl std::fmt::Display for SlrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SlrError::UnknownNode(n) => write!(f, "unknown node {n}"),
            SlrError::BadPath => write!(f, "request path must visit at least two nodes"),
            SlrError::CannotReply(n) => write!(f, "node {n} cannot reply to the request"),
            SlrError::LabelExhausted(n) => {
                write!(f, "no maintaining label exists at node {n}")
            }
            SlrError::OrderViolation(v) => write!(f, "order violation: {v}"),
        }
    }
}

impl std::error::Error for SlrError {}

/// Per-node state: current label plus successor set with recorded labels.
#[derive(Debug, Clone)]
struct NodeState<L> {
    label: L,
    /// successor id → label recorded from the advertisement that installed
    /// the edge.
    succs: BTreeMap<NodeId, L>,
}

/// One destination's labeled successor graph under SLR (§II).
///
/// # Examples
///
/// ```
/// use slr_core::engine::SlrGraph;
/// use slr_core::Fraction;
///
/// // Fig. 1: E-D-C-B-A-T line; request from E, reply from T.
/// let mut g: SlrGraph<Fraction<u32>> = SlrGraph::new(6, 0);
/// g.run_request(&[5, 4, 3, 2, 1, 0])?;
/// assert_eq!(*g.label(1), Fraction::new(1, 2)?); // node A
/// assert_eq!(*g.label(5), Fraction::new(5, 6)?); // node E
/// g.check_topological_order()?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct SlrGraph<L: DenseLabel> {
    nodes: Vec<NodeState<L>>,
    dest: NodeId,
}

impl<L: DenseLabel> SlrGraph<L> {
    /// Creates a graph of `n` nodes for destination `dest`: the destination
    /// holds the least label, every other node the greatest (unassigned).
    ///
    /// # Panics
    ///
    /// Panics if `dest >= n`.
    pub fn new(n: usize, dest: NodeId) -> Self {
        assert!(dest < n, "destination {dest} out of range 0..{n}");
        let nodes = (0..n)
            .map(|i| NodeState {
                label: if i == dest { L::least() } else { L::greatest() },
                succs: BTreeMap::new(),
            })
            .collect();
        SlrGraph { nodes, dest }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The destination node id.
    pub fn destination(&self) -> NodeId {
        self.dest
    }

    /// A node's current label.
    pub fn label(&self, node: NodeId) -> &L {
        &self.nodes[node].label
    }

    /// Iterates over a node's successors and the labels recorded for them.
    pub fn successors(&self, node: NodeId) -> impl Iterator<Item = (NodeId, &L)> {
        self.nodes[node].succs.iter().map(|(k, v)| (*k, v))
    }

    /// Whether `node` currently has at least one successor (or is the
    /// destination, which needs none).
    pub fn has_route(&self, node: NodeId) -> bool {
        node == self.dest || !self.nodes[node].succs.is_empty()
    }

    /// The maximum recorded successor label at `node` (`S_max`), or the
    /// least element if the successor set is empty.
    pub fn s_max(&self, node: NodeId) -> L {
        self.nodes[node]
            .succs
            .values()
            .fold(L::least(), |acc, l| if acc.lt(l) { l.clone() } else { acc })
    }

    /// Removes the directed successor link `from → to` (link failure).
    pub fn drop_link(&mut self, from: NodeId, to: NodeId) {
        self.nodes[from].succs.remove(&to);
    }

    /// Overwrites a node's label directly, bypassing Definition 1.
    ///
    /// Intended for setting up scenarios (e.g. the paper's Fig. 2, where
    /// nodes hold stale labels from routes they once had). The caller is
    /// responsible for keeping the graph consistent; the next
    /// [`SlrGraph::check_topological_order`] will flag any violation.
    pub fn set_label_for_test(&mut self, node: NodeId, label: L) {
        self.nodes[node].label = label;
    }

    /// Runs a complete route computation along `path`
    /// (`path[0] = requester v_k`, `path.last() = replier v_0`).
    ///
    /// The forward pass computes the cached minima `M_i` (starting from
    /// `∞` at the requester, per §II). The replier must either be the
    /// destination or have both a route and a label strictly below the
    /// request minimum (the SLR reply condition). The reply pass then
    /// relabels every intermediate node per Definition 1 and installs
    /// successor links.
    ///
    /// # Errors
    ///
    /// See [`SlrError`]. On `LabelExhausted` the computation stops midway —
    /// links installed so far remain (they are individually order-safe).
    pub fn run_request(&mut self, path: &[NodeId]) -> Result<(), SlrError> {
        if path.len() < 2 {
            return Err(SlrError::BadPath);
        }
        for &n in path {
            if n >= self.nodes.len() {
                return Err(SlrError::UnknownNode(n));
            }
        }
        let replier = *path.last().expect("non-empty path");

        // Forward pass: M_i = min of requester-side labels, starting at ∞.
        // M is cached per node *before* it adds its own label downstream:
        // node i caches min over {v_k … v_{i+1}}.
        let mut cached: Vec<L> = Vec::with_capacity(path.len());
        let mut running = L::greatest();
        for &n in path.iter() {
            cached.push(running.clone());
            running = L::min_of(running, self.nodes[n].label.clone());
        }

        // Reply condition at the replier.
        let request_min = &cached[path.len() - 1];
        let replier_label = self.nodes[replier].label.clone();
        let can_reply = self.has_route(replier) && replier_label.lt(request_min);
        if !can_reply {
            return Err(SlrError::CannotReply(replier));
        }

        // Reply pass: walk back v_1 … v_k.
        let mut adv = replier_label;
        let mut adv_from = replier;
        for idx in (0..path.len() - 1).rev() {
            let node = path[idx];
            let own = self.nodes[node].label.clone();
            let m = cached[idx].clone();
            let s_max = self.s_max(node);
            let g = match choose_label(&own, &m, &adv, &s_max) {
                Some(g) => g,
                None => {
                    // Try again pretending the successor set were dropped
                    // (Theorem 4 ignores Eq. 6 because a node may always
                    // drop successors).
                    match choose_label(&own, &m, &adv, &L::least()) {
                        Some(g) => {
                            // Eliminate out-of-order successors (the
                            // Algorithm 1 line 13 analogue).
                            let doomed: Vec<NodeId> = self.nodes[node]
                                .succs
                                .iter()
                                .filter(|(_, l)| !l.lt(&g))
                                .map(|(k, _)| *k)
                                .collect();
                            for d in doomed {
                                self.nodes[node].succs.remove(&d);
                            }
                            g
                        }
                        None => return Err(SlrError::LabelExhausted(node)),
                    }
                }
            };
            self.nodes[node].label = g.clone();
            self.nodes[node].succs.insert(adv_from, adv.clone());
            #[cfg(debug_assertions)]
            self.debug_check();
            adv = g;
            adv_from = node;
        }
        Ok(())
    }

    /// Verifies that every successor edge `(i, j)` satisfies
    /// `label(j) < label(i)` with **current** labels — the topological
    /// order of Theorem 3 — and that the successor graph is acyclic.
    pub fn check_topological_order(&self) -> Result<(), SlrError> {
        for (i, st) in self.nodes.iter().enumerate() {
            for (&j, recorded) in &st.succs {
                // Recorded label can only have been refined downward.
                if !self.nodes[j].label.le(recorded) {
                    return Err(SlrError::OrderViolation(dag::OrderViolation {
                        from: i,
                        to: j,
                        detail: format!(
                            "successor {j} label {:?} rose above recorded {:?}",
                            self.nodes[j].label, recorded
                        ),
                    }));
                }
                if !self.nodes[j].label.lt(&st.label) {
                    return Err(SlrError::OrderViolation(dag::OrderViolation {
                        from: i,
                        to: j,
                        detail: format!(
                            "edge ({i},{j}): {:?} !< {:?}",
                            self.nodes[j].label, st.label
                        ),
                    }));
                }
            }
        }
        // Independent acyclicity check (does not rely on labels).
        let edges: Vec<(NodeId, NodeId)> = self
            .nodes
            .iter()
            .enumerate()
            .flat_map(|(i, st)| st.succs.keys().map(move |&j| (i, j)))
            .collect();
        dag::find_cycle(self.nodes.len(), &edges).map_or(Ok(()), |cyc| {
            Err(SlrError::OrderViolation(dag::OrderViolation {
                from: cyc[0],
                to: cyc[cyc.len() - 1],
                detail: format!("cycle {cyc:?}"),
            }))
        })
    }

    #[cfg(debug_assertions)]
    fn debug_check(&self) {
        if let Err(e) = self.check_topological_order() {
            panic!("SLR invariant broken: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fraction::Fraction;
    use crate::sternbrocot::SbPath;

    type F = Fraction<u32>;

    fn fr(n: u32, d: u32) -> F {
        Fraction::new(n, d).unwrap()
    }

    #[test]
    fn figure1_line_network() {
        // T=0, A=1, B=2, C=3, D=4, E=5.
        let mut g: SlrGraph<F> = SlrGraph::new(6, 0);
        g.run_request(&[5, 4, 3, 2, 1, 0]).unwrap();
        assert_eq!(*g.label(0), fr(0, 1));
        assert_eq!(*g.label(1), fr(1, 2));
        assert_eq!(*g.label(2), fr(2, 3));
        assert_eq!(*g.label(3), fr(3, 4));
        assert_eq!(*g.label(4), fr(4, 5));
        assert_eq!(*g.label(5), fr(5, 6));
        g.check_topological_order().unwrap();
    }

    #[test]
    fn figure2_insertion_without_predecessor_relabel() {
        // Start from Fig. 1's A(1/2), B(2/3); nodes F=3 (2/3), G=4 (2/3),
        // H=5 (3/4) have labels but empty successor sets. Request
        // H→G→F→B→A, reply from A.
        let mut g: SlrGraph<F> = SlrGraph::new(6, 0);
        // Seed: A and B have routes to T (node 0).
        g.run_request(&[2, 1, 0]).unwrap(); // B→A→T : A=1/2, B=2/3
        assert_eq!(*g.label(1), fr(1, 2));
        assert_eq!(*g.label(2), fr(2, 3));
        // Hand-set stale labels for F, G, H (they "once knew a route").
        g.nodes[3].label = fr(2, 3);
        g.nodes[4].label = fr(2, 3);
        g.nodes[5].label = fr(3, 4);

        // Request H(5) G(4) F(3) B(2), reply by... B cannot reply: its
        // label 2/3 is not < request min 2/3. Extend to A(1).
        let err = g.clone().run_request(&[5, 4, 3, 2]).unwrap_err();
        assert!(matches!(err, SlrError::CannotReply(2)));

        g.run_request(&[5, 4, 3, 2, 1]).unwrap();
        assert_eq!(*g.label(1), fr(1, 2)); // A unchanged
        assert_eq!(*g.label(2), fr(3, 5)); // B split
        assert_eq!(*g.label(3), fr(5, 8)); // F split
        assert_eq!(*g.label(4), fr(2, 3)); // G keeps
        assert_eq!(*g.label(5), fr(3, 4)); // H keeps
        g.check_topological_order().unwrap();
    }

    #[test]
    fn multipath_successors_accumulate() {
        // Diamond: 0 ← 1, 0 ← 2, and 3 reaches both.
        let mut g: SlrGraph<F> = SlrGraph::new(4, 0);
        g.run_request(&[1, 0]).unwrap();
        g.run_request(&[2, 0]).unwrap();
        g.run_request(&[3, 1]).unwrap();
        g.run_request(&[3, 2]).unwrap();
        assert_eq!(g.successors(3).count(), 2);
        g.check_topological_order().unwrap();
    }

    #[test]
    fn reply_requires_route_and_lower_label() {
        let mut g: SlrGraph<F> = SlrGraph::new(3, 0);
        // Node 2 asks node 1, which has no route: error.
        let err = g.run_request(&[2, 1]).unwrap_err();
        assert!(matches!(err, SlrError::CannotReply(1)));
        // After 1 gets a route, it can reply.
        g.run_request(&[1, 0]).unwrap();
        g.run_request(&[2, 1]).unwrap();
        assert!(g.has_route(2));
    }

    #[test]
    fn drop_link_invalidates_route() {
        let mut g: SlrGraph<F> = SlrGraph::new(3, 0);
        g.run_request(&[1, 0]).unwrap();
        assert!(g.has_route(1));
        g.drop_link(1, 0);
        assert!(!g.has_route(1));
    }

    #[test]
    fn unbounded_labels_never_exhaust() {
        // Alternating requests over a ring stress-split; SbPath never
        // overflows.
        let mut g: SlrGraph<SbPath> = SlrGraph::new(4, 0);
        g.run_request(&[1, 0]).unwrap();
        g.run_request(&[2, 1]).unwrap();
        g.run_request(&[3, 2]).unwrap();
        for _ in 0..50 {
            g.run_request(&[3, 2, 1]).unwrap();
            g.check_topological_order().unwrap();
        }
    }

    #[test]
    fn bad_paths_rejected() {
        let mut g: SlrGraph<F> = SlrGraph::new(3, 0);
        assert!(matches!(g.run_request(&[1]), Err(SlrError::BadPath)));
        assert!(matches!(
            g.run_request(&[1, 7]),
            Err(SlrError::UnknownNode(7))
        ));
    }
}
