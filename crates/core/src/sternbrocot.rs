//! Stern–Brocot / Farey-tree machinery.
//!
//! The paper's conclusion names two open extensions this module implements:
//!
//! 1. **Fraction reduction via the Farey tree** — "We would like to find a
//!    method to interpolate relatively prime proper fractions that yields a
//!    relatively prime proper fraction. Our current research is developing
//!    methods based on walking a Farey tree." [`simplest_between`] returns
//!    the unique fraction of *smallest denominator* strictly inside an open
//!    interval: every Stern–Brocot tree node is in lowest terms, so
//!    interpolating this way always yields relatively prime fractions and
//!    consumes the split budget far more slowly than the raw mediant.
//! 2. **An unbounded dense label set** — §II allows "a lexicographically
//!    sorted string" as the ordinal set. [`SbPath`] is exactly that: a
//!    label is a path in the Stern–Brocot tree (a string over `{L, R}`),
//!    ordered lexicographically with the convention `L < ε < R`, plus
//!    adjoined least/greatest elements. Splitting never overflows.

use core::cmp::Ordering;
use core::fmt;

use crate::fraction::{FracInt, Fraction};

/// Returns the fraction with the smallest denominator strictly inside the
/// open interval `(lo, hi)`, as a `(num, den)` pair in lowest terms.
///
/// This walks the Stern–Brocot tree with run-length acceleration (each
/// burst of same-direction steps is taken in one division), so it runs in
/// `O(log(den))` rather than `O(den)` steps.
///
/// Returns `None` when the interval is empty (`lo >= hi`) or the result
/// does not fit in `T`.
///
/// # Examples
///
/// ```
/// use slr_core::fraction::Fraction;
/// use slr_core::sternbrocot::simplest_between;
///
/// let lo: Fraction<u32> = Fraction::new(2, 7)?;
/// let hi = Fraction::new(1, 3)?;
/// // The simplest fraction in (2/7, 1/3) is 3/10.
/// assert_eq!(simplest_between(&lo, &hi), Some(Fraction::new(3, 10)?));
/// # Ok::<(), slr_core::fraction::FractionError>(())
/// ```
pub fn simplest_between<T: FracInt>(lo: &Fraction<T>, hi: &Fraction<T>) -> Option<Fraction<T>> {
    if lo >= hi {
        return None;
    }
    let (n, d) = simplest_between_raw(
        lo.num().as_u128(),
        lo.den().as_u128(),
        hi.num().as_u128(),
        hi.den().as_u128(),
    );
    let num = T::try_from_u128(n)?;
    let den = T::try_from_u128(d)?;
    Some(Fraction::new(num, den).expect("stern-brocot result is a valid fraction"))
}

/// Raw Stern–Brocot search over `u128` components. Requires
/// `a/b < c/d` strictly. Returns the simplest fraction in the open interval.
fn simplest_between_raw(a: u128, b: u128, c: u128, d: u128) -> (u128, u128) {
    // Fences: left (ln/ld) <= lo, right (rn/rd) >= hi; mediant walks inward.
    let (mut ln, mut ld): (u128, u128) = (0, 1);
    let (mut rn, mut rd): (u128, u128) = (1, 0); // +infinity
    loop {
        // How many right-steps k can we take while the mediant stays <= lo?
        // mediant_k = (ln + k*rn) / (ld + k*rd); condition:
        // (ln + k*rn) * b <= a * (ld + k*rd)
        //   k * (rn*b - a*rd) <= a*ld - ln*b
        let rhs = a * ld - ln * b; // >= 0 since ln/ld <= a/b
        let coeff = rn * b; // rn*b - a*rd, computed carefully below
        let coeff = coeff.saturating_sub(a * rd);
        if let Some(k) = rhs.checked_div(coeff) {
            if k > 0 {
                ln += k * rn;
                ld += k * rd;
            }
        }
        // Now the mediant of the fences is > lo. Check against hi.
        let mn = ln + rn;
        let md = ld + rd;
        if mn * d < c * md {
            // mediant < hi, and by construction mediant > lo: done.
            return (mn, md);
        }
        // How many left-steps while the mediant stays >= hi?
        // (ln + k*... ) symmetric: mediant_k = (rn + k*ln)/(rd + k*ld) >= c/d
        //   (rn + k*ln)*d >= c*(rd + k*ld)
        //   k*(c*ld - ln*d) <= rn*d - c*rd
        let rhs = rn * d - c * rd; // >= 0 since rn/rd >= c/d
        let coeff = (c * ld).saturating_sub(ln * d);
        if let Some(k) = rhs.checked_div(coeff) {
            if k > 0 {
                rn += k * ln;
                rd += k * ld;
            }
        }
        let mn = ln + rn;
        let md = ld + rd;
        if a * md < mn * b && mn * d < c * md {
            return (mn, md);
        }
        // Otherwise loop: at least one accelerated step strictly shrank the
        // continued-fraction expansion, so this terminates.
    }
}

/// One step direction in the Stern–Brocot tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Step {
    /// Move toward smaller values.
    L,
    /// Move toward larger values.
    R,
}

/// An element of the unbounded dense ordinal set: a Stern–Brocot tree path,
/// plus adjoined `Least` and `Greatest` elements.
///
/// Order is lexicographic with `L < (end of string) < R` at the first
/// divergence — the standard Stern–Brocot order, under which the tree node
/// reached by a path compares exactly like its rational value. Between any
/// two paths there is always another (append one step), so the set is dense
/// and splitting never fails: this realizes the paper's unbounded label set
/// from §II, where "there is no need for path resets, however the size of
/// the labels becomes large".
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SbPath {
    /// The least element (the destination's label).
    Least,
    /// An interior tree node identified by its root path.
    Path(Vec<Step>),
    /// The greatest element (an unassigned node).
    Greatest,
}

impl SbPath {
    /// The root of the tree (the fraction `1/2` of the unit interval).
    pub fn root() -> Self {
        SbPath::Path(Vec::new())
    }

    /// Path length (label size in steps); 0 for `Least`/`Greatest`/root.
    pub fn depth(&self) -> usize {
        match self {
            SbPath::Path(p) => p.len(),
            _ => 0,
        }
    }

    /// Compares two paths in Stern–Brocot (value) order.
    pub fn cmp_value(&self, other: &Self) -> Ordering {
        use SbPath::*;
        match (self, other) {
            (Least, Least) | (Greatest, Greatest) => Ordering::Equal,
            (Least, _) => Ordering::Less,
            (_, Least) => Ordering::Greater,
            (Greatest, _) => Ordering::Greater,
            (_, Greatest) => Ordering::Less,
            (Path(a), Path(b)) => cmp_paths(a, b),
        }
    }

    /// The label exactly between `lo` and `hi` that has the shortest path:
    /// the Stern–Brocot analogue of the mediant. Requires `lo < hi`;
    /// returns `None` otherwise. Never overflows.
    pub fn between(lo: &Self, hi: &Self) -> Option<Self> {
        if lo.cmp_value(hi) != Ordering::Less {
            return None;
        }
        // Walk from the root, staying outside (lo, hi) until we fall in.
        let mut cur: Vec<Step> = Vec::new();
        loop {
            let node = SbPath::Path(cur.clone());
            match (node.cmp_value(lo), node.cmp_value(hi)) {
                (Ordering::Greater, Ordering::Less) => return Some(node),
                (Ordering::Less, _) | (Ordering::Equal, _) => cur.push(Step::R),
                (_, Ordering::Greater) | (_, Ordering::Equal) => cur.push(Step::L),
            }
        }
    }

    /// A label strictly greater than `self` (the next-element analogue).
    /// `Greatest` has none.
    pub fn next_up(&self) -> Option<Self> {
        match self {
            SbPath::Least => Some(SbPath::root()),
            SbPath::Path(p) => {
                let mut q = p.clone();
                q.push(Step::R);
                Some(SbPath::Path(q))
            }
            SbPath::Greatest => None,
        }
    }

    /// The rational value of this path in the unit interval (`Least` = 0,
    /// `Greatest` = 1, root = 1/2), as a `(num, den)` pair in lowest terms.
    pub fn to_fraction(&self) -> (u128, u128) {
        match self {
            SbPath::Least => (0, 1),
            SbPath::Greatest => (1, 1),
            SbPath::Path(p) => {
                let (mut ln, mut ld): (u128, u128) = (0, 1);
                let (mut rn, mut rd): (u128, u128) = (1, 1);
                for s in p {
                    let mn = ln + rn;
                    let md = ld + rd;
                    match s {
                        Step::L => {
                            rn = mn;
                            rd = md;
                        }
                        Step::R => {
                            ln = mn;
                            ld = md;
                        }
                    }
                }
                (ln + rn, ld + rd)
            }
        }
    }

    /// Builds the path for the reduced fraction `num/den` strictly inside
    /// `(0, 1)`. Returns `None` for endpoint values.
    pub fn from_fraction(num: u128, den: u128) -> Option<Self> {
        if num == 0 || num >= den {
            return None;
        }
        let (mut ln, mut ld): (u128, u128) = (0, 1);
        let (mut rn, mut rd): (u128, u128) = (1, 1);
        let mut path = Vec::new();
        loop {
            let mn = ln + rn;
            let md = ld + rd;
            match (num * md).cmp(&(mn * den)) {
                Ordering::Equal => return Some(SbPath::Path(path)),
                Ordering::Less => {
                    path.push(Step::L);
                    rn = mn;
                    rd = md;
                }
                Ordering::Greater => {
                    path.push(Step::R);
                    ln = mn;
                    ld = md;
                }
            }
        }
    }
}

/// The continued-fraction expansion `[a0; a1, a2, …]` of `num/den`
/// (`den > 0`), using the standard Euclidean form where every coefficient
/// after `a0` is positive.
///
/// The sum of coefficients (minus one) is the Stern–Brocot depth of the
/// reduced fraction — the quantity [`crate::Fraction::stern_brocot_depth`]
/// reports — so this exposes exactly how much split budget a label has
/// consumed and where.
///
/// # Examples
///
/// ```
/// use slr_core::sternbrocot::continued_fraction;
/// assert_eq!(continued_fraction(3, 10), vec![0, 3, 3]); // 3/10 = 0+1/(3+1/3)
/// assert_eq!(continued_fraction(5, 8), vec![0, 1, 1, 1, 2]);
/// ```
pub fn continued_fraction(num: u128, den: u128) -> Vec<u128> {
    assert!(den > 0, "denominator must be positive");
    let mut out = Vec::new();
    let (mut a, mut b) = (num, den);
    loop {
        out.push(a / b);
        let r = a % b;
        if r == 0 {
            return out;
        }
        a = b;
        b = r;
    }
}

/// Reconstructs `num/den` (in lowest terms) from a continued fraction.
///
/// # Panics
///
/// Panics if `cf` is empty or a coefficient after the first is zero.
pub fn from_continued_fraction(cf: &[u128]) -> (u128, u128) {
    assert!(!cf.is_empty(), "continued fraction needs a coefficient");
    let mut num = *cf.last().expect("non-empty");
    let mut den: u128 = 1;
    for &c in cf[..cf.len() - 1].iter().rev() {
        assert!(num != 0, "interior coefficients must be positive");
        // x → c + 1/x.
        let new_num = c * num + den;
        den = num;
        num = new_num;
    }
    (num, den)
}

/// The Farey sequence `F_n`: all reduced fractions in `[0, 1]` with
/// denominator ≤ `n`, ascending. Uses the classic next-term recurrence,
/// so it runs in O(|F_n|) with O(1) state.
///
/// Mediants of adjacent Farey terms are exactly the next-denominator
/// insertions — the structure behind both SRP's splitting and the
/// conclusion's reduction proposal.
///
/// # Examples
///
/// ```
/// use slr_core::sternbrocot::farey_sequence;
/// let f5: Vec<(u64, u64)> = farey_sequence(5).collect();
/// assert_eq!(f5.len(), 11);
/// assert_eq!(f5[0], (0, 1));
/// assert_eq!(f5[5], (1, 2));
/// assert_eq!(f5[10], (1, 1));
/// ```
pub fn farey_sequence(n: u64) -> FareySequence {
    assert!(n >= 1, "Farey order must be at least 1");
    FareySequence {
        n,
        cur: Some(((0, 1), (1, n))),
    }
}

/// Iterator over a Farey sequence; see [`farey_sequence`].
#[derive(Debug, Clone)]
pub struct FareySequence {
    n: u64,
    /// The two most recent terms `(a/b, c/d)`, or `None` when exhausted.
    cur: Option<((u64, u64), (u64, u64))>,
}

impl Iterator for FareySequence {
    type Item = (u64, u64);

    fn next(&mut self) -> Option<(u64, u64)> {
        let ((a, b), (c, d)) = self.cur?;
        if (a, b) == (1, 1) {
            self.cur = None;
            return Some((1, 1));
        }
        // Standard recurrence: e/f = (⌊(n+b)/d⌋·c − a, ⌊(n+b)/d⌋·d − b).
        let k = (self.n + b) / d;
        let e = k * c - a;
        let f = k * d - b;
        self.cur = Some(((c, d), (e, f)));
        Some((a, b))
    }
}

/// Lexicographic comparison with `L < ε < R`.
fn cmp_paths(a: &[Step], b: &[Step]) -> Ordering {
    let n = a.len().min(b.len());
    for i in 0..n {
        match (a[i], b[i]) {
            (Step::L, Step::R) => return Ordering::Less,
            (Step::R, Step::L) => return Ordering::Greater,
            _ => {}
        }
    }
    match a.len().cmp(&b.len()) {
        Ordering::Equal => Ordering::Equal,
        Ordering::Less => {
            // b continues: b < a if next step L, b > a if next step R.
            match b[n] {
                Step::L => Ordering::Greater,
                Step::R => Ordering::Less,
            }
        }
        Ordering::Greater => match a[n] {
            Step::L => Ordering::Less,
            Step::R => Ordering::Greater,
        },
    }
}

impl fmt::Display for SbPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SbPath::Least => write!(f, "0"),
            SbPath::Greatest => write!(f, "1"),
            SbPath::Path(p) if p.is_empty() => write!(f, "ε"),
            SbPath::Path(p) => {
                for s in p {
                    write!(f, "{}", if *s == Step::L { 'L' } else { 'R' })?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(n: u32, d: u32) -> Fraction<u32> {
        Fraction::new(n, d).unwrap()
    }

    #[test]
    fn simplest_between_known_cases() {
        assert_eq!(simplest_between(&f(2, 7), &f(1, 3)), Some(f(3, 10)));
        assert_eq!(simplest_between(&f(0, 1), &f(1, 1)), Some(f(1, 2)));
        assert_eq!(simplest_between(&f(1, 2), &f(1, 1)), Some(f(2, 3)));
        assert_eq!(simplest_between(&f(0, 1), &f(1, 2)), Some(f(1, 3)));
        assert_eq!(simplest_between(&f(1, 3), &f(1, 2)), Some(f(2, 5)));
        // Tiny interval near zero: accelerated walk must not take 10^6 steps.
        assert_eq!(
            simplest_between(&f(1, 1_000_001), &f(1, 1_000_000)),
            None.or(simplest_between(&f(1, 1_000_001), &f(1, 1_000_000)))
        );
    }

    #[test]
    fn simplest_between_is_inside_and_simplest() {
        let cases = [
            (f(1, 4), f(1, 3)),
            (f(3, 7), f(5, 9)),
            (f(99, 100), f(1, 1)),
            (f(0, 1), f(1, 100)),
            (f(17, 19), f(18, 19)),
        ];
        for (lo, hi) in cases {
            let m = simplest_between(&lo, &hi).unwrap();
            assert!(lo < m && m < hi, "{m} not inside ({lo},{hi})");
            // No fraction with a smaller denominator fits inside.
            for d in 1..m.den() {
                for n in 1..d {
                    let cand = f(n, d);
                    assert!(
                        !(lo < cand && cand < hi),
                        "{cand} simpler than {m} in ({lo},{hi})"
                    );
                }
            }
        }
    }

    #[test]
    fn simplest_between_rejects_empty_interval() {
        assert_eq!(simplest_between(&f(1, 2), &f(1, 2)), None);
        assert_eq!(simplest_between(&f(2, 3), &f(1, 2)), None);
    }

    #[test]
    fn simplest_between_deep_interval_is_fast() {
        // Interval (1/1000000, 1/999999): simplest is 2/1999999 — reachable
        // only via run-length acceleration in reasonable time.
        let lo = Fraction::<u32>::new(1, 1_000_000).unwrap();
        let hi = Fraction::<u32>::new(1, 999_999).unwrap();
        let m = simplest_between(&lo, &hi).unwrap();
        assert!(lo < m && m < hi);
        assert_eq!(m, Fraction::<u32>::new(2, 1_999_999).unwrap());
    }

    #[test]
    fn sb_path_order() {
        use SbPath::*;
        let root = SbPath::root();
        let l = Path(vec![Step::L]);
        let r = Path(vec![Step::R]);
        assert_eq!(Least.cmp_value(&root), Ordering::Less);
        assert_eq!(root.cmp_value(&Greatest), Ordering::Less);
        assert_eq!(l.cmp_value(&root), Ordering::Less);
        assert_eq!(root.cmp_value(&r), Ordering::Less);
        assert_eq!(l.cmp_value(&r), Ordering::Less);
        // LR > L, LR < root.
        let lr = Path(vec![Step::L, Step::R]);
        assert_eq!(l.cmp_value(&lr), Ordering::Less);
        assert_eq!(lr.cmp_value(&root), Ordering::Less);
    }

    #[test]
    fn sb_path_matches_fraction_values() {
        // Path order must agree with rational value order.
        let paths = [
            SbPath::Least,
            SbPath::Path(vec![Step::L, Step::L]),
            SbPath::Path(vec![Step::L]),
            SbPath::Path(vec![Step::L, Step::R]),
            SbPath::root(),
            SbPath::Path(vec![Step::R, Step::L]),
            SbPath::Path(vec![Step::R]),
            SbPath::Path(vec![Step::R, Step::R]),
            SbPath::Greatest,
        ];
        for w in paths.windows(2) {
            assert_eq!(
                w[0].cmp_value(&w[1]),
                Ordering::Less,
                "{} !< {}",
                w[0],
                w[1]
            );
            let (an, ad) = w[0].to_fraction();
            let (bn, bd) = w[1].to_fraction();
            assert!(
                an * bd < bn * ad,
                "{}={}/{} vs {}={}/{}",
                w[0],
                an,
                ad,
                w[1],
                bn,
                bd
            );
        }
    }

    #[test]
    fn sb_between_always_succeeds_inside() {
        let a = SbPath::Path(vec![Step::L, Step::L, Step::R]);
        let b = SbPath::Path(vec![Step::L, Step::R]);
        let m = SbPath::between(&a, &b).unwrap();
        assert_eq!(a.cmp_value(&m), Ordering::Less);
        assert_eq!(m.cmp_value(&b), Ordering::Less);
        // Endpoints.
        let m2 = SbPath::between(&SbPath::Least, &SbPath::Greatest).unwrap();
        assert_eq!(m2, SbPath::root());
        assert!(SbPath::between(&b, &a).is_none());
    }

    #[test]
    fn sb_next_up() {
        let r = SbPath::root().next_up().unwrap();
        assert_eq!(SbPath::root().cmp_value(&r), Ordering::Less);
        assert!(SbPath::Greatest.next_up().is_none());
        let l0 = SbPath::Least.next_up().unwrap();
        assert_eq!(SbPath::Least.cmp_value(&l0), Ordering::Less);
    }

    #[test]
    fn sb_fraction_roundtrip() {
        for (n, d) in [(1u128, 2u128), (1, 3), (2, 3), (3, 10), (17, 19)] {
            let p = SbPath::from_fraction(n, d).unwrap();
            assert_eq!(p.to_fraction(), (n, d), "roundtrip {n}/{d}");
        }
        assert!(SbPath::from_fraction(0, 1).is_none());
        assert!(SbPath::from_fraction(1, 1).is_none());
    }

    #[test]
    fn continued_fraction_roundtrip() {
        for (n, d) in [
            (3u128, 10u128),
            (5, 8),
            (1, 2),
            (2, 3),
            (355, 1130),
            (17, 19),
        ] {
            let cf = continued_fraction(n, d);
            let (rn, rd) = from_continued_fraction(&cf);
            // Roundtrip reproduces the reduced value.
            assert_eq!(n * rd, rn * d, "{n}/{d} → {cf:?} → {rn}/{rd}");
        }
        // Depth relation: sum of coefficients − 1 = Stern–Brocot depth.
        let f = Fraction::<u32>::new(3, 10).unwrap();
        let cf = continued_fraction(3, 10);
        let sum: u128 = cf.iter().sum();
        assert_eq!(sum as u64 - 1, f.stern_brocot_depth());
    }

    #[test]
    fn continued_fraction_of_integers() {
        assert_eq!(continued_fraction(0, 1), vec![0]);
        assert_eq!(continued_fraction(1, 1), vec![1]);
        assert_eq!(continued_fraction(7, 1), vec![7]);
    }

    #[test]
    fn farey_sequence_f5_is_known() {
        let f5: Vec<(u64, u64)> = farey_sequence(5).collect();
        assert_eq!(
            f5,
            vec![
                (0, 1),
                (1, 5),
                (1, 4),
                (1, 3),
                (2, 5),
                (1, 2),
                (3, 5),
                (2, 3),
                (3, 4),
                (4, 5),
                (1, 1)
            ]
        );
    }

    #[test]
    fn farey_sequence_lengths_match_totients() {
        // |F_n| = 1 + Σ φ(k): 2, 3, 5, 7, 11, 13, 19, 23, 29, 33.
        let expected = [2usize, 3, 5, 7, 11, 13, 19, 23, 29, 33];
        for (i, &len) in expected.iter().enumerate() {
            assert_eq!(farey_sequence(i as u64 + 1).count(), len, "F_{}", i + 1);
        }
    }

    #[test]
    fn farey_adjacent_terms_are_neighbors() {
        // Adjacent Farey terms satisfy bc − ad = 1 (unimodularity) — the
        // property that makes their mediant the unique simplest insertion.
        let terms: Vec<(u64, u64)> = farey_sequence(8).collect();
        for w in terms.windows(2) {
            let (a, b) = w[0];
            let (c, d) = w[1];
            assert_eq!(c * b - a * d, 1, "{a}/{b} and {c}/{d}");
        }
    }

    #[test]
    fn farey_interpolation_stays_reduced() {
        // The conclusion's desired property: interpolating with the Farey
        // tree always yields relatively prime fractions. Use 64-bit
        // components; the worst-case narrowing is Fibonacci-like, so 80
        // iterations stay within the u64 split capacity of 91.
        let mut lo = Fraction::<u64>::zero();
        let mut hi = Fraction::<u64>::one();
        for i in 0..80 {
            let m = simplest_between(&lo, &hi).unwrap();
            let r = m.reduced();
            assert_eq!(m.num(), r.num(), "step {i}: {m} not reduced");
            assert_eq!(m.den(), r.den());
            if i % 2 == 0 {
                lo = m;
            } else {
                hi = m;
            }
        }
    }
}
