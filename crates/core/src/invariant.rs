//! Machine-readable SRP safety invariants, lifted from the paper for use
//! by oracles, the model checker and `debug_assertions` hooks.
//!
//! The simulation harness (`Sim::check_srp_loop_freedom`) and the bounded
//! model checker (`slr-check`) both need the same four predicates:
//!
//! * **Theorem 3** — the per-destination successor graph is acyclic at
//!   every instant ([`check_acyclic`]);
//! * **Definition 1 / Eq. 5** — along every installed successor edge the
//!   upstream node's *current* label strictly precedes the ordering
//!   recorded when the edge was created ([`check_edge_order`]);
//! * **seqno-floor monotonicity** — a node's per-destination sequence
//!   number floor never decreases while the node stays up; it survives
//!   DELETE_PERIOD label forgetting (the PR 7 fix)
//!   ([`check_floor_monotone`]);
//! * **distance-0 identity** — a route request claiming distance 0 to its
//!   source must come from the source itself (the audit layer's first-hop
//!   identity check) ([`check_distance_zero`]).
//!
//! Keeping the predicates here — next to [`crate::neworder`] and
//! [`crate::successors`], which implement the algorithm they constrain —
//! means the checker verifies the *actual* engine against the *actual*
//! algebra, with no hand-translated spec that can drift.

use crate::dag::find_cycle;
use crate::fraction::FracInt;
use crate::label::SplitLabel;
use core::fmt;

/// One directed successor edge `(from → to)` in the successor graph of a
/// single destination, together with the labels the invariants constrain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuccessorEdge<T: FracInt> {
    /// The upstream node holding the successor entry.
    pub from: usize,
    /// The successor node.
    pub to: usize,
    /// `from`'s current label for the destination (`O_from^T`).
    pub own: SplitLabel<T>,
    /// The ordering recorded when the edge was installed (`S_from^{T,to}`).
    pub recorded: SplitLabel<T>,
}

/// A violated invariant, carrying enough context to print a diagnostic and
/// to key a counterexample trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InvariantViolation<T: FracInt> {
    /// Definition 1 / Eq. 5 broken: `own ⊀ recorded` on an installed edge.
    EdgeOrder {
        /// The destination whose successor graph holds the edge.
        dest: usize,
        /// The offending edge with both labels.
        edge: SuccessorEdge<T>,
    },
    /// Theorem 3 broken: the successor graph contains a directed cycle.
    Cycle {
        /// The destination whose successor graph is cyclic.
        dest: usize,
        /// The cycle as a node sequence (first node repeated implicitly).
        nodes: Vec<usize>,
    },
    /// A node's per-destination sequence-number floor decreased.
    FloorRegressed {
        /// The node whose floor regressed.
        node: usize,
        /// The destination the floor guards.
        dest: usize,
        /// The floor before the transition.
        before: u64,
        /// The (smaller) floor after the transition.
        after: u64,
    },
    /// A route request carried distance 0 but was not sent by its source.
    DistanceZero {
        /// The node the request claims as source.
        claimed_src: usize,
        /// The node that actually transmitted the request.
        sender: usize,
    },
}

impl<T: FracInt> fmt::Display for InvariantViolation<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantViolation::EdgeOrder { dest, edge } => write!(
                f,
                "Definition 1 broken for dest {}: edge {} -> {} has own {:?} !< recorded {:?}",
                dest, edge.from, edge.to, edge.own, edge.recorded
            ),
            InvariantViolation::Cycle { dest, nodes } => {
                write!(
                    f,
                    "Theorem 3 broken for dest {dest}: successor cycle {nodes:?}"
                )
            }
            InvariantViolation::FloorRegressed {
                node,
                dest,
                before,
                after,
            } => write!(
                f,
                "seqno floor regressed at node {node} for dest {dest}: {before} -> {after}"
            ),
            InvariantViolation::DistanceZero {
                claimed_src,
                sender,
            } => write!(
                f,
                "distance-0 RREQ for src {claimed_src} transmitted by {sender}"
            ),
        }
    }
}

/// Definition 1 / Eq. 5, edge by edge: the upstream node's current label
/// must strictly precede the ordering recorded with the successor entry
/// (`O_from^T ≺ S_from^{T,to}`). Returns the first violating edge.
pub fn check_edge_order<T: FracInt>(
    dest: usize,
    edges: &[SuccessorEdge<T>],
) -> Result<(), InvariantViolation<T>> {
    for e in edges {
        if !e.own.precedes(&e.recorded) {
            return Err(InvariantViolation::EdgeOrder { dest, edge: *e });
        }
    }
    Ok(())
}

/// Theorem 3: the successor graph restricted to `edges` must be acyclic.
/// `n` bounds the node-id space (ids in `edges` must be `< n`).
pub fn check_acyclic<T: FracInt>(
    dest: usize,
    n: usize,
    edges: &[SuccessorEdge<T>],
) -> Result<(), InvariantViolation<T>> {
    let raw: Vec<(usize, usize)> = edges.iter().map(|e| (e.from, e.to)).collect();
    match find_cycle(n, &raw) {
        None => Ok(()),
        Some(nodes) => Err(InvariantViolation::Cycle { dest, nodes }),
    }
}

/// Both structural checks for one destination's successor graph: the
/// per-edge label order (Definition 1) first — a broken edge is the more
/// precise diagnostic — then global acyclicity (Theorem 3).
pub fn check_destination<T: FracInt>(
    dest: usize,
    n: usize,
    edges: &[SuccessorEdge<T>],
) -> Result<(), InvariantViolation<T>> {
    check_edge_order(dest, edges)?;
    check_acyclic(dest, n, edges)
}

/// Seqno-floor monotonicity across one transition: `after < before` is a
/// violation. Crash–rejoin legitimately resets the floor, so callers must
/// skip nodes that were wiped during the transition.
pub fn check_floor_monotone<T: FracInt>(
    node: usize,
    dest: usize,
    before: u64,
    after: u64,
) -> Result<(), InvariantViolation<T>> {
    if after < before {
        Err(InvariantViolation::FloorRegressed {
            node,
            dest,
            before,
            after,
        })
    } else {
        Ok(())
    }
}

/// The audit layer's distance-0 identity property: an in-flight route
/// request whose accumulated distance is 0 must have been transmitted by
/// the node it names as source.
pub fn check_distance_zero<T: FracInt>(
    claimed_src: usize,
    sender: usize,
    distance: u32,
) -> Result<(), InvariantViolation<T>> {
    if distance == 0 && sender != claimed_src {
        Err(InvariantViolation::DistanceZero {
            claimed_src,
            sender,
        })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fraction::Fraction;

    fn l(sn: u64, n: u32, d: u32) -> SplitLabel<u32> {
        SplitLabel::new(sn, Fraction::new(n, d).unwrap())
    }

    fn edge(
        from: usize,
        to: usize,
        own: SplitLabel<u32>,
        rec: SplitLabel<u32>,
    ) -> SuccessorEdge<u32> {
        SuccessorEdge {
            from,
            to,
            own,
            recorded: rec,
        }
    }

    #[test]
    fn ordered_dag_passes() {
        // 2 -> 1 -> 0 with labels 2/3, 1/2 and recorded orderings one step
        // below each owner: exactly what a clean discovery installs.
        let edges = [
            edge(2, 1, l(1, 2, 3), l(1, 1, 2)),
            edge(1, 0, l(1, 1, 2), l(1, 0, 1)),
        ];
        assert!(check_destination(0, 3, &edges).is_ok());
    }

    #[test]
    fn edge_order_violation_is_reported_first() {
        // own == recorded is already a violation (strict precedence).
        let edges = [edge(2, 1, l(1, 1, 2), l(1, 1, 2))];
        match check_destination(0, 3, &edges) {
            Err(InvariantViolation::EdgeOrder { dest: 0, edge: e }) => {
                assert_eq!((e.from, e.to), (2, 1));
            }
            other => panic!("expected EdgeOrder, got {other:?}"),
        }
    }

    #[test]
    fn two_cycle_is_caught_even_when_edges_are_locally_ordered() {
        // Both historical SRP loops looked exactly like this: each edge
        // satisfies own < recorded locally, yet 1 <-> 2 globally.
        let edges = [
            edge(1, 2, l(1, 3, 4), l(1, 2, 3)),
            edge(2, 1, l(1, 2, 3), l(1, 1, 2)),
        ];
        assert!(check_edge_order(0, &edges).is_ok());
        match check_acyclic(0, 3, &edges) {
            Err(InvariantViolation::Cycle { dest: 0, nodes }) => {
                assert_eq!(nodes.len(), 2);
            }
            other => panic!("expected Cycle, got {other:?}"),
        }
    }

    #[test]
    fn floor_and_distance_zero_predicates() {
        assert!(check_floor_monotone::<u32>(1, 0, 3, 3).is_ok());
        assert!(check_floor_monotone::<u32>(1, 0, 3, 4).is_ok());
        assert!(check_floor_monotone::<u32>(1, 0, 4, 3).is_err());
        assert!(check_distance_zero::<u32>(5, 5, 0).is_ok());
        assert!(check_distance_zero::<u32>(5, 4, 1).is_ok());
        assert!(check_distance_zero::<u32>(5, 4, 0).is_err());
    }
}
