//! Property-based tests for the SLR label algebra: machine checks of the
//! paper's Theorems 1–6 over randomized inputs.

use proptest::prelude::*;

use slr_core::engine::SlrGraph;
use slr_core::sternbrocot::{simplest_between, SbPath, Step};
use slr_core::{maintains_order, new_order, Fraction, SplitLabel};

/// A strategy producing arbitrary valid `u32` fractions (including 0/1 and
/// 1/1 but biased toward proper interiors).
fn frac() -> impl Strategy<Value = Fraction<u32>> {
    (1u32..=1_000_000)
        .prop_flat_map(|den| (0u32..=den).prop_map(move |num| Fraction::new(num, den).unwrap()))
}

/// Small sequence numbers so equal-seqno cases are well represented.
fn label() -> impl Strategy<Value = SplitLabel<u32>> {
    (0u64..4, frac()).prop_map(|(sn, fd)| SplitLabel::new(sn, fd))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Eq. 1: the mediant of two fractions lies strictly between them.
    #[test]
    fn mediant_strictly_between(a in frac(), b in frac()) {
        prop_assume!(a < b);
        if let Some(m) = a.checked_mediant(&b) {
            prop_assert!(a < m && m < b, "{a} {m} {b}");
        }
    }

    /// Cross-multiplication order is a total order consistent with values.
    #[test]
    fn fraction_order_matches_f64(a in frac(), b in frac()) {
        let (x, y) = (a.value(), b.value());
        if (x - y).abs() > 1e-9 {
            prop_assert_eq!(a < b, x < y);
        }
    }

    /// The next-element is strictly greater and the least such step keeps
    /// the value below one.
    #[test]
    fn next_element_properties(a in frac()) {
        if let Some(n) = a.next_element() {
            prop_assert!(a < n);
            prop_assert!(n <= Fraction::one());
        } else {
            prop_assert!(a.is_one());
        }
    }

    /// The ≺ relation of Definition 5 is irreflexive, asymmetric and
    /// transitive — a strict partial order.
    #[test]
    fn oc_is_strict_partial_order(a in label(), b in label(), c in label()) {
        prop_assert!(!a.precedes(&a));
        if a.precedes(&b) {
            prop_assert!(!b.precedes(&a));
        }
        if a.precedes(&b) && b.precedes(&c) {
            prop_assert!(a.precedes(&c));
        }
        // Totality on non-equal labels.
        if a != b {
            prop_assert!(a.precedes(&b) || b.precedes(&a));
        }
    }

    /// Theorem 5 (density): between two distinct orderings there is a third.
    #[test]
    fn oc_is_dense(a in label(), b in label()) {
        prop_assume!(a.precedes(&b));
        // Construct the witness the proof uses.
        let c = if a.seqno() != b.seqno() {
            b.next_element()
        } else {
            a.fd().checked_mediant(&b.fd()).map(|fd| SplitLabel::new(a.seqno(), fd))
        };
        if let Some(c) = c {
            prop_assert!(a.precedes(&c), "{a} !≺ {c} (b={b})");
            prop_assert!(c.precedes(&b), "{c} !≺ {b} (a={a})");
        }
    }

    /// Theorem 6: whenever the advertisement is feasible at the node
    /// (Fact 1) and along the reverse path (Fact 2), a finite NEWORDER
    /// result maintains Eqs. 3–5. Feasible triples are built by sorting
    /// three arbitrary labels so the advertisement is the lowest.
    #[test]
    fn neworder_maintains_order(a in label(), b in label(), c in label(), swap in prop::bool::ANY) {
        let mut v = [a, b, c];
        // Sort by DAG height: lowest (closest to destination) last.
        v.sort_by(|x, y| {
            if x.precedes(y) {
                core::cmp::Ordering::Less // x higher than y
            } else if y.precedes(x) {
                core::cmp::Ordering::Greater
            } else {
                core::cmp::Ordering::Equal
            }
        });
        let (mut own, mut cached, adv) = (v[0], v[1], v[2]);
        if swap {
            core::mem::swap(&mut own, &mut cached);
        }
        prop_assume!(own.precedes(&adv) && cached.precedes(&adv));
        let g = new_order(own, cached, adv);
        if g.label.is_finite() {
            prop_assert!(maintains_order(&g.label, &own, &cached, &adv, None),
                "own={own} cached={cached} adv={adv} g={:?}", g);
        }
    }

    /// An infeasible advertisement (own ⊀ adv) never yields a finite label.
    #[test]
    fn neworder_rejects_infeasible(own in label(), cached in label(), adv in label()) {
        prop_assume!(!own.precedes(&adv));
        let g = new_order(own, cached, adv);
        // When own == adv numerically with equal seqno, KeepOwn may fire;
        // that is still order-safe because no new successor below own is
        // implied. Any *other* infeasible input must be rejected.
        if own.seqno() > adv.seqno() {
            prop_assert!(!g.label.is_finite());
        }
    }

    /// Farey interpolation: the simplest fraction is inside the interval
    /// and never has a larger denominator than the mediant.
    #[test]
    fn simplest_between_inside_and_simple(a in frac(), b in frac()) {
        prop_assume!(a < b);
        let s = simplest_between(&a, &b);
        prop_assert!(s.is_some(), "interval ({a},{b}) should contain a fraction");
        let s = s.unwrap();
        prop_assert!(a < s && s < b);
        if let Some(m) = a.checked_mediant(&b) {
            prop_assert!(s.den() <= m.den(), "simplest {s} vs mediant {m}");
        }
        // Result is in lowest terms.
        let r = s.reduced();
        prop_assert_eq!(s.num(), r.num());
    }

    /// Stern–Brocot path order agrees with rational value order.
    #[test]
    fn sbpath_order_matches_values(steps_a in prop::collection::vec(prop::bool::ANY, 0..12),
                                   steps_b in prop::collection::vec(prop::bool::ANY, 0..12)) {
        let to_path = |v: &[bool]| SbPath::Path(
            v.iter().map(|&b| if b { Step::R } else { Step::L }).collect());
        let a = to_path(&steps_a);
        let b = to_path(&steps_b);
        let (an, ad) = a.to_fraction();
        let (bn, bd) = b.to_fraction();
        let val_cmp = (an * bd).cmp(&(bn * ad));
        prop_assert_eq!(a.cmp_value(&b), val_cmp);
    }

    /// SbPath::between always succeeds on a non-empty interval and lands
    /// strictly inside.
    #[test]
    fn sbpath_between_inside(steps_a in prop::collection::vec(prop::bool::ANY, 0..10),
                             steps_b in prop::collection::vec(prop::bool::ANY, 0..10)) {
        let to_path = |v: &[bool]| SbPath::Path(
            v.iter().map(|&b| if b { Step::R } else { Step::L }).collect());
        let a = to_path(&steps_a);
        let b = to_path(&steps_b);
        use core::cmp::Ordering;
        let (lo, hi) = match a.cmp_value(&b) {
            Ordering::Less => (a, b),
            Ordering::Greater => (b, a),
            Ordering::Equal => return Ok(()),
        };
        let m = SbPath::between(&lo, &hi).unwrap();
        prop_assert_eq!(lo.cmp_value(&m), Ordering::Less);
        prop_assert_eq!(m.cmp_value(&hi), Ordering::Less);
    }
}

/// Generates a random connected graph as an adjacency list.
fn random_adjacency(n: usize, extra_edges: usize, seed: u64) -> Vec<Vec<usize>> {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut adj = vec![Vec::new(); n];
    // Random spanning tree keeps it connected.
    for i in 1..n {
        let j = rng.gen_range(0..i);
        adj[i].push(j);
        adj[j].push(i);
    }
    for _ in 0..extra_edges {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b && !adj[a].contains(&b) {
            adj[a].push(b);
            adj[b].push(a);
        }
    }
    adj
}

/// BFS shortest path from `from` to `to` over `adj`.
fn bfs_path(adj: &[Vec<usize>], from: usize, to: usize) -> Option<Vec<usize>> {
    use std::collections::VecDeque;
    let mut prev = vec![usize::MAX; adj.len()];
    let mut q = VecDeque::new();
    prev[from] = from;
    q.push_back(from);
    while let Some(u) = q.pop_front() {
        if u == to {
            let mut path = vec![to];
            let mut cur = to;
            while cur != from {
                cur = prev[cur];
                path.push(cur);
            }
            path.reverse();
            return Some(path);
        }
        for &v in &adj[u] {
            if prev[v] == usize::MAX {
                prev[v] = u;
                q.push_back(v);
            }
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorems 1–4 end-to-end: random request/reply sequences over random
    /// connected graphs keep the successor graph in topological order (and
    /// hence loop-free) at every step, including across link failures.
    #[test]
    fn slr_graph_random_walkthrough(
        seed in 0u64..1_000,
        n in 4usize..20,
        ops in prop::collection::vec((0usize..20, 0usize..20, prop::bool::ANY), 1..40),
    ) {
        let adj = random_adjacency(n, n / 2, seed);
        let dest = 0usize;
        let mut g: SlrGraph<Fraction<u64>> = SlrGraph::new(n, dest);
        for (a, b, drop) in ops {
            let a = a % n;
            let b = b % n;
            if drop {
                g.drop_link(a, b);
            } else if a != dest {
                // Route request from a toward the destination via BFS.
                if let Some(path) = bfs_path(&adj, a, dest) {
                    // Any prefix of the path ending at a labeled node with a
                    // route may serve as the replier; use the full path to
                    // the destination for guaranteed satisfiability.
                    let _ = g.run_request(&path);
                }
            }
            g.check_topological_order().unwrap();
        }
    }

    /// The same walkthrough with the unbounded Stern–Brocot label set:
    /// requests can never exhaust labels (§II's unbounded case).
    #[test]
    fn slr_graph_unbounded_never_exhausts(
        seed in 0u64..500,
        n in 4usize..12,
        reqs in prop::collection::vec(1usize..12, 1..25),
    ) {
        let adj = random_adjacency(n, n / 2, seed);
        let mut g: SlrGraph<SbPath> = SlrGraph::new(n, 0);
        for a in reqs {
            let a = a % n;
            if a == 0 { continue; }
            if let Some(path) = bfs_path(&adj, a, 0) {
                let r = g.run_request(&path);
                if let Err(e) = &r {
                    prop_assert!(
                        !matches!(e, slr_core::engine::SlrError::LabelExhausted(_)),
                        "unbounded set exhausted: {e}"
                    );
                }
            }
            g.check_topological_order().unwrap();
        }
    }
}
