//! Detailed single-trial diagnostics: per-protocol drop breakdowns,
//! control-packet mix, collision and link-failure counts. Useful when
//! tuning or debugging a protocol's behaviour under mobility.
//!
//! ```sh
//! cargo run --release -p slr-runner --example diag [pause_secs]
//! ```

use slr_runner::scenario::{ProtocolKind, Scenario};
use slr_runner::sim::Sim;

fn main() {
    let pause: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(150);
    for kind in ProtocolKind::all() {
        let scenario = Scenario::quick(kind, pause, 42, 0);
        let (summary, metrics) = Sim::new(scenario).run_detailed();
        println!("=== {} (pause {pause}s) ===", kind.name());
        println!(
            "delivery {:.3} load {:.3} latency {:.3} mac_drops/node {:.1} avg_seqno {:.2}",
            summary.delivery_ratio,
            summary.network_load,
            summary.latency,
            summary.mac_drops_per_node,
            summary.avg_seqno
        );
        println!(
            "originated {} delivered {} dup {} data_tx {}",
            metrics.data_originated,
            metrics.data_delivered,
            metrics.duplicate_deliveries,
            metrics.data_tx
        );
        println!("routing drops: {:?}", metrics.drops);
        println!("control mix: {:?}", metrics.control_by_kind);
        println!(
            "mac: retry_drops {} ifq_drops {} unicast_attempts {} collisions {}",
            metrics.mac_drop_retry, metrics.mac_drop_ifq, metrics.mac_tx_data, metrics.collisions
        );
        println!(
            "link failures: in-range {} out-of-range {}; discoveries {} resets {}",
            metrics.link_failures_in_range,
            metrics.link_failures_out_of_range,
            metrics.discoveries,
            metrics.resets
        );
        println!();
    }
}
