//! Per-packet event tracing.
//!
//! When enabled on a [`crate::sim::Sim`], every data packet's life is
//! recorded — origination, each forwarding hop, delivery or drop — which
//! makes routing pathologies (loops, detours, salvage chains) directly
//! inspectable in tests and during protocol debugging.

use std::collections::HashMap;

use slr_netsim::time::SimTime;
use slr_protocols::{DataDropReason, NodeId};

/// One event in a packet's life.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// The application handed the packet to the routing layer.
    Originated {
        /// Source node.
        node: NodeId,
        /// When.
        time: SimTime,
    },
    /// The routing layer forwarded the packet to a neighbor.
    Forwarded {
        /// Forwarding node.
        from: NodeId,
        /// Chosen next hop.
        to: NodeId,
        /// When.
        time: SimTime,
    },
    /// A forwarding attempt failed at the MAC (retries exhausted): the
    /// packet never reached `to`; the routing layer gets it back for
    /// salvage. Pairs with the most recent matching [`TraceEvent::Forwarded`].
    ForwardFailed {
        /// The node whose transmission failed.
        from: NodeId,
        /// The unreachable next hop.
        to: NodeId,
        /// When.
        time: SimTime,
    },
    /// The packet reached its destination.
    Delivered {
        /// Destination node.
        node: NodeId,
        /// When.
        time: SimTime,
    },
    /// The routing layer abandoned the packet.
    Dropped {
        /// Node where the drop happened.
        node: NodeId,
        /// Why.
        reason: DataDropReason,
        /// When.
        time: SimTime,
    },
}

impl TraceEvent {
    /// The time the event happened.
    pub fn time(&self) -> SimTime {
        match self {
            TraceEvent::Originated { time, .. }
            | TraceEvent::Forwarded { time, .. }
            | TraceEvent::ForwardFailed { time, .. }
            | TraceEvent::Delivered { time, .. }
            | TraceEvent::Dropped { time, .. } => *time,
        }
    }
}

/// A packet's final fate, as recorded by the trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketFate {
    /// Delivered to its destination.
    Delivered,
    /// Dropped by the routing layer.
    Dropped(DataDropReason),
    /// Still somewhere in the network when the simulation ended.
    InFlight,
}

/// The trace store for one trial. Bounded: tracing stops accepting *new*
/// packets beyond `capacity` uids (events for already-traced packets keep
/// accumulating), so long runs cannot exhaust memory.
#[derive(Debug, Clone)]
pub struct TraceLog {
    by_uid: HashMap<u64, Vec<TraceEvent>>,
    capacity: usize,
}

impl TraceLog {
    /// Creates a trace store tracking at most `capacity` packets.
    pub fn new(capacity: usize) -> Self {
        TraceLog {
            by_uid: HashMap::new(),
            capacity,
        }
    }

    /// Records an event for packet `uid`.
    pub fn record(&mut self, uid: u64, event: TraceEvent) {
        if let Some(events) = self.by_uid.get_mut(&uid) {
            events.push(event);
            return;
        }
        if self.by_uid.len() < self.capacity {
            self.by_uid.insert(uid, vec![event]);
        }
    }

    /// Number of packets traced.
    pub fn len(&self) -> usize {
        self.by_uid.len()
    }

    /// Whether nothing was traced.
    pub fn is_empty(&self) -> bool {
        self.by_uid.is_empty()
    }

    /// The raw events of one packet, in order.
    pub fn events(&self, uid: u64) -> &[TraceEvent] {
        self.by_uid.get(&uid).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The node path the packet took: origin, then each next hop in
    /// forwarding order (re-forwards after salvage appear as they
    /// happened).
    pub fn path(&self, uid: u64) -> Vec<NodeId> {
        let mut path = Vec::new();
        for e in self.events(uid) {
            match e {
                TraceEvent::Originated { node, .. } => path.push(*node),
                TraceEvent::Forwarded { to, .. } => path.push(*to),
                _ => {}
            }
        }
        path
    }

    /// Number of forwarding transmissions the packet consumed (including
    /// attempts that later failed at the MAC).
    pub fn hop_count(&self, uid: u64) -> usize {
        self.events(uid)
            .iter()
            .filter(|e| matches!(e, TraceEvent::Forwarded { .. }))
            .count()
    }

    /// The successful hops the packet actually traversed, as directed
    /// `(from, to)` edges in time order: forwarding attempts the MAC
    /// later reported as failed (the packet never reached `to`) are
    /// excluded. This is the packet's physical trajectory, the right
    /// object for loop analysis — the raw [`TraceLog::path`] also lists
    /// next hops that never received the packet.
    pub fn successful_hops(&self, uid: u64) -> Vec<(NodeId, NodeId)> {
        // (from, to, failed): a ForwardFailed cancels the most recent
        // unmatched attempt on the same directed edge.
        let mut hops: Vec<(NodeId, NodeId, bool)> = Vec::new();
        for e in self.events(uid) {
            match e {
                TraceEvent::Forwarded { from, to, .. } => hops.push((*from, *to, false)),
                TraceEvent::ForwardFailed { from, to, .. } => {
                    if let Some(h) = hops
                        .iter_mut()
                        .rev()
                        .find(|h| h.0 == *from && h.1 == *to && !h.2)
                    {
                        h.2 = true;
                    }
                }
                _ => {}
            }
        }
        hops.into_iter()
            .filter(|h| !h.2)
            .map(|h| (h.0, h.1))
            .collect()
    }

    /// The packet's final fate.
    pub fn fate(&self, uid: u64) -> PacketFate {
        for e in self.events(uid).iter().rev() {
            match e {
                TraceEvent::Delivered { .. } => return PacketFate::Delivered,
                TraceEvent::Dropped { reason, .. } => return PacketFate::Dropped(*reason),
                _ => {}
            }
        }
        PacketFate::InFlight
    }

    /// Iterates over `(uid, events)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &[TraceEvent])> {
        self.by_uid.iter().map(|(k, v)| (*k, v.as_slice()))
    }

    /// Renders one packet's trace as a compact single line, e.g.
    /// `uid 7: 0 →1 →4 ✓ (3 hops, 0.021s)`.
    pub fn render(&self, uid: u64) -> String {
        let events = self.events(uid);
        if events.is_empty() {
            return format!("uid {uid}: (not traced)");
        }
        let mut out = format!("uid {uid}:");
        let mut start = None;
        let mut end = None;
        for e in events {
            match e {
                TraceEvent::Originated { node, time } => {
                    out.push_str(&format!(" {node}"));
                    start = Some(*time);
                }
                TraceEvent::Forwarded { to, .. } => out.push_str(&format!(" →{to}")),
                TraceEvent::ForwardFailed { to, .. } => out.push_str(&format!(" ⇥{to}")),
                TraceEvent::Delivered { time, .. } => {
                    out.push_str(" ✓");
                    end = Some(*time);
                }
                TraceEvent::Dropped { reason, time, .. } => {
                    out.push_str(&format!(" ✗({reason:?})"));
                    end = Some(*time);
                }
            }
        }
        if let (Some(s), Some(e)) = (start, end) {
            out.push_str(&format!(
                " ({} hops, {:.4}s)",
                self.hop_count(uid),
                e.saturating_since(s).as_secs_f64()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn records_path_and_fate() {
        let mut log = TraceLog::new(10);
        log.record(
            1,
            TraceEvent::Originated {
                node: 0,
                time: t(0),
            },
        );
        log.record(
            1,
            TraceEvent::Forwarded {
                from: 0,
                to: 3,
                time: t(1),
            },
        );
        log.record(
            1,
            TraceEvent::Forwarded {
                from: 3,
                to: 7,
                time: t(2),
            },
        );
        log.record(
            1,
            TraceEvent::Delivered {
                node: 7,
                time: t(3),
            },
        );
        assert_eq!(log.path(1), vec![0, 3, 7]);
        assert_eq!(log.hop_count(1), 2);
        assert_eq!(log.fate(1), PacketFate::Delivered);
        let line = log.render(1);
        assert!(line.contains("uid 1"), "{line}");
        assert!(line.contains('✓'));
    }

    #[test]
    fn dropped_and_inflight_fates() {
        let mut log = TraceLog::new(10);
        log.record(
            2,
            TraceEvent::Originated {
                node: 4,
                time: t(0),
            },
        );
        log.record(
            2,
            TraceEvent::Dropped {
                node: 4,
                reason: DataDropReason::NoRoute,
                time: t(5),
            },
        );
        assert_eq!(log.fate(2), PacketFate::Dropped(DataDropReason::NoRoute));
        log.record(
            3,
            TraceEvent::Originated {
                node: 1,
                time: t(1),
            },
        );
        assert_eq!(log.fate(3), PacketFate::InFlight);
        assert_eq!(log.fate(99), PacketFate::InFlight);
    }

    #[test]
    fn capacity_bounds_new_packets_only() {
        let mut log = TraceLog::new(1);
        log.record(
            1,
            TraceEvent::Originated {
                node: 0,
                time: t(0),
            },
        );
        log.record(
            2,
            TraceEvent::Originated {
                node: 0,
                time: t(0),
            },
        );
        assert_eq!(log.len(), 1);
        // Existing packets keep accumulating.
        log.record(
            1,
            TraceEvent::Forwarded {
                from: 0,
                to: 1,
                time: t(1),
            },
        );
        assert_eq!(log.events(1).len(), 2);
        assert!(log.events(2).is_empty());
    }

    #[test]
    fn successful_hops_exclude_failed_attempts() {
        let mut log = TraceLog::new(4);
        log.record(
            9,
            TraceEvent::Originated {
                node: 0,
                time: t(0),
            },
        );
        // 0→1 ok, 1→2 fails, 1→3 ok (salvage), 3→2 ok.
        for (from, to, ms) in [(0, 1, 1), (1, 2, 2), (1, 3, 4), (3, 2, 5)] {
            log.record(
                9,
                TraceEvent::Forwarded {
                    from,
                    to,
                    time: t(ms),
                },
            );
        }
        log.record(
            9,
            TraceEvent::ForwardFailed {
                from: 1,
                to: 2,
                time: t(3),
            },
        );
        assert_eq!(log.successful_hops(9), vec![(0, 1), (1, 3), (3, 2)]);
        assert_eq!(log.hop_count(9), 4, "hop_count keeps failed attempts");
        assert!(log.render(9).contains('⇥'), "{}", log.render(9));
    }

    #[test]
    fn event_time_accessor() {
        let e = TraceEvent::Forwarded {
            from: 0,
            to: 1,
            time: t(9),
        };
        assert_eq!(e.time(), t(9));
    }
}
