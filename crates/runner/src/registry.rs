//! The named scenario registry: every workload family the harness can run,
//! each sweepable over any scalar scenario parameter.
//!
//! A [`Family`] is a named recipe that turns `(protocol, seed, trial,
//! scale)` into a [`Scenario`]; a [`SweepParam`] names the scalar knob an
//! experiment varies across points. Together they generalize the paper's
//! single pause-time sweep: `slrsim --scenario grid --param nodes
//! --values 9,25,49` runs a node-count sweep over static grids with the
//! same statistics/report pipeline the §V reproduction uses.
//!
//! Families beyond the paper:
//!
//! * [`Family::Grid`] / [`Family::Line`] — static structured topologies:
//!   connectivity and loop-freedom without churn (the setting where
//!   sequence-number protocols are *supposed* to be safe; see van
//!   Glabbeek et al., arXiv:1512.08891, for why topology shape matters);
//! * [`Family::Disc`] — every node within (or near) radio range of every
//!   other: pure contention stress with bursty Poisson arrivals;
//! * [`Family::Scaling`] — node-count scaling at constant density,
//!   mirroring how link-reversal/backpressure evaluations scale networks
//!   (Rai et al., arXiv:1503.06857);
//! * [`Family::Churn`] / [`Family::Partition`] / [`Family::CrashRejoin`] —
//!   static grids under *administrative* topology dynamics (seeded link
//!   flaps, planned partition/heal, node crash–rejoin): the adversarial
//!   link-dynamics setting in which sequence-number protocols are known to
//!   loop (van Glabbeek et al., arXiv:1512.08891) and the direct test of
//!   the paper's loop-free-at-every-instant thesis.

use slr_mobility::Terrain;
use slr_netsim::time::{SimDuration, SimTime};
use slr_traffic::ArrivalProcess;

use crate::adversary::AdversarySpec;
use crate::dynamics::DynamicsSpec;
use crate::scenario::{MobilitySpec, ProtocolKind, Scenario, TopologySpec, TrafficSpec};

/// The scalar scenario parameter a sweep varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepParam {
    /// Random-waypoint pause time in seconds (the paper's x-axis).
    Pause,
    /// Number of nodes.
    Nodes,
    /// Number of simultaneous flows.
    Flows,
    /// Per-flow packet rate in packets/second.
    PacketRate,
    /// Maximum node speed in m/s.
    MaxSpeed,
    /// Link-churn rate in down transitions per link per minute.
    ChurnRate,
    /// Adversarial node fraction in percent.
    Adversaries,
}

impl SweepParam {
    /// Every sweepable parameter.
    pub const ALL: [SweepParam; 7] = [
        SweepParam::Pause,
        SweepParam::Nodes,
        SweepParam::Flows,
        SweepParam::PacketRate,
        SweepParam::MaxSpeed,
        SweepParam::ChurnRate,
        SweepParam::Adversaries,
    ];

    /// CLI / JSON name.
    pub fn name(&self) -> &'static str {
        match self {
            SweepParam::Pause => "pause",
            SweepParam::Nodes => "nodes",
            SweepParam::Flows => "flows",
            SweepParam::PacketRate => "rate",
            SweepParam::MaxSpeed => "speed",
            SweepParam::ChurnRate => "churn",
            SweepParam::Adversaries => "adversaries",
        }
    }

    /// Axis label used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            SweepParam::Pause => "Pause Time (seconds)",
            SweepParam::Nodes => "Number of Nodes",
            SweepParam::Flows => "Concurrent Flows",
            SweepParam::PacketRate => "Packets/s per Flow",
            SweepParam::MaxSpeed => "Max Speed (m/s)",
            SweepParam::ChurnRate => "Link Flaps per Minute",
            SweepParam::Adversaries => "Adversarial Nodes (%)",
        }
    }

    /// Parses a CLI name.
    pub fn parse(s: &str) -> Option<SweepParam> {
        SweepParam::ALL
            .into_iter()
            .find(|p| p.name() == s.to_ascii_lowercase())
    }

    /// Applies `value` to `scenario`.
    pub fn apply(&self, scenario: &mut Scenario, value: u64) {
        match self {
            SweepParam::Pause => scenario.set_pause(SimDuration::from_secs(value)),
            SweepParam::Nodes => scenario.nodes = value as usize,
            SweepParam::Flows => scenario.set_flows(value as usize),
            SweepParam::PacketRate => scenario.traffic.packets_per_second = value as f64,
            SweepParam::MaxSpeed => {
                if let MobilitySpec::RandomWaypoint { max_speed, .. } = &mut scenario.mobility {
                    *max_speed = (value as f64).max(0.2);
                }
            }
            SweepParam::ChurnRate => match &mut scenario.dynamics {
                DynamicsSpec::LinkChurn {
                    flaps_per_minute, ..
                } => *flaps_per_minute = value as f64,
                dynamics => {
                    *dynamics = DynamicsSpec::LinkChurn {
                        flaps_per_minute: value as f64,
                        mean_down_secs: 2.0,
                    }
                }
            },
            SweepParam::Adversaries => match &mut scenario.adversary {
                // Byzantine is the default misbehaviour when the base
                // scenario fields none; the adversary families (and
                // --adversary) pick the kind, the sweep sets the fraction.
                AdversarySpec::None => {
                    scenario.adversary = AdversarySpec::Byzantine { percent: value }
                }
                spec => spec.set_percent(value),
            },
        }
    }

    /// Rejects values that would build a degenerate scenario (and panic a
    /// sweep worker with an opaque message deep in script generation).
    pub fn validate_value(&self, value: u64) -> Result<(), String> {
        match self {
            SweepParam::Pause => Ok(()),
            SweepParam::Nodes if value < 2 => Err(format!("nodes must be >= 2, got {value}")),
            SweepParam::Flows if value < 1 => Err("flows must be >= 1".to_string()),
            SweepParam::PacketRate if value < 1 => Err("rate must be >= 1 packet/s".to_string()),
            SweepParam::MaxSpeed if value < 1 => Err("speed must be >= 1 m/s".to_string()),
            SweepParam::ChurnRate if !(1..=60).contains(&value) => {
                Err(format!("churn must be 1..=60 flaps/min, got {value}"))
            }
            SweepParam::Adversaries if !(1..=49).contains(&value) => {
                Err(format!("adversaries must be 1..=49 percent, got {value}"))
            }
            _ => Ok(()),
        }
    }
}

/// A named scenario family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// The paper's §V evaluation: uniform random placement, random
    /// waypoint mobility, CBR flows, swept over pause time.
    PaperSweep,
    /// Static near-square grid (180 m spacing): multihop connectivity and
    /// loop-freedom with zero churn; swept over node count.
    Grid,
    /// Static line (200 m spacing): the paper's Fig. 1 topology scaled
    /// up; maximal hop counts per node; swept over node count.
    Line,
    /// High-density disc (250 m radius, everyone near everyone) with
    /// bursty Poisson traffic: contention stress; swept over flow count.
    Disc,
    /// Node-count scaling at constant density (≈1 node / 13 200 m², the
    /// paper's density), random waypoint, CBR; swept 50 → 300 nodes.
    Scaling,
    /// Static grid under seeded per-link up/down churn; swept over the
    /// churn rate (link flaps per minute).
    Churn,
    /// Static grid cut into geographic components mid-run and healed
    /// later; swept over node count.
    Partition,
    /// Static grid where nodes crash (drop all state) mid-run and restart
    /// cold later; swept over node count.
    CrashRejoin,
    /// Thousand-node scale: a constant-density disc of 1,000–5,000
    /// continuously-moving nodes — the massively-dense regime (Catanuto
    /// et al., INFOCOM 2007) that the spatial-index medium and the
    /// incremental position tracker exist to make tractable; swept over
    /// node count.
    Dense,
    /// Static grid where a fraction of the nodes forges labels/seqnos
    /// and replays stale updates; honest nodes carry the audit layer;
    /// swept over the adversarial fraction.
    Byzantine,
    /// Static grid where a fraction of the nodes forges control traffic
    /// under stolen identities; swept over the adversarial fraction.
    Sybil,
    /// Static grid where a fraction of the nodes drops/delays/replays
    /// control traffic and flaps its own links on purpose; swept over
    /// the adversarial fraction.
    Chaos,
    /// Hundred-thousand-node scale: a constant-density static disc of
    /// 100k–1M nodes with locality-bounded flows (sinks within
    /// [`Family::HUGE_LOCALITY_M`] of the source — a uniform pair on such
    /// a disc is hundreds of hops apart, far past the data TTL). The
    /// memory-lean profile's home turf; sweeping max speed turns it into
    /// the slow-waypoint variant. Swept over node count.
    Huge,
}

impl Family {
    /// Every registered family, in presentation order.
    pub const ALL: [Family; 13] = [
        Family::PaperSweep,
        Family::Grid,
        Family::Line,
        Family::Disc,
        Family::Scaling,
        Family::Churn,
        Family::Partition,
        Family::CrashRejoin,
        Family::Dense,
        Family::Huge,
        Family::Byzantine,
        Family::Sybil,
        Family::Chaos,
    ];

    /// The dense family's target density: one node per this many square
    /// meters (≈10 neighbors within the 250 m reception range — sparse
    /// enough that the O(N) brute-force scan, not the local degree,
    /// dominates an unindexed channel).
    pub const DENSE_AREA_PER_NODE_M2: f64 = 20_000.0;

    /// The huge family's flow-locality radius: sinks land within this
    /// many meters of the source, ≈ 8 hops at the 250 m reception range
    /// — comfortably inside the 64-hop data TTL, so delivery failures
    /// measure the protocol, not an unreachable script.
    pub const HUGE_LOCALITY_M: f64 = 2_000.0;

    /// CLI / JSON name.
    pub fn name(&self) -> &'static str {
        match self {
            Family::PaperSweep => "paper-sweep",
            Family::Grid => "grid",
            Family::Line => "line",
            Family::Disc => "disc",
            Family::Scaling => "scaling",
            Family::Churn => "churn",
            Family::Partition => "partition",
            Family::CrashRejoin => "crash-rejoin",
            Family::Dense => "dense",
            Family::Huge => "huge",
            Family::Byzantine => "byzantine",
            Family::Sybil => "sybil",
            Family::Chaos => "chaos",
        }
    }

    /// One-line description for `--list-scenarios`.
    pub fn summary(&self) -> &'static str {
        match self {
            Family::PaperSweep => {
                "the paper's §V setup: random waypoint + CBR, swept over pause time"
            }
            Family::Grid => "static near-square grid, no churn, swept over node count",
            Family::Line => "static line (maximal hop count), swept over node count",
            Family::Disc => "high-density disc + Poisson bursts, swept over flow count",
            Family::Scaling => "constant-density node-count scaling, 50→300 nodes",
            Family::Churn => "static grid under seeded link up/down churn, swept over churn rate",
            Family::Partition => "static grid split into components mid-run, then healed",
            Family::CrashRejoin => "static grid with nodes crashing cold and rejoining mid-run",
            Family::Dense => {
                "constant-density mobile disc at 1000-5000 nodes, swept over node count"
            }
            Family::Huge => {
                "memory-lean 100k+-node static disc with locality-bounded flows, swept over node count"
            }
            Family::Byzantine => {
                "static grid with label/seqno-forging nodes, swept over adversary fraction"
            }
            Family::Sybil => {
                "static grid with identity-forging nodes, swept over adversary fraction"
            }
            Family::Chaos => {
                "static grid with drop/delay/replay + self-flapping nodes, swept over fraction"
            }
        }
    }

    /// Parses a CLI name.
    pub fn parse(s: &str) -> Option<Family> {
        let lower = s.to_ascii_lowercase();
        match lower.as_str() {
            // Back-compat aliases.
            "paper" | "paper-sweep" | "pause" => Some(Family::PaperSweep),
            _ => Family::ALL.into_iter().find(|f| f.name() == lower),
        }
    }

    /// Whether sweeping `param` actually changes this family's scenarios.
    /// Mobility knobs (pause, speed) are meaningless on static families,
    /// and the churn rate only exists under churn dynamics — sweeping
    /// either elsewhere would produce identical points.
    pub fn supports(&self, param: SweepParam) -> bool {
        match param {
            SweepParam::Pause => matches!(self, Family::PaperSweep | Family::Scaling),
            // On the huge family the speed sweep *selects* the
            // slow-waypoint variant (the base disc is static).
            SweepParam::MaxSpeed => {
                matches!(self, Family::PaperSweep | Family::Scaling | Family::Huge)
            }
            SweepParam::ChurnRate => matches!(self, Family::Churn),
            SweepParam::Adversaries => {
                matches!(self, Family::Byzantine | Family::Sybil | Family::Chaos)
            }
            SweepParam::Nodes | SweepParam::Flows | SweepParam::PacketRate => true,
        }
    }

    /// The parameter this family sweeps by default.
    pub fn default_param(&self) -> SweepParam {
        match self {
            Family::PaperSweep => SweepParam::Pause,
            Family::Grid
            | Family::Line
            | Family::Scaling
            | Family::Partition
            | Family::CrashRejoin
            | Family::Dense
            | Family::Huge => SweepParam::Nodes,
            Family::Disc => SweepParam::Flows,
            Family::Churn => SweepParam::ChurnRate,
            Family::Byzantine | Family::Sybil | Family::Chaos => SweepParam::Adversaries,
        }
    }

    /// The default sweep values (paper scale or quick scale).
    pub fn default_values(&self, paper_scale: bool) -> Vec<u64> {
        match (self, paper_scale) {
            (Family::PaperSweep, _) => crate::experiment::PAUSE_TIMES.to_vec(),
            (Family::Grid, false) => vec![9, 25, 49],
            (Family::Grid, true) => vec![25, 49, 100],
            (Family::Line, _) => vec![5, 8, 12],
            (Family::Disc, false) => vec![5, 10, 20],
            (Family::Disc, true) => vec![10, 20, 30, 40],
            (Family::Scaling, false) => vec![30, 60, 90],
            (Family::Scaling, true) => vec![50, 100, 150, 200, 250, 300],
            (Family::Churn, false) => vec![2, 6, 12],
            (Family::Churn, true) => vec![2, 6, 12, 24],
            (Family::Partition | Family::CrashRejoin, false) => vec![16, 25],
            (Family::Partition | Family::CrashRejoin, true) => vec![25, 49, 100],
            (Family::Dense, false) => vec![500, 1000],
            (Family::Dense, true) => vec![1000, 2000, 5000],
            (Family::Huge, false) => vec![100_000],
            (Family::Huge, true) => vec![100_000, 250_000, 500_000, 1_000_000],
            (Family::Byzantine | Family::Sybil | Family::Chaos, false) => vec![10, 25],
            (Family::Byzantine | Family::Sybil | Family::Chaos, true) => vec![5, 10, 25, 40],
        }
    }

    /// The family's base scenario before any sweep parameter is applied.
    pub fn base(
        &self,
        protocol: ProtocolKind,
        seed: u64,
        trial: u64,
        paper_scale: bool,
    ) -> Scenario {
        match self {
            Family::PaperSweep => {
                if paper_scale {
                    Scenario::paper(protocol, 0, seed, trial)
                } else {
                    Scenario::quick(protocol, 0, seed, trial)
                }
            }
            Family::Grid => {
                let mut s = Scenario::quick(protocol, 0, seed, trial);
                s.nodes = if paper_scale { 100 } else { 25 };
                s.topology = TopologySpec::Grid { spacing: 180.0 };
                s.mobility = MobilitySpec::Static;
                s.traffic = TrafficSpec::paper_cbr(if paper_scale { 30 } else { 5 });
                s.end = SimTime::from_secs(if paper_scale { 310 } else { 70 });
                s
            }
            Family::Line => {
                let mut s = Scenario::quick(protocol, 0, seed, trial);
                s.nodes = 8;
                s.topology = TopologySpec::Line { spacing: 200.0 };
                s.mobility = MobilitySpec::Static;
                s.traffic = TrafficSpec::paper_cbr(3);
                s.end = SimTime::from_secs(if paper_scale { 160 } else { 70 });
                s
            }
            Family::Disc => {
                let mut s = Scenario::quick(protocol, 0, seed, trial);
                s.nodes = if paper_scale { 75 } else { 40 };
                s.topology = TopologySpec::Disc { radius: 250.0 };
                s.mobility = MobilitySpec::Static;
                s.traffic = TrafficSpec {
                    arrival: ArrivalProcess::Poisson,
                    ..TrafficSpec::paper_cbr(if paper_scale { 30 } else { 15 })
                };
                s.end = SimTime::from_secs(if paper_scale { 160 } else { 80 });
                s
            }
            Family::Scaling => {
                let mut s = if paper_scale {
                    Scenario::paper(protocol, 120, seed, trial)
                } else {
                    Scenario::quick(protocol, 120, seed, trial)
                };
                if !paper_scale {
                    s.end = SimTime::from_secs(120);
                }
                Family::scale_terrain(&mut s);
                s
            }
            Family::Dense => {
                // Mobile on purpose: a thousand continuously-moving nodes
                // is the regime where an unindexed medium must rebuild an
                // O(N) snapshot per transmission — exactly what the
                // incremental tracker + spatial index exist to kill.
                let mut s = Scenario::quick(protocol, 0, seed, trial);
                s.nodes = if paper_scale { 2000 } else { 1000 };
                s.mobility = MobilitySpec::RandomWaypoint {
                    pause: SimDuration::ZERO,
                    max_speed: 20.0,
                };
                s.traffic = TrafficSpec::paper_cbr(if paper_scale { 40 } else { 20 });
                s.end = SimTime::from_secs(if paper_scale { 60 } else { 40 });
                Family::scale_disc(&mut s);
                s
            }
            Family::Huge => {
                // The memory-lean scale profile: static on purpose, so
                // the per-node table footprint — not mobility churn — is
                // what the trial exercises. Short runs and few flows keep
                // a 100k-node trial affordable on one core; the sinks are
                // locality-bounded so the script stays deliverable.
                let mut s = Scenario::quick(protocol, 0, seed, trial);
                s.nodes = 100_000;
                s.mobility = MobilitySpec::Static;
                s.traffic = TrafficSpec {
                    locality_m: Some(Family::HUGE_LOCALITY_M),
                    ..TrafficSpec::paper_cbr(if paper_scale { 30 } else { 10 })
                };
                s.traffic_start = SimTime::from_secs(5);
                s.end = SimTime::from_secs(if paper_scale { 60 } else { 30 });
                Family::scale_disc(&mut s);
                s
            }
            // The adversary families share the static-grid substrate too:
            // every anomaly is attributable to the misbehaving nodes, not
            // to mobility or environmental churn.
            Family::Byzantine | Family::Sybil | Family::Chaos => {
                let mut s = Family::Grid.base(protocol, seed, trial, paper_scale);
                s.nodes = if paper_scale { 49 } else { 16 };
                s.traffic = TrafficSpec::paper_cbr(if paper_scale { 15 } else { 5 });
                s.end = SimTime::from_secs(if paper_scale { 310 } else { 80 });
                s.adversary = match self {
                    Family::Byzantine => AdversarySpec::default_byzantine(),
                    Family::Sybil => AdversarySpec::default_sybil(),
                    Family::Chaos => AdversarySpec::default_chaos(),
                    _ => unreachable!("outer match narrows to adversary families"),
                };
                s
            }
            // The dynamics families share a static-grid substrate so every
            // connectivity change is attributable to the dynamics schedule
            // alone, not to mobility.
            Family::Churn | Family::Partition | Family::CrashRejoin => {
                let mut s = Family::Grid.base(protocol, seed, trial, paper_scale);
                s.nodes = if paper_scale { 49 } else { 16 };
                s.traffic = TrafficSpec::paper_cbr(if paper_scale { 15 } else { 5 });
                s.end = SimTime::from_secs(if paper_scale { 310 } else { 80 });
                s.dynamics = match self {
                    Family::Churn => DynamicsSpec::default_churn(),
                    Family::Partition => DynamicsSpec::default_partition(),
                    Family::CrashRejoin => {
                        DynamicsSpec::default_crash(if paper_scale { 5 } else { 2 })
                    }
                    _ => unreachable!("outer match narrows to dynamics families"),
                };
                s
            }
        }
    }

    /// A scenario with `param = value` applied; family-specific coupled
    /// adjustments (terrain growth, grid extent) happen here.
    #[allow(clippy::too_many_arguments)]
    pub fn scenario_at(
        &self,
        protocol: ProtocolKind,
        seed: u64,
        trial: u64,
        paper_scale: bool,
        param: SweepParam,
        value: u64,
    ) -> Scenario {
        let mut s = self.base(protocol, seed, trial, paper_scale);
        if param == SweepParam::Pause && !paper_scale {
            // Pause sweep values stay in paper units ({0, 50, …, 900});
            // quick scenarios compress them by the same 6× factor as the
            // run length, on every waypoint family — a raw 900 s pause on
            // a 120–160 s quick run would freeze the network at every
            // point above the duration.
            s.set_pause(SimDuration::from_secs(value / 6));
        } else {
            param.apply(&mut s, value);
        }
        if *self == Family::Scaling && param == SweepParam::Nodes {
            // Constant density: terrain area grows linearly with nodes.
            Family::scale_terrain(&mut s);
        }
        if *self == Family::Dense && param == SweepParam::Nodes {
            // Constant density: disc area grows linearly with nodes.
            Family::scale_disc(&mut s);
        }
        if *self == Family::Huge {
            if param == SweepParam::Nodes {
                Family::scale_disc(&mut s);
            }
            if param == SweepParam::MaxSpeed {
                // The slow-waypoint variant: drifting nodes with long
                // pauses, not the dense family's continuous 20 m/s churn
                // (`apply` no-ops on a static base, so the variant is
                // selected here).
                s.mobility = MobilitySpec::RandomWaypoint {
                    pause: SimDuration::from_secs(30),
                    max_speed: (value as f64).max(0.2),
                };
            }
        }
        s
    }

    /// Resizes the terrain to the paper's density for `s.nodes` nodes
    /// (height stays 600 m; width grows linearly).
    fn scale_terrain(s: &mut Scenario) {
        let area_per_node = 2200.0 * 600.0 / 100.0;
        let width = (area_per_node * s.nodes as f64 / 600.0).max(600.0);
        s.terrain = Terrain::new(width, 600.0);
    }

    /// Sets a disc topology sized for [`Family::DENSE_AREA_PER_NODE_M2`]
    /// at `s.nodes` nodes, with a terrain square enclosing it.
    fn scale_disc(s: &mut Scenario) {
        let radius = Family::dense_disc_radius(s.nodes);
        s.topology = TopologySpec::Disc { radius };
        s.terrain = Terrain::new(2.0 * radius, 2.0 * radius);
    }

    /// Radius of the dense family's disc for `nodes` nodes at
    /// [`Family::DENSE_AREA_PER_NODE_M2`] (shared with the channel
    /// benchmarks so they measure the same geometry the family runs).
    pub fn dense_disc_radius(nodes: usize) -> f64 {
        (nodes as f64 * Family::DENSE_AREA_PER_NODE_M2 / core::f64::consts::PI).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for f in Family::ALL {
            assert_eq!(Family::parse(f.name()), Some(f), "{}", f.name());
        }
        assert_eq!(Family::parse("PAPER"), Some(Family::PaperSweep));
        assert_eq!(Family::parse("nope"), None);
        for p in SweepParam::ALL {
            assert_eq!(SweepParam::parse(p.name()), Some(p));
        }
    }

    #[test]
    fn defaults_are_sane() {
        for f in Family::ALL {
            for scale in [false, true] {
                let values = f.default_values(scale);
                assert!(!values.is_empty(), "{} has no default values", f.name());
                let s = f.scenario_at(ProtocolKind::Srp, 1, 0, scale, f.default_param(), values[0]);
                assert!(s.nodes >= 2, "{}: degenerate node count", f.name());
                assert!(s.flows() >= 1);
                assert!(s.end > s.traffic_start);
            }
        }
    }

    #[test]
    fn paper_sweep_keeps_quick_pause_scaling() {
        let s =
            Family::PaperSweep.scenario_at(ProtocolKind::Srp, 42, 0, false, SweepParam::Pause, 900);
        // Quick mode maps the paper's 900 s to 150 s.
        assert_eq!(s.pause(), SimDuration::from_secs(150));
        let p =
            Family::PaperSweep.scenario_at(ProtocolKind::Srp, 42, 0, true, SweepParam::Pause, 900);
        assert_eq!(p.pause(), SimDuration::from_secs(900));
    }

    #[test]
    fn every_waypoint_family_compresses_quick_pause() {
        // Pause sweep values are paper units on every family that supports
        // them; a raw 900 s pause would outlast the whole quick run.
        for f in [Family::PaperSweep, Family::Scaling] {
            let s = f.scenario_at(ProtocolKind::Srp, 1, 0, false, SweepParam::Pause, 900);
            assert_eq!(
                s.pause(),
                SimDuration::from_secs(150),
                "{}: quick pause not compressed",
                f.name()
            );
            let p = f.scenario_at(ProtocolKind::Srp, 1, 0, true, SweepParam::Pause, 900);
            assert_eq!(p.pause(), SimDuration::from_secs(900));
        }
    }

    #[test]
    fn static_families_reject_mobility_params() {
        for f in [Family::Grid, Family::Line, Family::Disc] {
            assert!(!f.supports(SweepParam::Pause), "{}", f.name());
            assert!(!f.supports(SweepParam::MaxSpeed), "{}", f.name());
            assert!(f.supports(SweepParam::Nodes));
        }
        assert!(Family::Scaling.supports(SweepParam::Pause));
    }

    #[test]
    fn grid_nodes_sweep_changes_layout_only() {
        let a = Family::Grid.scenario_at(ProtocolKind::Srp, 1, 0, false, SweepParam::Nodes, 9);
        let b = Family::Grid.scenario_at(ProtocolKind::Srp, 1, 0, false, SweepParam::Nodes, 49);
        assert_eq!(a.nodes, 9);
        assert_eq!(b.nodes, 49);
        assert_eq!(a.flows(), b.flows());
        assert_eq!(a.mobility, MobilitySpec::Static);
    }

    #[test]
    fn scaling_preserves_density() {
        let density = |s: &Scenario| s.nodes as f64 / s.terrain.area();
        let a = Family::Scaling.scenario_at(ProtocolKind::Srp, 1, 0, true, SweepParam::Nodes, 50);
        let b = Family::Scaling.scenario_at(ProtocolKind::Srp, 1, 0, true, SweepParam::Nodes, 300);
        assert!(
            (density(&a) - density(&b)).abs() / density(&a) < 0.05,
            "density drifted: {} vs {}",
            density(&a),
            density(&b)
        );
        assert!(b.terrain.width > a.terrain.width * 5.0);
    }

    #[test]
    fn dynamics_families_carry_their_specs() {
        let c = Family::Churn.base(ProtocolKind::Srp, 1, 0, false);
        assert_eq!(c.dynamics.name(), "churn");
        assert_eq!(c.mobility, MobilitySpec::Static);
        assert_eq!(c.topology.name(), "grid");
        let p = Family::Partition.base(ProtocolKind::Srp, 1, 0, false);
        assert_eq!(p.dynamics.name(), "partition");
        let r = Family::CrashRejoin.base(ProtocolKind::Srp, 1, 0, false);
        assert_eq!(r.dynamics.name(), "crash-rejoin");
        assert!(r.describe().contains("crash-rejoin dynamics"));
    }

    #[test]
    fn churn_rate_sweep_applies() {
        let s =
            Family::Churn.scenario_at(ProtocolKind::Srp, 1, 0, false, SweepParam::ChurnRate, 12);
        match s.dynamics {
            DynamicsSpec::LinkChurn {
                flaps_per_minute, ..
            } => assert_eq!(flaps_per_minute, 12.0),
            other => panic!("expected churn dynamics, got {other:?}"),
        }
        // Only the churn family sweeps the churn rate.
        for f in Family::ALL {
            assert_eq!(f.supports(SweepParam::ChurnRate), f == Family::Churn);
        }
        assert!(SweepParam::ChurnRate.validate_value(0).is_err());
        assert!(SweepParam::ChurnRate.validate_value(61).is_err());
        assert!(SweepParam::ChurnRate.validate_value(6).is_ok());
    }

    #[test]
    fn adversary_families_carry_their_specs() {
        for (f, name) in [
            (Family::Byzantine, "byzantine"),
            (Family::Sybil, "sybil"),
            (Family::Chaos, "chaos"),
        ] {
            let s = f.base(ProtocolKind::Srp, 1, 0, false);
            assert_eq!(s.adversary.name(), name);
            assert_eq!(s.mobility, MobilitySpec::Static);
            assert_eq!(s.topology.name(), "grid");
            assert_eq!(f.default_param(), SweepParam::Adversaries);
            let swept = f.scenario_at(ProtocolKind::Srp, 1, 0, false, SweepParam::Adversaries, 25);
            assert_eq!(swept.adversary.percent(), 25);
            assert_eq!(
                swept.adversary.name(),
                name,
                "sweep sets fraction, keeps kind"
            );
            assert!(s.describe().contains("adversaries"), "{}", s.describe());
        }
        // Sweeping the fraction on a family without a kind defaults to
        // byzantine misbehaviour.
        let mut s = Family::Grid.base(ProtocolKind::Srp, 1, 0, false);
        SweepParam::Adversaries.apply(&mut s, 10);
        assert_eq!(s.adversary.name(), "byzantine");
        assert_eq!(s.adversary.percent(), 10);
        assert!(SweepParam::Adversaries.validate_value(0).is_err());
        assert!(SweepParam::Adversaries.validate_value(50).is_err());
        assert!(SweepParam::Adversaries.validate_value(25).is_ok());
        // Only the adversary families sweep the fraction.
        for f in [
            Family::Grid,
            Family::Churn,
            Family::Dense,
            Family::PaperSweep,
        ] {
            assert!(!f.supports(SweepParam::Adversaries), "{}", f.name());
        }
    }

    #[test]
    fn dense_preserves_density_across_node_sweep() {
        let radius = |s: &Scenario| match s.topology {
            TopologySpec::Disc { radius } => radius,
            other => panic!("dense must lay out on a disc, got {other:?}"),
        };
        let a = Family::Dense.scenario_at(ProtocolKind::Srp, 1, 0, true, SweepParam::Nodes, 1000);
        let b = Family::Dense.scenario_at(ProtocolKind::Srp, 1, 0, true, SweepParam::Nodes, 5000);
        assert_eq!(a.nodes, 1000);
        assert_eq!(b.nodes, 5000);
        let density =
            |s: &Scenario| s.nodes as f64 / (core::f64::consts::PI * radius(s) * radius(s));
        assert!(
            (density(&a) - density(&b)).abs() / density(&a) < 1e-9,
            "density drifted: {} vs {}",
            density(&a),
            density(&b)
        );
        assert!(
            (1.0 / density(&a) - Family::DENSE_AREA_PER_NODE_M2).abs() < 1e-6,
            "unexpected area per node {}",
            1.0 / density(&a)
        );
        assert_eq!(
            a.mobility,
            MobilitySpec::RandomWaypoint {
                pause: SimDuration::ZERO,
                max_speed: 20.0
            }
        );
        // The family's axis is scale; pause/speed/churn stay fixed.
        assert!(!Family::Dense.supports(SweepParam::Pause));
        assert!(!Family::Dense.supports(SweepParam::MaxSpeed));
        assert!(!Family::Dense.supports(SweepParam::ChurnRate));
        assert!(Family::Dense.supports(SweepParam::Flows));
        // The terrain encloses the disc (waypoint overlays stay sane).
        assert!(a.terrain.width >= 2.0 * radius(&a) - 1e-9);
    }

    #[test]
    fn disc_uses_poisson() {
        let s = Family::Disc.scenario_at(ProtocolKind::Srp, 1, 0, false, SweepParam::Flows, 10);
        assert_eq!(s.traffic.name(), "poisson");
        assert_eq!(s.flows(), 10);
        assert_eq!(s.topology.name(), "disc");
    }
}
